/root/repo/target/debug/deps/cedar_trace-f291602df03ef30b.d: crates/trace/src/lib.rs crates/trace/src/breakdown.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/hpm.rs crates/trace/src/intervals.rs crates/trace/src/qmon.rs crates/trace/src/statfx.rs

/root/repo/target/debug/deps/libcedar_trace-f291602df03ef30b.rlib: crates/trace/src/lib.rs crates/trace/src/breakdown.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/hpm.rs crates/trace/src/intervals.rs crates/trace/src/qmon.rs crates/trace/src/statfx.rs

/root/repo/target/debug/deps/libcedar_trace-f291602df03ef30b.rmeta: crates/trace/src/lib.rs crates/trace/src/breakdown.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/hpm.rs crates/trace/src/intervals.rs crates/trace/src/qmon.rs crates/trace/src/statfx.rs

crates/trace/src/lib.rs:
crates/trace/src/breakdown.rs:
crates/trace/src/event.rs:
crates/trace/src/export.rs:
crates/trace/src/hpm.rs:
crates/trace/src/intervals.rs:
crates/trace/src/qmon.rs:
crates/trace/src/statfx.rs:
