/root/repo/target/debug/deps/cedar-1a4d575df05573a9.d: src/lib.rs

/root/repo/target/debug/deps/cedar-1a4d575df05573a9: src/lib.rs

src/lib.rs:
