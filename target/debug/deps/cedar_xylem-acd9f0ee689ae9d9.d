/root/repo/target/debug/deps/cedar_xylem-acd9f0ee689ae9d9.d: crates/xylem/src/lib.rs crates/xylem/src/accounting.rs crates/xylem/src/background.rs crates/xylem/src/config.rs crates/xylem/src/daemon.rs crates/xylem/src/locks.rs crates/xylem/src/syscall.rs crates/xylem/src/vm.rs

/root/repo/target/debug/deps/cedar_xylem-acd9f0ee689ae9d9: crates/xylem/src/lib.rs crates/xylem/src/accounting.rs crates/xylem/src/background.rs crates/xylem/src/config.rs crates/xylem/src/daemon.rs crates/xylem/src/locks.rs crates/xylem/src/syscall.rs crates/xylem/src/vm.rs

crates/xylem/src/lib.rs:
crates/xylem/src/accounting.rs:
crates/xylem/src/background.rs:
crates/xylem/src/config.rs:
crates/xylem/src/daemon.rs:
crates/xylem/src/locks.rs:
crates/xylem/src/syscall.rs:
crates/xylem/src/vm.rs:
