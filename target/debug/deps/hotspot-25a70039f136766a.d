/root/repo/target/debug/deps/hotspot-25a70039f136766a.d: crates/bench/src/bin/hotspot.rs

/root/repo/target/debug/deps/hotspot-25a70039f136766a: crates/bench/src/bin/hotspot.rs

crates/bench/src/bin/hotspot.rs:
