/root/repo/target/debug/deps/parallel_suite-8dd8743277133e09.d: tests/parallel_suite.rs

/root/repo/target/debug/deps/parallel_suite-8dd8743277133e09: tests/parallel_suite.rs

tests/parallel_suite.rs:
