/root/repo/target/debug/deps/cedar_apps-e8bb448ec9b74430.d: crates/apps/src/lib.rs crates/apps/src/adm.rs crates/apps/src/arc2d.rs crates/apps/src/builder.rs crates/apps/src/flo52.rs crates/apps/src/mdg.rs crates/apps/src/ocean.rs crates/apps/src/spec.rs crates/apps/src/suite.rs crates/apps/src/synthetic.rs

/root/repo/target/debug/deps/cedar_apps-e8bb448ec9b74430: crates/apps/src/lib.rs crates/apps/src/adm.rs crates/apps/src/arc2d.rs crates/apps/src/builder.rs crates/apps/src/flo52.rs crates/apps/src/mdg.rs crates/apps/src/ocean.rs crates/apps/src/spec.rs crates/apps/src/suite.rs crates/apps/src/synthetic.rs

crates/apps/src/lib.rs:
crates/apps/src/adm.rs:
crates/apps/src/arc2d.rs:
crates/apps/src/builder.rs:
crates/apps/src/flo52.rs:
crates/apps/src/mdg.rs:
crates/apps/src/ocean.rs:
crates/apps/src/spec.rs:
crates/apps/src/suite.rs:
crates/apps/src/synthetic.rs:
