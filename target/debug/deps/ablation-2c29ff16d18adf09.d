/root/repo/target/debug/deps/ablation-2c29ff16d18adf09.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-2c29ff16d18adf09: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
