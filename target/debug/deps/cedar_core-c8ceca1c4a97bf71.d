/root/repo/target/debug/deps/cedar_core-c8ceca1c4a97bf71.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/machine/mod.rs crates/core/src/machine/exec.rs crates/core/src/machine/os.rs crates/core/src/machine/state.rs crates/core/src/methodology/mod.rs crates/core/src/methodology/conc.rs crates/core/src/methodology/contention.rs crates/core/src/metrics.rs crates/core/src/pool.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/run.rs crates/core/src/suite.rs

/root/repo/target/debug/deps/libcedar_core-c8ceca1c4a97bf71.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/machine/mod.rs crates/core/src/machine/exec.rs crates/core/src/machine/os.rs crates/core/src/machine/state.rs crates/core/src/methodology/mod.rs crates/core/src/methodology/conc.rs crates/core/src/methodology/contention.rs crates/core/src/metrics.rs crates/core/src/pool.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/run.rs crates/core/src/suite.rs

/root/repo/target/debug/deps/libcedar_core-c8ceca1c4a97bf71.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/machine/mod.rs crates/core/src/machine/exec.rs crates/core/src/machine/os.rs crates/core/src/machine/state.rs crates/core/src/methodology/mod.rs crates/core/src/methodology/conc.rs crates/core/src/methodology/contention.rs crates/core/src/metrics.rs crates/core/src/pool.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/run.rs crates/core/src/suite.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/events.rs:
crates/core/src/layout.rs:
crates/core/src/machine/mod.rs:
crates/core/src/machine/exec.rs:
crates/core/src/machine/os.rs:
crates/core/src/machine/state.rs:
crates/core/src/methodology/mod.rs:
crates/core/src/methodology/conc.rs:
crates/core/src/methodology/contention.rs:
crates/core/src/metrics.rs:
crates/core/src/pool.rs:
crates/core/src/program.rs:
crates/core/src/result.rs:
crates/core/src/run.rs:
crates/core/src/suite.rs:
