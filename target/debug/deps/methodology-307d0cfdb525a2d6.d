/root/repo/target/debug/deps/methodology-307d0cfdb525a2d6.d: tests/methodology.rs

/root/repo/target/debug/deps/methodology-307d0cfdb525a2d6: tests/methodology.rs

tests/methodology.rs:
