/root/repo/target/debug/deps/combining-63c7c02b9c915484.d: crates/bench/src/bin/combining.rs

/root/repo/target/debug/deps/combining-63c7c02b9c915484: crates/bench/src/bin/combining.rs

crates/bench/src/bin/combining.rs:
