/root/repo/target/debug/deps/fig9-a48fe1232c8830fc.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-a48fe1232c8830fc: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
