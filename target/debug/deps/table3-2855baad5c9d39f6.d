/root/repo/target/debug/deps/table3-2855baad5c9d39f6.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-2855baad5c9d39f6: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
