/root/repo/target/debug/deps/cedar_rtl-05d0b2f9b3e7b449.d: crates/rtl/src/lib.rs crates/rtl/src/activity.rs crates/rtl/src/barrier.rs crates/rtl/src/combining.rs crates/rtl/src/config.rs crates/rtl/src/doacross.rs crates/rtl/src/loops.rs crates/rtl/src/sched.rs crates/rtl/src/words.rs

/root/repo/target/debug/deps/cedar_rtl-05d0b2f9b3e7b449: crates/rtl/src/lib.rs crates/rtl/src/activity.rs crates/rtl/src/barrier.rs crates/rtl/src/combining.rs crates/rtl/src/config.rs crates/rtl/src/doacross.rs crates/rtl/src/loops.rs crates/rtl/src/sched.rs crates/rtl/src/words.rs

crates/rtl/src/lib.rs:
crates/rtl/src/activity.rs:
crates/rtl/src/barrier.rs:
crates/rtl/src/combining.rs:
crates/rtl/src/config.rs:
crates/rtl/src/doacross.rs:
crates/rtl/src/loops.rs:
crates/rtl/src/sched.rs:
crates/rtl/src/words.rs:
