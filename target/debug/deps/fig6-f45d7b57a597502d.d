/root/repo/target/debug/deps/fig6-f45d7b57a597502d.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-f45d7b57a597502d: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
