/root/repo/target/debug/deps/fig8-9d43448ffee49d5b.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-9d43448ffee49d5b: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
