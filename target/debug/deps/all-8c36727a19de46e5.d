/root/repo/target/debug/deps/all-8c36727a19de46e5.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-8c36727a19de46e5: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
