/root/repo/target/debug/deps/exclusion-13e5598b77a15292.d: crates/rtl/tests/exclusion.rs

/root/repo/target/debug/deps/exclusion-13e5598b77a15292: crates/rtl/tests/exclusion.rs

crates/rtl/tests/exclusion.rs:
