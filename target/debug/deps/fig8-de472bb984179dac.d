/root/repo/target/debug/deps/fig8-de472bb984179dac.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-de472bb984179dac: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
