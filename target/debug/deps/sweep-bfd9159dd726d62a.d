/root/repo/target/debug/deps/sweep-bfd9159dd726d62a.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-bfd9159dd726d62a: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
