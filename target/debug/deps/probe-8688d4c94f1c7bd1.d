/root/repo/target/debug/deps/probe-8688d4c94f1c7bd1.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-8688d4c94f1c7bd1: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
