/root/repo/target/debug/deps/probe-a748a3ce5ef1d620.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-a748a3ce5ef1d620: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
