/root/repo/target/debug/deps/sweep-cf057a9936ec7ad9.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-cf057a9936ec7ad9: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
