/root/repo/target/debug/deps/table1-59afaa0bb09d23bd.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-59afaa0bb09d23bd: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
