/root/repo/target/debug/deps/cedar_report-0da3633145879f56.d: crates/report/src/lib.rs crates/report/src/csv.rs crates/report/src/figures.rs crates/report/src/golden.rs crates/report/src/paper.rs crates/report/src/table.rs crates/report/src/tables.rs

/root/repo/target/debug/deps/libcedar_report-0da3633145879f56.rlib: crates/report/src/lib.rs crates/report/src/csv.rs crates/report/src/figures.rs crates/report/src/golden.rs crates/report/src/paper.rs crates/report/src/table.rs crates/report/src/tables.rs

/root/repo/target/debug/deps/libcedar_report-0da3633145879f56.rmeta: crates/report/src/lib.rs crates/report/src/csv.rs crates/report/src/figures.rs crates/report/src/golden.rs crates/report/src/paper.rs crates/report/src/table.rs crates/report/src/tables.rs

crates/report/src/lib.rs:
crates/report/src/csv.rs:
crates/report/src/figures.rs:
crates/report/src/golden.rs:
crates/report/src/paper.rs:
crates/report/src/table.rs:
crates/report/src/tables.rs:
