/root/repo/target/debug/deps/golden-3267455dbd3eeb44.d: tests/golden.rs

/root/repo/target/debug/deps/golden-3267455dbd3eeb44: tests/golden.rs

tests/golden.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
