/root/repo/target/debug/deps/cedar_bench-39f8222254232a8b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/cedar_bench-39f8222254232a8b: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
