/root/repo/target/debug/deps/hotspot-e1c9717b2a21c704.d: crates/bench/src/bin/hotspot.rs

/root/repo/target/debug/deps/hotspot-e1c9717b2a21c704: crates/bench/src/bin/hotspot.rs

crates/bench/src/bin/hotspot.rs:
