/root/repo/target/debug/deps/fig3-8013ed5f71ed21d4.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-8013ed5f71ed21d4: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
