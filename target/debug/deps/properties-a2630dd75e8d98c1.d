/root/repo/target/debug/deps/properties-a2630dd75e8d98c1.d: crates/hw/tests/properties.rs

/root/repo/target/debug/deps/properties-a2630dd75e8d98c1: crates/hw/tests/properties.rs

crates/hw/tests/properties.rs:
