/root/repo/target/debug/deps/compare-53a7d93e525a535b.d: crates/bench/src/bin/compare.rs

/root/repo/target/debug/deps/compare-53a7d93e525a535b: crates/bench/src/bin/compare.rs

crates/bench/src/bin/compare.rs:
