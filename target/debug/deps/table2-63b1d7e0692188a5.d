/root/repo/target/debug/deps/table2-63b1d7e0692188a5.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-63b1d7e0692188a5: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
