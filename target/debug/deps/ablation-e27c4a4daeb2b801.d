/root/repo/target/debug/deps/ablation-e27c4a4daeb2b801.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-e27c4a4daeb2b801: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
