/root/repo/target/debug/deps/invariants-f09121fccaa3d9ef.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-f09121fccaa3d9ef: tests/invariants.rs

tests/invariants.rs:
