/root/repo/target/debug/deps/compare-e28a846dd9d88010.d: crates/bench/src/bin/compare.rs

/root/repo/target/debug/deps/compare-e28a846dd9d88010: crates/bench/src/bin/compare.rs

crates/bench/src/bin/compare.rs:
