/root/repo/target/debug/deps/fig5-b2a9b668863d3c85.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-b2a9b668863d3c85: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
