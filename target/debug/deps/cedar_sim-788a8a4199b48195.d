/root/repo/target/debug/deps/cedar_sim-788a8a4199b48195.d: crates/sim/src/lib.rs crates/sim/src/outbox.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/cedar_sim-788a8a4199b48195: crates/sim/src/lib.rs crates/sim/src/outbox.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/outbox.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
