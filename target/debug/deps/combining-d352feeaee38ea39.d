/root/repo/target/debug/deps/combining-d352feeaee38ea39.d: crates/bench/src/bin/combining.rs

/root/repo/target/debug/deps/combining-d352feeaee38ea39: crates/bench/src/bin/combining.rs

crates/bench/src/bin/combining.rs:
