/root/repo/target/debug/deps/cedar_xylem-47f9ae45511e3052.d: crates/xylem/src/lib.rs crates/xylem/src/accounting.rs crates/xylem/src/background.rs crates/xylem/src/config.rs crates/xylem/src/daemon.rs crates/xylem/src/locks.rs crates/xylem/src/syscall.rs crates/xylem/src/vm.rs

/root/repo/target/debug/deps/libcedar_xylem-47f9ae45511e3052.rlib: crates/xylem/src/lib.rs crates/xylem/src/accounting.rs crates/xylem/src/background.rs crates/xylem/src/config.rs crates/xylem/src/daemon.rs crates/xylem/src/locks.rs crates/xylem/src/syscall.rs crates/xylem/src/vm.rs

/root/repo/target/debug/deps/libcedar_xylem-47f9ae45511e3052.rmeta: crates/xylem/src/lib.rs crates/xylem/src/accounting.rs crates/xylem/src/background.rs crates/xylem/src/config.rs crates/xylem/src/daemon.rs crates/xylem/src/locks.rs crates/xylem/src/syscall.rs crates/xylem/src/vm.rs

crates/xylem/src/lib.rs:
crates/xylem/src/accounting.rs:
crates/xylem/src/background.rs:
crates/xylem/src/config.rs:
crates/xylem/src/daemon.rs:
crates/xylem/src/locks.rs:
crates/xylem/src/syscall.rs:
crates/xylem/src/vm.rs:
