/root/repo/target/debug/deps/fig6-f21d0600df00dd50.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-f21d0600df00dd50: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
