/root/repo/target/debug/deps/cedar_hw-08ab086b2c61cc92.d: crates/hw/src/lib.rs crates/hw/src/addr.rs crates/hw/src/analytic.rs crates/hw/src/cache.rs crates/hw/src/cbus.rs crates/hw/src/ce.rs crates/hw/src/config.rs crates/hw/src/gmem.rs crates/hw/src/module.rs crates/hw/src/net.rs crates/hw/src/packet.rs crates/hw/src/route.rs crates/hw/src/switch.rs crates/hw/src/topology.rs crates/hw/src/vector.rs

/root/repo/target/debug/deps/cedar_hw-08ab086b2c61cc92: crates/hw/src/lib.rs crates/hw/src/addr.rs crates/hw/src/analytic.rs crates/hw/src/cache.rs crates/hw/src/cbus.rs crates/hw/src/ce.rs crates/hw/src/config.rs crates/hw/src/gmem.rs crates/hw/src/module.rs crates/hw/src/net.rs crates/hw/src/packet.rs crates/hw/src/route.rs crates/hw/src/switch.rs crates/hw/src/topology.rs crates/hw/src/vector.rs

crates/hw/src/lib.rs:
crates/hw/src/addr.rs:
crates/hw/src/analytic.rs:
crates/hw/src/cache.rs:
crates/hw/src/cbus.rs:
crates/hw/src/ce.rs:
crates/hw/src/config.rs:
crates/hw/src/gmem.rs:
crates/hw/src/module.rs:
crates/hw/src/net.rs:
crates/hw/src/packet.rs:
crates/hw/src/route.rs:
crates/hw/src/switch.rs:
crates/hw/src/topology.rs:
crates/hw/src/vector.rs:
