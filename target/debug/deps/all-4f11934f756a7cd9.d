/root/repo/target/debug/deps/all-4f11934f756a7cd9.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-4f11934f756a7cd9: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
