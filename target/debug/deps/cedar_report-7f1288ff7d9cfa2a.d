/root/repo/target/debug/deps/cedar_report-7f1288ff7d9cfa2a.d: crates/report/src/lib.rs crates/report/src/csv.rs crates/report/src/figures.rs crates/report/src/golden.rs crates/report/src/paper.rs crates/report/src/table.rs crates/report/src/tables.rs

/root/repo/target/debug/deps/cedar_report-7f1288ff7d9cfa2a: crates/report/src/lib.rs crates/report/src/csv.rs crates/report/src/figures.rs crates/report/src/golden.rs crates/report/src/paper.rs crates/report/src/table.rs crates/report/src/tables.rs

crates/report/src/lib.rs:
crates/report/src/csv.rs:
crates/report/src/figures.rs:
crates/report/src/golden.rs:
crates/report/src/paper.rs:
crates/report/src/table.rs:
crates/report/src/tables.rs:
