/root/repo/target/debug/deps/cedar_trace-f380a4e5a36dd820.d: crates/trace/src/lib.rs crates/trace/src/breakdown.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/hpm.rs crates/trace/src/intervals.rs crates/trace/src/qmon.rs crates/trace/src/statfx.rs

/root/repo/target/debug/deps/cedar_trace-f380a4e5a36dd820: crates/trace/src/lib.rs crates/trace/src/breakdown.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/hpm.rs crates/trace/src/intervals.rs crates/trace/src/qmon.rs crates/trace/src/statfx.rs

crates/trace/src/lib.rs:
crates/trace/src/breakdown.rs:
crates/trace/src/event.rs:
crates/trace/src/export.rs:
crates/trace/src/hpm.rs:
crates/trace/src/intervals.rs:
crates/trace/src/qmon.rs:
crates/trace/src/statfx.rs:
