/root/repo/target/debug/deps/cedar_sim-1492bd1434c59331.d: crates/sim/src/lib.rs crates/sim/src/outbox.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libcedar_sim-1492bd1434c59331.rlib: crates/sim/src/lib.rs crates/sim/src/outbox.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libcedar_sim-1492bd1434c59331.rmeta: crates/sim/src/lib.rs crates/sim/src/outbox.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/outbox.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
