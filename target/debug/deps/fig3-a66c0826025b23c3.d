/root/repo/target/debug/deps/fig3-a66c0826025b23c3.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-a66c0826025b23c3: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
