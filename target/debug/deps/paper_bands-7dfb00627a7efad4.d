/root/repo/target/debug/deps/paper_bands-7dfb00627a7efad4.d: tests/paper_bands.rs

/root/repo/target/debug/deps/paper_bands-7dfb00627a7efad4: tests/paper_bands.rs

tests/paper_bands.rs:
