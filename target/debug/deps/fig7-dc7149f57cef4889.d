/root/repo/target/debug/deps/fig7-dc7149f57cef4889.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-dc7149f57cef4889: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
