/root/repo/target/debug/deps/table4-2d741dfc73488574.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-2d741dfc73488574: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
