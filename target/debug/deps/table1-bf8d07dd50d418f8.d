/root/repo/target/debug/deps/table1-bf8d07dd50d418f8.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-bf8d07dd50d418f8: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
