/root/repo/target/debug/deps/fig5-87532350c4614426.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-87532350c4614426: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
