/root/repo/target/debug/deps/suite_shapes-56d3e0dc03ea0e4a.d: tests/suite_shapes.rs

/root/repo/target/debug/deps/suite_shapes-56d3e0dc03ea0e4a: tests/suite_shapes.rs

tests/suite_shapes.rs:
