/root/repo/target/debug/deps/table2-dd6502e126cb8566.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-dd6502e126cb8566: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
