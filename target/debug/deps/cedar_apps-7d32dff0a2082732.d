/root/repo/target/debug/deps/cedar_apps-7d32dff0a2082732.d: crates/apps/src/lib.rs crates/apps/src/adm.rs crates/apps/src/arc2d.rs crates/apps/src/builder.rs crates/apps/src/flo52.rs crates/apps/src/mdg.rs crates/apps/src/ocean.rs crates/apps/src/spec.rs crates/apps/src/suite.rs crates/apps/src/synthetic.rs

/root/repo/target/debug/deps/libcedar_apps-7d32dff0a2082732.rlib: crates/apps/src/lib.rs crates/apps/src/adm.rs crates/apps/src/arc2d.rs crates/apps/src/builder.rs crates/apps/src/flo52.rs crates/apps/src/mdg.rs crates/apps/src/ocean.rs crates/apps/src/spec.rs crates/apps/src/suite.rs crates/apps/src/synthetic.rs

/root/repo/target/debug/deps/libcedar_apps-7d32dff0a2082732.rmeta: crates/apps/src/lib.rs crates/apps/src/adm.rs crates/apps/src/arc2d.rs crates/apps/src/builder.rs crates/apps/src/flo52.rs crates/apps/src/mdg.rs crates/apps/src/ocean.rs crates/apps/src/spec.rs crates/apps/src/suite.rs crates/apps/src/synthetic.rs

crates/apps/src/lib.rs:
crates/apps/src/adm.rs:
crates/apps/src/arc2d.rs:
crates/apps/src/builder.rs:
crates/apps/src/flo52.rs:
crates/apps/src/mdg.rs:
crates/apps/src/ocean.rs:
crates/apps/src/spec.rs:
crates/apps/src/suite.rs:
crates/apps/src/synthetic.rs:
