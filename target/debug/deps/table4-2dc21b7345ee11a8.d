/root/repo/target/debug/deps/table4-2dc21b7345ee11a8.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-2dc21b7345ee11a8: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
