/root/repo/target/debug/deps/cedar-9ce4b63face31436.d: src/lib.rs

/root/repo/target/debug/deps/libcedar-9ce4b63face31436.rlib: src/lib.rs

/root/repo/target/debug/deps/libcedar-9ce4b63face31436.rmeta: src/lib.rs

src/lib.rs:
