/root/repo/target/debug/deps/fig9-e73557e79c671b0a.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-e73557e79c671b0a: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
