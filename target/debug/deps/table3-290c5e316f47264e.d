/root/repo/target/debug/deps/table3-290c5e316f47264e.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-290c5e316f47264e: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
