/root/repo/target/debug/deps/cedar_rtl-3327f132332c34af.d: crates/rtl/src/lib.rs crates/rtl/src/activity.rs crates/rtl/src/barrier.rs crates/rtl/src/combining.rs crates/rtl/src/config.rs crates/rtl/src/doacross.rs crates/rtl/src/loops.rs crates/rtl/src/sched.rs crates/rtl/src/words.rs

/root/repo/target/debug/deps/libcedar_rtl-3327f132332c34af.rlib: crates/rtl/src/lib.rs crates/rtl/src/activity.rs crates/rtl/src/barrier.rs crates/rtl/src/combining.rs crates/rtl/src/config.rs crates/rtl/src/doacross.rs crates/rtl/src/loops.rs crates/rtl/src/sched.rs crates/rtl/src/words.rs

/root/repo/target/debug/deps/libcedar_rtl-3327f132332c34af.rmeta: crates/rtl/src/lib.rs crates/rtl/src/activity.rs crates/rtl/src/barrier.rs crates/rtl/src/combining.rs crates/rtl/src/config.rs crates/rtl/src/doacross.rs crates/rtl/src/loops.rs crates/rtl/src/sched.rs crates/rtl/src/words.rs

crates/rtl/src/lib.rs:
crates/rtl/src/activity.rs:
crates/rtl/src/barrier.rs:
crates/rtl/src/combining.rs:
crates/rtl/src/config.rs:
crates/rtl/src/doacross.rs:
crates/rtl/src/loops.rs:
crates/rtl/src/sched.rs:
crates/rtl/src/words.rs:
