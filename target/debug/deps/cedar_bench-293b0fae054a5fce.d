/root/repo/target/debug/deps/cedar_bench-293b0fae054a5fce.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libcedar_bench-293b0fae054a5fce.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libcedar_bench-293b0fae054a5fce.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
