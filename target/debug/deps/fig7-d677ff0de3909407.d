/root/repo/target/debug/deps/fig7-d677ff0de3909407.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-d677ff0de3909407: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
