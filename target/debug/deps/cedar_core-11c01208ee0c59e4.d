/root/repo/target/debug/deps/cedar_core-11c01208ee0c59e4.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/machine/mod.rs crates/core/src/machine/exec.rs crates/core/src/machine/os.rs crates/core/src/machine/state.rs crates/core/src/machine/tests.rs crates/core/src/methodology/mod.rs crates/core/src/methodology/conc.rs crates/core/src/methodology/contention.rs crates/core/src/metrics.rs crates/core/src/pool.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/run.rs crates/core/src/suite.rs

/root/repo/target/debug/deps/cedar_core-11c01208ee0c59e4: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/machine/mod.rs crates/core/src/machine/exec.rs crates/core/src/machine/os.rs crates/core/src/machine/state.rs crates/core/src/machine/tests.rs crates/core/src/methodology/mod.rs crates/core/src/methodology/conc.rs crates/core/src/methodology/contention.rs crates/core/src/metrics.rs crates/core/src/pool.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/run.rs crates/core/src/suite.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/events.rs:
crates/core/src/layout.rs:
crates/core/src/machine/mod.rs:
crates/core/src/machine/exec.rs:
crates/core/src/machine/os.rs:
crates/core/src/machine/state.rs:
crates/core/src/machine/tests.rs:
crates/core/src/methodology/mod.rs:
crates/core/src/methodology/conc.rs:
crates/core/src/methodology/contention.rs:
crates/core/src/metrics.rs:
crates/core/src/pool.rs:
crates/core/src/program.rs:
crates/core/src/result.rs:
crates/core/src/run.rs:
crates/core/src/suite.rs:
