/root/repo/target/debug/examples/loaded_system-ff7c0e2296336c28.d: examples/loaded_system.rs

/root/repo/target/debug/examples/loaded_system-ff7c0e2296336c28: examples/loaded_system.rs

examples/loaded_system.rs:
