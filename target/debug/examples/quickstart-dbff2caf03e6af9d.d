/root/repo/target/debug/examples/quickstart-dbff2caf03e6af9d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-dbff2caf03e6af9d: examples/quickstart.rs

examples/quickstart.rs:
