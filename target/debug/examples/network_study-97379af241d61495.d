/root/repo/target/debug/examples/network_study-97379af241d61495.d: examples/network_study.rs

/root/repo/target/debug/examples/network_study-97379af241d61495: examples/network_study.rs

examples/network_study.rs:
