/root/repo/target/debug/examples/custom_app-c2a54e63bec916ef.d: examples/custom_app.rs

/root/repo/target/debug/examples/custom_app-c2a54e63bec916ef: examples/custom_app.rs

examples/custom_app.rs:
