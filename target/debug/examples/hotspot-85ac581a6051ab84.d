/root/repo/target/debug/examples/hotspot-85ac581a6051ab84.d: examples/hotspot.rs

/root/repo/target/debug/examples/hotspot-85ac581a6051ab84: examples/hotspot.rs

examples/hotspot.rs:
