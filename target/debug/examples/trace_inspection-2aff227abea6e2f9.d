/root/repo/target/debug/examples/trace_inspection-2aff227abea6e2f9.d: examples/trace_inspection.rs

/root/repo/target/debug/examples/trace_inspection-2aff227abea6e2f9: examples/trace_inspection.rs

examples/trace_inspection.rs:
