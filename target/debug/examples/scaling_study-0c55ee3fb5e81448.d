/root/repo/target/debug/examples/scaling_study-0c55ee3fb5e81448.d: examples/scaling_study.rs

/root/repo/target/debug/examples/scaling_study-0c55ee3fb5e81448: examples/scaling_study.rs

examples/scaling_study.rs:
