/root/repo/target/release/deps/fig6-d3ce87733fcf5281.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-d3ce87733fcf5281: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
