/root/repo/target/release/deps/ablation-f363a45581f9cecb.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-f363a45581f9cecb: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
