/root/repo/target/release/deps/sweep-6c339a0232cc56aa.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-6c339a0232cc56aa: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
