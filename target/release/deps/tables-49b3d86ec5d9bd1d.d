/root/repo/target/release/deps/tables-49b3d86ec5d9bd1d.d: crates/bench/benches/tables.rs

/root/repo/target/release/deps/tables-49b3d86ec5d9bd1d: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:
