/root/repo/target/release/deps/hotspot-1e7c2945b4589129.d: crates/bench/src/bin/hotspot.rs

/root/repo/target/release/deps/hotspot-1e7c2945b4589129: crates/bench/src/bin/hotspot.rs

crates/bench/src/bin/hotspot.rs:
