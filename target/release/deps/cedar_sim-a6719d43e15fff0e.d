/root/repo/target/release/deps/cedar_sim-a6719d43e15fff0e.d: crates/sim/src/lib.rs crates/sim/src/outbox.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libcedar_sim-a6719d43e15fff0e.rlib: crates/sim/src/lib.rs crates/sim/src/outbox.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libcedar_sim-a6719d43e15fff0e.rmeta: crates/sim/src/lib.rs crates/sim/src/outbox.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/outbox.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
