/root/repo/target/release/deps/fig7-284cd8bd9c38a9d3.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-284cd8bd9c38a9d3: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
