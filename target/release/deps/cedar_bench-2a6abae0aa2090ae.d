/root/repo/target/release/deps/cedar_bench-2a6abae0aa2090ae.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/cedar_bench-2a6abae0aa2090ae: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
