/root/repo/target/release/deps/hotspot-ebd45ea913c36273.d: crates/bench/src/bin/hotspot.rs

/root/repo/target/release/deps/hotspot-ebd45ea913c36273: crates/bench/src/bin/hotspot.rs

crates/bench/src/bin/hotspot.rs:
