/root/repo/target/release/deps/table3-c5c18ad1a7357317.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-c5c18ad1a7357317: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
