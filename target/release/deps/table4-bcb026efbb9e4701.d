/root/repo/target/release/deps/table4-bcb026efbb9e4701.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-bcb026efbb9e4701: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
