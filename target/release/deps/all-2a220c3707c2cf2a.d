/root/repo/target/release/deps/all-2a220c3707c2cf2a.d: crates/bench/src/bin/all.rs

/root/repo/target/release/deps/all-2a220c3707c2cf2a: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
