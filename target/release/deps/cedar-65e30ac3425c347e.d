/root/repo/target/release/deps/cedar-65e30ac3425c347e.d: src/lib.rs

/root/repo/target/release/deps/cedar-65e30ac3425c347e: src/lib.rs

src/lib.rs:
