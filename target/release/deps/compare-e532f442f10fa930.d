/root/repo/target/release/deps/compare-e532f442f10fa930.d: crates/bench/src/bin/compare.rs

/root/repo/target/release/deps/compare-e532f442f10fa930: crates/bench/src/bin/compare.rs

crates/bench/src/bin/compare.rs:
