/root/repo/target/release/deps/golden-01d961b57fbea715.d: tests/golden.rs

/root/repo/target/release/deps/golden-01d961b57fbea715: tests/golden.rs

tests/golden.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
