/root/repo/target/release/deps/probe-560a95139e5035aa.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-560a95139e5035aa: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
