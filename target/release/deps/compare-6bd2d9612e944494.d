/root/repo/target/release/deps/compare-6bd2d9612e944494.d: crates/bench/src/bin/compare.rs

/root/repo/target/release/deps/compare-6bd2d9612e944494: crates/bench/src/bin/compare.rs

crates/bench/src/bin/compare.rs:
