/root/repo/target/release/deps/fig5-72bd561980884ed8.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-72bd561980884ed8: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
