/root/repo/target/release/deps/probe-84670d1a4e20a471.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-84670d1a4e20a471: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
