/root/repo/target/release/deps/components-559ae8bde8b76ba9.d: crates/bench/benches/components.rs

/root/repo/target/release/deps/components-559ae8bde8b76ba9: crates/bench/benches/components.rs

crates/bench/benches/components.rs:
