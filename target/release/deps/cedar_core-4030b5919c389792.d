/root/repo/target/release/deps/cedar_core-4030b5919c389792.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/machine/mod.rs crates/core/src/machine/exec.rs crates/core/src/machine/os.rs crates/core/src/machine/state.rs crates/core/src/methodology/mod.rs crates/core/src/methodology/conc.rs crates/core/src/methodology/contention.rs crates/core/src/metrics.rs crates/core/src/pool.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/run.rs crates/core/src/suite.rs

/root/repo/target/release/deps/libcedar_core-4030b5919c389792.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/machine/mod.rs crates/core/src/machine/exec.rs crates/core/src/machine/os.rs crates/core/src/machine/state.rs crates/core/src/methodology/mod.rs crates/core/src/methodology/conc.rs crates/core/src/methodology/contention.rs crates/core/src/metrics.rs crates/core/src/pool.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/run.rs crates/core/src/suite.rs

/root/repo/target/release/deps/libcedar_core-4030b5919c389792.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/events.rs crates/core/src/layout.rs crates/core/src/machine/mod.rs crates/core/src/machine/exec.rs crates/core/src/machine/os.rs crates/core/src/machine/state.rs crates/core/src/methodology/mod.rs crates/core/src/methodology/conc.rs crates/core/src/methodology/contention.rs crates/core/src/metrics.rs crates/core/src/pool.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/run.rs crates/core/src/suite.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/events.rs:
crates/core/src/layout.rs:
crates/core/src/machine/mod.rs:
crates/core/src/machine/exec.rs:
crates/core/src/machine/os.rs:
crates/core/src/machine/state.rs:
crates/core/src/methodology/mod.rs:
crates/core/src/methodology/conc.rs:
crates/core/src/methodology/contention.rs:
crates/core/src/metrics.rs:
crates/core/src/pool.rs:
crates/core/src/program.rs:
crates/core/src/result.rs:
crates/core/src/run.rs:
crates/core/src/suite.rs:
