/root/repo/target/release/deps/machine-443a52ca664d9fd7.d: crates/bench/benches/machine.rs

/root/repo/target/release/deps/machine-443a52ca664d9fd7: crates/bench/benches/machine.rs

crates/bench/benches/machine.rs:
