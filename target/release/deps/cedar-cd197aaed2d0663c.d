/root/repo/target/release/deps/cedar-cd197aaed2d0663c.d: src/lib.rs

/root/repo/target/release/deps/libcedar-cd197aaed2d0663c.rlib: src/lib.rs

/root/repo/target/release/deps/libcedar-cd197aaed2d0663c.rmeta: src/lib.rs

src/lib.rs:
