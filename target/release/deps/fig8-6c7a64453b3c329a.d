/root/repo/target/release/deps/fig8-6c7a64453b3c329a.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-6c7a64453b3c329a: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
