/root/repo/target/release/deps/all-84043cbd02363e90.d: crates/bench/src/bin/all.rs

/root/repo/target/release/deps/all-84043cbd02363e90: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
