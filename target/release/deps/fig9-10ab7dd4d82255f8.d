/root/repo/target/release/deps/fig9-10ab7dd4d82255f8.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-10ab7dd4d82255f8: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
