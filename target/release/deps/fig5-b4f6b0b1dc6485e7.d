/root/repo/target/release/deps/fig5-b4f6b0b1dc6485e7.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-b4f6b0b1dc6485e7: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
