/root/repo/target/release/deps/table3-37894c88e73df163.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-37894c88e73df163: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
