/root/repo/target/release/deps/table1-bc99e14d77a3d310.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-bc99e14d77a3d310: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
