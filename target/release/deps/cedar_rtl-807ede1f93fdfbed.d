/root/repo/target/release/deps/cedar_rtl-807ede1f93fdfbed.d: crates/rtl/src/lib.rs crates/rtl/src/activity.rs crates/rtl/src/barrier.rs crates/rtl/src/combining.rs crates/rtl/src/config.rs crates/rtl/src/doacross.rs crates/rtl/src/loops.rs crates/rtl/src/sched.rs crates/rtl/src/words.rs

/root/repo/target/release/deps/libcedar_rtl-807ede1f93fdfbed.rlib: crates/rtl/src/lib.rs crates/rtl/src/activity.rs crates/rtl/src/barrier.rs crates/rtl/src/combining.rs crates/rtl/src/config.rs crates/rtl/src/doacross.rs crates/rtl/src/loops.rs crates/rtl/src/sched.rs crates/rtl/src/words.rs

/root/repo/target/release/deps/libcedar_rtl-807ede1f93fdfbed.rmeta: crates/rtl/src/lib.rs crates/rtl/src/activity.rs crates/rtl/src/barrier.rs crates/rtl/src/combining.rs crates/rtl/src/config.rs crates/rtl/src/doacross.rs crates/rtl/src/loops.rs crates/rtl/src/sched.rs crates/rtl/src/words.rs

crates/rtl/src/lib.rs:
crates/rtl/src/activity.rs:
crates/rtl/src/barrier.rs:
crates/rtl/src/combining.rs:
crates/rtl/src/config.rs:
crates/rtl/src/doacross.rs:
crates/rtl/src/loops.rs:
crates/rtl/src/sched.rs:
crates/rtl/src/words.rs:
