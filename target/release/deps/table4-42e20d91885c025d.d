/root/repo/target/release/deps/table4-42e20d91885c025d.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-42e20d91885c025d: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
