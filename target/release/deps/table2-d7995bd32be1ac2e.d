/root/repo/target/release/deps/table2-d7995bd32be1ac2e.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-d7995bd32be1ac2e: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
