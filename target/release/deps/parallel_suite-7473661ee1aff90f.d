/root/repo/target/release/deps/parallel_suite-7473661ee1aff90f.d: tests/parallel_suite.rs

/root/repo/target/release/deps/parallel_suite-7473661ee1aff90f: tests/parallel_suite.rs

tests/parallel_suite.rs:
