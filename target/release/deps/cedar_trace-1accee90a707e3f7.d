/root/repo/target/release/deps/cedar_trace-1accee90a707e3f7.d: crates/trace/src/lib.rs crates/trace/src/breakdown.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/hpm.rs crates/trace/src/intervals.rs crates/trace/src/qmon.rs crates/trace/src/statfx.rs

/root/repo/target/release/deps/libcedar_trace-1accee90a707e3f7.rlib: crates/trace/src/lib.rs crates/trace/src/breakdown.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/hpm.rs crates/trace/src/intervals.rs crates/trace/src/qmon.rs crates/trace/src/statfx.rs

/root/repo/target/release/deps/libcedar_trace-1accee90a707e3f7.rmeta: crates/trace/src/lib.rs crates/trace/src/breakdown.rs crates/trace/src/event.rs crates/trace/src/export.rs crates/trace/src/hpm.rs crates/trace/src/intervals.rs crates/trace/src/qmon.rs crates/trace/src/statfx.rs

crates/trace/src/lib.rs:
crates/trace/src/breakdown.rs:
crates/trace/src/event.rs:
crates/trace/src/export.rs:
crates/trace/src/hpm.rs:
crates/trace/src/intervals.rs:
crates/trace/src/qmon.rs:
crates/trace/src/statfx.rs:
