/root/repo/target/release/deps/table1-55eb119cab142354.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-55eb119cab142354: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
