/root/repo/target/release/deps/cedar_bench-54a0371519b89179.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libcedar_bench-54a0371519b89179.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libcedar_bench-54a0371519b89179.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
