/root/repo/target/release/deps/fig9-3b8552ca7ea5899f.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-3b8552ca7ea5899f: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
