/root/repo/target/release/deps/cedar_report-8b6ad9e5b7b7dac2.d: crates/report/src/lib.rs crates/report/src/csv.rs crates/report/src/figures.rs crates/report/src/golden.rs crates/report/src/paper.rs crates/report/src/table.rs crates/report/src/tables.rs

/root/repo/target/release/deps/libcedar_report-8b6ad9e5b7b7dac2.rlib: crates/report/src/lib.rs crates/report/src/csv.rs crates/report/src/figures.rs crates/report/src/golden.rs crates/report/src/paper.rs crates/report/src/table.rs crates/report/src/tables.rs

/root/repo/target/release/deps/libcedar_report-8b6ad9e5b7b7dac2.rmeta: crates/report/src/lib.rs crates/report/src/csv.rs crates/report/src/figures.rs crates/report/src/golden.rs crates/report/src/paper.rs crates/report/src/table.rs crates/report/src/tables.rs

crates/report/src/lib.rs:
crates/report/src/csv.rs:
crates/report/src/figures.rs:
crates/report/src/golden.rs:
crates/report/src/paper.rs:
crates/report/src/table.rs:
crates/report/src/tables.rs:
