/root/repo/target/release/deps/combining-843b035f59a72179.d: crates/bench/src/bin/combining.rs

/root/repo/target/release/deps/combining-843b035f59a72179: crates/bench/src/bin/combining.rs

crates/bench/src/bin/combining.rs:
