/root/repo/target/release/deps/sweep-d1e76166e0882105.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-d1e76166e0882105: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
