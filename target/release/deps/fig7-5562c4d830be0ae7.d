/root/repo/target/release/deps/fig7-5562c4d830be0ae7.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-5562c4d830be0ae7: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
