/root/repo/target/release/deps/ablation-8c958db4bd37cc92.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-8c958db4bd37cc92: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
