/root/repo/target/release/deps/cedar_hw-59c8381514f70042.d: crates/hw/src/lib.rs crates/hw/src/addr.rs crates/hw/src/analytic.rs crates/hw/src/cache.rs crates/hw/src/cbus.rs crates/hw/src/ce.rs crates/hw/src/config.rs crates/hw/src/gmem.rs crates/hw/src/module.rs crates/hw/src/net.rs crates/hw/src/packet.rs crates/hw/src/route.rs crates/hw/src/switch.rs crates/hw/src/topology.rs crates/hw/src/vector.rs

/root/repo/target/release/deps/libcedar_hw-59c8381514f70042.rlib: crates/hw/src/lib.rs crates/hw/src/addr.rs crates/hw/src/analytic.rs crates/hw/src/cache.rs crates/hw/src/cbus.rs crates/hw/src/ce.rs crates/hw/src/config.rs crates/hw/src/gmem.rs crates/hw/src/module.rs crates/hw/src/net.rs crates/hw/src/packet.rs crates/hw/src/route.rs crates/hw/src/switch.rs crates/hw/src/topology.rs crates/hw/src/vector.rs

/root/repo/target/release/deps/libcedar_hw-59c8381514f70042.rmeta: crates/hw/src/lib.rs crates/hw/src/addr.rs crates/hw/src/analytic.rs crates/hw/src/cache.rs crates/hw/src/cbus.rs crates/hw/src/ce.rs crates/hw/src/config.rs crates/hw/src/gmem.rs crates/hw/src/module.rs crates/hw/src/net.rs crates/hw/src/packet.rs crates/hw/src/route.rs crates/hw/src/switch.rs crates/hw/src/topology.rs crates/hw/src/vector.rs

crates/hw/src/lib.rs:
crates/hw/src/addr.rs:
crates/hw/src/analytic.rs:
crates/hw/src/cache.rs:
crates/hw/src/cbus.rs:
crates/hw/src/ce.rs:
crates/hw/src/config.rs:
crates/hw/src/gmem.rs:
crates/hw/src/module.rs:
crates/hw/src/net.rs:
crates/hw/src/packet.rs:
crates/hw/src/route.rs:
crates/hw/src/switch.rs:
crates/hw/src/topology.rs:
crates/hw/src/vector.rs:
