/root/repo/target/release/deps/paper_bands-c8210bdc30864efc.d: tests/paper_bands.rs

/root/repo/target/release/deps/paper_bands-c8210bdc30864efc: tests/paper_bands.rs

tests/paper_bands.rs:
