/root/repo/target/release/deps/fig6-fde73fee7a47c8c3.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-fde73fee7a47c8c3: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
