/root/repo/target/release/deps/fig8-5399ca829be92efa.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-5399ca829be92efa: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
