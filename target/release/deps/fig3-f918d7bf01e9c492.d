/root/repo/target/release/deps/fig3-f918d7bf01e9c492.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-f918d7bf01e9c492: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
