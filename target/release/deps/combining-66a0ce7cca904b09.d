/root/repo/target/release/deps/combining-66a0ce7cca904b09.d: crates/bench/src/bin/combining.rs

/root/repo/target/release/deps/combining-66a0ce7cca904b09: crates/bench/src/bin/combining.rs

crates/bench/src/bin/combining.rs:
