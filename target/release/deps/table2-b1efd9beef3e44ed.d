/root/repo/target/release/deps/table2-b1efd9beef3e44ed.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-b1efd9beef3e44ed: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
