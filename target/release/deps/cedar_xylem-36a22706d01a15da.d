/root/repo/target/release/deps/cedar_xylem-36a22706d01a15da.d: crates/xylem/src/lib.rs crates/xylem/src/accounting.rs crates/xylem/src/background.rs crates/xylem/src/config.rs crates/xylem/src/daemon.rs crates/xylem/src/locks.rs crates/xylem/src/syscall.rs crates/xylem/src/vm.rs

/root/repo/target/release/deps/libcedar_xylem-36a22706d01a15da.rlib: crates/xylem/src/lib.rs crates/xylem/src/accounting.rs crates/xylem/src/background.rs crates/xylem/src/config.rs crates/xylem/src/daemon.rs crates/xylem/src/locks.rs crates/xylem/src/syscall.rs crates/xylem/src/vm.rs

/root/repo/target/release/deps/libcedar_xylem-36a22706d01a15da.rmeta: crates/xylem/src/lib.rs crates/xylem/src/accounting.rs crates/xylem/src/background.rs crates/xylem/src/config.rs crates/xylem/src/daemon.rs crates/xylem/src/locks.rs crates/xylem/src/syscall.rs crates/xylem/src/vm.rs

crates/xylem/src/lib.rs:
crates/xylem/src/accounting.rs:
crates/xylem/src/background.rs:
crates/xylem/src/config.rs:
crates/xylem/src/daemon.rs:
crates/xylem/src/locks.rs:
crates/xylem/src/syscall.rs:
crates/xylem/src/vm.rs:
