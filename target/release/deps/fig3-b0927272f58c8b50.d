/root/repo/target/release/deps/fig3-b0927272f58c8b50.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-b0927272f58c8b50: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
