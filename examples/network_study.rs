//! Network study: measured round-trip latency vs the analytic M/D/1
//! prediction, as offered load sweeps toward module saturation.
//!
//! The `cedar-hw` memory system is driven directly (no OS or runtime)
//! with uniform random word traffic; the latency histogram's quantiles
//! show the distribution fattening as load approaches the 8 words/cycle
//! module bound.
//!
//! ```sh
//! cargo run --release --example network_study
//! ```

use cedar::hw::analytic;
use cedar::hw::{CeId, GlobalAddr, GlobalMemorySystem, GmemEvent, GmemOutput, MemOp, NetConfig};
use cedar::sim::{Cycles, EventQueue, Outbox, SplitMix64};

/// Drives uniform random traffic at ~`rate` words/cycle from 32 CEs and
/// returns (mean measured RTT, p50 bound, p99 bound).
fn measure(rate: f64) -> (f64, u64, u64) {
    let cfg = NetConfig::cedar();
    let mut sys = GlobalMemorySystem::new(cfg);
    let mut q: EventQueue<GmemEvent> = EventQueue::new();
    let mut out: Outbox<GmemEvent> = Outbox::new();
    let mut rng = SplitMix64::new(7);
    let n_ces = 32u64;
    let mean_gap = (n_ces as f64 / rate).max(1.0) as u64;
    let per_ce = 400u64;
    let mut requests: Vec<(u64, u16, u64)> = Vec::new();
    for ce in 0..n_ces {
        let mut t = rng.next_below(mean_gap.max(2));
        for _ in 0..per_ce {
            requests.push((t, ce as u16, rng.next_below(1 << 20) * 8));
            t += 1 + rng.next_below(2 * mean_gap - 1);
        }
    }
    requests.sort_unstable();
    for (t, ce, addr) in requests {
        sys.inject(CeId(ce), GlobalAddr(addr), MemOp::Read, Cycles(t), &mut out);
        out.flush_into(Cycles(t), &mut q);
    }
    let mut total_rtt = 0u64;
    let mut count = 0u64;
    while let Some((now, ev)) = q.pop() {
        if let Some(GmemOutput::Deliver(resp)) = sys.handle(ev, now, &mut out) {
            total_rtt += now.0 - resp.injected_at;
            count += 1;
        }
        out.flush_into(now, &mut q);
    }
    let stats = sys.stats();
    let p50 = stats.latency.quantile_bound(0.5).map(|c| c.0).unwrap_or(0);
    let p99 = stats.latency.quantile_bound(0.99).map(|c| c.0).unwrap_or(0);
    (total_rtt as f64 / count.max(1) as f64, p50, p99)
}

fn main() {
    let cfg = NetConfig::cedar();
    println!(
        "uniform random word traffic from 32 CEs; module saturation at {} w/cy\n",
        analytic::module_saturation_rate(&cfg)
    );
    println!(
        "{:>10} | {:>12} | {:>12} | {:>8} | {:>8}",
        "load w/cy", "RTT meas.", "RTT M/D/1", "p50 <=", "p99 <="
    );
    println!("{}", "-".repeat(62));
    for rate in [0.5, 1.0, 2.0, 4.0, 6.0, 7.0] {
        let (measured, p50, p99) = measure(rate);
        let predicted = analytic::round_trip(&cfg, rate, 4);
        println!(
            "{:>10.1} | {:>12.1} | {:>12.1} | {:>8} | {:>8}",
            rate, measured, predicted, p50, p99
        );
    }
    println!();
    println!("Mean latencies track the M/D/1 prediction; the p99 bound fattens");
    println!("much faster — queueing tails are what vector bursts feel first,");
    println!("which is why contention shows up in Table 4 well before saturation.");
}
