//! Quickstart: run one Perfect Benchmark application on the full
//! 4-cluster Cedar and print the paper's headline overheads.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cedar::apps::app_by_name;
use cedar::core::methodology::{contention_overhead, parallel_loop_concurrency};
use cedar::core::{Experiment, SimConfig};
use cedar::hw::Configuration;
use cedar::trace::UserBucket;

fn main() {
    // FLO52 at a reduced time-step count so the example finishes in a
    // couple of seconds; drop `.shrunk(2)` for the publication scale.
    let app = app_by_name("FLO52")
        .expect("FLO52 is in the suite")
        .shrunk(2);

    println!("running {} on 1 processor (baseline)...", app.name);
    let baseline = Experiment::new(app.clone(), SimConfig::cedar(Configuration::P1)).run();

    println!(
        "running {} on the 4-cluster/32-processor Cedar...",
        app.name
    );
    let run = Experiment::new(app, SimConfig::cedar(Configuration::P32)).run();

    println!();
    println!(
        "completion time : {:.4}s (scaled seconds)",
        run.ct_seconds()
    );
    println!(
        "speedup         : {:.2}x over 1 processor",
        run.speedup_over(&baseline)
    );
    println!(
        "avg concurrency : {:.2} of 32 processors",
        run.total_concurrency()
    );
    println!();

    // The three overhead families the paper characterizes:
    println!(
        "operating-system overhead      : {:>5.1}% of completion time",
        run.os_overhead_fraction() * 100.0
    );
    println!(
        "parallelization overhead (main): {:>5.1}% of completion time",
        run.main_parallelization_fraction() * 100.0
    );
    let contention = contention_overhead(&baseline, &run);
    println!(
        "GM & network contention        : {:>5.1}% of completion time",
        contention.overhead_pct
    );
    println!();

    // A peek into the Figure 5 user-time buckets for the main task:
    let b = run.main_breakdown();
    for bucket in [
        UserBucket::IterExec,
        UserBucket::Serial,
        UserBucket::BarrierWait,
        UserBucket::PickupSdoall,
    ] {
        println!(
            "  main task {:<18}: {:>5.1}%",
            bucket.label(),
            b.fraction(bucket, run.completion_time) * 100.0
        );
    }
    let helpers = run.helper_breakdowns();
    if let Some(h) = helpers.first() {
        println!(
            "  helper-task wait for work : {:>5.1}%",
            h.fraction(UserBucket::HelperWait, run.completion_time) * 100.0
        );
    }

    // And the §7 parallel-loop concurrency per cluster:
    let cc = parallel_loop_concurrency(&run);
    let pc: Vec<String> = cc.iter().map(|c| format!("{:.2}", c.par_concurr)).collect();
    println!("  parallel-loop concurrency : {}", pc.join(", "));
}
