//! Authoring a custom loop-parallel application with the `AppBuilder`
//! DSL, and comparing the two Cedar Fortran constructs on it.
//!
//! §6 observes that "the xdoalls were often used for convenience, since
//! it is easier to convert a loop into an xdoall than to stripmine it
//! into the hierarchical sdoall/cdoall nest" — and that the convenience
//! costs up to 10% of completion time at 32 processors. This example
//! writes the *same* computation both ways and measures the difference.
//!
//! ```sh
//! cargo run --release --example custom_app
//! ```

use cedar::apps::{AccessPattern, AppBuilder, BodySpec};
use cedar::core::{Experiment, SimConfig};
use cedar::hw::Configuration;
use cedar::trace::UserBucket;

fn main() {
    // A stencil relaxation: 40 sweeps of 128 rows, each row being ~1200
    // cycles of arithmetic over a 16-dword slice of the grid.
    let body = || {
        BodySpec::compute(1_200)
            .with_jitter(6)
            .with_access(AccessPattern::sweep(0, 16))
    };

    // Flat version: one xdoall over all 128 rows; every CE competes for
    // rows on the global iteration lock.
    let flat = AppBuilder::new("STENCIL-XDOALL")
        .array("grid", 512 * 1024)
        .repeat(40, |b| b.serial(2_000).xdoall(128, body()))
        .build();

    // Hierarchical version: the same 128 rows strip-mined into 16 outer
    // chunks of 8 rows; only one processor per cluster touches the
    // global lock, and rows spread over the cluster on the concurrency
    // bus.
    let hierarchical = AppBuilder::new("STENCIL-SDOALL")
        .array("grid", 512 * 1024)
        .repeat(40, |b| b.serial(2_000).sdoall(16, 8, body()))
        .build();

    println!("same computation, both constructs, on the 32-processor Cedar:\n");
    for app in [flat, hierarchical] {
        let name = app.name;
        let run = Experiment::new(app, SimConfig::cedar(Configuration::P32)).run();
        let ct = run.completion_time;
        let b = run.main_breakdown();
        println!("{name}:");
        println!("  completion time        : {:.4}s", run.ct_seconds());
        println!(
            "  loop distribution cost : {:.1}% of CT (xdoall) + {:.1}% (sdoall)",
            b.fraction(UserBucket::PickupXdoall, ct) * 100.0,
            b.fraction(UserBucket::PickupSdoall, ct) * 100.0,
        );
        println!(
            "  parallelization overhead (main): {:.1}% of CT",
            run.main_parallelization_fraction() * 100.0
        );
        let max_sync = run
            .gmem
            .module_sync_requests
            .iter()
            .max()
            .copied()
            .unwrap_or(0);
        println!("  sync ops on hottest memory module: {max_sync} (lock traffic)\n");
    }
    println!("The hierarchical construct exploits the clustering hardware during");
    println!("work distribution; the flat construct treats Cedar as 32 independent");
    println!("processors and pays for it at the iteration lock (§6).");
}
