//! Scaling study: sweep one application across all five Cedar
//! configurations and print Table 1-style rows plus the overhead trend —
//! the paper's §3 view for a single code.
//!
//! ```sh
//! cargo run --release --example scaling_study [APP] [SHRINK]
//! ```
//!
//! `APP` is one of FLO52, ARC2D, MDG, OCEAN, ADM (default MDG);
//! `SHRINK` divides the time-step count for a quicker pass (default 4).

use cedar::apps::app_by_name;
use cedar::core::methodology::contention_overhead;
use cedar::core::{Experiment, SimConfig};
use cedar::hw::Configuration;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "MDG".into());
    let shrink: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let app = app_by_name(&name)
        .unwrap_or_else(|| panic!("unknown application {name:?}"))
        .shrunk(shrink);

    println!(
        "{:>8} | {:>10} | {:>8} | {:>8} | {:>6} | {:>7} | {:>8}",
        "config", "CT (s)", "speedup", "concurr", "OS %", "par-ov %", "cont %"
    );
    println!("{}", "-".repeat(72));

    let mut baseline = None;
    for c in Configuration::ALL {
        let run = Experiment::new(app.clone(), SimConfig::cedar(c)).run();
        let (speedup, cont) = match &baseline {
            None => (1.0, 0.0),
            Some(base) => (
                run.speedup_over(base),
                contention_overhead(base, &run).overhead_pct,
            ),
        };
        println!(
            "{:>8} | {:>10.4} | {:>8.2} | {:>8.2} | {:>6.1} | {:>7.1} | {:>8.1}",
            c.label(),
            run.ct_seconds(),
            speedup,
            run.total_concurrency(),
            run.os_overhead_fraction() * 100.0,
            run.main_parallelization_fraction() * 100.0,
            cont,
        );
        if c == Configuration::P1 {
            baseline = Some(run);
        }
    }
    println!();
    println!("Note: speedups stay below the average concurrency — part of every");
    println!("active processor's time goes to the overheads above (§3.1 result 2).");
}
