//! Beyond the paper: the same overheads on a *multiprogrammed* Cedar.
//!
//! The paper measures "a dedicated, single user setting" (§3), but Xylem
//! is a multitasking OS. This example re-runs MDG on the 32-processor
//! machine while a competing job steals gang quanta from every cluster,
//! and shows what sharing does to completion time, speedup and the
//! overhead decomposition.
//!
//! ```sh
//! cargo run --release --example loaded_system
//! ```

use cedar::apps::app_by_name;
use cedar::core::{Experiment, SimConfig};
use cedar::hw::Configuration;
use cedar::xylem::BackgroundLoad;

fn main() {
    let app = app_by_name("MDG").expect("MDG in suite").shrunk(3);
    let base = Experiment::new(app.clone(), SimConfig::cedar(Configuration::P1)).run();

    println!(
        "{:>10} | {:>10} | {:>8} | {:>7} | {:>8} | {:>10}",
        "load", "CT (s)", "speedup", "OS %", "ctx %", "stolen %"
    );
    println!("{}", "-".repeat(66));
    for (name, background) in [
        ("dedicated", None),
        ("light", Some(BackgroundLoad::light())),
        ("heavy", Some(BackgroundLoad::heavy())),
    ] {
        let mut cfg = SimConfig::cedar(Configuration::P32);
        if let Some(load) = background {
            cfg = cfg.with_background(load);
        }
        let run = Experiment::new(app.clone(), cfg).run();
        let ctx = run
            .os_activity(cedar::xylem::OsActivity::Ctx)
            .fraction_of(run.completion_time);
        // Stolen time accumulates across all four clusters; report it as
        // a fraction of the machine's total cluster-time.
        let clusters = run.concurrency.len() as u64;
        let stolen_pct = run.background_stolen.0 as f64
            / (run.completion_time.0 * clusters).max(1) as f64
            * 100.0;
        println!(
            "{:>10} | {:>10.4} | {:>8.2} | {:>7.1} | {:>8.2} | {:>10.1}",
            name,
            run.ct_seconds(),
            run.speedup_over(&base),
            run.os_overhead_fraction() * 100.0,
            ctx * 100.0,
            stolen_pct,
        );
    }
    println!();
    println!("The competing job's quanta stretch completion time and double the");
    println!("context-switch overhead; the parallelization and contention");
    println!("overheads keep their dedicated-run shares of the remaining time.");
}
