//! Hot-spot contention (Pfister & Norton [15]) and the clustering
//! argument.
//!
//! §6 asks: *"was clustering a good idea?"* — with 32 independent
//! processors every loop barrier would synchronize 32 tasks on one
//! global-memory word, creating a hot spot in the multistage network;
//! clustering localizes synchronization so only one processor per
//! cluster touches global memory. This example hammers a single lock
//! word from every active CE and shows the hot module absorbing the
//! traffic while round-trip latency balloons.
//!
//! ```sh
//! cargo run --release --example hotspot
//! ```

use cedar::apps::synthetic;
use cedar::core::{Experiment, SimConfig};
use cedar::hw::Configuration;

fn main() {
    println!("hot-spot experiment: empty-body xdoall loops (pure lock traffic)\n");
    println!(
        "{:>8} | {:>10} | {:>12} | {:>14} | {:>12}",
        "config", "CT (s)", "sync on hot", "hot share %", "mean queue/pkt"
    );
    println!("{}", "-".repeat(68));
    for c in Configuration::ALL {
        let app = synthetic::hotspot(4, 256);
        let run = Experiment::new(app, SimConfig::cedar(c)).run();
        let total: u64 = run.gmem.module_sync_requests.iter().sum();
        let hot = run
            .gmem
            .module_sync_requests
            .iter()
            .max()
            .copied()
            .unwrap_or(0);
        println!(
            "{:>8} | {:>10.4} | {:>12} | {:>14.1} | {:>12.2}",
            c.label(),
            run.ct_seconds(),
            hot,
            hot as f64 / total.max(1) as f64 * 100.0,
            run.gmem.mean_queued_per_packet(),
        );
    }
    println!();
    println!("All synchronization concentrates on the lock word's memory module;");
    println!("per-packet queueing grows with the processor count. The hierarchical");
    println!("construct avoids this by sending one processor per cluster (§6) —");
    println!("compare with `cargo run --release --example custom_app`.");
}
