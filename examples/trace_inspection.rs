//! Working with the raw `cedarhpm` trace.
//!
//! The paper's methodology is trace-driven: instrumented events (event
//! id, 50 ns timestamp, processor id) are collected by a non-intrusive
//! hardware monitor and analysed off-line (§4). This example keeps the
//! trace of a small run, reconstructs iteration intervals with the
//! pairing analysis, and prints a per-processor activity profile.
//!
//! ```sh
//! cargo run --release --example trace_inspection
//! ```

use std::collections::BTreeMap;

use cedar::apps::synthetic;
use cedar::core::{Experiment, SimConfig};
use cedar::hw::Configuration;
use cedar::trace::{pair_intervals, TraceEventId};
use cedar_sim::Cycles;

fn main() {
    let app = synthetic::uniform_sdoall(2, 2, 8, 16, 400, 8);
    let cfg = SimConfig::cedar(Configuration::P8).with_trace();
    let run = Experiment::new(app, cfg).run();
    let trace = run.trace.as_ref().expect("trace was kept");

    println!(
        "trace contains {} events over {:.4}s",
        trace.len(),
        run.ct_seconds()
    );

    // Reconstruct iteration-body intervals, exactly as the off-line
    // analysis of the off-loaded trace buffers would.
    let iters = pair_intervals(trace, TraceEventId::IterStart, TraceEventId::IterEnd);
    println!("reconstructed {} iteration intervals", iters.len());

    let mut per_ce: BTreeMap<u16, (u64, Cycles)> = BTreeMap::new();
    for iv in &iters {
        let e = per_ce.entry(iv.ce.0).or_insert((0, Cycles::ZERO));
        e.0 += 1;
        e.1 += iv.duration();
    }
    println!("\nper-processor iteration profile:");
    println!(
        "{:>6} | {:>6} | {:>12} | {:>10}",
        "CE", "iters", "busy (cy)", "% of CT"
    );
    println!("{}", "-".repeat(44));
    for (ce, (count, busy)) in &per_ce {
        println!(
            "{:>6} | {:>6} | {:>12} | {:>10.1}",
            ce,
            count,
            busy.0,
            busy.fraction_of(run.completion_time) * 100.0
        );
    }

    // Show the self-scheduling in action: the first few pick-up episodes.
    let picks = pair_intervals(
        trace,
        TraceEventId::PickIterEnter,
        TraceEventId::PickIterExit,
    );
    println!("\nfirst five iteration pick-ups (self-scheduling on the global lock):");
    for iv in picks.iter().take(5) {
        println!(
            "  CE{:<2} picked an iteration in {} cycles (at t={} hpm ticks)",
            iv.ce.0,
            iv.duration().0,
            iv.start.0
        );
    }

    // Barrier behaviour of the main task.
    let barriers = pair_intervals(
        trace,
        TraceEventId::FinishBarrierEnter,
        TraceEventId::FinishBarrierExit,
    );
    let total_barrier: Cycles = barriers.iter().map(|b| b.duration()).sum();
    println!(
        "\nmain task spent {} cycles in {} finish-barrier episodes ({:.2}% of CT)",
        total_barrier.0,
        barriers.len(),
        total_barrier.fraction_of(run.completion_time) * 100.0
    );
}
