//! Env-path vs typed-path equivalence: configuring a campaign through
//! the `CEDAR_*` environment (parsed once by `RunOptions::from_env`)
//! must be indistinguishable from building the same `RunOptions` in
//! code — the same options value, byte-identical rendered tables, and a
//! byte-identical run manifest once the wall-clock-only fields are
//! masked. Checked under both schedulers.
//!
//! All environment manipulation lives in one `#[test]`: test threads
//! share the process environment, so a single test owning the variables
//! for its whole run avoids any cross-test race (the other test here is
//! pure).

use cedar::apps::{perfect_suite, AppSpec};
use cedar::core::suite::SuiteResult;
use cedar::hw::Configuration;
use cedar::obs::{RunOptions, TelemetryLevel};
use cedar::report::tables;
use cedar::sim::SchedKind;
use cedar_bench::manifest;

/// Reduced scale, matching the golden campaign's fixed factor.
const SHRINK: u32 = 16;

fn grid_apps() -> Vec<AppSpec> {
    perfect_suite()
        .into_iter()
        .map(|a| a.shrunk(SHRINK))
        .take(2)
        .collect()
}

/// Masks the manifest fields that legitimately vary run to run — the
/// `*_ns` wall-clock timings, the derived pool utilization, and the git
/// provenance line — leaving every deterministic byte in place.
fn mask_volatile(manifest: &str) -> String {
    let mut out = manifest.to_string();
    for key in [
        "wall_ns",
        "setup_ns",
        "run_ns",
        "breakdown_ns",
        "busy_ns",
        "idle_ns",
        "utilization",
        "git",
    ] {
        out = mask_key(&out, key);
    }
    out
}

/// Replaces every scalar value of `"key":` with `0`.
fn mask_key(s: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find(&pat) {
        let vstart = i + pat.len();
        out.push_str(&rest[..vstart]);
        let tail = &rest[vstart..];
        let end = tail.find([',', '}']).unwrap_or(tail.len());
        out.push('0');
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

#[test]
fn env_path_and_typed_path_are_equivalent_under_both_schedulers() {
    let apps = grid_apps();
    let configs = [Configuration::P1, Configuration::P8];

    for sched in [SchedKind::Calendar, SchedKind::Heap] {
        // Env path: the variables a user would export, parsed once.
        std::env::set_var("CEDAR_SCHED", sched.as_str());
        std::env::set_var("CEDAR_SHRINK", SHRINK.to_string());
        std::env::set_var("CEDAR_WORKERS", "2");
        std::env::set_var("CEDAR_OBS", "full");
        let from_env = RunOptions::from_env();
        for var in ["CEDAR_SCHED", "CEDAR_SHRINK", "CEDAR_WORKERS", "CEDAR_OBS"] {
            std::env::remove_var(var);
        }

        // Typed path: the same configuration, spelled in code.
        let typed = RunOptions::default()
            .with_scheduler(sched)
            .with_shrink(SHRINK)
            .with_workers(2)
            .with_telemetry(TelemetryLevel::Full);
        assert_eq!(from_env, typed, "options parse ({sched:?})");

        let suite_env = SuiteResult::run_parallel(&apps, &configs, &from_env)
            .expect("env-path campaign panicked");
        let suite_typed = SuiteResult::run_parallel(&apps, &configs, &typed)
            .expect("typed-path campaign panicked");

        // Rendered artifacts: byte-identical.
        assert_eq!(
            tables::table1(&suite_env),
            tables::table1(&suite_typed),
            "table1 bytes ({sched:?})"
        );
        assert_eq!(
            tables::table4(&suite_env),
            tables::table4(&suite_typed),
            "table4 bytes ({sched:?})"
        );

        // Run manifests: byte-identical modulo wall-clock and provenance.
        assert_eq!(
            mask_volatile(&manifest::manifest_json(&suite_env, &from_env)),
            mask_volatile(&manifest::manifest_json(&suite_typed, &typed)),
            "manifest bytes ({sched:?})"
        );

        // JSONL telemetry: same stream, line for line, once masked.
        assert_eq!(
            mask_volatile(&manifest::telemetry_jsonl(&suite_env)),
            mask_volatile(&manifest::telemetry_jsonl(&suite_typed)),
            "telemetry stream ({sched:?})"
        );
    }
}

#[test]
fn volatile_mask_only_touches_wall_clock_fields() {
    let s = r#"{"a":1,"run_ns":123,"x":{"busy_ns":9,"git":"v1-dirty"},"events_total":7}"#;
    assert_eq!(
        mask_volatile(s),
        r#"{"a":1,"run_ns":0,"x":{"busy_ns":0,"git":0},"events_total":7}"#
    );
}
