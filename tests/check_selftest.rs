//! Self-validation of the `cedar-check` harness: a checker is only
//! trustworthy if it demonstrably catches bugs, so this suite plants
//! one — [`Sabotage::InflateAttribution`] models a fault-accounting
//! recorder that undercounts delivered cycles by a large factor on
//! machines of at least `min_procs` processors — and asserts the whole
//! pipeline reacts correctly end to end:
//!
//! 1. the oracle registry flags the planted bug and *only* that bug,
//! 2. the delta-debugging shrinker converges, within its evaluation
//!    budget, to a minimal reproducer sitting exactly on the bug's
//!    machine-size boundary,
//! 3. the reproducer's replay token round-trips through the
//!    `CEDAR_CHECK_REPLAY` parser and re-checking the parsed case in a
//!    fresh harness reproduces the identical violation, and
//! 4. a clean harness finds nothing wrong with the same case.

use cedar::check::{shrink, CheckCase, CheckConfig, CheckOptions, Harness, OracleKind, Sabotage};
use cedar::hw::Configuration;

/// The planted defect only "affects" machines with ≥ 8 processors, so
/// the shrinker must stop at P8 — P4 runs are clean and cannot be part
/// of a reproducer.
const SABOTAGE: Sabotage = Sabotage::InflateAttribution {
    factor: 1_000,
    min_procs: 8,
};

fn sabotaged() -> Harness {
    Harness::new(CheckConfig {
        sabotage: Some(SABOTAGE),
        max_shrink_evals: 32,
        ..CheckConfig::default()
    })
}

#[test]
fn planted_bug_is_caught_shrunk_and_replayed() {
    let start = CheckCase {
        app: "MDG",
        configuration: Configuration::P16,
        fault_level: 2,
        shrink: 64,
        shuffle_seed: 0x5EED_CAFE,
    };

    // 1. The checker catches the planted bug, and blames only the
    // attribution oracle — the sabotage must not bleed into the seven
    // laws it does not break.
    let mut harness = sabotaged();
    let found = harness.check_case(&start);
    assert!(
        !found.is_empty(),
        "sabotaged harness failed to flag the planted accounting bug"
    );
    assert!(
        found
            .iter()
            .all(|v| v.oracle == OracleKind::FaultAttribution),
        "sabotage leaked into other oracles: {found:?}"
    );

    // 2. The shrinker reproduces the violation and converges within
    // its evaluation budget to a case on the bug's exact boundary.
    let outcome = shrink(&start, OracleKind::FaultAttribution, &mut harness);
    assert!(outcome.reproduced, "original case failed to re-violate");
    assert!(
        outcome.evals <= harness.config.max_shrink_evals,
        "shrinker overran its budget: {} > {}",
        outcome.evals,
        harness.config.max_shrink_evals
    );
    assert_eq!(
        harness.counters.get("check.shrink.evals"),
        outcome.evals as u64,
        "shrink evaluation counter out of sync with the outcome"
    );
    let minimal = outcome.minimal;
    assert_eq!(
        minimal.configuration,
        Configuration::P8,
        "minimal reproducer should sit on the sabotage's min_procs boundary"
    );
    assert_eq!(minimal.shuffle_seed, 0, "seed should shrink to zero");
    assert!(
        minimal.fault_level >= 1 && minimal.fault_level <= start.fault_level,
        "an unfaulted case cannot violate attribution: {minimal:?}"
    );

    // The minimal case still violates, and one step smaller does not —
    // the shrinker stopped at a true local minimum, not on its budget.
    assert!(
        !harness
            .check_oracle(&minimal, OracleKind::FaultAttribution)
            .is_empty(),
        "minimal reproducer does not reproduce"
    );
    let below_boundary = CheckCase {
        configuration: Configuration::P4,
        ..minimal
    };
    assert!(
        harness
            .check_oracle(&below_boundary, OracleKind::FaultAttribution)
            .is_empty(),
        "the planted bug does not affect machines below min_procs"
    );

    // 3. The replay token round-trips through the CEDAR_CHECK_REPLAY
    // parser, and two fresh harnesses given the parsed case report the
    // byte-identical violation — the reproducer is deterministic.
    let token = minimal.replay_token();
    let parsed = CheckOptions::parse(Some(&token))
        .unwrap_or_else(|e| panic!("replay token `{token}` failed to parse: {e}"))
        .replay
        .expect("token parses to a case");
    assert_eq!(parsed, minimal, "replay token round-trip changed the case");
    let details = |h: &mut Harness| -> Vec<String> {
        h.check_oracle(&parsed, OracleKind::FaultAttribution)
            .into_iter()
            .map(|v| v.detail)
            .collect()
    };
    let first = details(&mut sabotaged());
    let second = details(&mut sabotaged());
    assert!(!first.is_empty(), "replayed case does not violate");
    assert_eq!(first, second, "replayed violation is not deterministic");

    // 4. A clean harness holds the same case to the real oracle — the
    // planted defect, not the product, was the only thing wrong.
    let mut clean = Harness::new(CheckConfig::default());
    assert!(
        clean
            .check_oracle(&minimal, OracleKind::FaultAttribution)
            .is_empty(),
        "minimal reproducer violates even without sabotage"
    );
}
