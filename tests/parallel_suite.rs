//! The parallel suite runner must be a pure wall-clock optimization:
//! fanning the (application × configuration) grid across a worker pool
//! changes nothing about the measurements, for any worker count.

use cedar::apps::{perfect_suite, AppSpec};
use cedar::core::suite::SuiteResult;
use cedar::hw::Configuration;
use cedar::obs::RunOptions;
use cedar::report;

/// Campaign apps shrunk to a fixed factor so debug-build tests stay
/// fast. The factor must be identical everywhere the results are
/// compared (never profile-dependent).
fn grid_apps() -> Vec<AppSpec> {
    perfect_suite().into_iter().map(|a| a.shrunk(16)).collect()
}

/// Renders every paper artifact from a campaign — if two campaigns
/// produce the same bytes here, the measurement grids are identical in
/// every number any table or figure reports.
fn render_all(suite: &SuiteResult) -> String {
    format!(
        "{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}",
        report::tables::table1(suite),
        report::tables::table2(suite),
        report::tables::table3(suite),
        report::tables::table4(suite),
        report::figures::figure3(suite),
        report::figures::figures5to9(suite),
        report::csv::summary_csv(suite),
        report::csv::breakdown_csv(suite),
        report::csv::concurrency_csv(suite),
    )
}

#[test]
fn parallel_grid_is_byte_identical_to_sequential() {
    let apps = grid_apps();
    let sequential =
        SuiteResult::run_sequential(&apps, &Configuration::ALL, &RunOptions::default())
            .expect("sequential campaign");
    let parallel = SuiteResult::run_parallel(&apps, &Configuration::ALL, &RunOptions::default())
        .expect("no experiment panics");
    assert_eq!(
        render_all(&sequential),
        render_all(&parallel),
        "parallel runner must not change any measurement"
    );
    // Structural identity too: same apps, same configuration order.
    assert_eq!(sequential.apps.len(), parallel.apps.len());
    for (s, p) in sequential.apps.iter().zip(&parallel.apps) {
        assert_eq!(s.app, p.app);
        let sc: Vec<_> = s.runs.iter().map(|r| r.configuration).collect();
        let pc: Vec<_> = p.runs.iter().map(|r| r.configuration).collect();
        assert_eq!(sc, pc);
    }
}

#[test]
fn worker_count_does_not_change_the_flo52_p8_measurements() {
    // The satellite check: FLO52 on the 8-processor Cedar under 1, 2 and
    // 8 workers — identical cycle totals and overhead breakdowns.
    let apps: Vec<AppSpec> = grid_apps()
        .into_iter()
        .filter(|a| a.name == "FLO52")
        .collect();
    assert_eq!(apps.len(), 1);
    let runs: Vec<SuiteResult> = [1usize, 2, 8]
        .iter()
        .map(|&w| {
            let opts = RunOptions::default().with_workers(w);
            SuiteResult::run_parallel(&apps, &[Configuration::P8], &opts)
                .expect("no experiment panics")
        })
        .collect();
    let reference = runs[0].app("FLO52").run(Configuration::P8);
    for suite in &runs[1..] {
        let r = suite.app("FLO52").run(Configuration::P8);
        assert_eq!(r.completion_time, reference.completion_time, "Cycles total");
        assert_eq!(r.events, reference.events);
        assert_eq!(r.bodies, reference.bodies);
        assert_eq!(r.faults, reference.faults);
        // Overhead breakdowns, bucket by bucket.
        assert_eq!(r.breakdowns.len(), reference.breakdowns.len());
        for (a, b) in r.breakdowns.iter().zip(&reference.breakdowns) {
            assert_eq!(a.total(), b.total(), "user-time breakdown totals");
        }
        assert_eq!(
            r.os_overhead_fraction(),
            reference.os_overhead_fraction(),
            "OS overhead fraction"
        );
        assert_eq!(
            r.main_parallelization_fraction(),
            reference.main_parallelization_fraction(),
            "parallelization overhead fraction"
        );
    }
}

#[test]
fn oversubscribed_pool_matches_too() {
    // More workers than jobs must degrade to one job per worker.
    let apps: Vec<AppSpec> = grid_apps().into_iter().take(2).collect();
    let configs = [Configuration::P1, Configuration::P4];
    let seq = SuiteResult::run_sequential(&apps, &configs, &RunOptions::default())
        .expect("sequential campaign");
    let par = SuiteResult::run_parallel(&apps, &configs, &RunOptions::default().with_workers(64))
        .expect("no panics");
    for (s, p) in seq.apps.iter().zip(&par.apps) {
        assert_eq!(s.app, p.app);
        for (sr, pr) in s.runs.iter().zip(&p.runs) {
            assert_eq!(sr.configuration, pr.configuration);
            assert_eq!(sr.completion_time, pr.completion_time);
            assert_eq!(sr.events, pr.events);
            assert_eq!(sr.bodies, pr.bodies);
        }
    }
}
