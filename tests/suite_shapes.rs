//! Integration tests: the paper's headline qualitative results must hold
//! on a reduced-scale campaign.
//!
//! These exercise the full stack — workload models, runtime protocols,
//! OS model, network/memory contention and the measurement methodology —
//! through the public API.

use cedar::apps::{app_by_name, perfect_suite};
use cedar::core::methodology::{contention_overhead, parallel_loop_concurrency};
use cedar::core::{Experiment, RunResult, SimConfig};
use cedar::hw::Configuration;
use cedar::trace::UserBucket;

/// Debug builds simulate ~10x slower; shrink harder there.
fn shrink() -> u32 {
    if cfg!(debug_assertions) {
        12
    } else {
        4
    }
}

fn run(name: &str, c: Configuration) -> RunResult {
    let app = app_by_name(name).expect("suite app").shrunk(shrink());
    Experiment::new(app, SimConfig::cedar(c)).run()
}

#[test]
fn suite_has_the_papers_construct_usage() {
    let suite = perfect_suite();
    let by = |n: &str| suite.iter().find(|a| a.name == n).unwrap();
    assert!(
        !by("FLO52").uses_xdoall(),
        "FLO52 is hierarchical-only (S2)"
    );
    assert!(!by("ADM").uses_sdoall(), "ADM is flat-only (S2)");
    for n in ["ARC2D", "MDG", "OCEAN"] {
        assert!(by(n).uses_sdoall() && by(n).uses_xdoall());
    }
}

#[test]
fn mdg_scales_nearly_linearly() {
    let base = run("MDG", Configuration::P1);
    let p8 = run("MDG", Configuration::P8);
    let s8 = p8.speedup_over(&base);
    assert!(s8 > 6.5, "MDG 8-processor speedup {s8} below near-linear");
}

#[test]
fn adm_saturates_beyond_16_processors() {
    let base = run("ADM", Configuration::P1);
    let p16 = run("ADM", Configuration::P16);
    let p32 = run("ADM", Configuration::P32);
    let s16 = p16.speedup_over(&base);
    let s32 = p32.speedup_over(&base);
    // Table 1: 8.52 -> 8.84; the last 16 processors buy almost nothing.
    assert!(
        (s32 - s16).abs() / s16 < 0.25,
        "ADM should flatten 16p->32p, got {s16} -> {s32}"
    );
}

#[test]
fn speedup_stays_below_average_concurrency() {
    // §3.1 result (2), for every app at 32 processors.
    for name in ["FLO52", "MDG", "ADM"] {
        let base = run(name, Configuration::P1);
        let r = run(name, Configuration::P32);
        assert!(
            r.speedup_over(&base) < r.total_concurrency(),
            "{name}: speedup must be below concurrency"
        );
    }
}

#[test]
fn helpers_wait_while_main_runs_serial_code() {
    // §6: helper_wait corresponds to the serial and barrier time of the
    // main task; it must dominate the helpers' overhead.
    let r = run("FLO52", Configuration::P32);
    for h in r.helper_breakdowns() {
        let wait = h.get(UserBucket::HelperWait);
        assert!(wait > h.get(UserBucket::LoopSetup));
        assert!(
            wait.fraction_of(r.completion_time) > 0.10,
            "helper wait should be a substantial fraction"
        );
    }
}

#[test]
fn flat_construct_costs_more_to_distribute_than_hierarchical() {
    // §6: xdoall distribution overhead >> sdoall distribution overhead
    // (per unit of loop work) at 32 processors. ADM (flat-only) vs
    // FLO52 (hierarchical-only).
    let adm = run("ADM", Configuration::P32);
    let flo = run("FLO52", Configuration::P32);
    let adm_pick = adm.helper_breakdowns()[0]
        .get(UserBucket::PickupXdoall)
        .fraction_of(adm.completion_time);
    let flo_pick = flo.helper_breakdowns()[0]
        .get(UserBucket::PickupSdoall)
        .fraction_of(flo.completion_time);
    assert!(
        adm_pick > flo_pick,
        "xdoall pickup ({adm_pick}) should exceed sdoall pickup ({flo_pick})"
    );
}

#[test]
fn os_overhead_grows_with_processors() {
    let p1 = run("ARC2D", Configuration::P1);
    let p32 = run("ARC2D", Configuration::P32);
    assert!(p32.os_overhead_fraction() > p1.os_overhead_fraction());
    // §5: kernel lock spin stays negligible. (At debug-build shrink the
    // page-fault bursts concentrate 12x, so the bound is looser there.)
    let bound = if cfg!(debug_assertions) { 0.08 } else { 0.03 };
    let spin = p32.utilization[0].spin.fraction_of(p32.completion_time);
    assert!(spin < bound, "kernel spin {spin} should stay negligible");
}

#[test]
fn contention_overhead_increases_with_scale_for_balanced_apps() {
    let base = run("MDG", Configuration::P1);
    let p4 = run("MDG", Configuration::P4);
    let p32 = run("MDG", Configuration::P32);
    let o4 = contention_overhead(&base, &p4).overhead_pct;
    let o32 = contention_overhead(&base, &p32).overhead_pct;
    assert!(
        o32 > o4,
        "MDG contention must grow with processors (Table 4)"
    );
    assert!(o4 < 10.0, "MDG contention is small at 4 processors");
}

#[test]
fn parallel_loop_concurrency_is_physical() {
    // par_concurr per cluster can never exceed the cluster's CE count
    // (allowing a small numerical slack from the indirect derivation).
    for name in ["MDG", "OCEAN"] {
        let r = run(name, Configuration::P32);
        for cc in parallel_loop_concurrency(&r) {
            assert!(
                cc.par_concurr <= 8.6,
                "{name}: par_concurr {} beyond one cluster",
                cc.par_concurr
            );
            assert!(cc.pf > 0.0 && cc.pf <= 1.0);
        }
    }
}

#[test]
fn ocean_has_the_lowest_parallel_loop_concurrency() {
    // Table 3's distinctive OCEAN row: starved loops.
    let ocean = run("OCEAN", Configuration::P32);
    let mdg = run("MDG", Configuration::P32);
    let o = parallel_loop_concurrency(&ocean)[0].par_concurr;
    let m = parallel_loop_concurrency(&mdg)[0].par_concurr;
    assert!(o < m, "OCEAN ({o}) must sit below MDG ({m})");
}

#[test]
fn completion_times_are_deterministic() {
    let a = run("ADM", Configuration::P16);
    let b = run("ADM", Configuration::P16);
    assert_eq!(a.completion_time, b.completion_time);
    assert_eq!(a.events, b.events);
}
