//! Cross-checks of the measurement methodology: the trace-driven
//! analysis must agree with the machine's direct accounting, and the §7
//! estimators must behave sensibly at their boundary cases.

use cedar::apps::{synthetic, AppBuilder};
use cedar::core::methodology::{contention_overhead, parallel_loop_concurrency};
use cedar::core::{Experiment, SimConfig};
use cedar::hw::Configuration;
use cedar::trace::{pair_intervals, TraceEventId, UserBucket};
use cedar_sim::Cycles;

#[test]
fn trace_iteration_count_matches_bodies_executed() {
    let app = synthetic::uniform_sdoall(2, 2, 6, 8, 300, 4);
    let expected = app.total_bodies();
    let run = Experiment::new(app, SimConfig::cedar(Configuration::P8).with_trace()).run();
    let trace = run.trace.as_ref().unwrap();
    let starts = trace
        .iter()
        .filter(|e| e.id == TraceEventId::IterStart)
        .count() as u64;
    let ends = trace
        .iter()
        .filter(|e| e.id == TraceEventId::IterEnd)
        .count() as u64;
    assert_eq!(starts, expected);
    assert_eq!(ends, expected);
    assert_eq!(run.bodies, expected);
}

#[test]
fn trace_derived_barrier_time_matches_charged_bucket() {
    let app = synthetic::uniform_sdoall(2, 3, 8, 8, 400, 4);
    let run = Experiment::new(app, SimConfig::cedar(Configuration::P16).with_trace()).run();
    let trace = run.trace.as_ref().unwrap();
    let intervals = pair_intervals(
        trace,
        TraceEventId::FinishBarrierEnter,
        TraceEventId::FinishBarrierExit,
    );
    let from_trace: Cycles = intervals.iter().map(|i| i.duration()).sum();
    let charged = run.main_breakdown().get(UserBucket::BarrierWait);
    // The charged bucket excludes OS overlap, so it can only be smaller,
    // and only slightly.
    assert!(charged <= from_trace);
    let diff = (from_trace - charged).0 as f64;
    assert!(
        diff <= from_trace.0 as f64 * 0.25 + 1000.0,
        "trace {} vs charged {} diverge",
        from_trace,
        charged
    );
}

#[test]
fn serial_sections_pair_up_in_the_trace() {
    let app = AppBuilder::new("S").serial(5_000).serial(7_000).build();
    let run = Experiment::new(app, SimConfig::cedar(Configuration::P1).with_trace()).run();
    let trace = run.trace.as_ref().unwrap();
    let serials = pair_intervals(trace, TraceEventId::SerialStart, TraceEventId::SerialEnd);
    assert_eq!(serials.len(), 2);
    let total: Cycles = serials.iter().map(|i| i.duration()).sum();
    assert!(total >= Cycles(12_000));
}

#[test]
fn compute_only_app_shows_negligible_contention() {
    // No global-memory traffic in bodies: the contention estimate must
    // be close to zero (only protocol words flow).
    let app = synthetic::uniform_sdoall(2, 2, 8, 16, 500, 0);
    let base = Experiment::new(app.clone(), SimConfig::cedar(Configuration::P1)).run();
    let run = Experiment::new(app, SimConfig::cedar(Configuration::P8)).run();
    let est = contention_overhead(&base, &run);
    assert!(
        est.overhead_pct.abs() < 8.0,
        "compute-only contention {} should be small",
        est.overhead_pct
    );
}

#[test]
fn streaming_app_shows_substantial_contention() {
    let app = synthetic::streaming(2, 8, 16, 32);
    let base = Experiment::new(app.clone(), SimConfig::cedar(Configuration::P1)).run();
    let run = Experiment::new(app, SimConfig::cedar(Configuration::P32)).run();
    let est = contention_overhead(&base, &run);
    assert!(
        est.overhead_pct > 10.0,
        "pure streaming at 32p must contend, got {}",
        est.overhead_pct
    );
    assert!(run.gmem.total_queued() > Cycles::ZERO);
}

#[test]
fn module_conflict_stride_is_worse_than_unit_stride() {
    // The interleaving pathology: stride-32 accesses hit one module.
    let unit = synthetic::streaming(1, 4, 8, 16);
    let conflict = synthetic::module_conflict(1, 4, 8, 16);
    let u = Experiment::new(unit, SimConfig::cedar(Configuration::P8)).run();
    let c = Experiment::new(conflict, SimConfig::cedar(Configuration::P8)).run();
    assert!(
        c.gmem.mean_queued_per_packet() > u.gmem.mean_queued_per_packet(),
        "module-conflict stride must queue more per packet"
    );
}

#[test]
fn parallel_fraction_counts_xdoall_pickup() {
    // Footnote 4: xdoall pickup is a parallel activity.
    let app = synthetic::uniform_xdoall(2, 2, 32, 400, 4);
    let run = Experiment::new(app, SimConfig::cedar(Configuration::P16)).run();
    let cc = parallel_loop_concurrency(&run);
    let b = run.main_breakdown();
    let pickup = b.get(UserBucket::PickupXdoall);
    assert!(pickup > Cycles::ZERO);
    let pf_with = cc[0].pf;
    let pf_without = (b.parallel_execution() - pickup).fraction_of(run.completion_time);
    assert!(pf_with > pf_without);
}

#[test]
fn one_processor_run_has_unit_concurrency_and_no_helpers() {
    let app = synthetic::uniform_sdoall(1, 1, 4, 4, 200, 2);
    let run = Experiment::new(app, SimConfig::cedar(Configuration::P1)).run();
    assert!(run.total_concurrency() <= 1.0 + 1e-9);
    assert!(run.helper_breakdowns().is_empty());
    assert_eq!(run.concurrency.len(), 1);
}

#[test]
fn faults_fall_on_first_touch_only() {
    // Two identical passes over the same array: pass 2 adds no faults.
    let one_pass = synthetic::streaming(1, 4, 8, 16);
    let two_pass = synthetic::streaming(2, 4, 8, 16);
    let r1 = Experiment::new(one_pass, SimConfig::cedar(Configuration::P8)).run();
    let r2 = Experiment::new(two_pass, SimConfig::cedar(Configuration::P8)).run();
    let f1 = r1.faults.0 + r1.faults.1;
    let f2 = r2.faults.0 + r2.faults.1;
    assert_eq!(f1, f2, "second pass must be fault-free (demand paging)");
}

#[test]
fn trace_reconstruction_approximates_charged_breakdown() {
    // The paper derives Figures 5-9 from the off-loaded trace; the
    // simulator charges the same buckets directly. The two views must
    // agree on the big buckets within a tolerance (the trace view folds
    // OS stalls into whatever span they landed in).
    use cedar::hw::CeId;
    let app = synthetic::uniform_sdoall(2, 2, 8, 16, 500, 8);
    let run = Experiment::new(app, SimConfig::cedar(Configuration::P8).with_trace()).run();
    let trace = run.trace.as_ref().unwrap();
    let reconstructed = cedar::trace::breakdown::from_lead_trace(trace, CeId(0));
    let charged = run.main_breakdown();
    for bucket in [
        UserBucket::Serial,
        UserBucket::BarrierWait,
        UserBucket::LoopSetup,
    ] {
        let a = reconstructed.get(bucket).0 as f64;
        let b = charged.get(bucket).0 as f64;
        let tol = (b * 0.3).max(2_000.0);
        assert!((a - b).abs() <= tol, "{bucket:?}: trace {a} vs charged {b}");
    }
    // Loop-execution time: the trace view merges iter/pickup/sync
    // micro-transitions differently, so compare the aggregate.
    let a = reconstructed.parallel_execution().0 as f64
        + reconstructed.get(UserBucket::PickupSdoall).0 as f64;
    let b = charged.parallel_execution().0 as f64 + charged.get(UserBucket::PickupSdoall).0 as f64;
    assert!(
        (a - b).abs() <= b * 0.25 + 2_000.0,
        "aggregate loop time: trace {a} vs charged {b}"
    );
}
