//! Configuration fuzzing: ~200 seeded `SimConfig`/`FaultPlan` combos
//! through short runs, checking the simulator's conservation laws and
//! heap/calendar scheduler agreement on every one.
//!
//! Each case derives its workload, machine configuration, run options
//! and (half the time) a fault mix from one `SplitMix64` stream, runs
//! the experiment under **both** event schedulers, and asserts:
//!
//! 1. *Conservation*: every iteration executes exactly once, user
//!    breakdowns never exceed the wall clock, Figure-3 categories
//!    partition completion time, and concurrency stays within the
//!    machine's CE count.
//! 2. *A/B byte-equality*: the scheduler-independent fingerprint
//!    (completion time, event counts, OS buckets, breakdowns, memory
//!    statistics, fault counters — everything the report layer reads)
//!    is identical under `SchedKind::Heap` and `SchedKind::Calendar`.
//!
//! Every failure message carries the case seed. To replay one case:
//!
//! ```text
//! CEDAR_FUZZ_SEED=0xDEADBEEF cargo test --test config_fuzz
//! ```

use std::fmt::Write as _;

use cedar::apps::{AccessPattern, AppBuilder, AppSpec, BodySpec};
use cedar::core::{Experiment, RunResult, SimConfig};
use cedar::faults::{
    AstBurst, DegradedNetwork, FaultPlan, HelperStall, InterruptStorm, LockInflation, PageFaultWave,
};
use cedar::hw::Configuration;
use cedar::obs::RunOptions;
use cedar::sim::{Cycles, SchedKind, SplitMix64};
use cedar::xylem::OsActivity;

/// Number of fuzz cases in the full sweep.
const CASES: u64 = 200;

/// Base seed of the sweep; each case's seed is one `SplitMix64` draw.
const BASE_SEED: u64 = 0xC0FF_EE00_5EED_0001;

/// The per-case seeds: the full deterministic sweep, or exactly the one
/// case named by `CEDAR_FUZZ_SEED` (decimal or `0x`-prefixed hex) when
/// replaying a reported failure.
fn case_seeds() -> Vec<u64> {
    match std::env::var("CEDAR_FUZZ_SEED") {
        Ok(raw) => {
            let raw = raw.trim();
            let seed = raw
                .strip_prefix("0x")
                .or_else(|| raw.strip_prefix("0X"))
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| raw.parse())
                .unwrap_or_else(|e| panic!("unparseable CEDAR_FUZZ_SEED {raw:?}: {e}"));
            vec![seed]
        }
        Err(_) => {
            let mut rng = SplitMix64::new(BASE_SEED);
            (0..CASES).map(|_| rng.next_u64()).collect()
        }
    }
}

/// A short random loop-parallel program. Deliberately smaller than the
/// `tests/invariants.rs` generator: the sweep runs ~400 simulations
/// (200 cases x 2 schedulers), so each must finish in milliseconds.
fn arb_app(rng: &mut SplitMix64) -> AppSpec {
    let loops = rng.next_range(1, 3);
    let flat = rng.next_u64().is_multiple_of(2);
    let outer = rng.next_range(2, 8) as u32;
    let inner = rng.next_range(1, 8) as u32;
    let compute = rng.next_range(30, 300);
    let words = rng.next_range(0, 10) as u32;
    let jitter = rng.next_range(0, 16) as u8;

    let mut b = AppBuilder::new("FUZZ").array("data", 64 * 1024);
    b = b.repeat(1, |mut rb| {
        rb = rb.serial(rng.next_range(200, 2_000));
        for _ in 0..loops {
            let mut body = BodySpec::compute(compute).with_jitter(jitter);
            if words > 0 {
                body = body.with_access(AccessPattern::sweep(0, words));
            }
            rb = if flat {
                rb.xdoall(outer * inner, body)
            } else {
                rb.sdoall(outer, inner, body)
            };
        }
        rb
    });
    b.build()
}

fn arb_config(rng: &mut SplitMix64) -> Configuration {
    let choices = [
        Configuration::P1,
        Configuration::P4,
        Configuration::P8,
        Configuration::P16,
        Configuration::P32,
    ];
    choices[rng.next_below(choices.len() as u64) as usize]
}

/// A random fault mix, each class armed with probability ~1/3 so most
/// plans stay small and runs stay short.
fn arb_plan(rng: &mut SplitMix64) -> FaultPlan {
    let mut p = FaultPlan::default().with_seed(rng.next_u64());
    if rng.next_below(3) == 0 {
        p = p.with_interrupt_storm(InterruptStorm {
            mean_interval: Cycles(rng.next_range(10_000, 60_000)),
            burst: rng.next_range(1, 4) as u32,
        });
    }
    if rng.next_below(3) == 0 {
        p = p.with_ast_burst(AstBurst {
            mean_interval: Cycles(rng.next_range(10_000, 60_000)),
            burst: rng.next_range(1, 5) as u32,
            cost: Cycles(rng.next_range(50, 300)),
        });
    }
    if rng.next_below(3) == 0 {
        p = p.with_page_fault_wave(PageFaultWave {
            mean_interval: Cycles(rng.next_range(10_000, 60_000)),
            faults_per_wave: rng.next_range(1, 6) as u32,
            concurrent_pct: rng.next_below(101) as u8,
            seq_cost: Cycles(rng.next_range(300, 900)),
            conc_cost: Cycles(rng.next_range(500, 1_500)),
        });
    }
    if rng.next_below(3) == 0 {
        p = p.with_lock_inflation(LockInflation {
            hold_pct: rng.next_range(10, 250) as u32,
        });
    }
    if rng.next_below(3) == 0 {
        p = p.with_degraded_network(DegradedNetwork {
            switch_pct: rng.next_range(0, 120) as u32,
            module_pct: rng.next_range(0, 120) as u32,
        });
    }
    if rng.next_below(3) == 0 {
        p = p.with_helper_stall(HelperStall {
            mean_interval: Cycles(rng.next_range(10_000, 60_000)),
            stall: Cycles(rng.next_range(200, 1_000)),
        });
    }
    p
}

/// One fuzz case, fully derived from its seed.
struct Case {
    seed: u64,
    app: AppSpec,
    config: Configuration,
    sim_seed: u64,
    trace: bool,
    plan: Option<FaultPlan>,
}

impl Case {
    fn derive(seed: u64) -> Case {
        let mut rng = SplitMix64::new(seed);
        let app = arb_app(&mut rng);
        let config = arb_config(&mut rng);
        let sim_seed = rng.next_u64();
        let trace = rng.next_below(4) == 0;
        let plan = (rng.next_below(2) == 0).then(|| arb_plan(&mut rng));
        Case {
            seed,
            app,
            config,
            sim_seed,
            trace,
            plan,
        }
    }

    fn sim_config(&self, sched: SchedKind) -> SimConfig {
        let mut c = SimConfig::cedar(self.config)
            .with_seed(self.sim_seed)
            .with_scheduler(sched);
        if self.trace {
            c = c.with_trace();
        }
        if let Some(plan) = self.plan {
            c = c.with_faults(plan);
        }
        c
    }

    /// The replay incantation, embedded in every assertion message.
    fn replay(&self) -> String {
        format!(
            "replay: CEDAR_FUZZ_SEED={:#x} cargo test --test config_fuzz",
            self.seed
        )
    }
}

/// Every scheduler-independent measurement of one run, as text. Mirrors
/// `tests/fault_determinism.rs`: `queue.*` and `outbox.*` counters
/// describe the host-side scheduler machinery (hold histograms, wheel
/// peaks, spill counts) and legitimately differ between schedulers, so
/// they are excluded; everything the report layer consumes is included.
fn fingerprint(r: &RunResult) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} @ {}: ct={} events={} bodies={} faults={:?} stolen={}",
        r.app,
        r.configuration.label(),
        r.completion_time.0,
        r.events,
        r.bodies,
        r.faults,
        r.background_stolen.0,
    );
    for a in OsActivity::ALL {
        let _ = writeln!(s, "  os.{a:?}={}", r.os.total(a).0);
    }
    for (k, b) in r.breakdowns.iter().enumerate() {
        let _ = writeln!(s, "  breakdown[{k}]={}", b.total().0);
    }
    let g = &r.gmem;
    let _ = writeln!(
        s,
        "  gmem: packets={} queued={} min_rt={}",
        g.packets,
        g.total_queued().0,
        g.min_round_trip.0
    );
    for (name, v) in r.stats.counters.iter() {
        if name.starts_with("queue.") || name.starts_with("outbox.") {
            continue;
        }
        let _ = writeln!(s, "  {name}={v}");
    }
    s
}

/// The conservation laws every run must respect, whatever the config.
fn assert_conservation(case: &Case, run: &RunResult, sched: SchedKind) {
    let ctx = || format!("{} under {sched:?}", case.replay());
    assert_eq!(
        run.bodies,
        case.app.total_bodies(),
        "every iteration must execute exactly once ({})",
        ctx()
    );
    for b in &run.breakdowns {
        assert!(
            b.total() <= run.completion_time,
            "task user time {} > CT {} ({})",
            b.total(),
            run.completion_time,
            ctx()
        );
    }
    for (k, u) in run.utilization.iter().enumerate() {
        if u.os_total() <= run.completion_time {
            assert_eq!(
                u.user(run.completion_time) + u.os_total(),
                run.completion_time,
                "cluster {k}: Figure-3 categories must partition CT ({})",
                ctx()
            );
        }
    }
    let total = run.total_concurrency();
    assert!(
        total > 0.0 && total <= case.config.total_ces() as f64 + 1e-9,
        "concurrency {total} out of range ({})",
        ctx()
    );
}

#[test]
fn seeded_config_sweep_conserves_and_schedulers_agree() {
    let seeds = case_seeds();
    let replaying = seeds.len() == 1 && std::env::var("CEDAR_FUZZ_SEED").is_ok();
    for (i, &seed) in seeds.iter().enumerate() {
        let case = Case::derive(seed);
        if replaying {
            eprintln!(
                "replaying case seed {seed:#x}: {:?} trace={} faults={}",
                case.config,
                case.trace,
                case.plan.is_some()
            );
        }
        let heap = Experiment::new(case.app.clone(), case.sim_config(SchedKind::Heap)).run();
        let cal = Experiment::new(case.app.clone(), case.sim_config(SchedKind::Calendar)).run();
        assert_conservation(&case, &heap, SchedKind::Heap);
        assert_conservation(&case, &cal, SchedKind::Calendar);
        assert_eq!(
            fingerprint(&heap),
            fingerprint(&cal),
            "case {i}: schedulers disagree ({})",
            case.replay()
        );
    }
}

/// The sweep itself must be deterministic: deriving a case twice from
/// the same seed gives byte-identical results (otherwise the replay
/// knob could not reproduce failures).
#[test]
fn replay_of_a_case_seed_is_exact() {
    let seed = SplitMix64::new(BASE_SEED).next_u64();
    let a = Case::derive(seed);
    let b = Case::derive(seed);
    let run_a = Experiment::new(a.app.clone(), a.sim_config(SchedKind::Calendar)).run();
    let run_b = Experiment::new(b.app.clone(), b.sim_config(SchedKind::Calendar)).run();
    assert_eq!(fingerprint(&run_a), fingerprint(&run_b));
}

/// `RunOptions`-level fuzzing of the suite driver: the worker fan-out
/// must not leak into results for any fuzzed configuration.
#[test]
fn fuzzed_run_options_are_worker_count_independent() {
    let mut rng = SplitMix64::new(BASE_SEED ^ 0x5157);
    for i in 0..6 {
        let seed = rng.next_u64();
        let case = Case::derive(seed);
        let apps = [case.app.clone()];
        let configs = [case.config];
        let mut opts = RunOptions::default().with_scheduler(SchedKind::Calendar);
        if let Some(plan) = case.plan {
            opts = opts.with_faults(plan);
        }
        let one = cedar::core::suite::SuiteResult::run_parallel(
            &apps,
            &configs,
            &opts.clone().with_workers(1),
        )
        .expect("1-worker run");
        let four =
            cedar::core::suite::SuiteResult::run_parallel(&apps, &configs, &opts.with_workers(4))
                .expect("4-worker run");
        let fp = |s: &cedar::core::suite::SuiteResult| -> String {
            s.apps
                .iter()
                .flat_map(|a| a.runs.iter())
                .map(fingerprint)
                .collect()
        };
        assert_eq!(
            fp(&one),
            fp(&four),
            "case {i}: worker count leaked into results ({})",
            case.replay()
        );
    }
}
