//! Scheduler determinism: the heap and calendar event schedulers must
//! produce bit-identical simulations.
//!
//! The golden tests in `tests/golden.rs` run under the default
//! scheduler ([`SchedKind::Calendar`]). This test selects the heap
//! scheduler through the typed configuration path —
//! `RunOptions::with_scheduler(SchedKind::Heap)`, no environment
//! variables involved — re-runs the same reduced-scale campaign, and
//! renders the same tables/figure against the *same committed
//! snapshots*. Together the two test files prove that swapping the
//! future-event set changes nothing observable — every Table 2/3/4 and
//! Figure 3 byte is identical under both schedulers.

use std::path::PathBuf;

use cedar::apps::perfect_suite;
use cedar::core::suite::SuiteResult;
use cedar::hw::Configuration;
use cedar::obs::RunOptions;
use cedar::report::{figures, golden, tables};
use cedar::sim::SchedKind;

/// Must match `GOLDEN_SHRINK` in `tests/golden.rs` — both suites render
/// against the same snapshots.
const GOLDEN_SHRINK: u32 = 16;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

#[test]
fn heap_scheduler_reproduces_the_calendar_goldens() {
    let opts = RunOptions::default().with_scheduler(SchedKind::Heap);

    let apps: Vec<_> = perfect_suite()
        .into_iter()
        .map(|a| a.shrunk(GOLDEN_SHRINK))
        .collect();
    let campaign = SuiteResult::run_parallel(&apps, &Configuration::ALL, &opts)
        .expect("campaign experiment panicked");

    // The snapshots under tests/golden/ were recorded under the default
    // (calendar) scheduler; matching them byte-for-byte under the heap
    // proves scheduler-independence of every published number.
    golden::assert_matches(&golden_path("table2"), &tables::table2(&campaign));
    golden::assert_matches(&golden_path("table3"), &tables::table3(&campaign));
    golden::assert_matches(&golden_path("table4"), &tables::table4(&campaign));
    golden::assert_matches(&golden_path("figure3"), &figures::figure3(&campaign));
}
