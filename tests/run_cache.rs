//! The run cache's contract, end to end:
//!
//! 1. *Robustness*: truncated, bit-flipped, version-skewed or outright
//!    garbage entries are silently recomputed (and re-written), never a
//!    panic and never a wrong result.
//! 2. *Fidelity*: a seeded sweep of `config_fuzz`-style cases
//!    round-trips through encode → decode with every
//!    report-layer-visible measurement intact.
//! 3. *Campaign semantics*: a warm identical suite is 100% hits with
//!    byte-identical measurements; `ReadOnly` never writes; `Refresh`
//!    never reads; trace-keeping runs bypass the cache.
//!
//! Each test uses its own temp cache root, so the suite is safe under
//! the parallel test runner and touches nothing in `results/`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use cedar::apps::{AccessPattern, AppBuilder, AppSpec, BodySpec};
use cedar::cache::{CachedRun, RunCache};
use cedar::core::cache::{from_cached, run_key, to_cached};
use cedar::core::suite::SuiteResult;
use cedar::core::{CacheMode, CacheSession, RunOptions, RunResult, SimConfig};
use cedar::hw::Configuration;
use cedar::sim::SplitMix64;
use cedar::xylem::OsActivity;

/// A fresh cache root under the system temp dir; removed by `Root`'s
/// drop so failures don't accumulate garbage.
struct Root(PathBuf);

impl Root {
    fn new(tag: &str) -> Root {
        let dir =
            std::env::temp_dir().join(format!("cedar-run-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Root(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    /// Options running a cached campaign against this root. The cache
    /// lands in `<root>/cache`, the manifests in `<root>`.
    fn opts(&self, mode: CacheMode) -> RunOptions {
        RunOptions::default()
            .with_workers(2)
            .with_cache(mode)
            .with_output_dir(self.path())
    }
}

impl Drop for Root {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small deterministic workload, varied by `salt`.
fn app(salt: u64) -> AppSpec {
    AppBuilder::new("CACHED")
        .array("data", 64 * 1024)
        .serial(300 + salt)
        .xdoall(
            16,
            BodySpec::compute(150 + salt).with_access(AccessPattern::sweep(0, 4)),
        )
        .build()
}

/// The scheduler-independent measurement fingerprint, mirroring
/// `tests/config_fuzz.rs`. Cache hits must preserve every line.
fn fingerprint(r: &RunResult) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} @ {}: ct={} events={} bodies={} faults={:?}",
        r.app,
        r.configuration.label(),
        r.completion_time.0,
        r.events,
        r.bodies,
        r.faults,
    );
    for a in OsActivity::ALL {
        let _ = writeln!(s, "  os.{a:?}={}", r.os.total(a).0);
    }
    for (k, b) in r.breakdowns.iter().enumerate() {
        let _ = writeln!(s, "  breakdown[{k}]={}", b.total().0);
    }
    let _ = writeln!(
        s,
        "  gmem: packets={} queued={} conc={:?}",
        r.gmem.packets,
        r.gmem.total_queued().0,
        r.concurrency,
    );
    for (name, v) in r.stats.counters.iter() {
        let _ = writeln!(s, "  {name}={v}");
    }
    s
}

/// An on-disk entry with the wall-clock-only lines (`stats.*_ns`, and
/// the header checksum/length they perturb) masked out. Everything else
/// in an entry is deterministic.
fn masked_entry(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes)
        .lines()
        .map(|l| {
            if l.starts_with("stats.")
                || l.starts_with("payload_bytes ")
                || l.starts_with("payload_fnv1a ")
            {
                let field = l.split(' ').next().unwrap_or(l);
                format!("{field} <masked>")
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn suite_fingerprint(s: &SuiteResult) -> String {
    s.apps
        .iter()
        .flat_map(|a| a.runs.iter())
        .map(fingerprint)
        .collect()
}

#[test]
fn warm_suite_is_all_hits_and_byte_identical() {
    let root = Root::new("warm");
    let apps = [app(1), app(2)];
    let configs = [Configuration::P1, Configuration::P8];
    let opts = root.opts(CacheMode::ReadWrite);

    let cold = SuiteResult::measure(&apps, &configs, &opts);
    let c = cold.telemetry.cache.expect("cache stats present");
    assert_eq!(c.hits, 0, "cold cache cannot hit");
    assert_eq!(c.misses, 4);
    assert_eq!(c.writes, 4);

    let warm = SuiteResult::measure(&apps, &configs, &opts);
    let w = warm.telemetry.cache.expect("cache stats present");
    assert_eq!(w.hits, 4, "warm identical campaign is all hits");
    assert_eq!(w.misses, 0);
    assert_eq!(w.writes, 0);
    assert!((w.hit_rate() - 1.0).abs() < 1e-12);

    assert_eq!(
        suite_fingerprint(&cold),
        suite_fingerprint(&warm),
        "replayed measurements must be byte-identical"
    );
}

#[test]
fn corrupt_entries_recompute_and_rewrite() {
    let root = Root::new("corrupt");
    let opts = root.opts(CacheMode::ReadWrite);
    let apps = [app(3)];
    let configs = [Configuration::P4];

    let cold = SuiteResult::measure(&apps, &configs, &opts);
    let reference = suite_fingerprint(&cold);
    let cfg = SimConfig::cedar(Configuration::P4);
    let entry = root
        .path()
        .join("cache")
        .join(run_key(&apps[0], &cfg).shard())
        .join(format!("{}.run", run_key(&apps[0], &cfg).hex()));
    assert!(entry.is_file(), "cold run must have written {entry:?}");
    let pristine = std::fs::read(&entry).unwrap();

    let corruptions: Vec<(&str, Vec<u8>)> = vec![
        ("truncated", pristine[..pristine.len() / 2].to_vec()),
        ("bit-flipped", {
            let mut b = pristine.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0x20;
            b
        }),
        ("wrong format version", {
            String::from_utf8(pristine.clone())
                .unwrap()
                .replacen("format=", "format=9", 1)
                .into_bytes()
        }),
        ("wrong model version", {
            String::from_utf8(pristine.clone())
                .unwrap()
                .replacen("model=", "model=9", 1)
                .into_bytes()
        }),
        ("garbage", b"not a cache entry at all\n".to_vec()),
        ("empty", Vec::new()),
    ];
    for (what, bytes) in corruptions {
        std::fs::write(&entry, &bytes).unwrap();
        let again = SuiteResult::measure(&apps, &configs, &opts);
        let c = again.telemetry.cache.expect("cache stats");
        assert_eq!(c.hits, 0, "{what}: a corrupt entry must not hit");
        assert_eq!(c.misses, 1, "{what}: must recompute");
        assert_eq!(c.writes, 1, "{what}: must rewrite the entry");
        assert_eq!(
            suite_fingerprint(&again),
            reference,
            "{what}: recomputed measurements must match"
        );
        assert_eq!(
            masked_entry(&std::fs::read(&entry).unwrap()),
            masked_entry(&pristine),
            "{what}: the rewritten entry must match the original \
             (modulo wall-clock telemetry)"
        );
    }
}

#[test]
fn read_only_serves_hits_but_never_writes() {
    let root = Root::new("ro");
    let apps = [app(4)];
    let configs = [Configuration::P1, Configuration::P4];

    // Read-only over an empty store: all misses, nothing written.
    let ro_cold = SuiteResult::measure(&apps, &configs, &root.opts(CacheMode::ReadOnly));
    let c = ro_cold.telemetry.cache.expect("cache stats");
    assert_eq!((c.hits, c.misses, c.writes), (0, 2, 0));
    assert!(
        !root.path().join("cache").exists(),
        "read-only must not create the store"
    );

    // Populate, then read-only again: all hits, still no writes.
    SuiteResult::measure(&apps, &configs, &root.opts(CacheMode::ReadWrite));
    let ro_warm = SuiteResult::measure(&apps, &configs, &root.opts(CacheMode::ReadOnly));
    let c = ro_warm.telemetry.cache.expect("cache stats");
    assert_eq!((c.hits, c.misses, c.writes), (2, 0, 0));
}

#[test]
fn refresh_recomputes_and_overwrites() {
    let root = Root::new("refresh");
    let apps = [app(5)];
    let configs = [Configuration::P4];

    SuiteResult::measure(&apps, &configs, &root.opts(CacheMode::ReadWrite));
    let refreshed = SuiteResult::measure(&apps, &configs, &root.opts(CacheMode::Refresh));
    let c = refreshed.telemetry.cache.expect("cache stats");
    assert_eq!(c.hits, 0, "refresh never reads");
    assert_eq!(c.misses, 1, "refresh recomputes");
    assert_eq!(c.writes, 1, "refresh overwrites");

    let warm = SuiteResult::measure(&apps, &configs, &root.opts(CacheMode::ReadWrite));
    let c = warm.telemetry.cache.expect("cache stats");
    assert_eq!(c.hits, 1, "the refreshed entry serves later reads");
}

#[test]
fn trace_keeping_runs_bypass_the_cache() {
    let root = Root::new("bypass");
    let opts = root.opts(CacheMode::ReadWrite);
    let session = CacheSession::new(&opts).expect("cache session");
    let a = app(6);
    let traced = SimConfig::cedar(Configuration::P1).with_trace();

    let r1 = session.execute(&a, traced.clone());
    let r2 = session.execute(&a, traced);
    assert!(r1.trace.is_some(), "traced run keeps its trace");
    assert!(r2.trace.is_some(), "second traced run keeps its trace too");
    let stats = session.stats().expect("cache stats");
    assert_eq!(stats.bypasses, 2, "both traced runs bypass");
    assert_eq!(stats.hits + stats.misses + stats.writes, 0);
    assert!(
        !root.path().join("cache").exists(),
        "bypassed runs must not touch the store"
    );
}

#[test]
fn off_mode_never_touches_disk() {
    let root = Root::new("off");
    let apps = [app(7)];
    let suite = SuiteResult::measure(&apps, &[Configuration::P1], &root.opts(CacheMode::Off));
    assert!(suite.telemetry.cache.is_none(), "off mode reports no stats");
    assert!(!root.path().join("cache").exists());
}

/// The property sweep: seeded fuzz cases (the `config_fuzz` generator
/// family: varying shape, configuration, seed) round-trip through the
/// full disk path with every measurement preserved.
#[test]
fn seeded_round_trip_property() {
    let root = Root::new("prop");
    let cache = RunCache::open(root.path().join("cache"), CacheMode::ReadWrite).unwrap();
    let mut rng = SplitMix64::new(0x000C_AC4E_5EED);
    for i in 0..24 {
        let outer = 2 + rng.next_below(6) as u32;
        let inner = 1 + rng.next_below(6) as u32;
        let compute = 40 + rng.next_below(260);
        let words = rng.next_below(8) as u32;
        let flat = rng.next_below(2) == 0;
        let mut b = AppBuilder::new("PROP")
            .array("data", 64 * 1024)
            .serial(200 + rng.next_below(800));
        let mut body = BodySpec::compute(compute);
        if words > 0 {
            body = body.with_access(AccessPattern::sweep(0, words));
        }
        b = if flat {
            b.xdoall(outer * inner, body)
        } else {
            b.sdoall(outer, inner, body)
        };
        let a = b.build();
        let configs = [
            Configuration::P1,
            Configuration::P4,
            Configuration::P8,
            Configuration::P16,
            Configuration::P32,
        ];
        let cfg = SimConfig::cedar(configs[rng.next_below(5) as usize]).with_seed(rng.next_u64());

        let direct = cedar::core::Experiment::new(a.clone(), cfg.clone()).run();
        let key = run_key(&a, &cfg);
        cache.put(&key, &to_cached(&direct));
        let replayed = from_cached(
            cache
                .get(&key)
                .unwrap_or_else(|| panic!("case {i}: entry vanished for key {key}")),
        );
        assert_eq!(
            fingerprint(&direct),
            fingerprint(&replayed),
            "case {i}: disk round trip altered a measurement"
        );
        assert_eq!(
            to_cached(&direct).encode(),
            to_cached(&replayed).encode(),
            "case {i}: canonical payloads differ"
        );
    }
    let s = cache.stats();
    assert_eq!(s.hits, 24);
    assert_eq!(s.writes, 24);
}

/// Key discrimination over the same fuzz family: distinct experiments
/// must never share a content address.
#[test]
fn keys_never_collide_across_the_sweep() {
    let mut keys = std::collections::HashSet::new();
    let mut rng = SplitMix64::new(0x7E57_5EED);
    let mut total = 0;
    for _ in 0..16 {
        let a = app(rng.next_below(1_000));
        for c in [Configuration::P1, Configuration::P8, Configuration::P32] {
            let cfg = SimConfig::cedar(c).with_seed(rng.next_u64());
            assert!(
                keys.insert(run_key(&a, &cfg).hex()),
                "key collision for {a:?} at {c:?}"
            );
            total += 1;
        }
    }
    assert_eq!(keys.len(), total);
}

/// Seeded partial-write corruption property: a power failure or torn
/// write can leave an entry damaged at *any* byte, so this sweep
/// truncates and bit-flips at seeded offsets — biased into the two
/// structurally delicate regions, the entry's header block (magic, key
/// echo, length, checksum) and the payload's interned counter-name
/// strings — and requires every single corruption to read as a silent
/// miss (no panic, no wrong result) healed by one clean rewrite.
#[test]
fn seeded_partial_write_corruption_is_a_silent_miss_then_heals() {
    let root = Root::new("partial");
    let cache = RunCache::open(root.path().join("cache"), CacheMode::ReadWrite).unwrap();
    let a = app(9);
    let cfg = SimConfig::cedar(Configuration::P4);
    let direct = cedar::core::Experiment::new(a.clone(), cfg.clone()).run();
    let key = run_key(&a, &cfg);
    cache.put(&key, &to_cached(&direct));
    let path = cache.entry_path(&key);
    let pristine = std::fs::read(&path).unwrap();
    let text = String::from_utf8(pristine.clone()).unwrap();

    // Byte ranges of the two targeted regions: the whole header block,
    // and every `counter <interned-name>` text inside the payload.
    let header_end = text.find("---\n").expect("entry has a header") + 4;
    let mut counter_name_bytes = Vec::new();
    let mut offset = 0;
    for line in text.split_inclusive('\n') {
        if let Some(rest) = line.strip_prefix("counter ") {
            let name_len = rest.split(' ').next().unwrap_or("").len();
            counter_name_bytes.extend(offset + 8..offset + 8 + name_len);
        }
        offset += line.len();
    }
    assert!(
        !counter_name_bytes.is_empty(),
        "entry should carry interned counter names"
    );

    let mut rng = SplitMix64::new(0xBAD_0FF5E7);
    let mut hits_expected = 0;
    for case in 0..48 {
        // Pick a target byte: header region, interner region, or
        // anywhere, each a third of the cases.
        let target = match case % 3 {
            0 => rng.next_below(header_end as u64) as usize,
            1 => counter_name_bytes[rng.next_below(counter_name_bytes.len() as u64) as usize],
            _ => rng.next_below(pristine.len() as u64) as usize,
        };
        let corrupted = if rng.next_below(2) == 0 {
            // Truncate at the target: a torn write that stopped early.
            pristine[..target].to_vec()
        } else {
            // Flip a nonzero mask of the target byte.
            let mut b = pristine.clone();
            b[target] ^= 1 + rng.next_below(255) as u8;
            b
        };
        if corrupted == pristine {
            continue; // truncation at len 0 target can no-op; skip
        }
        std::fs::write(&path, &corrupted).unwrap();

        assert!(
            cache.get(&key).is_none(),
            "case {case}: corruption at byte {target} must be a miss, not served"
        );
        // Recovery: one rewrite restores a byte-equivalent entry
        // (modulo wall-clock telemetry) that hits again.
        cache.put(&key, &to_cached(&direct));
        let healed = cache.get(&key).unwrap_or_else(|| {
            panic!("case {case}: rewritten entry must hit");
        });
        hits_expected += 1;
        assert_eq!(
            healed.encode(),
            to_cached(&direct).encode(),
            "case {case}: healed entry altered a measurement"
        );
        assert_eq!(
            masked_entry(&std::fs::read(&path).unwrap()),
            masked_entry(&pristine),
            "case {case}: healed entry does not match the original"
        );
    }
    assert!(hits_expected >= 40, "sweep degenerated: {hits_expected}");

    // The recovery path must not leak tmp files into the shard.
    let shard = path.parent().unwrap().to_path_buf();
    let leftovers: Vec<_> = std::fs::read_dir(&shard)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "tmp leftovers: {leftovers:?}");

    let s = cache.stats();
    assert_eq!(s.hits, hits_expected, "every healed entry served once");
}

/// A stale-by-construction entry (valid checksum, older format header)
/// written through the public API then doctored must read as a miss —
/// the exact upgrade path after a MODEL_VERSION bump.
#[test]
fn version_skew_is_stale_not_fatal() {
    let root = Root::new("skew");
    let cache = RunCache::open(root.path().join("cache"), CacheMode::ReadWrite).unwrap();
    let a = app(8);
    let cfg = SimConfig::cedar(Configuration::P1);
    let direct = cedar::core::Experiment::new(a.clone(), cfg.clone()).run();
    let key = run_key(&a, &cfg);
    cache.put(&key, &to_cached(&direct));

    let path = cache.entry_path(&key);
    let doctored = std::fs::read_to_string(&path).unwrap().replacen(
        "cedar-run-cache format=",
        "cedar-run-cache format=0",
        1,
    );
    std::fs::write(&path, doctored).unwrap();
    assert!(
        cache.get(&key).is_none(),
        "an old-format entry is stale, not served"
    );
    // Rewriting through put() makes it live again.
    cache.put(&key, &to_cached(&direct));
    let revived = cache.get(&key).expect("rewritten entry hits");
    assert_eq!(
        CachedRun::encode(&revived),
        to_cached(&direct).encode(),
        "revived entry carries the original measurements"
    );
}
