//! Property-based invariants over randomly generated workloads.
//!
//! Every generated loop-parallel program, on every configuration, must
//! respect the conservation laws of the simulator: each iteration
//! executes exactly once, accounting never exceeds the wall clock, and
//! identical inputs give identical traces.
//!
//! Randomness comes from the in-repo `SplitMix64` generator with fixed
//! seeds — no external crates, and the same seed always produces the
//! same program, so every failure is reproducible from the seed printed
//! in the assertion message.

use cedar::apps::{AccessPattern, AppBuilder, AppSpec, BodySpec};
use cedar::core::{Experiment, SimConfig};
use cedar::hw::route::DeltaGeometry;
use cedar::hw::Configuration;
use cedar::sim::SplitMix64;

/// A small random loop-parallel program, drawn from `rng`.
fn arb_app(rng: &mut SplitMix64) -> AppSpec {
    let serial_k = rng.next_range(1, 2);
    let loops = rng.next_range(1, 3);
    let flat = rng.next_u64().is_multiple_of(2); // xdoall vs sdoall
    let outer = rng.next_range(2, 12) as u32;
    let inner = rng.next_range(1, 12) as u32;
    let compute = rng.next_range(50, 600);
    let words = rng.next_range(0, 12) as u32;
    let jitter = rng.next_range(0, 20) as u8;

    let mut b = AppBuilder::new("PROP").array("data", 256 * 1024);
    b = b.repeat(1, |mut rb| {
        rb = rb.serial(serial_k * 1000);
        for _ in 0..loops {
            let mut body = BodySpec::compute(compute).with_jitter(jitter);
            if words > 0 {
                body = body.with_access(AccessPattern::sweep(0, words));
            }
            rb = if flat {
                rb.xdoall(outer * inner, body)
            } else {
                rb.sdoall(outer, inner, body)
            };
        }
        rb
    });
    b.build()
}

/// A random multiprocessor configuration, drawn from `rng`.
fn arb_config(rng: &mut SplitMix64) -> Configuration {
    let choices = [
        Configuration::P1,
        Configuration::P4,
        Configuration::P8,
        Configuration::P16,
    ];
    choices[rng.next_below(choices.len() as u64) as usize]
}

/// Runs `check` on `cases` seed-derived (app, configuration) pairs.
fn for_random_workloads(salt: u64, cases: u64, mut check: impl FnMut(u64, AppSpec, Configuration)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(salt.wrapping_mul(0x9E37_79B9).wrapping_add(case));
        let app = arb_app(&mut rng);
        let c = arb_config(&mut rng);
        check(case, app, c);
    }
}

#[test]
fn every_iteration_executes_exactly_once() {
    for_random_workloads(1, 12, |case, app, c| {
        let expected = app.total_bodies();
        let run = Experiment::new(app, SimConfig::cedar(c)).run();
        assert_eq!(run.bodies, expected, "case {case} on {}", c.label());
    });
}

#[test]
fn identical_runs_are_bit_identical() {
    for_random_workloads(2, 12, |case, app, c| {
        let a = Experiment::new(app.clone(), SimConfig::cedar(c)).run();
        let b = Experiment::new(app, SimConfig::cedar(c)).run();
        assert_eq!(a.completion_time, b.completion_time, "case {case}");
        assert_eq!(a.events, b.events, "case {case}");
        assert_eq!(a.gmem.packets, b.gmem.packets, "case {case}");
        assert_eq!(a.faults, b.faults, "case {case}");
    });
}

#[test]
fn breakdown_never_exceeds_completion_time() {
    for_random_workloads(3, 12, |case, app, c| {
        let run = Experiment::new(app, SimConfig::cedar(c)).run();
        for b in &run.breakdowns {
            assert!(
                b.total() <= run.completion_time,
                "case {case} on {}: task user time {} > CT {}",
                c.label(),
                b.total(),
                run.completion_time
            );
        }
    });
}

#[test]
fn more_processors_never_lose_badly() {
    // Parallel runs may not beat 1p on degenerate programs, but they
    // must never be dramatically slower (protocol costs are bounded).
    for_random_workloads(4, 12, |case, app, _| {
        let base = Experiment::new(app.clone(), SimConfig::cedar(Configuration::P1)).run();
        let p8 = Experiment::new(app, SimConfig::cedar(Configuration::P8)).run();
        assert!(
            p8.completion_time.0 <= base.completion_time.0 * 2,
            "case {case}: 8p run more than 2x slower than 1p"
        );
    });
}

#[test]
fn concurrency_bounded_by_active_processors() {
    for_random_workloads(5, 12, |case, app, c| {
        let run = Experiment::new(app, SimConfig::cedar(c)).run();
        let total = run.total_concurrency();
        assert!(
            total <= c.total_ces() as f64 + 1e-9,
            "case {case} on {}: concurrency {total}",
            c.label()
        );
        assert!(total > 0.0, "case {case}");
    });
}

#[test]
fn delta_routing_is_well_formed() {
    let g = DeltaGeometry::cedar();
    for src in 0u16..32 {
        for dst in 0u16..32 {
            // Stage-1 port leads to the stage-2 switch serving dst.
            assert_eq!(
                g.stage1_port(dst) % g.switches_per_stage(),
                g.stage2_switch(dst)
            );
            // Output port identifies the destination within its switch.
            assert_eq!(g.stage2_switch(dst) * g.radix() + g.stage2_port(dst), dst);
            // Sources attach to exactly one stage-1 switch.
            assert!(g.stage1_switch(src) < g.switches_per_stage());
        }
    }
}

#[test]
fn interleaving_covers_all_modules_uniformly() {
    use cedar::hw::GlobalAddr;
    // Any 32 consecutive double words hit all 32 modules exactly once.
    let mut rng = SplitMix64::new(6);
    for _ in 0..64 {
        let start = rng.next_below(4096);
        let mut seen = [false; 32];
        for k in 0..32u64 {
            let m = GlobalAddr((start + k) * 8).module(32).0 as usize;
            assert!(!seen[m], "module {m} hit twice from start {start}");
            seen[m] = true;
        }
    }
}

// ---- fault-injection attribution invariants -------------------------
//
// The fault subsystem's contract: an injected disturbance lands in the
// Table-2 bucket its class targets, other buckets move only with the
// organic growth that a longer run implies, and no conservation law of
// the simulator bends under any fault mix.

use cedar::core::RunResult;
use cedar::faults::{
    AstBurst, DegradedNetwork, FaultPlan, HelperStall, InterruptStorm, LockInflation, PageFaultWave,
};
use cedar::sim::Cycles;
use cedar::xylem::OsActivity;

/// A random fault mix, each class armed with probability ~1/2.
fn arb_plan(rng: &mut SplitMix64) -> FaultPlan {
    let mut p = FaultPlan::default().with_seed(rng.next_u64());
    if rng.next_below(2) == 0 {
        p = p.with_interrupt_storm(InterruptStorm {
            mean_interval: Cycles(rng.next_range(10_000, 60_000)),
            burst: rng.next_range(1, 4) as u32,
        });
    }
    if rng.next_below(2) == 0 {
        p = p.with_ast_burst(AstBurst {
            mean_interval: Cycles(rng.next_range(10_000, 60_000)),
            burst: rng.next_range(1, 5) as u32,
            cost: Cycles(rng.next_range(50, 300)),
        });
    }
    if rng.next_below(2) == 0 {
        p = p.with_page_fault_wave(PageFaultWave {
            mean_interval: Cycles(rng.next_range(10_000, 60_000)),
            faults_per_wave: rng.next_range(1, 8) as u32,
            concurrent_pct: rng.next_below(101) as u8,
            seq_cost: Cycles(rng.next_range(300, 900)),
            conc_cost: Cycles(rng.next_range(500, 1_500)),
        });
    }
    if rng.next_below(2) == 0 {
        p = p.with_lock_inflation(LockInflation {
            hold_pct: rng.next_range(10, 300) as u32,
        });
    }
    if rng.next_below(2) == 0 {
        p = p.with_degraded_network(DegradedNetwork {
            switch_pct: rng.next_range(0, 150) as u32,
            module_pct: rng.next_range(0, 150) as u32,
        });
    }
    if rng.next_below(2) == 0 {
        p = p.with_helper_stall(HelperStall {
            mean_interval: Cycles(rng.next_range(10_000, 60_000)),
            stall: Cycles(rng.next_range(200, 1_200)),
        });
    }
    p
}

#[test]
fn fault_mixes_preserve_conservation_laws() {
    for_random_workloads(7, 12, |case, app, c| {
        let mut rng = SplitMix64::new(0xFA_u64.wrapping_mul(case + 1));
        let plan = arb_plan(&mut rng);
        let expected = app.total_bodies();
        let run = Experiment::new(app, SimConfig::cedar(c).with_faults(plan)).run();
        // Coverage: every iteration still executes exactly once.
        assert_eq!(run.bodies, expected, "case {case} on {}", c.label());
        // User breakdowns never exceed the wall clock.
        for b in &run.breakdowns {
            assert!(
                b.total() <= run.completion_time,
                "case {case} on {}: user time {} > CT {}",
                c.label(),
                b.total(),
                run.completion_time
            );
        }
        // Figure 3 categories: when OS service does not saturate a
        // cluster, user is the exact residual — the components sum to
        // CT with no gap and no overlap.
        for (k, u) in run.utilization.iter().enumerate() {
            if u.os_total() <= run.completion_time {
                assert_eq!(
                    u.user(run.completion_time) + u.os_total(),
                    run.completion_time,
                    "case {case} cluster {k}: categories must partition CT"
                );
            }
        }
    });
}

#[test]
fn fault_runs_are_deterministic_per_plan() {
    for_random_workloads(8, 6, |case, app, c| {
        let mut rng = SplitMix64::new(0xDE_u64.wrapping_mul(case + 1));
        let plan = arb_plan(&mut rng);
        let a = Experiment::new(app.clone(), SimConfig::cedar(c).with_faults(plan)).run();
        let b = Experiment::new(app, SimConfig::cedar(c).with_faults(plan)).run();
        assert_eq!(a.completion_time, b.completion_time, "case {case}");
        assert_eq!(a.events, b.events, "case {case}");
        assert_eq!(
            a.stats.counters.iter().collect::<Vec<_>>(),
            b.stats.counters.iter().collect::<Vec<_>>(),
            "case {case}"
        );
    });
}

/// The deterministic workload the single-class attribution probes run:
/// FLO52-like, on the full 4-cluster machine so helper clusters exist
/// (helper stalls and global system calls need them) and every bucket
/// has organic content.
fn attribution_pair(plan: FaultPlan) -> (RunResult, RunResult) {
    let app = || cedar::apps::synthetic::uniform_sdoall(2, 4, 8, 16, 300, 8);
    let c = Configuration::P32;
    let base = Experiment::new(app(), SimConfig::cedar(c)).run();
    let faulted = Experiment::new(app(), SimConfig::cedar(c).with_faults(plan)).run();
    (base, faulted)
}

/// Machine-wide bucket delta (faulted − base), saturating at zero.
fn delta(base: &RunResult, faulted: &RunResult, a: OsActivity) -> u64 {
    faulted.os.total(a).0.saturating_sub(base.os.total(a).0)
}

/// Asserts the injected cycles land in `target` buckets and every other
/// targetable bucket moves by at most the organic growth a longer run
/// implies (bounded by the relative CT stretch) plus a small absolute
/// allowance for discrete occurrence counts.
fn assert_attribution(
    base: &RunResult,
    faulted: &RunResult,
    targets: &[(OsActivity, u64)],
    label: &str,
) {
    let stretch = faulted.completion_time.0 as f64 / base.completion_time.0 as f64 - 1.0;
    for &(activity, injected) in targets {
        assert!(injected > 0, "{label}: nothing was injected");
        let d = delta(base, faulted, activity);
        assert!(
            d >= injected,
            "{label}: {activity:?} delta {d} < injected {injected} \
             (injected cost must reach its own bucket)"
        );
    }
    let targeted: Vec<OsActivity> = targets.iter().map(|&(a, _)| a).collect();
    let injected_total: u64 = targets.iter().map(|&(_, i)| i).sum();
    for activity in OsActivity::ALL {
        if targeted.contains(&activity) || activity == OsActivity::KernelSpin {
            continue; // spin legitimately emerges from hotter locks
        }
        let organic = base.os.total(activity).0;
        let budget = (organic as f64 * (stretch * 2.0 + 0.05)) as u64 + injected_total / 10 + 200;
        let d = delta(base, faulted, activity);
        assert!(
            d <= budget,
            "{label}: untargeted {activity:?} moved by {d} \
             (budget {budget}, organic {organic}, stretch {stretch:.4})"
        );
    }
}

#[test]
fn interrupt_storms_raise_only_the_cpi_bucket() {
    let plan = FaultPlan::default().with_interrupt_storm(InterruptStorm {
        mean_interval: Cycles(20_000),
        burst: 3,
    });
    let (base, faulted) = attribution_pair(plan);
    let injected = faulted.stats.counters.get("faults.injected.cpi");
    assert_attribution(&base, &faulted, &[(OsActivity::Cpi, injected)], "storm");
}

#[test]
fn ast_bursts_raise_only_the_ast_bucket() {
    let plan = FaultPlan::default().with_ast_burst(AstBurst {
        mean_interval: Cycles(20_000),
        burst: 4,
        cost: Cycles(150),
    });
    let (base, faulted) = attribution_pair(plan);
    let injected = faulted.stats.counters.get("faults.injected.ast");
    assert_attribution(&base, &faulted, &[(OsActivity::Ast, injected)], "ast");
}

#[test]
fn page_fault_waves_raise_only_the_pgflt_buckets() {
    let plan = FaultPlan::default().with_page_fault_wave(PageFaultWave {
        mean_interval: Cycles(20_000),
        faults_per_wave: 5,
        concurrent_pct: 50,
        seq_cost: Cycles(700),
        conc_cost: Cycles(1_100),
    });
    let (base, faulted) = attribution_pair(plan);
    let seq = faulted.stats.counters.get("faults.injected.pgflt_seq");
    let conc = faulted.stats.counters.get("faults.injected.pgflt_conc");
    assert_attribution(
        &base,
        &faulted,
        &[
            (OsActivity::PgFltSequential, seq),
            (OsActivity::PgFltConcurrent, conc),
        ],
        "wave",
    );
}

#[test]
fn lock_inflation_raises_only_the_critical_section_buckets() {
    let plan = FaultPlan::default().with_lock_inflation(LockInflation { hold_pct: 200 });
    let (base, faulted) = attribution_pair(plan);
    let cluster = faulted.stats.counters.get("faults.injected.lock_cluster");
    let global = faulted.stats.counters.get("faults.injected.lock_global");
    assert_attribution(
        &base,
        &faulted,
        &[
            (OsActivity::CrSectCluster, cluster),
            (OsActivity::CrSectGlobal, global),
        ],
        "lock",
    );
}

#[test]
fn helper_stalls_charge_no_os_bucket() {
    let plan = FaultPlan::default().with_helper_stall(HelperStall {
        mean_interval: Cycles(15_000),
        stall: Cycles(800),
    });
    let (base, faulted) = attribution_pair(plan);
    assert!(
        faulted.stats.counters.get("faults.injected.stall") > 0,
        "stalls must fire"
    );
    assert!(
        faulted.completion_time >= base.completion_time,
        "stalled helpers cannot speed the run up"
    );
    assert_attribution_noise_only(&base, &faulted, "stall");
}

#[test]
fn degraded_network_moves_contention_not_os_buckets() {
    let plan = FaultPlan::default().with_degraded_network(DegradedNetwork {
        switch_pct: 100,
        module_pct: 100,
    });
    let (base, faulted) = attribution_pair(plan);
    assert!(
        faulted.gmem.min_round_trip > base.gmem.min_round_trip,
        "degraded hardware must lengthen the no-contention round trip"
    );
    assert!(
        faulted.completion_time > base.completion_time,
        "slower memory must stretch CT"
    );
    assert_attribution_noise_only(&base, &faulted, "net");
}

/// Variant of [`assert_attribution`] for classes that target *no* OS
/// bucket: every bucket stays within organic growth.
fn assert_attribution_noise_only(base: &RunResult, faulted: &RunResult, label: &str) {
    let stretch = faulted.completion_time.0 as f64 / base.completion_time.0 as f64 - 1.0;
    for activity in OsActivity::ALL {
        if activity == OsActivity::KernelSpin {
            continue;
        }
        let organic = base.os.total(activity).0;
        let budget = (organic as f64 * (stretch * 2.0 + 0.05)) as u64 + 200;
        let d = delta(base, faulted, activity);
        assert!(
            d <= budget,
            "{label}: {activity:?} moved by {d} (budget {budget}, \
             organic {organic}, stretch {stretch:.4})"
        );
    }
}
