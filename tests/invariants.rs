//! Property-based invariants over randomly generated workloads.
//!
//! Every generated loop-parallel program, on every configuration, must
//! respect the conservation laws of the simulator: each iteration
//! executes exactly once, accounting never exceeds the wall clock, and
//! identical inputs give identical traces.
//!
//! Randomness comes from the in-repo `SplitMix64` generator with fixed
//! seeds — no external crates, and the same seed always produces the
//! same program, so every failure is reproducible from the seed printed
//! in the assertion message.

use cedar::apps::{AccessPattern, AppBuilder, AppSpec, BodySpec};
use cedar::core::{Experiment, SimConfig};
use cedar::hw::route::DeltaGeometry;
use cedar::hw::Configuration;
use cedar::sim::SplitMix64;

/// A small random loop-parallel program, drawn from `rng`.
fn arb_app(rng: &mut SplitMix64) -> AppSpec {
    let serial_k = rng.next_range(1, 2);
    let loops = rng.next_range(1, 3);
    let flat = rng.next_u64().is_multiple_of(2); // xdoall vs sdoall
    let outer = rng.next_range(2, 12) as u32;
    let inner = rng.next_range(1, 12) as u32;
    let compute = rng.next_range(50, 600);
    let words = rng.next_range(0, 12) as u32;
    let jitter = rng.next_range(0, 20) as u8;

    let mut b = AppBuilder::new("PROP").array("data", 256 * 1024);
    b = b.repeat(1, |mut rb| {
        rb = rb.serial(serial_k * 1000);
        for _ in 0..loops {
            let mut body = BodySpec::compute(compute).with_jitter(jitter);
            if words > 0 {
                body = body.with_access(AccessPattern::sweep(0, words));
            }
            rb = if flat {
                rb.xdoall(outer * inner, body)
            } else {
                rb.sdoall(outer, inner, body)
            };
        }
        rb
    });
    b.build()
}

/// A random multiprocessor configuration, drawn from `rng`.
fn arb_config(rng: &mut SplitMix64) -> Configuration {
    let choices = [
        Configuration::P1,
        Configuration::P4,
        Configuration::P8,
        Configuration::P16,
    ];
    choices[rng.next_below(choices.len() as u64) as usize]
}

/// Runs `check` on `cases` seed-derived (app, configuration) pairs.
fn for_random_workloads(salt: u64, cases: u64, mut check: impl FnMut(u64, AppSpec, Configuration)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(salt.wrapping_mul(0x9E37_79B9).wrapping_add(case));
        let app = arb_app(&mut rng);
        let c = arb_config(&mut rng);
        check(case, app, c);
    }
}

#[test]
fn every_iteration_executes_exactly_once() {
    for_random_workloads(1, 12, |case, app, c| {
        let expected = app.total_bodies();
        let run = Experiment::new(app, SimConfig::cedar(c)).run();
        assert_eq!(run.bodies, expected, "case {case} on {}", c.label());
    });
}

#[test]
fn identical_runs_are_bit_identical() {
    for_random_workloads(2, 12, |case, app, c| {
        let a = Experiment::new(app.clone(), SimConfig::cedar(c)).run();
        let b = Experiment::new(app, SimConfig::cedar(c)).run();
        assert_eq!(a.completion_time, b.completion_time, "case {case}");
        assert_eq!(a.events, b.events, "case {case}");
        assert_eq!(a.gmem.packets, b.gmem.packets, "case {case}");
        assert_eq!(a.faults, b.faults, "case {case}");
    });
}

#[test]
fn breakdown_never_exceeds_completion_time() {
    for_random_workloads(3, 12, |case, app, c| {
        let run = Experiment::new(app, SimConfig::cedar(c)).run();
        for b in &run.breakdowns {
            assert!(
                b.total() <= run.completion_time,
                "case {case} on {}: task user time {} > CT {}",
                c.label(),
                b.total(),
                run.completion_time
            );
        }
    });
}

#[test]
fn more_processors_never_lose_badly() {
    // Parallel runs may not beat 1p on degenerate programs, but they
    // must never be dramatically slower (protocol costs are bounded).
    for_random_workloads(4, 12, |case, app, _| {
        let base = Experiment::new(app.clone(), SimConfig::cedar(Configuration::P1)).run();
        let p8 = Experiment::new(app, SimConfig::cedar(Configuration::P8)).run();
        assert!(
            p8.completion_time.0 <= base.completion_time.0 * 2,
            "case {case}: 8p run more than 2x slower than 1p"
        );
    });
}

#[test]
fn concurrency_bounded_by_active_processors() {
    for_random_workloads(5, 12, |case, app, c| {
        let run = Experiment::new(app, SimConfig::cedar(c)).run();
        let total = run.total_concurrency();
        assert!(
            total <= c.total_ces() as f64 + 1e-9,
            "case {case} on {}: concurrency {total}",
            c.label()
        );
        assert!(total > 0.0, "case {case}");
    });
}

#[test]
fn delta_routing_is_well_formed() {
    let g = DeltaGeometry::cedar();
    for src in 0u16..32 {
        for dst in 0u16..32 {
            // Stage-1 port leads to the stage-2 switch serving dst.
            assert_eq!(
                g.stage1_port(dst) % g.switches_per_stage(),
                g.stage2_switch(dst)
            );
            // Output port identifies the destination within its switch.
            assert_eq!(g.stage2_switch(dst) * g.radix() + g.stage2_port(dst), dst);
            // Sources attach to exactly one stage-1 switch.
            assert!(g.stage1_switch(src) < g.switches_per_stage());
        }
    }
}

#[test]
fn interleaving_covers_all_modules_uniformly() {
    use cedar::hw::GlobalAddr;
    // Any 32 consecutive double words hit all 32 modules exactly once.
    let mut rng = SplitMix64::new(6);
    for _ in 0..64 {
        let start = rng.next_below(4096);
        let mut seen = [false; 32];
        for k in 0..32u64 {
            let m = GlobalAddr((start + k) * 8).module(32).0 as usize;
            assert!(!seen[m], "module {m} hit twice from start {start}");
            seen[m] = true;
        }
    }
}
