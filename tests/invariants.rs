//! Property-based invariants over randomly generated workloads.
//!
//! Every generated loop-parallel program, on every configuration, must
//! respect the conservation laws of the simulator: each iteration
//! executes exactly once, accounting never exceeds the wall clock, and
//! identical inputs give identical traces.

use cedar::apps::{AccessPattern, AppBuilder, BodySpec};
use cedar::core::{Experiment, SimConfig};
use cedar::hw::route::DeltaGeometry;
use cedar::hw::Configuration;
use proptest::prelude::*;

/// A small random loop-parallel program.
fn arb_app() -> impl Strategy<Value = cedar::apps::AppSpec> {
    (
        1u32..=2,    // serial kilocycles
        1u32..=3,    // loops
        prop::bool::ANY, // xdoall vs sdoall
        2u32..=12,   // outer / flat iterations
        1u32..=12,   // inner iterations
        50u64..=600, // body compute
        0u32..=12,   // words per access
        0u8..=20,    // jitter
    )
        .prop_map(
            |(serial_k, loops, flat, outer, inner, compute, words, jitter)| {
                let mut b = AppBuilder::new("PROP").array("data", 256 * 1024);
                b = b.repeat(1, |mut rb| {
                    rb = rb.serial(serial_k as u64 * 1000);
                    for _ in 0..loops {
                        let mut body = BodySpec::compute(compute).with_jitter(jitter);
                        if words > 0 {
                            body = body.with_access(AccessPattern::sweep(0, words));
                        }
                        rb = if flat {
                            rb.xdoall(outer * inner, body)
                        } else {
                            rb.sdoall(outer, inner, body)
                        };
                    }
                    rb
                });
                b.build()
            },
        )
}

fn configs() -> impl Strategy<Value = Configuration> {
    prop::sample::select(vec![
        Configuration::P1,
        Configuration::P4,
        Configuration::P8,
        Configuration::P16,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_iteration_executes_exactly_once(app in arb_app(), c in configs()) {
        let expected = app.total_bodies();
        let run = Experiment::new(app, SimConfig::cedar(c)).run();
        prop_assert_eq!(run.bodies, expected);
    }

    #[test]
    fn identical_runs_are_bit_identical(app in arb_app(), c in configs()) {
        let a = Experiment::new(app.clone(), SimConfig::cedar(c)).run();
        let b = Experiment::new(app, SimConfig::cedar(c)).run();
        prop_assert_eq!(a.completion_time, b.completion_time);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.gmem.packets, b.gmem.packets);
        prop_assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn breakdown_never_exceeds_completion_time(app in arb_app(), c in configs()) {
        let run = Experiment::new(app, SimConfig::cedar(c)).run();
        for b in &run.breakdowns {
            prop_assert!(b.total() <= run.completion_time,
                "task user time {} > CT {}", b.total(), run.completion_time);
        }
    }

    #[test]
    fn more_processors_never_lose_badly(app in arb_app()) {
        // Parallel runs may not beat 1p on degenerate programs, but they
        // must never be dramatically slower (protocol costs are bounded).
        let base = Experiment::new(app.clone(), SimConfig::cedar(Configuration::P1)).run();
        let p8 = Experiment::new(app, SimConfig::cedar(Configuration::P8)).run();
        prop_assert!(
            p8.completion_time.0 <= base.completion_time.0 * 2,
            "8p run more than 2x slower than 1p"
        );
    }

    #[test]
    fn concurrency_bounded_by_active_processors(app in arb_app(), c in configs()) {
        let run = Experiment::new(app, SimConfig::cedar(c)).run();
        let total = run.total_concurrency();
        prop_assert!(total <= c.total_ces() as f64 + 1e-9);
        prop_assert!(total > 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delta_routing_is_well_formed(src in 0u16..32, dst in 0u16..32) {
        let g = DeltaGeometry::cedar();
        // Stage-1 port leads to the stage-2 switch serving dst.
        prop_assert_eq!(g.stage1_port(dst) % g.switches_per_stage(), g.stage2_switch(dst));
        // Output port identifies the destination within its switch.
        prop_assert_eq!(
            g.stage2_switch(dst) * g.radix() + g.stage2_port(dst),
            dst
        );
        // Sources attach to exactly one stage-1 switch.
        prop_assert!(g.stage1_switch(src) < g.switches_per_stage());
    }

    #[test]
    fn interleaving_covers_all_modules_uniformly(start in 0u64..4096) {
        use cedar::hw::GlobalAddr;
        // Any 32 consecutive double words hit all 32 modules exactly once.
        let mut seen = [false; 32];
        for k in 0..32u64 {
            let m = GlobalAddr((start + k) * 8).module(32).0 as usize;
            prop_assert!(!seen[m], "module {} hit twice", m);
            seen[m] = true;
        }
    }
}
