//! Fault-campaign determinism: an identical `FaultPlan` (same seed,
//! same classes) must produce byte-identical measurements regardless of
//! which event scheduler backs the queue and how many worker threads
//! fan the campaign grid.
//!
//! The guarantee rests on the driver's stream discipline: one
//! `SplitMix64` per `(class, cluster)` pair, all derived from the
//! plan's own seed, so occurrence times never depend on event
//! interleaving or on the machine's master RNG. This suite would catch
//! any accidental coupling — e.g. drawing fault jitter from the
//! machine RNG, or letting pop order leak into wave shapes.
//!
//! The fingerprint below covers every measurement the report layer
//! consumes (completion time, event counts, OS buckets, breakdowns,
//! memory-system statistics, fault counters) but deliberately excludes
//! the `queue.*` and `outbox.*` telemetry counters: those describe the
//! host-side machinery (hold histograms, wheel peaks) and legitimately
//! differ between scheduler implementations.

use std::fmt::Write as _;

use cedar::apps::perfect_suite;
use cedar::core::suite::SuiteResult;
use cedar::core::RunResult;
use cedar::faults::FaultPlan;
use cedar::hw::Configuration;
use cedar::obs::RunOptions;
use cedar::sim::SchedKind;
use cedar::xylem::OsActivity;

const SHRINK: u32 = 16;
const CONFIGS: [Configuration; 2] = [Configuration::P8, Configuration::P32];

/// Every scheduler-independent measurement of one run, as text.
fn fingerprint_run(r: &RunResult) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} @ {}: ct={} events={} bodies={} faults={:?} stolen={}",
        r.app,
        r.configuration.label(),
        r.completion_time.0,
        r.events,
        r.bodies,
        r.faults,
        r.background_stolen.0,
    );
    for a in OsActivity::ALL {
        let _ = writeln!(s, "  os.{a:?}={}", r.os.total(a).0);
    }
    for (k, b) in r.breakdowns.iter().enumerate() {
        let _ = writeln!(s, "  breakdown[{k}]={}", b.total().0);
    }
    let g = &r.gmem;
    let _ = writeln!(
        s,
        "  gmem: packets={} queued={} min_rt={}",
        g.packets,
        g.total_queued().0,
        g.min_round_trip.0
    );
    for (name, v) in r.stats.counters.iter() {
        // Host-side queue machinery differs across schedulers by design.
        if name.starts_with("queue.") || name.starts_with("outbox.") {
            continue;
        }
        let _ = writeln!(s, "  {name}={v}");
    }
    s
}

fn fingerprint_suite(suite: &SuiteResult) -> String {
    suite
        .apps
        .iter()
        .flat_map(|a| a.runs.iter())
        .map(fingerprint_run)
        .collect()
}

fn campaign(opts: &RunOptions) -> SuiteResult {
    let apps: Vec<_> = perfect_suite()
        .into_iter()
        .filter(|a| a.name == "FLO52" || a.name == "MDG")
        .map(|a| a.shrunk(SHRINK))
        .collect();
    SuiteResult::run_parallel(&apps, &CONFIGS, opts).expect("campaign experiment panicked")
}

#[test]
fn fault_campaign_is_scheduler_independent() {
    let plan = FaultPlan::canonical();
    let calendar = campaign(
        &RunOptions::default()
            .with_scheduler(SchedKind::Calendar)
            .with_faults(plan),
    );
    let heap = campaign(
        &RunOptions::default()
            .with_scheduler(SchedKind::Heap)
            .with_faults(plan),
    );
    assert_eq!(
        fingerprint_suite(&calendar),
        fingerprint_suite(&heap),
        "heap and calendar schedulers must agree on every faulted measurement"
    );
}

#[test]
fn fault_campaign_is_worker_count_independent() {
    let plan = FaultPlan::canonical();
    let apps: Vec<_> = perfect_suite()
        .into_iter()
        .filter(|a| a.name == "FLO52" || a.name == "MDG")
        .map(|a| a.shrunk(SHRINK))
        .collect();
    let opts1 = RunOptions::default().with_faults(plan).with_workers(1);
    let optsn = RunOptions::default().with_faults(plan).with_workers(3);
    let sequential =
        SuiteResult::run_sequential(&apps, &CONFIGS, &opts1).expect("sequential campaign");
    let one = SuiteResult::run_parallel(&apps, &CONFIGS, &opts1).expect("1-worker campaign");
    let three = SuiteResult::run_parallel(&apps, &CONFIGS, &optsn).expect("3-worker campaign");
    let want = fingerprint_suite(&sequential);
    assert_eq!(want, fingerprint_suite(&one), "sequential vs 1 worker");
    assert_eq!(want, fingerprint_suite(&three), "sequential vs 3 workers");
}

#[test]
fn fault_seed_and_plan_change_the_measurements() {
    let apps: Vec<_> = perfect_suite()
        .into_iter()
        .filter(|a| a.name == "FLO52")
        .map(|a| a.shrunk(SHRINK))
        .collect();
    let configs = [Configuration::P32];
    let base = SuiteResult::run_sequential(
        &apps,
        &configs,
        &RunOptions::default().with_faults(FaultPlan::canonical()),
    )
    .expect("faulted campaign");
    let reseeded = SuiteResult::run_sequential(
        &apps,
        &configs,
        &RunOptions::default().with_faults(FaultPlan::canonical().with_seed(99)),
    )
    .expect("reseeded campaign");
    let clean = SuiteResult::run_sequential(&apps, &configs, &RunOptions::default())
        .expect("clean campaign");
    let ct = |s: &SuiteResult| s.apps[0].runs[0].completion_time;
    assert_ne!(
        ct(&base),
        ct(&clean),
        "the canonical plan must perturb the run"
    );
    assert_ne!(ct(&base), ct(&reseeded), "the fault seed must matter");
    assert!(ct(&base) > ct(&clean), "faults cannot speed the machine up");
}
