//! Golden snapshot of the fault-attribution report.
//!
//! Renders [`tables::fault_report`] for FLO52 at 8 processors under the
//! canonical fault campaign ([`FaultPlan::canonical`]) against its
//! unperturbed twin, and compares byte-for-byte with the committed
//! snapshot. Together with `tests/golden.rs` (whose snapshots are
//! recorded with *no* plan and must stay untouched by this subsystem)
//! this pins both sides of the empty-plan contract: an empty plan
//! changes nothing, the canonical plan changes exactly the recorded
//! numbers.
//!
//! Re-record after an intentional change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test fault_golden
//! ```

use std::path::PathBuf;

use cedar::core::{Experiment, SimConfig};
use cedar::faults::FaultPlan;
use cedar::hw::Configuration;
use cedar::report::{golden, tables};

/// Must match `GOLDEN_SHRINK` in `tests/golden.rs`.
const GOLDEN_SHRINK: u32 = 16;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

#[test]
fn fault_report_matches_golden() {
    let app = cedar::apps::perfect_suite()
        .into_iter()
        .find(|a| a.name == "FLO52")
        .expect("FLO52 in the perfect suite")
        .shrunk(GOLDEN_SHRINK);
    let cfg = SimConfig::cedar(Configuration::P8);
    let base = Experiment::new(app.clone(), cfg.clone()).run();
    let faulted = Experiment::new(app, cfg.with_faults(FaultPlan::canonical())).run();
    golden::assert_matches(
        &golden_path("fault_report"),
        &tables::fault_report(&base, &faulted),
    );
}
