//! End-to-end tests of the campaign service on a real socket.
//!
//! Each test binds an ephemeral port, drives the service with raw
//! HTTP/1.1 over `TcpStream` (the same framing any client would use),
//! and checks the service-level guarantees: replies are byte-identical
//! to the library path (and to their own cache-hit replays — cold,
//! warm-from-disk, and hot-tier alike), malformed specs get typed
//! `400`s, overflow gets `503` + `Retry-After`, keep-alive connections
//! serve repeated requests with bounded idle time, and a graceful
//! drain finishes queued work.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cedar::obs::json;
use cedar::prelude::*;
use cedar::serve::reply::measurement_fingerprint;

/// One spec every test can share: small enough to run in milliseconds,
/// real enough to exercise the full pipeline.
const SPEC: &str = r#"{"app":"FLO52","processors":4,"scheduler":"calendar","shrink":64}"#;

fn start_server(queue: usize, workers: usize) -> (Server, String) {
    start_server_with(ServeOptions::default().with_queue(queue).with_workers(workers))
}

fn start_server_with(opts: ServeOptions) -> (Server, String) {
    let cache_dir = std::env::temp_dir().join(format!(
        "cedar-serve-test-{}-{}",
        std::process::id(),
        fastrand()
    ));
    let opts = opts.with_addr("127.0.0.1:0").with_cache_dir(&cache_dir);
    let server = Server::start(&opts).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// A tiny unique-ish suffix so parallel tests get distinct cache roots
/// (no determinism requirement — this only isolates directories).
fn fastrand() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos() as u64
}

/// Sends one raw request (announcing `Connection: close`, so the
/// keep-alive server hands the socket back immediately) and returns
/// (status, headers, body).
fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, head.to_string(), payload.to_string())
}

/// Reads one `Content-Length`-framed response off a persistent
/// connection: (status, head, body). The keep-alive counterpart of
/// `request` — the connection stays usable for the next exchange.
fn read_framed<R: BufRead>(reader: &mut R) -> (u16, String, String) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status");
    let mut head = line.trim_end().to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        head.push_str("\r\n");
        head.push_str(header);
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, head, String::from_utf8(body).expect("utf8 body"))
}

/// The raw bytes of one keep-alive `POST /run` carrying `spec`.
fn keepalive_post(spec: &str) -> String {
    format!(
        "POST /run HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{spec}",
        spec.len()
    )
}

fn post_run(addr: &str, spec: &str) -> (u16, String) {
    let (status, _, body) = request(addr, "POST", "/run", spec);
    (status, body)
}

#[test]
fn reply_matches_the_library_path_under_both_schedulers() {
    let (server, addr) = start_server(16, 2);
    for scheduler in ["heap", "calendar"] {
        let spec_text =
            format!(r#"{{"app":"FLO52","processors":4,"scheduler":"{scheduler}","shrink":64}}"#);
        let (status, body) = post_run(&addr, &spec_text);
        assert_eq!(status, 200, "{body}");
        let reply = json::parse(&body).expect("reply parses");

        // The library path: the same spec lowered by the same code.
        let spec = CampaignSpec::from_json(&spec_text).unwrap();
        let result = Experiment::new(spec.workload(), spec.sim_config()).run();
        let fingerprint = format!("{:016x}", measurement_fingerprint(&result));
        assert_eq!(
            reply.get("fingerprint").unwrap().as_str(),
            Some(fingerprint.as_str()),
            "service and library measurements diverge under {scheduler}"
        );
        assert_eq!(
            reply.get("completion_time").unwrap().as_u64(),
            Some(result.completion_time.0)
        );
        assert_eq!(
            reply.get("key").unwrap().as_str(),
            Some(cedar::core::cache::run_key(&spec.workload(), &spec.sim_config()).hex())
                .as_deref(),
        );
    }
    server.shutdown();
    server.join();
}

#[test]
fn warm_requests_hit_the_cache_with_byte_identical_bodies() {
    let (server, addr) = start_server(16, 2);
    let (cold_status, cold_body) = post_run(&addr, SPEC);
    assert_eq!(cold_status, 200, "{cold_body}");
    assert_eq!(server.metrics().cache_hits(), 0, "first request is a miss");

    let (warm_status, warm_body) = post_run(&addr, SPEC);
    assert_eq!(warm_status, 200);
    assert_eq!(
        cold_body, warm_body,
        "cache-hit replies must be byte-identical to cold replies"
    );
    assert_eq!(server.metrics().cache_hits(), 1, "second request replays");

    // The hit is also visible to external scrapers.
    let (status, _, metrics) = request(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("cedar_serve_cache_hits_total 1\n"),
        "{metrics}"
    );
    assert!(metrics.contains("cedar_serve_requests_total{code=\"200\"}"));
    server.shutdown();
    server.join();
}

#[test]
fn malformed_specs_get_typed_400_bodies() {
    let (server, addr) = start_server(16, 1);
    for bad in [
        "this is not json",
        r#"{"app":"NOPE","processors":8}"#,
        r#"{"app":"FLO52","processors":7}"#,
        r#"{"app":"FLO52","processors":8,"turbo":true}"#,
    ] {
        let (status, body) = post_run(&addr, bad);
        assert_eq!(status, 400, "{bad} -> {body}");
        let parsed = json::parse(&body).expect("error body is JSON");
        let error = parsed.get("error").expect("typed error envelope");
        assert_eq!(error.get("kind").unwrap().as_str(), Some("spec_parse"));
        assert!(error.get("message").unwrap().as_str().is_some());
    }
    // Unknown endpoints and wrong methods are typed too.
    let (status, _, _) = request(&addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _, _) = request(&addr, "DELETE", "/run", "");
    assert_eq!(status, 405);
    let (status, _, body) = request(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""));
    server.shutdown();
    server.join();
}

#[test]
fn overflow_is_shed_with_503_and_retry_after() {
    // One worker, queue of one. Two stalled connections (we connect but
    // never send the request) pin the worker and fill the queue; every
    // further connection must be shed immediately.
    let (server, addr) = start_server(1, 1);
    let stall_worker = TcpStream::connect(&addr).expect("stall 1");
    std::thread::sleep(Duration::from_millis(150)); // let the worker pop it
    let stall_queue = TcpStream::connect(&addr).expect("stall 2");
    std::thread::sleep(Duration::from_millis(150)); // let the accept loop queue it

    let mut shed = 0;
    for _ in 0..3 {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut response = String::new();
        stream
            .read_to_string(&mut response)
            .expect("read shed reply");
        assert!(
            response.starts_with("HTTP/1.1 503 "),
            "expected shed, got: {response}"
        );
        assert!(response.contains("Retry-After: 1\r\n"), "{response}");
        assert!(response.contains("\"kind\":\"overloaded\""), "{response}");
        shed += 1;
    }
    assert_eq!(shed, 3);
    assert_eq!(server.metrics().shed_total(), 3);
    drop(stall_worker);
    drop(stall_queue);
    server.shutdown();
    server.join();
}

#[test]
fn byte_at_a_time_split_reads_still_parse() {
    // TCP gives the server no framing guarantees: a request may arrive
    // in arbitrarily small segments. Dribbling it one byte per write
    // (flushed, with a few forced scheduling points) must parse and run
    // exactly like a single-segment request.
    let (server, addr) = start_server(4, 1);
    let raw = format!(
        "POST /run HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{SPEC}",
        SPEC.len()
    );
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    for (i, byte) in raw.as_bytes().iter().enumerate() {
        stream.write_all(std::slice::from_ref(byte)).expect("send");
        stream.flush().unwrap();
        if i % 16 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 200 "), "{response}");
    let body = response.split_once("\r\n\r\n").unwrap().1;
    let reply = json::parse(body).expect("reply parses");
    assert!(reply.get("fingerprint").is_some());
    server.shutdown();
    server.join();
}

#[test]
fn hostile_headers_get_typed_400s_and_leave_the_server_healthy() {
    let (server, addr) = start_server(4, 1);

    // A header line longer than the whole head budget must be cut off
    // at the parser's hard limit and answered with a typed 400 — not
    // buffered without bound.
    let huge = format!(
        "POST /run HTTP/1.1\r\nHost: test\r\nX-Pad: {}\r\n\r\n",
        "a".repeat(16 * 1024)
    );
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // The server may answer (and close) before the full pad is written,
    // so a late write failing with a broken pipe is acceptable.
    let _ = stream.write_all(huge.as_bytes());
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");
    assert!(response.contains("\"kind\":\"spec_parse\""), "{response}");
    assert!(response.contains("request head exceeds"), "{response}");

    // Conflicting duplicate Content-Length headers are the classic
    // request-smuggling shape: rejected, never last-one-wins.
    let (status, _, body) = {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(
                format!(
                    "POST /run HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\
                     Content-Length: 2\r\n\r\n{SPEC}",
                    SPEC.len()
                )
                .as_bytes(),
            )
            .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, payload) = response.split_once("\r\n\r\n").expect("header block");
        let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
        (status, head.to_string(), payload.to_string())
    };
    assert_eq!(status, 400, "{body}");
    assert!(
        body.contains("conflicting duplicate Content-Length"),
        "{body}"
    );

    // Neither probe may wedge the worker: a normal request still runs.
    let (status, body) = post_run(&addr, SPEC);
    assert_eq!(status, 200, "{body}");
    server.shutdown();
    server.join();
}

#[test]
fn pipelined_requests_each_get_a_complete_reply_in_order() {
    // The service is persistent: a client pipelining a second request
    // on the same socket gets two complete, correctly framed replies in
    // request order — no interleaving, no dropped bytes. The second is
    // a cache replay of the first, so the bodies are byte-identical.
    let (server, addr) = start_server(4, 1);
    let one = keepalive_post(SPEC);
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream
        .write_all(format!("{one}{one}").as_bytes())
        .expect("send both");
    let (status1, head1, body1) = read_framed(&mut reader);
    assert_eq!(status1, 200, "{body1}");
    assert!(head1.contains("Connection: keep-alive"), "{head1}");
    let (status2, _, body2) = read_framed(&mut reader);
    assert_eq!(status2, 200, "{body2}");
    assert_eq!(
        body1, body2,
        "pipelined warm reply must be byte-identical to the cold reply"
    );
    assert!(json::parse(&body1).is_ok(), "replies are complete JSON");
    assert_eq!(server.metrics().cache_hits(), 1, "second request replays");
    assert_eq!(
        server.metrics().keepalive_reuse_total(),
        1,
        "the second request reused the connection"
    );
    server.shutdown();
    server.join();
}

#[test]
fn sequential_keepalive_requests_share_one_connection() {
    // Two request/response exchanges back-to-back on one socket, the
    // second written only after the first reply fully arrived (plain
    // keep-alive reuse, no pipelining).
    let (server, addr) = start_server(4, 1);
    let one = keepalive_post(SPEC);
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    stream.write_all(one.as_bytes()).expect("send first");
    let (status1, head1, body1) = read_framed(&mut reader);
    assert_eq!(status1, 200, "{body1}");
    assert!(head1.contains("Connection: keep-alive"), "{head1}");

    stream.write_all(one.as_bytes()).expect("send second");
    let (status2, _, body2) = read_framed(&mut reader);
    assert_eq!(status2, 200, "{body2}");
    assert_eq!(
        body1, body2,
        "warm reply on a reused connection must be byte-identical"
    );
    assert_eq!(server.metrics().keepalive_reuse_total(), 1);
    server.shutdown();
    server.join();
}

#[test]
fn idle_keepalive_connections_are_closed_cleanly() {
    let (server, addr) = start_server_with(
        ServeOptions::default()
            .with_queue(4)
            .with_workers(1)
            .with_keepalive_idle(Duration::from_millis(300)),
    );
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n")
        .expect("send");
    let (status, head, _) = read_framed(&mut reader);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: keep-alive"), "{head}");

    // Go idle: the server must close with a clean EOF (no RST, no
    // stray bytes) within the idle budget plus one poll slice.
    let idle_start = Instant::now();
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("clean close");
    assert!(rest.is_empty(), "no bytes after the reply: {rest:?}");
    assert!(
        idle_start.elapsed() < Duration::from_secs(5),
        "idle close took {:?}",
        idle_start.elapsed()
    );

    // The worker is free again afterwards.
    let (status, body) = post_run(&addr, SPEC);
    assert_eq!(status, 200, "{body}");
    server.shutdown();
    server.join();
}

#[test]
fn warm_keepalive_stress_is_served_from_the_hot_tier() {
    // One cold request seeds the disk store and the hot tier; four
    // concurrent clients then each pipeline 25 copies of the same spec
    // on one connection. Every warm reply must be byte-identical to
    // the cold one, and every warm lookup must be a hot-tier hit —
    // requests minus the single cold miss.
    let (server, addr) = start_server(64, 4);
    let (cold_status, cold_body) = post_run(&addr, SPEC);
    assert_eq!(cold_status, 200, "{cold_body}");

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 25;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let cold_body = cold_body.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(&addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let burst = keepalive_post(SPEC).repeat(PER_CLIENT);
                stream.write_all(burst.as_bytes()).expect("send burst");
                for i in 0..PER_CLIENT {
                    let (status, _, body) = read_framed(&mut reader);
                    assert_eq!(status, 200, "request {i}: {body}");
                    assert_eq!(body, cold_body, "request {i} diverged from the cold reply");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let warm = (CLIENTS * PER_CLIENT) as u64;
    assert_eq!(
        server.metrics().cache_hot_hits(),
        warm,
        "every warm request must hit the hot tier"
    );
    assert_eq!(server.metrics().cache_hits(), warm);
    assert_eq!(
        server.metrics().keepalive_reuse_total(),
        (CLIENTS * (PER_CLIENT - 1)) as u64,
        "each client's connection served its whole burst"
    );
    server.shutdown();
    server.join();
}

#[test]
fn mid_body_disconnect_is_a_typed_400_not_a_hang() {
    let (server, addr) = start_server(4, 1);
    // Promise a 100-byte body, deliver 9, and half-close: the worker
    // must diagnose the truncated body, answer a typed 400 on the
    // still-open read half, and move on to the next connection.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /run HTTP/1.1\r\nHost: test\r\nContent-Length: 100\r\n\r\n{\"app\":\"")
        .expect("send");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");
    assert!(response.contains("\"kind\":\"spec_parse\""), "{response}");
    assert!(response.contains("body"), "{response}");

    // The worker survived the disconnect.
    let (status, body) = post_run(&addr, SPEC);
    assert_eq!(status, 200, "{body}");
    server.shutdown();
    server.join();
}

#[test]
fn graceful_drain_completes_queued_runs() {
    let (server, addr) = start_server(16, 1);
    // Submit a real run, give the accept loop time to queue it, then
    // immediately request shutdown: the reply must still be a complete
    // 200 campaign, not a reset.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST /run HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{SPEC}",
                SPEC.len()
            )
            .as_bytes(),
        )
        .expect("send");
    std::thread::sleep(Duration::from_millis(300));
    server.shutdown();

    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(
        response.starts_with("HTTP/1.1 200 "),
        "drain dropped an accepted run: {response}"
    );
    let body = response.split_once("\r\n\r\n").unwrap().1;
    assert!(json::parse(body).is_ok(), "drained reply is complete JSON");
    server.join();

    // The drained server no longer accepts.
    assert!(
        TcpStream::connect(&addr).is_err() || request(&addr, "GET", "/healthz", "").0 == 0,
        "listener should be closed after join"
    );
}
