//! Golden-snapshot tests over the paper's rendered artifacts.
//!
//! Each test renders one table/figure from a deterministic reduced-scale
//! campaign (5 apps × 5 configurations, apps shrunk by a fixed factor of
//! 16 so the grid is fast in debug builds yet identical across build
//! profiles) and compares it byte-for-byte against the snapshot checked
//! in under `tests/golden/`.
//!
//! When a change intentionally moves a rendered number, re-record the
//! snapshots:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! then commit the updated `tests/golden/*.txt` together with the code
//! change, so the diff review shows exactly which published numbers
//! moved.

use std::path::PathBuf;
use std::sync::OnceLock;

use cedar::apps::perfect_suite;
use cedar::core::suite::SuiteResult;
use cedar::hw::Configuration;
use cedar::obs::RunOptions;
use cedar::report::{figures, golden, tables};

/// Fixed shrink factor — must not depend on the build profile, or the
/// snapshots would differ between `cargo test` and `cargo test --release`.
const GOLDEN_SHRINK: u32 = 16;

fn campaign() -> &'static SuiteResult {
    static C: OnceLock<SuiteResult> = OnceLock::new();
    C.get_or_init(|| {
        let apps: Vec<_> = perfect_suite()
            .into_iter()
            .map(|a| a.shrunk(GOLDEN_SHRINK))
            .collect();
        SuiteResult::run_parallel(&apps, &Configuration::ALL, &RunOptions::default())
            .expect("campaign experiment panicked")
    })
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

#[test]
fn table2_matches_golden() {
    golden::assert_matches(&golden_path("table2"), &tables::table2(campaign()));
}

#[test]
fn table3_matches_golden() {
    golden::assert_matches(&golden_path("table3"), &tables::table3(campaign()));
}

#[test]
fn table4_matches_golden() {
    golden::assert_matches(&golden_path("table4"), &tables::table4(campaign()));
}

#[test]
fn figure3_matches_golden() {
    golden::assert_matches(&golden_path("figure3"), &figures::figure3(campaign()));
}
