//! Full-scale reproduction bands: the quantitative claims EXPERIMENTS.md
//! makes, as executable checks against the publication-scale campaign.
//!
//! These run the complete 5-apps × 5-configurations campaign (~10 s in
//! release, minutes in debug), so they are `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test paper_bands -- --ignored
//! ```

use std::sync::OnceLock;

use cedar::core::methodology::{contention_overhead, parallel_loop_concurrency};
use cedar::core::suite::SuiteResult;
use cedar::hw::Configuration;
use cedar::obs::RunOptions;
use cedar::trace::UserBucket;

fn campaign() -> &'static SuiteResult {
    static C: OnceLock<SuiteResult> = OnceLock::new();
    C.get_or_init(|| SuiteResult::full_campaign(&RunOptions::default()))
}

fn speedup(app: &str, c: Configuration) -> f64 {
    let a = campaign().app(app);
    a.run(c).speedup_over(a.baseline())
}

fn contention(app: &str, c: Configuration) -> f64 {
    let a = campaign().app(app);
    contention_overhead(a.baseline(), a.run(c)).overhead_pct
}

#[test]
#[ignore = "full-scale campaign; run with --release -- --ignored"]
fn table1_speedup_ordering_matches_paper_at_32p() {
    // Paper: MDG (24.4) > ARC2D (15.1) ~ OCEAN (15.6) > FLO52 (8.4) ~ ADM (8.8).
    let mdg = speedup("MDG", Configuration::P32);
    let arc = speedup("ARC2D", Configuration::P32);
    let ocean = speedup("OCEAN", Configuration::P32);
    let flo = speedup("FLO52", Configuration::P32);
    let adm = speedup("ADM", Configuration::P32);
    assert!(mdg > arc && mdg > ocean, "MDG scales best");
    assert!(arc > flo && ocean > flo, "FLO52 in the bottom group");
    assert!(arc > adm && ocean > adm, "ADM in the bottom group");
    assert!(mdg > 22.0, "MDG near-linear: {mdg}");
    assert!(adm < 10.0, "ADM saturates: {adm}");
}

#[test]
#[ignore = "full-scale campaign; run with --release -- --ignored"]
fn table1_adm_flattens_after_16() {
    let s16 = speedup("ADM", Configuration::P16);
    let s32 = speedup("ADM", Configuration::P32);
    assert!(
        (s32 - s16).abs() / s16 < 0.15,
        "ADM 16p->32p nearly flat: {s16} -> {s32}"
    );
}

#[test]
#[ignore = "full-scale campaign; run with --release -- --ignored"]
fn table4_flo52_is_the_contention_champion_and_peaks_within_one_cluster() {
    // Paper: FLO52 17/27/24/21 — highest of the suite, peaked at 8p.
    let at = |c| contention("FLO52", c);
    let p8 = at(Configuration::P8);
    assert!(p8 > 20.0, "FLO52 8p contention {p8} should exceed 20%");
    assert!(p8 > at(Configuration::P4), "peak is past 4p");
    for other in ["ARC2D", "MDG", "OCEAN"] {
        assert!(
            at(Configuration::P32) > contention(other, Configuration::P32),
            "FLO52 tops {other} at 32p"
        );
    }
}

#[test]
#[ignore = "full-scale campaign; run with --release -- --ignored"]
fn table4_contention_rises_with_processors_for_the_balanced_apps() {
    for app in ["ARC2D", "MDG"] {
        let o4 = contention(app, Configuration::P4);
        let o32 = contention(app, Configuration::P32);
        assert!(o32 > o4 + 3.0, "{app}: {o4} -> {o32} should rise");
        assert!(o4 < 5.0, "{app} starts small: {o4}");
    }
}

#[test]
#[ignore = "full-scale campaign; run with --release -- --ignored"]
fn table3_concurrency_orderings() {
    // MDG ~8 per cluster; OCEAN and ADM lowest; nothing above 8 (+slack).
    let par = |app: &str| {
        parallel_loop_concurrency(campaign().app(app).run(Configuration::P32))[0].par_concurr
    };
    let mdg = par("MDG");
    assert!(mdg > 7.8 && mdg <= 8.3, "MDG per-cluster ~8: {mdg}");
    assert!(par("OCEAN") < 7.0, "OCEAN starved");
    assert!(par("ADM") < 7.0, "ADM starved");
    for app in ["FLO52", "ARC2D", "MDG", "OCEAN", "ADM"] {
        for cc in parallel_loop_concurrency(campaign().app(app).run(Configuration::P32)) {
            assert!(cc.par_concurr <= 8.5, "{app}: {}", cc.par_concurr);
        }
    }
}

#[test]
#[ignore = "full-scale campaign; run with --release -- --ignored"]
fn figure3_os_bands() {
    for app in ["FLO52", "ARC2D", "MDG", "OCEAN", "ADM"] {
        let a = campaign().app(app);
        let p1 = a.run(Configuration::P1).os_overhead_fraction();
        let p32 = a.run(Configuration::P32).os_overhead_fraction();
        assert!(p1 < 0.05, "{app}: 1p OS {p1} in the 3-4% band");
        assert!(p32 > p1, "{app}: OS grows with processors");
        assert!(p32 < 0.21, "{app}: 32p OS {p32} within the paper's band");
        // Kernel spin negligible (§5).
        let spin = a.run(Configuration::P32).utilization[0]
            .spin
            .fraction_of(a.run(Configuration::P32).completion_time);
        assert!(spin < 0.02, "{app}: spin {spin}");
    }
}

#[test]
#[ignore = "full-scale campaign; run with --release -- --ignored"]
fn figures5to9_parallelization_bands() {
    // Main task 10-25%-ish at 32p (we allow the band's floor to sag a
    // little for FLO52, see EXPERIMENTS.md); helpers always above main.
    for app in ["FLO52", "ARC2D", "MDG", "OCEAN", "ADM"] {
        let r = campaign().app(app).run(Configuration::P32);
        let main = r.main_parallelization_fraction();
        assert!(
            (0.05..=0.30).contains(&main),
            "{app}: main parallelization overhead {main}"
        );
        for (h, b) in r.helper_breakdowns().iter().enumerate() {
            let helper = b.parallelization_overhead().fraction_of(r.completion_time);
            assert!(
                helper > main,
                "{app} helper{h}: {helper} should exceed main {main} (spin-wait)"
            );
        }
    }
}

#[test]
#[ignore = "full-scale campaign; run with --release -- --ignored"]
fn figure5_flo52_helper_wait_band() {
    // Paper: ~34% at 32p; we land at 40-44%.
    let r = campaign().app("FLO52").run(Configuration::P32);
    for b in r.helper_breakdowns() {
        let wait = b.get(UserBucket::HelperWait).fraction_of(r.completion_time);
        assert!(
            (0.25..=0.55).contains(&wait),
            "FLO52 helper wait {wait} out of band"
        );
    }
}

#[test]
#[ignore = "full-scale campaign; run with --release -- --ignored"]
fn table2_component_ordering() {
    use cedar::xylem::OsActivity;
    // cpi + ctx + page faults + cluster critical sections dominate.
    for app in ["FLO52", "ARC2D", "MDG"] {
        let r = campaign().app(app).run(Configuration::P32);
        let big: u64 = [
            OsActivity::Cpi,
            OsActivity::Ctx,
            OsActivity::PgFltConcurrent,
            OsActivity::PgFltSequential,
            OsActivity::CrSectCluster,
        ]
        .iter()
        .map(|a| r.os_activity(*a).0)
        .sum();
        let small: u64 = [
            OsActivity::SyscallCluster,
            OsActivity::SyscallGlobal,
            OsActivity::CrSectGlobal,
            OsActivity::Ast,
        ]
        .iter()
        .map(|a| r.os_activity(*a).0)
        .sum();
        assert!(
            big > 2 * small,
            "{app}: the big four must dominate ({big} vs {small})"
        );
    }
}
