#!/usr/bin/env sh
# Benchmark regression gate: run the scheduler/suite benchmark and
# compare the fresh results against the committed baseline.
#
#   ./scripts/bench_check.sh            # what CI runs
#
# Fails (non-zero exit) when either:
#   - the fresh `suite/mini_campaign` median exceeds the baseline's by
#     more than 15%, or
#   - the calendar scheduler drops below 1.3x over the heap on the
#     event-dense network workload (checked within the fresh run, so it
#     holds on any machine speed).
#
# Refreshing the baseline: after an *intentional* performance change
# (or a change of reference hardware), re-pin it with
#
#   BENCH_ITERS=5 cargo bench --offline -p cedar-bench --bench scheduler
#   cp results/BENCH_scheduler.json results/bench_baseline.json
#
# and commit results/bench_baseline.json together with the change that
# explains it. Fresh BENCH_*.json files are gitignored; only the
# baseline is tracked.
set -eu

cd "$(dirname "$0")/.."

ITERS="${BENCH_ITERS:-5}"

echo "==> scheduler benchmark (BENCH_ITERS=$ITERS)"
BENCH_ITERS="$ITERS" cargo bench --offline -p cedar-bench --bench scheduler

echo "==> bench gate: fresh vs results/bench_baseline.json"
cargo run -q --release --offline -p cedar-bench --bin bench_gate -- \
    results/BENCH_scheduler.json results/bench_baseline.json
