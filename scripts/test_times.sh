#!/usr/bin/env sh
# Per-suite wall-clock timing for the root integration tests.
#
#   ./scripts/test_times.sh             # what CI runs
#
# Runs every suite under tests/ one at a time, records its wall-clock
# in results/TEST_times.json, and prints a *soft* warning for any suite
# over the ceiling (TEST_TIME_LIMIT, default 60 s). The warning never
# fails the build — it exists so a suite that quietly grows into a
# multi-minute monster shows up in CI logs before it hurts, with the
# JSON history alongside the bench results for trend-watching.
#
# Fresh TEST_times.json files are gitignored, like BENCH_*.json.
set -eu

cd "$(dirname "$0")/.."

LIMIT="${TEST_TIME_LIMIT:-60}"
OUT=results/TEST_times.json
mkdir -p results

# Compile everything up front so the timings measure tests, not builds.
cargo test -q --offline --no-run >/dev/null 2>&1

{
    echo '{'
    echo '  "unit": "seconds",'
    echo "  \"warn_over\": $LIMIT,"
    echo '  "suites": {'
} > "$OUT.tmp"

slow=""
first=1
for f in tests/*.rs; do
    name=$(basename "$f" .rs)
    start=$(date +%s%N)
    cargo test -q --offline --test "$name" >/dev/null
    end=$(date +%s%N)
    elapsed=$(awk "BEGIN{printf \"%.2f\", ($end - $start) / 1e9}")
    [ "$first" = 1 ] || echo ',' >> "$OUT.tmp"
    first=0
    printf '    "%s": %s' "$name" "$elapsed" >> "$OUT.tmp"
    echo "    $name: ${elapsed}s"
    over=$(awk "BEGIN{print ($elapsed > $LIMIT) ? 1 : 0}")
    [ "$over" = 1 ] && slow="$slow $name(${elapsed}s)"
done

{
    echo ''
    echo '  }'
    echo '}'
} >> "$OUT.tmp"
mv "$OUT.tmp" "$OUT"
echo "    wrote $OUT"

if [ -n "$slow" ]; then
    echo "warning: integration suites over ${LIMIT}s:$slow" >&2
    echo "warning: keep suites fast or split them (soft ceiling, not a failure)" >&2
fi
