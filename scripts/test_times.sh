#!/usr/bin/env sh
# Per-suite wall-clock budgets for the root integration tests.
#
#   ./scripts/test_times.sh                    # what CI runs
#   UPDATE_BUDGETS=1 ./scripts/test_times.sh   # re-pin the budgets
#   TEST_BUDGET_FACTOR=3 ./scripts/test_times.sh  # slow-machine headroom
#
# Runs every suite under tests/ one at a time, records its wall-clock in
# results/TEST_times.json, and enforces the committed per-suite ceilings
# in results/TEST_budgets.json as a *hard* gate: a suite over its budget
# (or absent from the budget file) fails the build. This replaces the
# old soft 60 s warning — a suite that quietly grows into a multi-minute
# monster now breaks CI instead of scrolling past in the logs.
#
# The budgets are pinned with generous headroom (4x the measured time,
# 5 s floor) so machine jitter never trips the gate; a breach means a
# real complexity change. To accept one deliberately, re-pin with
# UPDATE_BUDGETS=1 and commit the refreshed results/TEST_budgets.json.
# TEST_BUDGET_FACTOR multiplies every budget for known-slow machines
# (e.g. emulated CI runners) without touching the pinned file.
#
# Fresh TEST_times.json files are gitignored, like BENCH_*.json;
# TEST_budgets.json is committed, like bench_baseline.json.
set -eu

cd "$(dirname "$0")/.."

BUDGETS=results/TEST_budgets.json
OUT=results/TEST_times.json
FACTOR="${TEST_BUDGET_FACTOR:-1}"
mkdir -p results

if [ "${UPDATE_BUDGETS:-0}" != 1 ] && [ ! -f "$BUDGETS" ]; then
    echo "error: $BUDGETS missing; pin it with UPDATE_BUDGETS=1 $0" >&2
    exit 1
fi

# Compile everything up front so the timings measure tests, not builds.
cargo test -q --offline --no-run >/dev/null 2>&1

{
    echo '{'
    echo '  "unit": "seconds",'
    echo '  "suites": {'
} > "$OUT.tmp"

breaches=""
first=1
for f in tests/*.rs; do
    name=$(basename "$f" .rs)
    start=$(date +%s%N)
    cargo test -q --offline --test "$name" >/dev/null
    end=$(date +%s%N)
    elapsed=$(awk "BEGIN{printf \"%.2f\", ($end - $start) / 1e9}")
    [ "$first" = 1 ] || echo ',' >> "$OUT.tmp"
    first=0
    printf '    "%s": %s' "$name" "$elapsed" >> "$OUT.tmp"
    if [ "${UPDATE_BUDGETS:-0}" = 1 ]; then
        echo "    $name: ${elapsed}s"
        continue
    fi
    budget=$(sed -n "s/^    \"$name\": \([0-9.]*\),*\$/\1/p" "$BUDGETS")
    if [ -z "$budget" ]; then
        echo "    $name: ${elapsed}s (NO BUDGET)"
        breaches="$breaches $name(unbudgeted)"
        continue
    fi
    limit=$(awk "BEGIN{printf \"%.2f\", $budget * $FACTOR}")
    echo "    $name: ${elapsed}s (budget ${limit}s)"
    over=$(awk "BEGIN{print ($elapsed > $limit) ? 1 : 0}")
    [ "$over" = 1 ] && breaches="$breaches $name(${elapsed}s>${limit}s)"
done

{
    echo ''
    echo '  }'
    echo '}'
} >> "$OUT.tmp"
mv "$OUT.tmp" "$OUT"
echo "    wrote $OUT"

if [ "${UPDATE_BUDGETS:-0}" = 1 ]; then
    # Re-pin: 4x the measured wall-clock, 5 s floor, whole seconds.
    {
        echo '{'
        echo '  "unit": "seconds",'
        echo '  "note": "hard per-suite ceilings: 4x measured, 5s floor; re-pin with UPDATE_BUDGETS=1 scripts/test_times.sh",'
        echo '  "suites": {'
    } > "$BUDGETS.tmp"
    # OUT and BUDGETS share the suites-block line format, so the pinned
    # file is derived straight from the fresh timings.
    sed -n 's/^    "\([a-z_]*\)": \([0-9.]*\),*$/\1 \2/p' "$OUT" \
        | awk '{ b = $2 * 4; if (b < 5) b = 5;
                 printf "    \"%s\": %d,\n", $1, int(b + 0.999) }' \
        | sed '$ s/,$//' >> "$BUDGETS.tmp"
    {
        echo '  }'
        echo '}'
    } >> "$BUDGETS.tmp"
    mv "$BUDGETS.tmp" "$BUDGETS"
    echo "    pinned $BUDGETS"
    exit 0
fi

if [ -n "$breaches" ]; then
    echo "error: integration suites over budget:$breaches" >&2
    echo "split the suite, or re-pin deliberately with UPDATE_BUDGETS=1 and commit $BUDGETS" >&2
    exit 1
fi
