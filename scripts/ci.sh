#!/usr/bin/env sh
# CI entry point: the offline-build guarantee, the full test suite, and
# a one-iteration smoke pass of the bench harness.
#
# The workspace has zero external dependencies, so every step runs with
# --offline and must succeed with no registry or network access. If an
# external crate ever sneaks into a Cargo.toml, the first build step
# fails here before anything else runs.
set -eu

cd "$(dirname "$0")/.."

# Environment-read guard: library crates must take their configuration
# through the typed cedar_obs::RunOptions surface, not ambient std::env
# reads. Only two sanctioned readers exist — RunOptions::from_env
# (crates/obs/src/options.rs) and the golden-snapshot re-recorder
# (UPDATE_GOLDEN, crates/report/src/golden.rs). Any other hit fails CI.
echo "==> env-read guard (std::env::var outside sanctioned modules)"
leaks=$(grep -rn "std::env::var" crates/*/src \
    | grep -v "^crates/obs/src/options\.rs:" \
    | grep -v "^crates/report/src/golden\.rs:" \
    || true)
if [ -n "$leaks" ]; then
    echo "error: unsanctioned std::env::var in library code:" >&2
    echo "$leaks" >&2
    echo "route the knob through cedar_obs::RunOptions instead" >&2
    exit 1
fi

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline (workspace, debug)"
cargo test -q --offline --workspace

echo "==> per-suite integration-test timings (soft 60s ceiling)"
./scripts/test_times.sh

echo "==> bench harness smoke pass (BENCH_SMOKE=1: 1 iteration, no warmup)"
BENCH_SMOKE=1 cargo bench --offline -p cedar-bench

echo "==> reduced-scale campaign + run manifest (CEDAR_SHRINK=16, CEDAR_OBS=full)"
CEDAR_SHRINK=16 CEDAR_OBS=full cargo run --release --offline -p cedar-bench --bin all > /dev/null
for f in results/RUN_manifest.json results/RUN_telemetry.jsonl; do
    test -s "$f" || {
        echo "error: campaign did not write $f" >&2
        exit 1
    }
done
echo "    wrote results/RUN_manifest.json + results/RUN_telemetry.jsonl"

echo "==> fault-sensitivity sweep smoke (CEDAR_SHRINK=16)"
CEDAR_SHRINK=16 cargo run --release --offline -p cedar-bench --bin faultsweep > /dev/null
test -s results/FAULTS_sensitivity.csv || {
    echo "error: faultsweep did not write results/FAULTS_sensitivity.csv" >&2
    exit 1
}
echo "    wrote results/FAULTS_sensitivity.csv"

echo "==> OK"
