#!/usr/bin/env sh
# CI entry point: the offline-build guarantee, the full test suite, and
# a one-iteration smoke pass of the bench harness.
#
# The workspace has zero external dependencies, so every step runs with
# --offline and must succeed with no registry or network access. If an
# external crate ever sneaks into a Cargo.toml, the first build step
# fails here before anything else runs.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline (workspace, debug)"
cargo test -q --offline --workspace

echo "==> bench harness smoke pass (BENCH_SMOKE=1: 1 iteration, no warmup)"
BENCH_SMOKE=1 cargo bench --offline -p cedar-bench

echo "==> OK"
