#!/usr/bin/env sh
# CI entry point: the offline-build guarantee, the full test suite, a
# one-iteration smoke pass of the bench harness, and the run-cache
# soundness check (warm campaign = cold campaign, only faster).
#
# The workspace has zero external dependencies, so every step runs with
# --offline and must succeed with no registry or network access. The
# guard below catches an external crate in any Cargo.toml by name
# before the build would fail on it.
set -eu

cd "$(dirname "$0")/.."

# Environment-read guard: library crates must take their configuration
# through the typed cedar_obs::RunOptions surface, not ambient std::env
# reads. Only four sanctioned readers exist — RunOptions::from_env
# (crates/obs/src/options.rs), ServeOptions::from_env
# (crates/serve/src/options.rs), CheckOptions::from_env
# (CEDAR_CHECK_REPLAY, crates/check/src/options.rs) and the
# golden-snapshot re-recorder (UPDATE_GOLDEN, crates/report/src/golden.rs).
# Any other hit fails CI.
echo "==> env-read guard (std::env::var outside sanctioned modules)"
leaks=$(grep -rn "std::env::var" crates/*/src \
    | grep -v "^crates/obs/src/options\.rs:" \
    | grep -v "^crates/serve/src/options\.rs:" \
    | grep -v "^crates/check/src/options\.rs:" \
    | grep -v "^crates/report/src/golden\.rs:" \
    || true)
if [ -n "$leaks" ]; then
    echo "error: unsanctioned std::env::var in library code:" >&2
    echo "$leaks" >&2
    echo "route the knob through cedar_obs::RunOptions instead" >&2
    exit 1
fi

# Zero-dependency guard: every [dependencies]/[dev-dependencies] entry
# in every Cargo.toml must be a workspace member — either a
# `*.workspace = true` reference in a crate manifest or a `path = ...`
# entry in the root [workspace.dependencies] table. An external crate
# would already fail `cargo build --offline`, but only after resolution;
# this names the offending line directly.
echo "==> zero-dependency guard (workspace-only Cargo.toml entries)"
bad=$(awk '
    /^\[/ { indeps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies/) }
    indeps && !/^\[/ && !/^[ \t]*(#|$)/ {
        if ($0 !~ /workspace[ \t]*=[ \t]*true/ && $0 !~ /path[ \t]*=/)
            printf "%s: %s\n", FILENAME, $0
    }
' Cargo.toml crates/*/Cargo.toml)
if [ -n "$bad" ]; then
    echo "error: non-workspace dependency in a Cargo.toml:" >&2
    echo "$bad" >&2
    echo "the workspace is zero-dependency; vendor the code or drop it" >&2
    exit 1
fi

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline (workspace, debug)"
cargo test -q --offline --workspace

echo "==> per-suite integration-test budgets (hard, results/TEST_budgets.json)"
./scripts/test_times.sh

echo "==> bench harness smoke pass (BENCH_SMOKE=1: 1 iteration, no warmup)"
BENCH_SMOKE=1 cargo bench --offline -p cedar-bench

echo "==> reduced-scale campaign + run manifest (CEDAR_SHRINK=16, CEDAR_OBS=full)"
CEDAR_SHRINK=16 CEDAR_OBS=full cargo run --release --offline -p cedar-bench --bin all > /dev/null
for f in results/RUN_manifest.json results/RUN_telemetry.jsonl; do
    test -s "$f" || {
        echo "error: campaign did not write $f" >&2
        exit 1
    }
done
echo "    wrote results/RUN_manifest.json + results/RUN_telemetry.jsonl"

# Cache soundness: the same shrunk campaign twice against one cache
# root. The cold pass populates the store, the warm pass must (a) hit on
# every lookup, (b) produce a RUN_manifest.json byte-identical to the
# cold one once the volatile fields (*_ns wall-clocks, utilization, git
# provenance, and the cache-traffic object itself) are masked, and
# (c) be measurably faster than simulating. The built binary is invoked
# directly so the timing compares campaigns, not cargo overhead.
echo "==> run-cache soundness (cold vs warm campaign, CEDAR_SHRINK=4)"
scratch=$(mktemp -d "${TMPDIR:-/tmp}/cedar-cache-ci.XXXXXX")
trap 'rm -rf "$scratch"; [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
mask_manifest() {
    sed -e 's/"git":"[^"]*"/"git":"MASKED"/' \
        -e 's/"git":null/"git":"MASKED"/' \
        -e 's/"\([a-z_]*_ns\)":[0-9][0-9]*/"\1":0/g' \
        -e 's/"utilization":[0-9.eE+-]*/"utilization":0/' \
        -e 's/"cache":{[^}]*}/"cache":{}/' \
        "$1"
}
cold_start=$(date +%s%N)
CEDAR_SHRINK=4 CEDAR_CACHE=rw BENCH_JSON_DIR="$scratch" \
    ./target/release/all > /dev/null
cold_end=$(date +%s%N)
mask_manifest "$scratch/RUN_manifest.json" > "$scratch/cold.masked.json"
warm_start=$(date +%s%N)
CEDAR_SHRINK=4 CEDAR_CACHE=rw BENCH_JSON_DIR="$scratch" \
    ./target/release/all > /dev/null
warm_end=$(date +%s%N)
mask_manifest "$scratch/RUN_manifest.json" > "$scratch/warm.masked.json"

runs=$(sed -n 's/.*"runs":\([0-9]*\).*/\1/p' "$scratch/RUN_manifest.json")
if ! grep -q "\"cache\":{\"mode\":\"rw\",\"hits\":$runs,\"misses\":0,\"writes\":0,\"bypasses\":0" \
    "$scratch/RUN_manifest.json"; then
    echo "error: warm campaign was not a 100% cache hit (runs=$runs):" >&2
    sed -n 's/.*\("cache":{[^}]*}\).*/\1/p' "$scratch/RUN_manifest.json" >&2
    exit 1
fi
if ! cmp -s "$scratch/cold.masked.json" "$scratch/warm.masked.json"; then
    echo "error: cold and warm manifests differ after masking:" >&2
    diff "$scratch/cold.masked.json" "$scratch/warm.masked.json" >&2 || true
    exit 1
fi
cold_s=$(awk "BEGIN{printf \"%.2f\", ($cold_end - $cold_start) / 1e9}")
warm_s=$(awk "BEGIN{printf \"%.2f\", ($warm_end - $warm_start) / 1e9}")
speedup=$(awk "BEGIN{printf \"%.1f\", ($cold_end - $cold_start) / ($warm_end - $warm_start)}")
echo "    $runs/$runs warm hits, manifests identical after masking"
echo "    cold ${cold_s}s -> warm ${warm_s}s (${speedup}x speedup)"
mkdir -p results
printf '{\n  "runs": %s,\n  "warm_hits": %s,\n  "cold_s": %s,\n  "warm_s": %s,\n  "speedup": %s\n}\n' \
    "$runs" "$runs" "$cold_s" "$warm_s" "$speedup" > results/CACHE_check.json
echo "    wrote results/CACHE_check.json"
min_speedup="${CACHE_MIN_SPEEDUP:-2}"
slow=$(awk "BEGIN{print ($speedup < $min_speedup) ? 1 : 0}")
if [ "$slow" = 1 ]; then
    echo "error: warm campaign only ${speedup}x faster (floor ${min_speedup}x)" >&2
    echo "raise the floor via CACHE_MIN_SPEEDUP only with a reason" >&2
    exit 1
fi

# Campaign-service smoke: a real server on an ephemeral port, a seeded
# open-loop burst fired three times with the same seed. Gates: every
# response is 2xx or an explicit 503 shed (loadgen exits nonzero
# otherwise), the repeated burst replays ≥90% of its runs from the
# cache (its key space is identical, so anything lower means the
# content addressing broke), the keep-alive warm burst serves ≥90% of
# its runs from the in-memory hot tier with warm p99 inside the
# committed budget (results/SERVE_budget.json), and the server drains
# cleanly on SIGTERM.
echo "==> campaign-service smoke (ephemeral port, seeded load, warm cache)"
CEDAR_SERVE_ADDR=127.0.0.1:0 CEDAR_SERVE_QUEUE=64 \
    ./target/release/serve > "$scratch/serve.out" 2> "$scratch/serve.err" &
serve_pid=$!
serve_addr=""
tries=0
while [ -z "$serve_addr" ] && [ "$tries" -lt 100 ]; do
    serve_addr=$(sed -n 's/^cedar-serve listening on //p' "$scratch/serve.out")
    [ -n "$serve_addr" ] || { tries=$((tries + 1)); sleep 0.1; }
done
if [ -z "$serve_addr" ]; then
    echo "error: serve did not report a listen address" >&2
    cat "$scratch/serve.err" >&2
    exit 1
fi
CEDAR_SERVE_ADDR="$serve_addr" ./target/release/loadgen \
    --requests 30 --rate 15 --seed 7 --shrink 32 \
    --out "$scratch/SERVE_cold.json" > /dev/null
CEDAR_SERVE_ADDR="$serve_addr" ./target/release/loadgen \
    --requests 30 --rate 15 --seed 7 --shrink 32 \
    --out "$scratch/SERVE_warm.json" > /dev/null
counter() { sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p" "$1"; }
warm_hits=$(( $(counter "$scratch/SERVE_warm.json" cache_hits_total) \
    - $(counter "$scratch/SERVE_cold.json" cache_hits_total) ))
warm_misses=$(( $(counter "$scratch/SERVE_warm.json" cache_misses_total) \
    - $(counter "$scratch/SERVE_cold.json" cache_misses_total) ))
low=$(awk "BEGIN{t=$warm_hits+$warm_misses; print (t == 0 || $warm_hits/t < 0.9) ? 1 : 0}")
if [ "$low" = 1 ]; then
    echo "error: warm burst hit rate below 90% ($warm_hits hits, $warm_misses misses)" >&2
    exit 1
fi
echo "    $warm_hits/$((warm_hits + warm_misses)) warm hits (connection-per-request)"

# Keep-alive warm burst: the same seeded mix once more, over two
# persistent connections (one per default worker) — the path a real
# client sees. This is the latency report the repo commits.
CEDAR_SERVE_ADDR="$serve_addr" ./target/release/loadgen \
    --requests 30 --rate 15 --seed 7 --shrink 32 --keepalive 2 \
    --out results/SERVE_load.json > /dev/null
test -s results/SERVE_load.json || {
    echo "error: loadgen did not write results/SERVE_load.json" >&2
    exit 1
}
hot_hits=$(( $(counter results/SERVE_load.json cache_hot_hits_total) \
    - $(counter "$scratch/SERVE_warm.json" cache_hot_hits_total) ))
reuse=$(( $(counter results/SERVE_load.json keepalive_reuse_total) \
    - $(counter "$scratch/SERVE_warm.json" keepalive_reuse_total) ))
low_hot=$(awk "BEGIN{print ($hot_hits / 30 < 0.9) ? 1 : 0}")
if [ "$low_hot" = 1 ]; then
    echo "error: keep-alive warm burst hot-tier hit rate below 90% ($hot_hits/30)" >&2
    exit 1
fi
if [ "$reuse" -lt 1 ]; then
    echo "error: keep-alive burst never reused a connection" >&2
    exit 1
fi
warm_p99=$(sed -n 's/.*"p99": *\([0-9.]*\).*/\1/p' results/SERVE_load.json)
p99_budget=$(sed -n 's/.*"warm_p99_ms": *\([0-9.]*\).*/\1/p' results/SERVE_budget.json)
if [ -z "$warm_p99" ] || [ -z "$p99_budget" ]; then
    echo "error: could not extract warm p99 (${warm_p99:-?}) or budget (${p99_budget:-?})" >&2
    exit 1
fi
over=$(awk "BEGIN{print ($warm_p99 > $p99_budget) ? 1 : 0}")
if [ "$over" = 1 ]; then
    echo "error: keep-alive warm p99 ${warm_p99}ms exceeds the ${p99_budget}ms budget" >&2
    echo "(results/SERVE_budget.json is the committed ceiling; raise it only with a reason)" >&2
    exit 1
fi
kill -TERM "$serve_pid"
wait "$serve_pid" || {
    echo "error: serve did not drain cleanly on SIGTERM" >&2
    exit 1
}
serve_pid=""
echo "    $hot_hits/30 hot-tier hits, $reuse reused requests, p99 ${warm_p99}ms <= ${p99_budget}ms, graceful drain OK"
echo "    wrote results/SERVE_load.json"

echo "==> fault-sensitivity sweep smoke (CEDAR_SHRINK=16)"
CEDAR_SHRINK=16 cargo run --release --offline -p cedar-bench --bin faultsweep > /dev/null
test -s results/FAULTS_sensitivity.csv || {
    echo "error: faultsweep did not write results/FAULTS_sensitivity.csv" >&2
    exit 1
}
echo "    wrote results/FAULTS_sensitivity.csv"

# Invariant-oracle checker smoke: the four-case corpus under permuted
# tie-breaking. Exit 0 is the gate (any violation is a real bug or a
# real oracle miscalibration — both block); the violation report and
# the checker's own run manifest must exist, and the manifest must
# carry the oracle rollup so a green run is auditable.
echo "==> check-harness smoke (BENCH_SMOKE=1: 4 cases, all oracles)"
BENCH_SMOKE=1 BENCH_JSON_DIR="$scratch/check" ./target/release/check
for f in "$scratch/check/CHECK_violations.json" "$scratch/check/RUN_manifest.json"; do
    test -s "$f" || {
        echo "error: check did not write $f" >&2
        exit 1
    }
done
if ! grep -q '"check.oracles.pass":' "$scratch/check/RUN_manifest.json"; then
    echo "error: check manifest lacks the oracle rollup counters" >&2
    exit 1
fi
cp "$scratch/check/CHECK_violations.json" results/CHECK_violations.json
echo "    wrote results/CHECK_violations.json (0 violations)"

echo "==> OK"
