//! Facade crate re-exporting the Cedar reproduction workspace.
//!
//! The workspace reproduces the ISCA'94 study *Measurement-Based
//! Characterization of Global Memory and Network Contention, Operating
//! System and Parallelization Overheads* (Natarajan, Sharma, Iyer) on a
//! simulated Cedar shared-memory multiprocessor.
//!
//! Most users want [`prelude`] (one import for the whole experiment
//! surface), [`core`] (experiment driver and methodology), [`apps`] (the
//! five Perfect Benchmark workload models) and [`report`] (table/figure
//! rendering). The remaining crates are the simulated substrates:
//! [`hw`] (network + global memory + clusters), [`xylem`] (operating
//! system), [`rtl`] (Cedar Fortran runtime), [`trace`] (cedarhpm /
//! statfx / Q measurement facilities), [`faults`] (deterministic
//! fault-injection campaigns), [`obs`] (the reproduction's own
//! telemetry: `RunOptions`, recorders, the run-manifest JSON writer) and
//! [`cache`] (the content-addressed store of completed runs behind
//! `CEDAR_CACHE`), all built on the [`sim`] discrete-event kernel.
//! [`serve`] exposes campaigns as an HTTP service with backpressure and
//! cache-backed replies, and [`check`] is the model-checker-style
//! harness that re-executes campaigns under permuted event orders and
//! asserts the reproduction's invariant-oracle registry.

pub use cedar_apps as apps;
pub use cedar_cache as cache;
pub use cedar_check as check;
pub use cedar_core as core;
pub use cedar_faults as faults;
pub use cedar_hw as hw;
pub use cedar_obs as obs;
pub use cedar_report as report;
pub use cedar_rtl as rtl;
pub use cedar_serve as serve;
pub use cedar_sim as sim;
pub use cedar_trace as trace;
pub use cedar_xylem as xylem;

/// Everything needed to configure, run and report a measurement
/// campaign: [`cedar_core::prelude`] plus the report entry points.
///
/// ```
/// use cedar::prelude::*;
///
/// let opts = RunOptions::default().with_scheduler(SchedKind::Heap);
/// let app = cedar::apps::synthetic::uniform_xdoall(1, 2, 8, 150, 4);
/// let suite = SuiteResult::run_sequential(&[app], &[Configuration::P1], &opts).unwrap();
/// assert!(tables::table1(&suite).contains("1 proc"));
/// ```
pub mod prelude {
    pub use cedar_core::prelude::*;
    pub use cedar_report::{csv, figures, golden, tables};
    pub use cedar_serve::{CampaignSpec, ServeOptions, Server};
}
