//! Facade crate re-exporting the Cedar reproduction workspace.
//!
//! The workspace reproduces the ISCA'94 study *Measurement-Based
//! Characterization of Global Memory and Network Contention, Operating
//! System and Parallelization Overheads* (Natarajan, Sharma, Iyer) on a
//! simulated Cedar shared-memory multiprocessor.
//!
//! Most users want [`core`] (experiment driver and methodology),
//! [`apps`] (the five Perfect Benchmark workload models) and
//! [`report`] (table/figure rendering). The remaining crates are the
//! simulated substrates: [`hw`] (network + global memory + clusters),
//! [`xylem`] (operating system), [`rtl`] (Cedar Fortran runtime) and
//! [`trace`] (cedarhpm / statfx / Q measurement facilities), all built on
//! the [`sim`] discrete-event kernel.

pub use cedar_apps as apps;
pub use cedar_core as core;
pub use cedar_hw as hw;
pub use cedar_report as report;
pub use cedar_rtl as rtl;
pub use cedar_sim as sim;
pub use cedar_trace as trace;
pub use cedar_xylem as xylem;
