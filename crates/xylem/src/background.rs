//! Background (multiprogrammed) load.
//!
//! The paper measures "a dedicated, single user setting with only the
//! target application and the OS executing on the system" (§3) — but
//! Xylem *is* a multitasking OS (§2). This module models a competing job
//! that periodically steals whole-cluster quanta through the gang
//! scheduler, so the reproduction can also answer the question the paper
//! leaves open: what do these overheads look like when the machine is
//! shared?

use cedar_sim::{Cycles, SimTime, SplitMix64};

/// A competing job's demand on one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundLoad {
    /// Mean interval between quanta stolen from each cluster.
    pub period: Cycles,
    /// Length of each stolen quantum.
    pub quantum: Cycles,
}

impl BackgroundLoad {
    /// A light competing job: ~10% of each cluster.
    pub fn light() -> Self {
        BackgroundLoad {
            period: Cycles(100_000),
            quantum: Cycles(10_000),
        }
    }

    /// A heavy competing job: ~50% of each cluster.
    pub fn heavy() -> Self {
        BackgroundLoad {
            period: Cycles(40_000),
            quantum: Cycles(20_000),
        }
    }

    /// Fraction of each cluster the competing job demands.
    pub fn demand(&self) -> f64 {
        self.quantum.0 as f64 / (self.period.0 + self.quantum.0) as f64
    }
}

/// Generates the stolen-quantum schedule for one cluster.
#[derive(Debug, Clone)]
pub struct BackgroundSchedule {
    load: BackgroundLoad,
    rng: SplitMix64,
    stolen: Cycles,
}

impl BackgroundSchedule {
    /// Creates the schedule with a per-cluster seed.
    pub fn new(load: BackgroundLoad, seed: u64) -> Self {
        BackgroundSchedule {
            load,
            rng: SplitMix64::new(seed),
            stolen: Cycles::ZERO,
        }
    }

    /// Time of the next stolen quantum after `now`, and its length.
    /// Intervals jitter ±25% so clusters do not phase-lock.
    pub fn next_after(&mut self, now: SimTime) -> (SimTime, Cycles) {
        let base = self.load.period.0;
        let span = (base / 2).max(1);
        let jitter = self.rng.next_below(span);
        let interval = base - span / 2 + jitter;
        self.stolen += self.load.quantum;
        (now + Cycles(interval.max(1)), self.load.quantum)
    }

    /// Total cluster time this schedule has stolen.
    pub fn stolen(&self) -> Cycles {
        self.stolen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_fractions() {
        assert!((BackgroundLoad::light().demand() - 10_000.0 / 110_000.0).abs() < 1e-9);
        assert!((BackgroundLoad::heavy().demand() - 20_000.0 / 60_000.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_tracks_stolen_time() {
        let mut s = BackgroundSchedule::new(BackgroundLoad::light(), 1);
        let mut now = Cycles(0);
        for _ in 0..5 {
            let (next, q) = s.next_after(now);
            assert!(next > now);
            assert_eq!(q, Cycles(10_000));
            now = next;
        }
        assert_eq!(s.stolen(), Cycles(50_000));
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let mut a = BackgroundSchedule::new(BackgroundLoad::heavy(), 9);
        let mut b = BackgroundSchedule::new(BackgroundLoad::heavy(), 9);
        for _ in 0..10 {
            assert_eq!(a.next_after(Cycles(0)), b.next_after(Cycles(0)));
        }
    }
}
