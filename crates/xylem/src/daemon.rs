//! Periodic OS activity: bookkeeping context switches and asynchronous
//! system traps.
//!
//! "Context switching takes place in a dedicated system, when the
//! application task blocks for I/O or when the OS server must perform
//! some bookkeeping" (§5.1). Each occurrence gang-preempts the
//! application's cluster task: every active CE pays the context-switch
//! save/restore cost, the system task runs for the daemon duration
//! (split between critical-section and syscall work), and a CPI is
//! raised to gather the single-CE execution thread.

use cedar_sim::{Cycles, SimTime, SplitMix64};

use crate::config::OsConfig;

/// One occurrence of daemon work on a cluster, broken down the way the
/// accounting charges it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonWork {
    /// Per-CE save/restore, charged to `ctx`.
    pub ctx_per_ce: Cycles,
    /// System-task time inside cluster critical sections.
    pub cr_sect: Cycles,
    /// System-task time in cluster system calls.
    pub syscall: Cycles,
    /// Remaining system-task bookkeeping time (charged to `ctx`).
    pub other: Cycles,
}

impl DaemonWork {
    /// Total wall-clock duration the system task holds the cluster.
    pub fn duration(&self) -> Cycles {
        self.cr_sect + self.syscall + self.other
    }
}

/// Generates the bookkeeping context-switch schedule for one cluster.
///
/// Intervals are jittered ±25% around the configured mean so that
/// clusters do not phase-lock, but the stream is fully deterministic for
/// a given seed.
#[derive(Debug, Clone)]
pub struct DaemonSchedule {
    mean_interval: Cycles,
    work: DaemonWork,
    rng: SplitMix64,
    occurrences: u64,
}

impl DaemonSchedule {
    /// Creates the schedule for one cluster.
    pub fn new(cfg: &OsConfig, seed: u64) -> Self {
        let cr_sect = cfg.daemon_duration.scale(cfg.daemon_cr_sect_fraction);
        let syscall = cfg.daemon_duration.scale(cfg.daemon_syscall_fraction);
        let other = cfg.daemon_duration.saturating_sub(cr_sect + syscall);
        DaemonSchedule {
            mean_interval: cfg.ctx_interval,
            work: DaemonWork {
                ctx_per_ce: cfg.ctx_cost_per_ce,
                cr_sect,
                syscall,
                other,
            },
            rng: SplitMix64::new(seed),
            occurrences: 0,
        }
    }

    /// Time of the next daemon occurrence after `now`, and its work.
    pub fn next_after(&mut self, now: SimTime) -> (SimTime, DaemonWork) {
        let base = self.mean_interval.0;
        let jitter_span = base / 2; // +/- 25%
        let jitter = self.rng.next_below(jitter_span.max(1));
        let interval = base - jitter_span / 2 + jitter;
        self.occurrences += 1;
        (now + Cycles(interval.max(1)), self.work)
    }

    /// Occurrences generated so far.
    pub fn occurrences(&self) -> u64 {
        self.occurrences
    }
}

/// Generates the (rare) asynchronous-system-trap schedule for a cluster.
#[derive(Debug, Clone)]
pub struct AstSchedule {
    mean_interval: Cycles,
    cost: Cycles,
    rng: SplitMix64,
}

impl AstSchedule {
    /// Creates the AST schedule for one cluster.
    pub fn new(cfg: &OsConfig, seed: u64) -> Self {
        AstSchedule {
            mean_interval: cfg.ast_interval,
            cost: cfg.ast_cost,
            rng: SplitMix64::new(seed),
        }
    }

    /// Time of the next AST after `now` and its service cost.
    pub fn next_after(&mut self, now: SimTime) -> (SimTime, Cycles) {
        let base = self.mean_interval.0;
        let jitter_span = base / 2;
        let jitter = self.rng.next_below(jitter_span.max(1));
        let interval = base - jitter_span / 2 + jitter;
        (now + Cycles(interval.max(1)), self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemon_work_partitions_duration() {
        let cfg = OsConfig::cedar();
        let mut d = DaemonSchedule::new(&cfg, 1);
        let (_, work) = d.next_after(Cycles(0));
        assert_eq!(work.duration(), cfg.daemon_duration);
        assert_eq!(work.cr_sect, cfg.daemon_duration.scale(0.35));
        assert_eq!(work.syscall, cfg.daemon_duration.scale(0.15));
    }

    #[test]
    fn intervals_jitter_around_mean() {
        let cfg = OsConfig::cedar();
        let mut d = DaemonSchedule::new(&cfg, 42);
        let mut now = Cycles(0);
        let mut intervals = Vec::new();
        for _ in 0..200 {
            let (next, _) = d.next_after(now);
            intervals.push((next - now).0);
            now = next;
        }
        let mean: f64 = intervals.iter().map(|&i| i as f64).sum::<f64>() / 200.0;
        let target = cfg.ctx_interval.0 as f64;
        assert!(
            (mean - target).abs() / target < 0.10,
            "mean interval {mean} too far from {target}"
        );
        let min = *intervals.iter().min().unwrap();
        let max = *intervals.iter().max().unwrap();
        assert!(min as f64 >= target * 0.74);
        assert!((max as f64) <= target * 1.26);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let cfg = OsConfig::cedar();
        let mut a = DaemonSchedule::new(&cfg, 7);
        let mut b = DaemonSchedule::new(&cfg, 7);
        for _ in 0..10 {
            assert_eq!(a.next_after(Cycles(0)).0, b.next_after(Cycles(0)).0);
        }
    }

    #[test]
    fn different_seeds_desynchronize_clusters() {
        let cfg = OsConfig::cedar();
        let mut a = DaemonSchedule::new(&cfg, 1);
        let mut b = DaemonSchedule::new(&cfg, 2);
        let same = (0..10)
            .filter(|_| a.next_after(Cycles(0)).0 == b.next_after(Cycles(0)).0)
            .count();
        assert!(same < 10, "seeds must desynchronize schedules");
    }

    #[test]
    fn ast_schedule_produces_fixed_cost() {
        let cfg = OsConfig::cedar();
        let mut a = AstSchedule::new(&cfg, 3);
        let (t, cost) = a.next_after(Cycles(1000));
        assert!(t > Cycles(1000));
        assert_eq!(cost, cfg.ast_cost);
    }

    #[test]
    fn occurrences_counted() {
        let cfg = OsConfig::cedar();
        let mut d = DaemonSchedule::new(&cfg, 5);
        for _ in 0..3 {
            d.next_after(Cycles(0));
        }
        assert_eq!(d.occurrences(), 3);
    }
}
