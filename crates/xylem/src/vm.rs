//! Virtual memory: demand paging with the concurrent/sequential fault
//! distinction.
//!
//! "Concurrent page faults are caused by two or more CEs simultaneously
//! attempting to access a page which had not been accessed previously.
//! Concurrent page faults are more expensive than sequential page
//! faults" (§5.1). The model: the first CE to touch an unmapped page
//! starts a fault that maps the page after the sequential service time;
//! any CE touching the page while that fault is in flight experiences a
//! *concurrent* fault — it stalls until the page is mapped, pays the
//! (higher) concurrent service cost, and a cross-processor interrupt is
//! raised on its cluster to obtain the single-CE execution thread the
//! fault handler needs.

use cedar_hw::addr::PageId;
use cedar_hw::CeId;
use cedar_sim::{Cycles, SimTime};

use crate::config::OsConfig;

/// Classification of a page fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A single CE touched the unmapped page.
    Sequential,
    /// The page was touched while another CE's fault on it was still in
    /// flight.
    Concurrent,
}

/// Result of touching a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageTouch {
    /// The page is mapped; the access proceeds immediately.
    Mapped,
    /// The CE faults: it stalls until `resume_at`, `cost` is charged to
    /// the corresponding fault bucket, and `raise_cpi` requests a
    /// cross-processor interrupt on the faulting CE's cluster.
    Fault {
        /// Fault class for accounting.
        class: FaultClass,
        /// When the faulting CE resumes.
        resume_at: SimTime,
        /// OS service time to charge.
        cost: Cycles,
        /// Whether this fault raises a CPI (concurrent faults do, §5.1).
        raise_cpi: bool,
    },
}

/// Growable bitmap over page ids.
///
/// The layout allocator hands out addresses densely from the bottom of
/// the global address space, so page ids are small and dense — a bitmap
/// is both compact (one bit per page up to the highest page touched) and
/// allocation-free on the touch hot path once grown. This replaces a
/// hash probe per touched page per vector access with a shift-and-mask.
#[derive(Debug, Clone, Default)]
struct PageBitmap {
    bits: Vec<u64>,
    count: usize,
}

impl PageBitmap {
    fn contains(&self, page: PageId) -> bool {
        match self.bits.get((page.0 / 64) as usize) {
            Some(word) => word & (1 << (page.0 % 64)) != 0,
            None => false,
        }
    }

    fn insert(&mut self, page: PageId) {
        let word = (page.0 / 64) as usize;
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let mask = 1 << (page.0 % 64);
        if self.bits[word] & mask == 0 {
            self.bits[word] |= mask;
            self.count += 1;
        }
    }

    fn len(&self) -> usize {
        self.count
    }
}

/// The demand-paged address space shared by an application's cluster
/// tasks.
///
/// # Example
///
/// ```
/// use cedar_xylem::{AddressSpace, OsConfig, PageTouch};
/// use cedar_hw::{addr::PageId, CeId};
/// use cedar_sim::Cycles;
///
/// let cfg = OsConfig::cedar();
/// let mut vm = AddressSpace::new(&cfg);
/// // First touch faults sequentially...
/// assert!(matches!(vm.touch(PageId(0), CeId(0), Cycles(0)),
///                  PageTouch::Fault { .. }));
/// // ...and once mapped, later touches proceed immediately.
/// assert!(matches!(vm.touch(PageId(0), CeId(1), Cycles(10_000)),
///                  PageTouch::Mapped));
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    seq_cost: Cycles,
    conc_cost: Cycles,
    mapped: PageBitmap,
    /// Faults currently being serviced, `(page, mapped_at)`. At most a
    /// handful are ever in flight at once (one per concurrently faulting
    /// page), so a linear scan beats a hash probe and allocates nothing.
    in_flight: Vec<(PageId, SimTime)>,
    seq_faults: u64,
    conc_faults: u64,
    injected_seq: u64,
    injected_conc: u64,
}

impl AddressSpace {
    /// Creates an empty address space with `cfg`'s fault costs.
    pub fn new(cfg: &OsConfig) -> Self {
        AddressSpace {
            seq_cost: cfg.page_fault_sequential,
            conc_cost: cfg.page_fault_concurrent,
            mapped: PageBitmap::default(),
            in_flight: Vec::new(),
            seq_faults: 0,
            conc_faults: 0,
            injected_seq: 0,
            injected_conc: 0,
        }
    }

    /// CE `ce` touches `page` at `now`.
    pub fn touch(&mut self, page: PageId, ce: CeId, now: SimTime) -> PageTouch {
        let _ = ce; // classification does not depend on the toucher's id
        if self.mapped.contains(page) {
            return PageTouch::Mapped;
        }
        if let Some(i) = self.in_flight.iter().position(|&(p, _)| p == page) {
            let (_, fault_mapped_at) = self.in_flight[i];
            if now >= fault_mapped_at {
                // The earlier fault has completed by now; promote the page.
                self.in_flight.swap_remove(i);
                self.mapped.insert(page);
                return PageTouch::Mapped;
            }
            // Concurrent fault: wait out the in-flight mapping, then pay
            // the (higher) concurrent service cost.
            self.conc_faults += 1;
            let resume_at = fault_mapped_at + self.conc_cost;
            return PageTouch::Fault {
                class: FaultClass::Concurrent,
                resume_at,
                cost: self.conc_cost,
                raise_cpi: true,
            };
        }
        // Sequential fault: map after the sequential service time.
        self.seq_faults += 1;
        let mapped_at = now + self.seq_cost;
        self.in_flight.push((page, mapped_at));
        PageTouch::Fault {
            class: FaultClass::Sequential,
            resume_at: mapped_at,
            cost: self.seq_cost,
            raise_cpi: false,
        }
    }

    /// Garbage-collects completed in-flight faults (called opportunistically).
    pub fn settle(&mut self, now: SimTime) {
        let mapped = &mut self.mapped;
        self.in_flight.retain(|&(p, mapped_at)| {
            if now >= mapped_at {
                mapped.insert(p);
                false
            } else {
                true
            }
        });
    }

    /// Pre-maps `page` without a fault (program text, stacks — anything
    /// warmed before the measured region).
    pub fn premap(&mut self, page: PageId) {
        self.mapped.insert(page);
    }

    /// Pages currently mapped.
    pub fn mapped_pages(&self) -> usize {
        self.mapped.len()
    }

    /// Sequential faults taken so far.
    pub fn seq_faults(&self) -> u64 {
        self.seq_faults
    }

    /// Concurrent faults taken so far.
    pub fn conc_faults(&self) -> u64 {
        self.conc_faults
    }

    /// Records one fault *injected* by a fault-injection campaign. Kept
    /// in the address space (the single page-fault bookkeeper) but in
    /// separate counters, so [`seq_faults`](Self::seq_faults) /
    /// [`conc_faults`](Self::conc_faults) stay organic-only and injected
    /// faults are never silently folded into the demand-paging numbers.
    pub fn record_injected(&mut self, class: FaultClass) {
        match class {
            FaultClass::Sequential => self.injected_seq += 1,
            FaultClass::Concurrent => self.injected_conc += 1,
        }
    }

    /// (sequential, concurrent) injected-fault counts.
    pub fn injected_faults(&self) -> (u64, u64) {
        (self.injected_seq, self.injected_conc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm() -> AddressSpace {
        AddressSpace::new(&OsConfig::cedar())
    }

    #[test]
    fn first_touch_is_sequential_fault() {
        let mut vm = vm();
        match vm.touch(PageId(5), CeId(0), Cycles(100)) {
            PageTouch::Fault {
                class,
                resume_at,
                cost,
                raise_cpi,
            } => {
                assert_eq!(class, FaultClass::Sequential);
                assert_eq!(cost, OsConfig::cedar().page_fault_sequential);
                assert_eq!(resume_at, Cycles(100) + cost);
                assert!(!raise_cpi);
            }
            other => panic!("expected fault, got {other:?}"),
        }
        assert_eq!(vm.seq_faults(), 1);
    }

    #[test]
    fn simultaneous_touch_is_concurrent_and_raises_cpi() {
        let mut vm = vm();
        let cfg = OsConfig::cedar();
        vm.touch(PageId(1), CeId(0), Cycles(0));
        match vm.touch(PageId(1), CeId(1), Cycles(10)) {
            PageTouch::Fault {
                class,
                resume_at,
                cost,
                raise_cpi,
            } => {
                assert_eq!(class, FaultClass::Concurrent);
                assert!(raise_cpi);
                assert_eq!(cost, cfg.page_fault_concurrent);
                // Resumes after the original mapping completes plus the
                // concurrent service cost.
                assert_eq!(
                    resume_at,
                    Cycles(0) + cfg.page_fault_sequential + cfg.page_fault_concurrent
                );
            }
            other => panic!("expected fault, got {other:?}"),
        }
        assert_eq!(vm.conc_faults(), 1);
    }

    #[test]
    fn touch_after_fault_completes_is_mapped() {
        let mut vm = vm();
        let cfg = OsConfig::cedar();
        vm.touch(PageId(2), CeId(0), Cycles(0));
        let later = cfg.page_fault_sequential + Cycles(1);
        assert_eq!(vm.touch(PageId(2), CeId(1), later), PageTouch::Mapped);
        assert_eq!(vm.conc_faults(), 0);
        assert_eq!(vm.mapped_pages(), 1);
    }

    #[test]
    fn premap_avoids_faults() {
        let mut vm = vm();
        vm.premap(PageId(9));
        assert_eq!(vm.touch(PageId(9), CeId(0), Cycles(0)), PageTouch::Mapped);
        assert_eq!(vm.seq_faults(), 0);
    }

    #[test]
    fn settle_promotes_completed_faults() {
        let mut vm = vm();
        vm.touch(PageId(3), CeId(0), Cycles(0));
        assert_eq!(vm.mapped_pages(), 0);
        vm.settle(Cycles(1_000_000));
        assert_eq!(vm.mapped_pages(), 1);
    }

    #[test]
    fn distinct_pages_fault_independently() {
        let mut vm = vm();
        for p in 0..10 {
            match vm.touch(PageId(p), CeId(0), Cycles(p * 10_000)) {
                PageTouch::Fault { class, .. } => assert_eq!(class, FaultClass::Sequential),
                other => panic!("expected fault, got {other:?}"),
            }
        }
        assert_eq!(vm.seq_faults(), 10);
    }

    #[test]
    fn injected_faults_never_contaminate_organic_counts() {
        let mut vm = vm();
        vm.touch(PageId(0), CeId(0), Cycles(0));
        vm.record_injected(FaultClass::Sequential);
        vm.record_injected(FaultClass::Concurrent);
        vm.record_injected(FaultClass::Concurrent);
        assert_eq!((vm.seq_faults(), vm.conc_faults()), (1, 0));
        assert_eq!(vm.injected_faults(), (1, 2));
    }

    #[test]
    fn many_ces_on_one_fresh_page_mostly_fault_concurrently() {
        // The start-of-loop pattern: 8 CEs sweep a fresh array together.
        let mut vm = vm();
        let mut conc = 0;
        for ce in 0..8u16 {
            if let PageTouch::Fault {
                class: FaultClass::Concurrent,
                ..
            } = vm.touch(PageId(0), CeId(ce), Cycles(ce as u64))
            {
                conc += 1;
            }
        }
        assert_eq!(conc, 7, "one sequential leader, seven concurrent");
    }
}
