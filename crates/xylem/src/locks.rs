//! Kernel memory locks.
//!
//! Xylem protects critical resources with locks in shared global memory
//! (shared by all CEs) and in private cluster memory (shared by a
//! cluster's CEs and IPs). The paper's headline finding for this layer is
//! *negative*: "Kernel lock contention is negligible (kernel lock spin
//! time is < 1% of the completion time)" (§5). The model therefore tracks
//! lock occupancy exactly — spin time **emerges** from overlapping
//! critical-section entries rather than being assumed — letting the
//! reproduction confirm the same negative result.

use cedar_sim::{Cycles, SimTime};

/// A kernel lock modelled as a FCFS server: an acquirer arriving while
/// the lock is held spins until the holder releases.
#[derive(Debug, Clone, Default)]
pub struct KernelLock {
    free_at: SimTime,
    acquisitions: u64,
    total_spin: Cycles,
    total_held: Cycles,
}

impl KernelLock {
    /// Creates a free lock.
    pub fn new() -> Self {
        KernelLock::default()
    }

    /// Acquires at `now`, holding for `hold`. Returns
    /// `(critical_section_start, spin_time)`: the caller spins for
    /// `spin_time` (charged to the kernel-spin bucket) and occupies the
    /// critical section from `critical_section_start` to
    /// `critical_section_start + hold`.
    pub fn acquire(&mut self, now: SimTime, hold: Cycles) -> (SimTime, Cycles) {
        let (start, spin, _) = self.acquire_scaled(now, hold, 0);
        (start, spin)
    }

    /// [`acquire`](Self::acquire) with the hold time inflated by
    /// `inflate_pct`% (fault injection; 0 is the plain acquire).
    /// Returns `(critical_section_start, spin_time, effective_hold)` —
    /// the caller charges `effective_hold` to its critical-section
    /// bucket so accounting matches the lock's true occupancy.
    pub fn acquire_scaled(
        &mut self,
        now: SimTime,
        hold: Cycles,
        inflate_pct: u32,
    ) -> (SimTime, Cycles, Cycles) {
        let held = Cycles(hold.0 + hold.0 * inflate_pct as u64 / 100);
        let start = now.max(self.free_at);
        let spin = start - now;
        self.free_at = start + held;
        self.acquisitions += 1;
        self.total_spin += spin;
        self.total_held += held;
        (start, spin, held)
    }

    /// Total acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Total spin time callers experienced on this lock.
    pub fn total_spin(&self) -> Cycles {
        self.total_spin
    }

    /// Total time the lock was held.
    pub fn total_held(&self) -> Cycles {
        self.total_held
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_has_no_spin() {
        let mut l = KernelLock::new();
        let (start, spin) = l.acquire(Cycles(100), Cycles(50));
        assert_eq!(start, Cycles(100));
        assert_eq!(spin, Cycles::ZERO);
    }

    #[test]
    fn overlapping_acquire_spins_until_release() {
        let mut l = KernelLock::new();
        l.acquire(Cycles(0), Cycles(100));
        let (start, spin) = l.acquire(Cycles(30), Cycles(10));
        assert_eq!(start, Cycles(100));
        assert_eq!(spin, Cycles(70));
        assert_eq!(l.total_spin(), Cycles(70));
    }

    #[test]
    fn serialized_acquires_never_spin() {
        let mut l = KernelLock::new();
        let mut now = Cycles(0);
        for _ in 0..10 {
            let (start, spin) = l.acquire(now, Cycles(10));
            assert_eq!(spin, Cycles::ZERO);
            now = start + Cycles(10);
        }
        assert_eq!(l.acquisitions(), 10);
        assert_eq!(l.total_held(), Cycles(100));
    }

    #[test]
    fn scaled_acquire_inflates_hold_and_occupancy() {
        let mut l = KernelLock::new();
        let (start, spin, held) = l.acquire_scaled(Cycles(0), Cycles(100), 150);
        assert_eq!((start, spin), (Cycles(0), Cycles::ZERO));
        assert_eq!(held, Cycles(250));
        // The next acquirer spins until the inflated hold releases.
        let (s2, spin2) = l.acquire(Cycles(10), Cycles(10));
        assert_eq!(s2, Cycles(250));
        assert_eq!(spin2, Cycles(240));
        assert_eq!(l.total_held(), Cycles(260));
    }

    #[test]
    fn zero_inflation_matches_plain_acquire() {
        let mut a = KernelLock::new();
        let mut b = KernelLock::new();
        for i in 0..5u64 {
            let (s1, sp1) = a.acquire(Cycles(i * 7), Cycles(20));
            let (s2, sp2, held) = b.acquire_scaled(Cycles(i * 7), Cycles(20), 0);
            assert_eq!((s1, sp1), (s2, sp2));
            assert_eq!(held, Cycles(20));
        }
        assert_eq!(a.total_held(), b.total_held());
        assert_eq!(a.total_spin(), b.total_spin());
    }

    #[test]
    fn queue_of_spinners_forms_fcfs() {
        let mut l = KernelLock::new();
        l.acquire(Cycles(0), Cycles(10));
        let (s1, _) = l.acquire(Cycles(1), Cycles(10));
        let (s2, _) = l.acquire(Cycles(2), Cycles(10));
        assert_eq!(s1, Cycles(10));
        assert_eq!(s2, Cycles(20));
    }
}
