//! Kernel memory locks.
//!
//! Xylem protects critical resources with locks in shared global memory
//! (shared by all CEs) and in private cluster memory (shared by a
//! cluster's CEs and IPs). The paper's headline finding for this layer is
//! *negative*: "Kernel lock contention is negligible (kernel lock spin
//! time is < 1% of the completion time)" (§5). The model therefore tracks
//! lock occupancy exactly — spin time **emerges** from overlapping
//! critical-section entries rather than being assumed — letting the
//! reproduction confirm the same negative result.

use cedar_sim::{Cycles, SimTime};

/// A kernel lock modelled as a FCFS server: an acquirer arriving while
/// the lock is held spins until the holder releases.
#[derive(Debug, Clone, Default)]
pub struct KernelLock {
    free_at: SimTime,
    acquisitions: u64,
    total_spin: Cycles,
    total_held: Cycles,
}

impl KernelLock {
    /// Creates a free lock.
    pub fn new() -> Self {
        KernelLock::default()
    }

    /// Acquires at `now`, holding for `hold`. Returns
    /// `(critical_section_start, spin_time)`: the caller spins for
    /// `spin_time` (charged to the kernel-spin bucket) and occupies the
    /// critical section from `critical_section_start` to
    /// `critical_section_start + hold`.
    pub fn acquire(&mut self, now: SimTime, hold: Cycles) -> (SimTime, Cycles) {
        let start = now.max(self.free_at);
        let spin = start - now;
        self.free_at = start + hold;
        self.acquisitions += 1;
        self.total_spin += spin;
        self.total_held += hold;
        (start, spin)
    }

    /// Total acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Total spin time callers experienced on this lock.
    pub fn total_spin(&self) -> Cycles {
        self.total_spin
    }

    /// Total time the lock was held.
    pub fn total_held(&self) -> Cycles {
        self.total_held
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_has_no_spin() {
        let mut l = KernelLock::new();
        let (start, spin) = l.acquire(Cycles(100), Cycles(50));
        assert_eq!(start, Cycles(100));
        assert_eq!(spin, Cycles::ZERO);
    }

    #[test]
    fn overlapping_acquire_spins_until_release() {
        let mut l = KernelLock::new();
        l.acquire(Cycles(0), Cycles(100));
        let (start, spin) = l.acquire(Cycles(30), Cycles(10));
        assert_eq!(start, Cycles(100));
        assert_eq!(spin, Cycles(70));
        assert_eq!(l.total_spin(), Cycles(70));
    }

    #[test]
    fn serialized_acquires_never_spin() {
        let mut l = KernelLock::new();
        let mut now = Cycles(0);
        for _ in 0..10 {
            let (start, spin) = l.acquire(now, Cycles(10));
            assert_eq!(spin, Cycles::ZERO);
            now = start + Cycles(10);
        }
        assert_eq!(l.acquisitions(), 10);
        assert_eq!(l.total_held(), Cycles(100));
    }

    #[test]
    fn queue_of_spinners_forms_fcfs() {
        let mut l = KernelLock::new();
        l.acquire(Cycles(0), Cycles(10));
        let (s1, _) = l.acquire(Cycles(1), Cycles(10));
        let (s2, _) = l.acquire(Cycles(2), Cycles(10));
        assert_eq!(s1, Cycles(10));
        assert_eq!(s2, Cycles(20));
    }
}
