//! OS overhead accounting — the data behind Figure 3 and Table 2.

use std::fmt;

use cedar_hw::ClusterId;
use cedar_sim::stats::DurationAccum;
use cedar_sim::Cycles;

/// The OS activities the paper's instrumentation distinguishes (Table 2),
/// plus the kernel-lock spin bucket reported in Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsActivity {
    /// Servicing cross-processor interrupts.
    Cpi,
    /// Context switching between application and system tasks.
    Ctx,
    /// Handling concurrent page faults.
    PgFltConcurrent,
    /// Handling sequential page faults.
    PgFltSequential,
    /// Accessing cluster critical sections/resources.
    CrSectCluster,
    /// Accessing global critical sections/resources.
    CrSectGlobal,
    /// Servicing cluster system calls.
    SyscallCluster,
    /// Servicing global system calls.
    SyscallGlobal,
    /// Servicing asynchronous system traps.
    Ast,
    /// Spinning on kernel (cluster or global memory) locks.
    KernelSpin,
}

impl OsActivity {
    /// All activities in Table 2's row order (with `KernelSpin` appended).
    pub const ALL: [OsActivity; 10] = [
        OsActivity::Cpi,
        OsActivity::Ctx,
        OsActivity::PgFltConcurrent,
        OsActivity::PgFltSequential,
        OsActivity::CrSectCluster,
        OsActivity::CrSectGlobal,
        OsActivity::SyscallCluster,
        OsActivity::SyscallGlobal,
        OsActivity::Ast,
        OsActivity::KernelSpin,
    ];

    /// Row label used in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            OsActivity::Cpi => "cpi",
            OsActivity::Ctx => "ctx",
            OsActivity::PgFltConcurrent => "pg flt (c)",
            OsActivity::PgFltSequential => "pg flt (s)",
            OsActivity::CrSectCluster => "Cr Sect (clus)",
            OsActivity::CrSectGlobal => "Cr Sect (glbl)",
            OsActivity::SyscallCluster => "clus syscall",
            OsActivity::SyscallGlobal => "glbl syscall",
            OsActivity::Ast => "ast",
            OsActivity::KernelSpin => "kernel spin",
        }
    }

    /// Which Figure 3 top-level category this activity belongs to:
    /// `Cpi` is interrupt time, `KernelSpin` is spin time, everything
    /// else is system time.
    pub fn figure3_category(self) -> Category {
        match self {
            OsActivity::Cpi => Category::Interrupt,
            OsActivity::KernelSpin => Category::Spin,
            _ => Category::System,
        }
    }
}

impl fmt::Display for OsActivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Figure 3's completion-time categories (user time comes from the
/// runtime-library side; the OS contributes the other three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Time in user code (busy, memory stalls, user-level spins).
    User,
    /// General system work.
    System,
    /// Interrupt servicing.
    Interrupt,
    /// Kernel lock spin.
    Spin,
}

impl Category {
    /// Label used in Figure 3's legend.
    pub fn label(self) -> &'static str {
        match self {
            Category::User => "user",
            Category::System => "system",
            Category::Interrupt => "interrupt",
            Category::Spin => "spin",
        }
    }
}

/// Per-cluster accumulation of OS activity durations.
///
/// Durations are *CE-time*: an activity that stalls 8 CEs for 100 cycles
/// accounts 800 cycles, matching how the paper's per-cluster `Q` facility
/// attributes utilization.
#[derive(Debug, Clone)]
pub struct OsAccounting {
    clusters: Vec<ClusterAccounting>,
}

/// One cluster's OS activity accumulators.
#[derive(Debug, Clone)]
pub struct ClusterAccounting {
    buckets: Vec<DurationAccum>,
}

impl ClusterAccounting {
    fn new() -> Self {
        ClusterAccounting {
            buckets: vec![DurationAccum::new(); OsActivity::ALL.len()],
        }
    }

    /// Accumulated CE-time for `activity`.
    pub fn get(&self, activity: OsActivity) -> &DurationAccum {
        &self.buckets[Self::index(activity)]
    }

    fn index(activity: OsActivity) -> usize {
        OsActivity::ALL
            .iter()
            .position(|a| *a == activity)
            .expect("activity present in ALL")
    }
}

impl OsAccounting {
    /// Creates accounting for `clusters` clusters.
    pub fn new(clusters: u8) -> Self {
        OsAccounting {
            clusters: (0..clusters).map(|_| ClusterAccounting::new()).collect(),
        }
    }

    /// Charges `duration` of CE-time on `cluster` to `activity`.
    pub fn charge(&mut self, cluster: ClusterId, activity: OsActivity, duration: Cycles) {
        self.clusters[cluster.0 as usize].buckets[ClusterAccounting::index(activity)].add(duration);
    }

    /// Replaces one `(cluster, activity)` accumulator wholesale — the
    /// inverse of reading it via [`cluster`](Self::cluster)`().get()`,
    /// used by the run cache to round-trip Table 2 exactly (a rebuilt
    /// accumulator must carry the original sample count and maximum,
    /// which repeated [`charge`](Self::charge) calls cannot reproduce).
    pub fn restore(&mut self, cluster: ClusterId, activity: OsActivity, accum: DurationAccum) {
        self.clusters[cluster.0 as usize].buckets[ClusterAccounting::index(activity)] = accum;
    }

    /// One cluster's accounting.
    pub fn cluster(&self, cluster: ClusterId) -> &ClusterAccounting {
        &self.clusters[cluster.0 as usize]
    }

    /// Total CE-time charged to `activity` across all clusters.
    pub fn total(&self, activity: OsActivity) -> Cycles {
        self.clusters.iter().map(|c| c.get(activity).total()).sum()
    }

    /// Total CE-time charged to a Figure 3 category across all clusters.
    pub fn category_total(&self, category: Category) -> Cycles {
        OsActivity::ALL
            .iter()
            .filter(|a| a.figure3_category() == category)
            .map(|a| self.total(*a))
            .sum()
    }

    /// Grand total OS overhead (system + interrupt + spin).
    pub fn os_total(&self) -> Cycles {
        self.category_total(Category::System)
            + self.category_total(Category::Interrupt)
            + self.category_total(Category::Spin)
    }

    /// Number of clusters tracked.
    pub fn n_clusters(&self) -> u8 {
        self.clusters.len() as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut acc = OsAccounting::new(2);
        acc.charge(ClusterId(0), OsActivity::Cpi, Cycles(100));
        acc.charge(ClusterId(1), OsActivity::Cpi, Cycles(50));
        acc.charge(ClusterId(0), OsActivity::Ctx, Cycles(30));
        assert_eq!(acc.total(OsActivity::Cpi), Cycles(150));
        assert_eq!(acc.total(OsActivity::Ctx), Cycles(30));
        assert_eq!(
            acc.cluster(ClusterId(0)).get(OsActivity::Cpi).total(),
            Cycles(100)
        );
        assert_eq!(acc.cluster(ClusterId(0)).get(OsActivity::Cpi).samples(), 1);
    }

    #[test]
    fn figure3_categorization() {
        assert_eq!(OsActivity::Cpi.figure3_category(), Category::Interrupt);
        assert_eq!(OsActivity::KernelSpin.figure3_category(), Category::Spin);
        assert_eq!(OsActivity::Ctx.figure3_category(), Category::System);
        assert_eq!(
            OsActivity::PgFltConcurrent.figure3_category(),
            Category::System
        );
    }

    #[test]
    fn category_totals_partition_os_total() {
        let mut acc = OsAccounting::new(1);
        for (i, a) in OsActivity::ALL.iter().enumerate() {
            acc.charge(ClusterId(0), *a, Cycles((i as u64 + 1) * 10));
        }
        let sum = acc.category_total(Category::System)
            + acc.category_total(Category::Interrupt)
            + acc.category_total(Category::Spin);
        assert_eq!(sum, acc.os_total());
        let manual: u64 = (1..=10).map(|i| i * 10).sum();
        assert_eq!(acc.os_total(), Cycles(manual));
    }

    #[test]
    fn labels_match_table2_rows() {
        assert_eq!(OsActivity::PgFltConcurrent.label(), "pg flt (c)");
        assert_eq!(OsActivity::CrSectCluster.label(), "Cr Sect (clus)");
        assert_eq!(OsActivity::SyscallGlobal.label(), "glbl syscall");
    }
}
