//! Operating-system cost parameters.
//!
//! Each knob is documented with the paper observation it is calibrated
//! against; together they make the OS overhead land at 3–4% of completion
//! time on 1 processor and 5–21% on the 4-cluster machine (§5), with the
//! Table 2 component ordering (cpi ≳ ctx ≳ page faults ≳ critical
//! sections ≫ syscalls ≳ ast).

use cedar_sim::Cycles;

/// Timing parameters of the modelled Xylem OS.
#[derive(Debug, Clone, PartialEq)]
pub struct OsConfig {
    /// Bytes per virtual-memory page.
    pub page_bytes: u64,
    /// Service time of a sequential (single-CE) page fault.
    pub page_fault_sequential: Cycles,
    /// Service time charged to each *additional* CE involved in a
    /// concurrent page fault ("more expensive than sequential", §5.1).
    pub page_fault_concurrent: Cycles,
    /// Per-CE cost of servicing a cross-processor interrupt: register
    /// save/restore and "miscellaneous accounting calculations" (§5.1).
    pub cpi_cost_per_ce: Cycles,
    /// Mean interval between OS bookkeeping context switches on each
    /// cluster (system daemons, I/O bookkeeping).
    pub ctx_interval: Cycles,
    /// Register save + restore cost of one context switch, per CE.
    pub ctx_cost_per_ce: Cycles,
    /// Duration the system task runs per bookkeeping context switch.
    pub daemon_duration: Cycles,
    /// Fraction of daemon duration spent inside cluster critical sections.
    pub daemon_cr_sect_fraction: f64,
    /// Fraction of daemon duration spent in cluster system calls.
    pub daemon_syscall_fraction: f64,
    /// Cost of a cluster-local system call from the runtime library.
    pub syscall_cluster: Cycles,
    /// Cost of a global system call (task creation/start across
    /// clusters).
    pub syscall_global: Cycles,
    /// Duration of one cluster critical-section entry.
    pub cr_sect_cluster: Cycles,
    /// Duration of one global critical-section entry.
    pub cr_sect_global: Cycles,
    /// Mean interval between asynchronous system traps per cluster.
    pub ast_interval: Cycles,
    /// Cost of servicing one AST.
    pub ast_cost: Cycles,
}

impl OsConfig {
    /// Parameters calibrated for the Cedar reproduction.
    pub fn cedar() -> Self {
        OsConfig {
            // Small pages keep fault counts realistic at our ~1000x scaled
            // data sizes (the real Xylem used larger pages on larger data).
            page_bytes: 16 * 1024,
            page_fault_sequential: Cycles(350),
            page_fault_concurrent: Cycles(550),
            cpi_cost_per_ce: Cycles(320),
            ctx_interval: Cycles(55_000),
            ctx_cost_per_ce: Cycles(220),
            daemon_duration: Cycles(1_100),
            daemon_cr_sect_fraction: 0.35,
            daemon_syscall_fraction: 0.15,
            syscall_cluster: Cycles(260),
            syscall_global: Cycles(800),
            cr_sect_cluster: Cycles(140),
            cr_sect_global: Cycles(220),
            ast_interval: Cycles(600_000),
            ast_cost: Cycles(120),
        }
    }

    /// Sanity-checks invariants the model relies on.
    ///
    /// # Panics
    ///
    /// Panics if a fraction is outside `[0, 1]`, the fractions exceed 1
    /// combined, or the concurrent fault is not at least as expensive as
    /// the sequential one.
    pub fn validate(&self) {
        assert!(self.page_bytes > 0, "page size must be positive");
        assert!(
            self.page_fault_concurrent >= self.page_fault_sequential,
            "concurrent faults are more expensive than sequential (§5.1)"
        );
        for f in [self.daemon_cr_sect_fraction, self.daemon_syscall_fraction] {
            assert!((0.0..=1.0).contains(&f), "fraction {f} outside [0,1]");
        }
        assert!(
            self.daemon_cr_sect_fraction + self.daemon_syscall_fraction <= 1.0,
            "daemon work fractions exceed the daemon duration"
        );
    }
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig::cedar()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cedar_config_is_valid() {
        OsConfig::cedar().validate();
    }

    #[test]
    fn concurrent_fault_costs_more() {
        let c = OsConfig::cedar();
        assert!(c.page_fault_concurrent > c.page_fault_sequential);
    }

    #[test]
    #[should_panic(expected = "more expensive")]
    fn validate_rejects_cheap_concurrent_fault() {
        let mut c = OsConfig::cedar();
        c.page_fault_concurrent = Cycles(1);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "exceed the daemon duration")]
    fn validate_rejects_oversubscribed_daemon() {
        let mut c = OsConfig::cedar();
        c.daemon_cr_sect_fraction = 0.7;
        c.daemon_syscall_fraction = 0.7;
        c.validate();
    }
}
