//! System calls the runtime library makes.
//!
//! The Cedar Fortran runtime creates one helper task per non-master
//! cluster "with the help of the OS" (§2); task creation, start and
//! inter-task synchronization are Xylem system calls. Cluster-local calls
//! are cheap; global calls (crossing clusters) are expensive but rare —
//! Table 2 shows `glbl syscall` at ≤0.05% of completion time.

use cedar_sim::Cycles;

use crate::config::OsConfig;

/// Kinds of system calls the modelled runtime issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallKind {
    /// Create a helper cluster task (global: coordinates across clusters).
    TaskCreate,
    /// Start a created task on its cluster (global).
    TaskStart,
    /// Stop/detach a task at program end (global).
    TaskStop,
    /// Cluster-local resource request (scheduling, memory growth).
    ClusterResource,
    /// Cluster-local bookkeeping call.
    ClusterMisc,
}

impl SyscallKind {
    /// `true` for calls that cross cluster boundaries (global syscalls).
    pub fn is_global(self) -> bool {
        matches!(
            self,
            SyscallKind::TaskCreate | SyscallKind::TaskStart | SyscallKind::TaskStop
        )
    }

    /// Service time of this call under `cfg`.
    pub fn cost(self, cfg: &OsConfig) -> Cycles {
        if self.is_global() {
            cfg.syscall_global
        } else {
            cfg.syscall_cluster
        }
    }

    /// Whether serving this call also enters a critical section, and
    /// which kind (global calls take the global resource lock; cluster
    /// resource requests take the cluster lock).
    pub fn critical_section(self) -> Option<CrSect> {
        match self {
            SyscallKind::TaskCreate | SyscallKind::TaskStart | SyscallKind::TaskStop => {
                Some(CrSect::Global)
            }
            SyscallKind::ClusterResource => Some(CrSect::Cluster),
            SyscallKind::ClusterMisc => None,
        }
    }
}

/// Which critical section a syscall enters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrSect {
    /// Protected by a cluster memory lock.
    Cluster,
    /// Protected by a global memory lock.
    Global,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_calls_are_global() {
        assert!(SyscallKind::TaskCreate.is_global());
        assert!(SyscallKind::TaskStart.is_global());
        assert!(SyscallKind::TaskStop.is_global());
        assert!(!SyscallKind::ClusterResource.is_global());
        assert!(!SyscallKind::ClusterMisc.is_global());
    }

    #[test]
    fn global_calls_cost_more() {
        let cfg = OsConfig::cedar();
        assert!(SyscallKind::TaskCreate.cost(&cfg) > SyscallKind::ClusterMisc.cost(&cfg));
        assert_eq!(SyscallKind::ClusterResource.cost(&cfg), cfg.syscall_cluster);
    }

    #[test]
    fn critical_sections_follow_scope() {
        assert_eq!(
            SyscallKind::TaskCreate.critical_section(),
            Some(CrSect::Global)
        );
        assert_eq!(
            SyscallKind::ClusterResource.critical_section(),
            Some(CrSect::Cluster)
        );
        assert_eq!(SyscallKind::ClusterMisc.critical_section(), None);
    }
}
