//! # cedar-xylem — model of the Xylem operating system
//!
//! Xylem is Cedar's Unix-derived operating system (§2, \[11\]). It manages
//! the hierarchical hardware: a *Xylem process* is made up of cluster
//! tasks sharing portions of an address space; tasks are gang-scheduled
//! within a cluster; the OS provides multitasking, demand-paged virtual
//! memory, task system calls and inter-task synchronization.
//!
//! This crate models every OS activity the paper's instrumentation
//! distinguishes (§4, §5 and Table 2):
//!
//! * **cross-processor interrupts** (`cpi`) issued "during concurrent page
//!   faults, explicit resource scheduling requests, system calls and
//!   context switching requests to obtain a single CE execution thread" —
//!   each CE pays register save/restore plus accounting before
//!   synchronizing ([`config::OsConfig::cpi_cost_per_ce`]);
//! * **context switching** (`ctx`) between the application task and
//!   system tasks when the OS "must perform some bookkeeping"
//!   ([`daemon`]);
//! * **concurrent and sequential page faults** — two or more CEs
//!   simultaneously touching a previously untouched page make the fault
//!   *concurrent* and more expensive ([`vm`]);
//! * **cluster and global critical sections** protected by cluster/global
//!   memory locks, whose (negligible) spin time the paper reports
//!   separately ([`locks`]);
//! * **cluster and global system calls** and **asynchronous system
//!   traps** ([`syscall`], [`daemon::AstSchedule`]).
//!
//! Accounted durations flow into [`accounting::OsAccounting`], from which
//! `cedar-core` produces Figure 3's user/system/interrupt/spin breakdown
//! and Table 2's per-activity detail.
//!
//! ## Example: the concurrent-fault distinction
//!
//! ```
//! use cedar_xylem::{AddressSpace, FaultClass, OsConfig, PageTouch};
//! use cedar_hw::{addr::PageId, CeId};
//! use cedar_sim::Cycles;
//!
//! let mut vm = AddressSpace::new(&OsConfig::cedar());
//! // First toucher: sequential fault.
//! let first = vm.touch(PageId(7), CeId(0), Cycles(0));
//! assert!(matches!(first, PageTouch::Fault { class: FaultClass::Sequential, .. }));
//! // A second CE arriving while the fault is in flight: concurrent,
//! // more expensive, and it raises a cross-processor interrupt (§5.1).
//! let second = vm.touch(PageId(7), CeId(1), Cycles(10));
//! assert!(matches!(second, PageTouch::Fault { class: FaultClass::Concurrent, raise_cpi: true, .. }));
//! ```

pub mod accounting;
pub mod background;
pub mod config;
pub mod daemon;
pub mod locks;
pub mod syscall;
pub mod vm;

pub use accounting::{OsAccounting, OsActivity};
pub use background::{BackgroundLoad, BackgroundSchedule};
pub use config::OsConfig;
pub use daemon::{AstSchedule, DaemonSchedule, DaemonWork};
pub use locks::KernelLock;
pub use syscall::SyscallKind;
pub use vm::{AddressSpace, FaultClass, PageTouch};
