//! Compilation of an [`AppSpec`] into the flat phase list the machine
//! executes.

use std::sync::Arc;

use cedar_apps::{AppSpec, BodySpec, Phase};
use cedar_rtl::LoopKind;
use cedar_sim::Cycles;

/// One executable phase.
#[derive(Debug, Clone)]
pub enum CompiledPhase {
    /// Serial code on the main lead CE.
    Serial {
        /// Compute cycles.
        work: Cycles,
        /// Accesses performed after the compute.
        accesses: Vec<cedar_apps::AccessPattern>,
    },
    /// A parallel loop of any construct.
    Loop {
        /// Construct.
        kind: LoopKind,
        /// Outer (spread / flat / cluster) iteration count.
        outer: u32,
        /// Inner iterations per outer iteration (1 for flat and cluster
        /// loops).
        inner: u32,
        /// Per-(inner-)iteration work, shared with every task context
        /// that enters the loop (cluster entry clones a handle, not the
        /// access vector).
        body: Arc<BodySpec>,
        /// DOACROSS only: serialized-region work per iteration.
        serial_region: Cycles,
    },
}

impl CompiledPhase {
    /// Loop bodies this phase executes.
    pub fn bodies(&self) -> u64 {
        match self {
            CompiledPhase::Serial { .. } => 0,
            CompiledPhase::Loop { outer, inner, .. } => *outer as u64 * *inner as u64,
        }
    }
}

/// The compiled program: flattened phases plus bookkeeping.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    phases: Vec<CompiledPhase>,
}

impl CompiledProgram {
    /// Compiles (validates and flattens) an application model.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation.
    pub fn compile(app: &AppSpec) -> Self {
        app.validate();
        let phases = app
            .flattened()
            .into_iter()
            .map(|p| match p {
                Phase::Serial { work, accesses } => CompiledPhase::Serial { work, accesses },
                Phase::ClusterLoop { iters, body } => CompiledPhase::Loop {
                    kind: LoopKind::Cluster,
                    outer: 1,
                    inner: iters,
                    body: Arc::new(body),
                    serial_region: Cycles::ZERO,
                },
                Phase::Sdoall { outer, inner, body } => CompiledPhase::Loop {
                    kind: LoopKind::Sdoall,
                    outer,
                    inner,
                    body: Arc::new(body),
                    serial_region: Cycles::ZERO,
                },
                Phase::Xdoall { iters, body } => CompiledPhase::Loop {
                    kind: LoopKind::Xdoall,
                    outer: iters,
                    inner: 1,
                    body: Arc::new(body),
                    serial_region: Cycles::ZERO,
                },
                Phase::Doacross {
                    iters,
                    body,
                    serial_region,
                } => CompiledPhase::Loop {
                    kind: LoopKind::Doacross,
                    outer: 1,
                    inner: iters,
                    body: Arc::new(body),
                    serial_region,
                },
                Phase::Repeat { .. } => unreachable!("flattened() removes repeats"),
            })
            .collect();
        CompiledProgram { phases }
    }

    /// The executable phases in order.
    pub fn phases(&self) -> &[CompiledPhase] {
        &self.phases
    }

    /// Phase at `idx`, if any.
    pub fn phase(&self, idx: usize) -> Option<&CompiledPhase> {
        self.phases.get(idx)
    }

    /// Total loop bodies across the program.
    pub fn total_bodies(&self) -> u64 {
        self.phases.iter().map(CompiledPhase::bodies).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_apps::synthetic;

    #[test]
    fn compiles_constructs_to_loop_kinds() {
        let p = CompiledProgram::compile(&synthetic::uniform_xdoall(1, 1, 16, 100, 4));
        let kinds: Vec<_> = p
            .phases()
            .iter()
            .filter_map(|ph| match ph {
                CompiledPhase::Loop { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![LoopKind::Xdoall]);
    }

    #[test]
    fn sdoall_keeps_outer_inner_split() {
        let p = CompiledProgram::compile(&synthetic::uniform_sdoall(1, 1, 4, 8, 100, 4));
        let found = p.phases().iter().any(|ph| {
            matches!(
                ph,
                CompiledPhase::Loop {
                    kind: LoopKind::Sdoall,
                    outer: 4,
                    inner: 8,
                    ..
                }
            )
        });
        assert!(found);
    }

    #[test]
    fn xdoall_has_inner_one() {
        let p = CompiledProgram::compile(&synthetic::uniform_xdoall(1, 1, 16, 100, 4));
        for ph in p.phases() {
            if let CompiledPhase::Loop { inner, .. } = ph {
                assert_eq!(*inner, 1);
            }
        }
    }

    #[test]
    fn total_bodies_matches_spec() {
        let app = synthetic::uniform_sdoall(3, 2, 4, 8, 100, 4);
        let p = CompiledProgram::compile(&app);
        assert_eq!(p.total_bodies(), app.total_bodies());
    }
}
