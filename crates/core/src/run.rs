//! Running one experiment.

use cedar_apps::AppSpec;

use crate::config::SimConfig;
use crate::machine::Machine;
use crate::result::RunResult;

/// One `(application, configuration)` measurement, mirroring a dedicated
/// single-user run on the instrumented Cedar (§3).
///
/// # Example
///
/// ```
/// use cedar_core::{Experiment, SimConfig};
/// use cedar_hw::Configuration;
/// use cedar_apps::synthetic;
///
/// let app = synthetic::uniform_xdoall(1, 2, 16, 300, 8);
/// let r = Experiment::new(app, SimConfig::cedar(Configuration::P4)).run();
/// assert_eq!(r.configuration, Configuration::P4);
/// assert_eq!(r.bodies, 2 * 16);
/// ```
#[derive(Debug)]
pub struct Experiment {
    app: AppSpec,
    cfg: SimConfig,
}

impl Experiment {
    /// Prepares an experiment.
    pub fn new(app: AppSpec, cfg: SimConfig) -> Self {
        Experiment { app, cfg }
    }

    /// The application under test.
    pub fn app(&self) -> &AppSpec {
        &self.app
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Builds the machine, runs to completion, returns the measurements.
    ///
    /// # Panics
    ///
    /// Panics if the workload deadlocks or exceeds the event bound (see
    /// [`SimConfig::max_events`]).
    pub fn run(self) -> RunResult {
        execute(&self.app, self.cfg)
    }
}

/// Builds and runs one machine, stamping the setup phase's wall-clock
/// into the result's telemetry. The single choke point every runner path
/// (sequential, pooled, benchmarked) goes through, so `RunStats` phase
/// timings mean the same thing everywhere.
pub(crate) fn execute(app: &AppSpec, cfg: SimConfig) -> RunResult {
    let t_setup = std::time::Instant::now();
    let machine = Machine::new(app, cfg);
    let setup_ns = t_setup.elapsed().as_nanos() as u64;
    let mut result = machine.run();
    result.stats.setup_ns = setup_ns;
    result
}
