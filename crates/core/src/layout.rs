//! Global-memory layout: placing runtime words and application arrays.

use cedar_apps::{AccessPattern, AppSpec};
use cedar_hw::addr::DWORD_BYTES;
use cedar_hw::{GlobalAddr, MemOp, VectorAccess};
use cedar_rtl::RtlWords;

/// The resolved memory map for one run.
#[derive(Debug, Clone)]
pub struct MemoryLayout {
    words: RtlWords,
    array_bases: Vec<GlobalAddr>,
    array_dwords: Vec<u64>,
    page_bytes: u64,
    end: GlobalAddr,
}

impl MemoryLayout {
    /// Lays out the runtime data area followed by the application's
    /// arrays, each aligned to a page boundary.
    pub fn new(app: &AppSpec, page_bytes: u64) -> Self {
        let words = RtlWords::cedar();
        let mut cursor = align_up(words.end().0, page_bytes);
        let mut array_bases = Vec::with_capacity(app.arrays.len());
        let mut array_dwords = Vec::with_capacity(app.arrays.len());
        for a in &app.arrays {
            array_bases.push(GlobalAddr(cursor));
            array_dwords.push(a.bytes / DWORD_BYTES);
            cursor = align_up(cursor + a.bytes, page_bytes);
        }
        MemoryLayout {
            words,
            array_bases,
            array_dwords,
            page_bytes,
            end: GlobalAddr(cursor),
        }
    }

    /// The runtime coordination words.
    pub fn words(&self) -> RtlWords {
        self.words
    }

    /// Page size used for fault modelling.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Base address of array `idx`.
    pub fn array_base(&self, idx: usize) -> GlobalAddr {
        self.array_bases[idx]
    }

    /// One past the last allocated byte.
    pub fn end(&self) -> GlobalAddr {
        self.end
    }

    /// Resolves an access pattern for logical iteration `iter` into a
    /// concrete vector access, wrapping within the array so that the
    /// access always stays in bounds while successive iterations walk
    /// the array.
    pub fn resolve(&self, a: &AccessPattern, iter: u64, op: MemOp) -> VectorAccess {
        let dwords = self.array_dwords[a.array];
        let span = (a.words as u64).saturating_sub(1) * a.stride_dwords + 1;
        debug_assert!(span <= dwords, "validated by AppSpec::validate");
        let max_start = (dwords - span).max(1);
        let start = (a.base_offset + iter.wrapping_mul(a.offset_per_iter)) % max_start;
        VectorAccess {
            base: self.array_bases[a.array].offset(start * DWORD_BYTES),
            words: a.words,
            stride_dwords: a.stride_dwords,
            op,
        }
    }
}

fn align_up(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_apps::synthetic;

    fn layout() -> MemoryLayout {
        MemoryLayout::new(&synthetic::streaming(1, 2, 2, 8), 4096)
    }

    #[test]
    fn arrays_are_page_aligned_and_disjoint() {
        let l = layout();
        let a = l.array_base(0);
        let b = l.array_base(1);
        assert_eq!(a.0 % 4096, 0);
        assert_eq!(b.0 % 4096, 0);
        assert!(b.0 >= a.0 + 2 * 1024 * 1024);
        assert!(l.end().0 >= b.0 + 2 * 1024 * 1024);
    }

    #[test]
    fn arrays_start_after_rtl_words() {
        let l = layout();
        assert!(l.array_base(0).0 >= l.words().end().0);
    }

    #[test]
    fn resolve_walks_the_array_per_iteration() {
        let l = layout();
        let a = AccessPattern::sweep(0, 8);
        let v0 = l.resolve(&a, 0, MemOp::Read);
        let v1 = l.resolve(&a, 1, MemOp::Read);
        assert_eq!(v1.base.0 - v0.base.0, 8 * DWORD_BYTES);
    }

    #[test]
    fn resolve_wraps_within_bounds() {
        let l = layout();
        let a = AccessPattern::sweep(0, 8);
        let dwords = 2 * 1024 * 1024 / 8;
        for iter in [0u64, 1_000, 100_000, u64::MAX / 16] {
            let v = l.resolve(&a, iter, MemOp::Read);
            let last = v.base.0 + (v.words as u64 - 1) * v.stride_dwords * DWORD_BYTES;
            assert!(v.base.0 >= l.array_base(0).0);
            assert!(last < l.array_base(0).0 + dwords * DWORD_BYTES);
        }
    }

    #[test]
    fn resolve_preserves_stride_and_op() {
        let l = layout();
        let a = AccessPattern::strided(1, 4, 16);
        let v = l.resolve(&a, 3, MemOp::Write(0));
        assert_eq!(v.stride_dwords, 16);
        assert_eq!(v.op, MemOp::Write(0));
        assert_eq!(v.words, 4);
    }
}
