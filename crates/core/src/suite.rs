//! Running the full measurement campaign: five applications × five
//! configurations, as the paper's tables require.
//!
//! The grid can run sequentially ([`SuiteResult::run_sequential`]) or
//! fanned out over a bounded worker pool
//! ([`SuiteResult::run_parallel`]). Each `(application, configuration)`
//! simulation is an isolated deterministic experiment, so the two paths
//! produce identical results — the parallel path only changes wall-clock
//! time, never the measurements.

use cedar_apps::AppSpec;
use cedar_hw::Configuration;

use crate::config::SimConfig;
use crate::machine::Machine;
use crate::pool::{self, PoolError};
use crate::result::RunResult;

/// All configuration runs of one application.
#[derive(Debug)]
pub struct AppResults {
    /// Application name.
    pub app: &'static str,
    /// One result per configuration, in `Configuration::ALL` order.
    pub runs: Vec<RunResult>,
}

impl AppResults {
    /// The result for `configuration`.
    pub fn run(&self, configuration: Configuration) -> &RunResult {
        self.runs
            .iter()
            .find(|r| r.configuration == configuration)
            .expect("all configurations were run")
    }

    /// The 1-processor baseline.
    pub fn baseline(&self) -> &RunResult {
        self.run(Configuration::P1)
    }
}

/// Results of the whole campaign.
#[derive(Debug)]
pub struct SuiteResult {
    /// Per-application results, in suite order.
    pub apps: Vec<AppResults>,
}

/// The grid's job list: every `(app, configuration)` pair, apps-major,
/// configurations in the order given. Both runner paths share it so the
/// result ordering is identical by construction.
fn grid(apps: &[AppSpec], configurations: &[Configuration]) -> Vec<(AppSpec, Configuration)> {
    let mut jobs = Vec::with_capacity(apps.len() * configurations.len());
    for app in apps {
        for &c in configurations {
            jobs.push((app.clone(), c));
        }
    }
    jobs
}

/// Folds a flat grid of runs (in `grid` order) back into per-app groups.
fn regroup(apps: &[AppSpec], per_app: usize, mut runs: Vec<RunResult>) -> Vec<AppResults> {
    let mut out = Vec::with_capacity(apps.len());
    for app in apps.iter().rev() {
        let rest = runs.split_off(runs.len() - per_app);
        out.push(AppResults {
            app: app.name,
            runs: rest,
        });
    }
    out.reverse();
    out
}

impl SuiteResult {
    /// Runs `apps` on every configuration in `configurations`, one
    /// experiment at a time on the calling thread. This is the reference
    /// path the parallel runner is checked against.
    pub fn run_sequential(apps: &[AppSpec], configurations: &[Configuration]) -> SuiteResult {
        let runs = grid(apps, configurations)
            .into_iter()
            .map(|(app, c)| Machine::new(&app, SimConfig::cedar(c)).run())
            .collect();
        SuiteResult {
            apps: regroup(apps, configurations.len(), runs),
        }
    }

    /// Runs the same grid fanned out over `workers` pool threads
    /// (`None` → [`pool::default_workers`]). Results come back in the
    /// same deterministic order as [`SuiteResult::run_sequential`]; a
    /// panicking experiment surfaces as `Err` instead of aborting the
    /// process or hanging the pool.
    pub fn run_parallel(
        apps: &[AppSpec],
        configurations: &[Configuration],
        workers: Option<usize>,
    ) -> Result<SuiteResult, PoolError> {
        let jobs: Vec<_> = grid(apps, configurations)
            .into_iter()
            .map(|(app, c)| move || Machine::new(&app, SimConfig::cedar(c)).run())
            .collect();
        let runs = pool::run_jobs(workers.unwrap_or_else(pool::default_workers), jobs)?;
        Ok(SuiteResult {
            apps: regroup(apps, configurations.len(), runs),
        })
    }

    /// Runs `apps` on every configuration in `configurations` across the
    /// default worker pool, panicking if an experiment panics. The
    /// convenience entry point for tools and tests.
    pub fn measure(apps: &[AppSpec], configurations: &[Configuration]) -> SuiteResult {
        SuiteResult::run_parallel(apps, configurations, None).expect("experiment panicked")
    }

    /// Runs the full campaign: the five Perfect applications on all five
    /// configurations.
    pub fn full_campaign() -> SuiteResult {
        SuiteResult::measure(&cedar_apps::perfect_suite(), &Configuration::ALL)
    }

    /// Looks up one application's results by name.
    pub fn app(&self, name: &str) -> &AppResults {
        self.apps
            .iter()
            .find(|a| a.app.eq_ignore_ascii_case(name))
            .expect("application was measured")
    }
}
