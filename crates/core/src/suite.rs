//! Running the full measurement campaign: five applications × five
//! configurations, as the paper's tables require.

use std::collections::BTreeMap;

use cedar_apps::AppSpec;
use cedar_hw::Configuration;

use crate::config::SimConfig;
use crate::machine::Machine;
use crate::result::RunResult;

/// All configuration runs of one application.
#[derive(Debug)]
pub struct AppResults {
    /// Application name.
    pub app: &'static str,
    /// One result per configuration, in `Configuration::ALL` order.
    pub runs: Vec<RunResult>,
}

impl AppResults {
    /// The result for `configuration`.
    pub fn run(&self, configuration: Configuration) -> &RunResult {
        self.runs
            .iter()
            .find(|r| r.configuration == configuration)
            .expect("all configurations were run")
    }

    /// The 1-processor baseline.
    pub fn baseline(&self) -> &RunResult {
        self.run(Configuration::P1)
    }
}

/// Results of the whole campaign.
#[derive(Debug)]
pub struct SuiteResult {
    /// Per-application results, in suite order.
    pub apps: Vec<AppResults>,
}

impl SuiteResult {
    /// Runs `apps` on every configuration in `configurations`, using one
    /// OS thread per (app, configuration) pair.
    pub fn measure(apps: &[AppSpec], configurations: &[Configuration]) -> SuiteResult {
        let mut jobs: Vec<(usize, Configuration, AppSpec)> = Vec::new();
        for (i, app) in apps.iter().enumerate() {
            for &c in configurations {
                jobs.push((i, c, app.clone()));
            }
        }
        let mut results: BTreeMap<(usize, usize), RunResult> = std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|(i, c, app)| {
                    s.spawn(move || {
                        let cfg = SimConfig::cedar(c);
                        let run = Machine::new(&app, cfg).run();
                        let ci = Configuration::ALL.iter().position(|x| *x == c).unwrap();
                        ((i, ci), run)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("run panicked"))
                .collect()
        });
        let apps_out = apps
            .iter()
            .enumerate()
            .map(|(i, app)| AppResults {
                app: app.name,
                runs: (0..Configuration::ALL.len())
                    .filter_map(|ci| results.remove(&(i, ci)))
                    .collect(),
            })
            .collect();
        SuiteResult { apps: apps_out }
    }

    /// Runs the full campaign: the five Perfect applications on all five
    /// configurations.
    pub fn full_campaign() -> SuiteResult {
        SuiteResult::measure(&cedar_apps::perfect_suite(), &Configuration::ALL)
    }

    /// Looks up one application's results by name.
    pub fn app(&self, name: &str) -> &AppResults {
        self.apps
            .iter()
            .find(|a| a.app.eq_ignore_ascii_case(name))
            .expect("application was measured")
    }
}
