//! Running the full measurement campaign: five applications × five
//! configurations, as the paper's tables require.
//!
//! The grid can run sequentially ([`SuiteResult::run_sequential`]) or
//! fanned out over a bounded worker pool
//! ([`SuiteResult::run_parallel`]). Each `(application, configuration)`
//! simulation is an isolated deterministic experiment, so the two paths
//! produce identical results — the parallel path only changes wall-clock
//! time, never the measurements.
//!
//! Both runners take the campaign's [`RunOptions`] explicitly: the
//! scheduler kind and worker count come from the options value the
//! caller built (or parsed once from the environment via
//! [`RunOptions::from_env`]), never from ambient `std::env` reads.

use cedar_apps::AppSpec;
use cedar_cache::CacheStats;
use cedar_hw::Configuration;
use cedar_obs::{CedarError, RunOptions};

use crate::cache::CacheSession;
use crate::config::SimConfig;
use crate::pool::{self, PoolStats};
use crate::result::RunResult;

/// All configuration runs of one application.
#[derive(Debug)]
pub struct AppResults {
    /// Application name.
    pub app: &'static str,
    /// One result per configuration, in `Configuration::ALL` order.
    pub runs: Vec<RunResult>,
}

impl AppResults {
    /// The result for `configuration`.
    pub fn run(&self, configuration: Configuration) -> &RunResult {
        self.runs
            .iter()
            .find(|r| r.configuration == configuration)
            .expect("all configurations were run")
    }

    /// The 1-processor baseline.
    pub fn baseline(&self) -> &RunResult {
        self.run(Configuration::P1)
    }
}

/// Campaign-level self-telemetry: the per-run [`cedar_obs::RunStats`]
/// merged across the whole grid, plus the grid's own wall-clock and (on
/// the parallel path) the worker pool's busy/idle accounting.
#[derive(Debug, Default)]
pub struct SuiteTelemetry {
    /// Counter rollup merged across every run (sums, except `*.peak`
    /// counters which take the maximum).
    pub counters: cedar_obs::Counters,
    /// Summed machine-construction wall-clock across runs, nanoseconds.
    pub setup_ns: u64,
    /// Summed event-loop wall-clock across runs, nanoseconds.
    pub run_ns: u64,
    /// Summed result-breakdown wall-clock across runs, nanoseconds.
    pub breakdown_ns: u64,
    /// Wall-clock of the whole grid, nanoseconds.
    pub wall_ns: u64,
    /// Pool telemetry, when the grid ran on the worker pool.
    pub pool: Option<PoolStats>,
    /// Run-cache traffic (hits/misses/writes/bypasses), when the
    /// campaign ran with a cache mode other than `Off`.
    pub cache: Option<CacheStats>,
}

impl SuiteTelemetry {
    fn from_runs(
        runs: &[RunResult],
        wall_ns: u64,
        pool: Option<PoolStats>,
        cache: Option<CacheStats>,
    ) -> SuiteTelemetry {
        let mut t = SuiteTelemetry {
            wall_ns,
            pool,
            cache,
            ..SuiteTelemetry::default()
        };
        for r in runs {
            t.counters.merge(&r.stats.counters);
            t.setup_ns += r.stats.setup_ns;
            t.run_ns += r.stats.run_ns;
            t.breakdown_ns += r.stats.breakdown_ns;
        }
        t
    }

    /// Total simulator events processed across the grid.
    pub fn events_total(&self) -> u64 {
        self.counters.get("events.total")
    }
}

/// Results of the whole campaign.
#[derive(Debug)]
pub struct SuiteResult {
    /// Per-application results, in suite order.
    pub apps: Vec<AppResults>,
    /// The campaign's own telemetry rollup.
    pub telemetry: SuiteTelemetry,
}

/// The grid's job list: every `(app, configuration)` pair, apps-major,
/// configurations in the order given. Both runner paths share it so the
/// result ordering is identical by construction.
fn grid(apps: &[AppSpec], configurations: &[Configuration]) -> Vec<(AppSpec, Configuration)> {
    let mut jobs = Vec::with_capacity(apps.len() * configurations.len());
    for app in apps {
        for &c in configurations {
            jobs.push((app.clone(), c));
        }
    }
    jobs
}

/// The machine configuration one grid cell runs under: the paper's Cedar
/// at `c` processors, with the campaign-wide knobs from `opts` applied.
fn cell_config(c: Configuration, opts: &RunOptions) -> SimConfig {
    SimConfig::cedar(c)
        .with_scheduler(opts.scheduler)
        .with_tiebreak(opts.tiebreak)
        .with_faults(opts.faults)
}

/// Folds a flat grid of runs (in `grid` order) back into per-app groups.
fn regroup(apps: &[AppSpec], per_app: usize, mut runs: Vec<RunResult>) -> Vec<AppResults> {
    let mut out = Vec::with_capacity(apps.len());
    for app in apps.iter().rev() {
        let rest = runs.split_off(runs.len() - per_app);
        out.push(AppResults {
            app: app.name,
            runs: rest,
        });
    }
    out.reverse();
    out
}

impl SuiteResult {
    /// Runs `apps` on every configuration in `configurations`, one
    /// experiment at a time on the calling thread. This is the reference
    /// path the parallel runner is checked against. Fails with
    /// [`CedarError::CacheIo`] when the configured cache root is
    /// unusable.
    pub fn run_sequential(
        apps: &[AppSpec],
        configurations: &[Configuration],
        opts: &RunOptions,
    ) -> Result<SuiteResult, CedarError> {
        let session = CacheSession::new(opts)?;
        Ok(Self::run_sequential_shared(
            apps,
            configurations,
            opts,
            &session,
        ))
    }

    /// [`run_sequential`](Self::run_sequential) against a campaign
    /// cache session the *caller* owns — the serving path, where one
    /// process-wide session (store handle + in-memory hot tier) is
    /// shared by every worker thread instead of being reopened per
    /// request. `opts.cache`/`opts.cache_hot` are ignored here; policy
    /// lives in `session`. The telemetry's cache traffic is this
    /// campaign's own (folded from per-experiment outcomes), not the
    /// shared session's cumulative counters, so concurrent campaigns
    /// never see each other's lookups.
    pub fn run_sequential_shared(
        apps: &[AppSpec],
        configurations: &[Configuration],
        opts: &RunOptions,
        session: &CacheSession,
    ) -> SuiteResult {
        let wall = std::time::Instant::now();
        let mut outcomes = Vec::new();
        let runs: Vec<_> = grid(apps, configurations)
            .into_iter()
            .map(|(app, c)| {
                let (run, outcome) = session.execute_traced(&app, cell_config(c, opts));
                outcomes.push(outcome);
                run
            })
            .collect();
        let cache = (session.mode() != cedar_obs::CacheMode::Off)
            .then(|| session.fold_outcomes(&outcomes));
        let telemetry =
            SuiteTelemetry::from_runs(&runs, wall.elapsed().as_nanos() as u64, None, cache);
        SuiteResult {
            apps: regroup(apps, configurations.len(), runs),
            telemetry,
        }
    }

    /// Runs the same grid fanned out over the worker pool
    /// (`opts.workers`; `None` → [`pool::default_workers`]). Results
    /// come back in the same deterministic order as
    /// [`SuiteResult::run_sequential`]; a panicking experiment surfaces
    /// as [`CedarError::Internal`] instead of aborting the process or
    /// hanging the pool.
    pub fn run_parallel(
        apps: &[AppSpec],
        configurations: &[Configuration],
        opts: &RunOptions,
    ) -> Result<SuiteResult, CedarError> {
        let wall = std::time::Instant::now();
        // One session serves all workers: pool jobs borrow it (the pool
        // runs on scoped threads) and its counters are atomic.
        let session = CacheSession::new(opts)?;
        let jobs: Vec<_> = grid(apps, configurations)
            .into_iter()
            .map(|(app, c)| {
                let cfg = cell_config(c, opts);
                let session = &session;
                move || session.execute(&app, cfg)
            })
            .collect();
        let workers = opts.workers.unwrap_or_else(pool::default_workers);
        let (runs, pool_stats) =
            pool::run_jobs_timed(workers, jobs).map_err(|e| CedarError::Internal(e.to_string()))?;
        let telemetry = SuiteTelemetry::from_runs(
            &runs,
            wall.elapsed().as_nanos() as u64,
            Some(pool_stats),
            session.stats(),
        );
        Ok(SuiteResult {
            apps: regroup(apps, configurations.len(), runs),
            telemetry,
        })
    }

    /// Runs `apps` on every configuration in `configurations` across the
    /// worker pool under `opts`, panicking on any [`CedarError`]. The
    /// convenience entry point for tools and tests.
    pub fn measure(
        apps: &[AppSpec],
        configurations: &[Configuration],
        opts: &RunOptions,
    ) -> SuiteResult {
        SuiteResult::run_parallel(apps, configurations, opts).expect("campaign failed")
    }

    /// Runs the full campaign under `opts`: the five Perfect
    /// applications on all five configurations.
    pub fn full_campaign(opts: &RunOptions) -> SuiteResult {
        SuiteResult::measure(&cedar_apps::perfect_suite(), &Configuration::ALL, opts)
    }

    /// Looks up one application's results by name.
    pub fn app(&self, name: &str) -> &AppResults {
        self.apps
            .iter()
            .find(|a| a.app.eq_ignore_ascii_case(name))
            .expect("application was measured")
    }
}
