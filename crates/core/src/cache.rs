//! The campaign-side face of the run cache: keying, result conversion,
//! and the per-campaign [`CacheSession`].
//!
//! Correctness rests on the workspace's determinism theorem — an
//! identical `(application, SimConfig)` pair produces a byte-identical
//! [`RunResult`] (`tests/config_fuzz.rs` proves this continuously) — so
//! replaying a stored result is indistinguishable from re-simulating,
//! measurement for measurement. The key is the canonical `Debug` text of
//! both values: every field that shapes the simulation (hardware
//! configuration, OS/RTL cost models, seed, scheduler, event bound,
//! background load, fault plan, and the full workload spec down to each
//! phase) appears in that text, so any change re-keys the experiment.
//! Behavior changes that do *not* alter the text must bump
//! `cedar_cache::MODEL_VERSION` instead.

use std::path::PathBuf;

use cedar_apps::AppSpec;
use cedar_cache::{CacheStats, CachedRun, Lookup, RunCache, RunKey};
use cedar_obs::{CacheMode, CedarError, RunOptions};

use crate::config::SimConfig;
use crate::result::RunResult;
use crate::run::execute;

/// The content address of one `(application, configuration)` experiment.
pub fn run_key(app: &AppSpec, cfg: &SimConfig) -> RunKey {
    RunKey::new(&format!("app={app:?};cfg={cfg:?}"))
}

/// Projects a completed run into its cacheable mirror. The cedarhpm
/// trace is dropped by design — trace-keeping runs never reach the
/// cache (see [`CacheSession::execute`]).
pub fn to_cached(r: &RunResult) -> CachedRun {
    CachedRun {
        app: r.app.to_string(),
        configuration: r.configuration,
        completion_time: r.completion_time,
        breakdowns: r.breakdowns.clone(),
        utilization: r.utilization.clone(),
        os: r.os.clone(),
        concurrency: r.concurrency.clone(),
        gmem: r.gmem.clone(),
        background_stolen: r.background_stolen,
        bodies: r.bodies,
        faults: r.faults,
        events: r.events,
        stats: r.stats.clone(),
    }
}

/// Rehydrates a cached mirror into the [`RunResult`] the methodology
/// layer consumes. The app name is interned back to `&'static str`.
pub fn from_cached(c: CachedRun) -> RunResult {
    RunResult {
        app: cedar_cache::intern(&c.app),
        configuration: c.configuration,
        completion_time: c.completion_time,
        breakdowns: c.breakdowns,
        utilization: c.utilization,
        os: c.os,
        concurrency: c.concurrency,
        gmem: c.gmem,
        background_stolen: c.background_stolen,
        bodies: c.bodies,
        faults: c.faults,
        events: c.events,
        trace: None,
        stats: c.stats,
    }
}

/// Where the cache lives when the caller did not redirect output:
/// `results/cache/` at the workspace root, next to the manifests.
fn default_cache_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/cache")
}

/// How one experiment moved through cache policy — the per-call
/// counterpart of the session-cumulative [`CacheStats`]. A campaign
/// sharing a long-lived session (the serving path) folds these into
/// its own local traffic tally, so concurrent campaigns on the same
/// session never double-count each other's lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOutcome {
    /// No cache configured: plain execution.
    Off,
    /// Trace-keeping run: cache policy skipped.
    Bypass,
    /// Served from the in-memory hot tier.
    HotHit,
    /// Served from the disk store.
    DiskHit,
    /// Simulated; `wrote` says whether the result was stored.
    Simulated { wrote: bool },
}

/// One campaign's cache handle: policy (from
/// [`RunOptions::cache`]) plus the open store. Shareable by reference
/// across the worker pool — all methods take `&self` and the store's
/// counters are atomic. A serving process keeps exactly one session
/// for its whole lifetime ([`crate::SuiteResult::run_sequential_shared`])
/// so the store — and its hot tier — is opened once, not per request.
#[derive(Debug)]
pub struct CacheSession {
    cache: Option<RunCache>,
}

impl CacheSession {
    /// Builds the session for `opts`. `CacheMode::Off` opens nothing
    /// and makes [`execute`](Self::execute) a plain passthrough; other
    /// modes open the store under `opts.output_dir`'s `cache/`
    /// subdirectory (or the workspace `results/cache/`), surfacing an
    /// unusable cache root as [`CedarError::CacheIo`]. A nonzero
    /// `opts.cache_hot` layers an in-memory hot tier of that many
    /// decoded runs over the store.
    pub fn new(opts: &RunOptions) -> Result<CacheSession, CedarError> {
        let cache = match opts.cache {
            CacheMode::Off => None,
            mode => {
                let root = opts
                    .output_dir
                    .as_ref()
                    .map(|d| d.join("cache"))
                    .unwrap_or_else(default_cache_root);
                Some(RunCache::open(root, mode)?.with_hot_capacity(opts.cache_hot))
            }
        };
        Ok(CacheSession { cache })
    }

    /// Runs one experiment through cache policy: serve a valid stored
    /// entry, otherwise simulate and (in writing modes) store the
    /// result. Trace-keeping runs bypass the cache entirely — the trace
    /// is a debugging artifact that is never serialized, and silently
    /// returning a traceless hit would break the caller.
    pub fn execute(&self, app: &AppSpec, cfg: SimConfig) -> RunResult {
        self.execute_traced(app, cfg).0
    }

    /// [`execute`](Self::execute), also reporting how the experiment
    /// moved through cache policy.
    pub fn execute_traced(&self, app: &AppSpec, cfg: SimConfig) -> (RunResult, ExecOutcome) {
        let Some(cache) = &self.cache else {
            return (execute(app, cfg), ExecOutcome::Off);
        };
        if cfg.keep_trace {
            cache.note_bypass();
            return (execute(app, cfg), ExecOutcome::Bypass);
        }
        let key = run_key(app, &cfg);
        if cache.mode().reads() {
            match cache.get_traced(&key) {
                (Some(hit), Lookup::HotHit) => return (from_cached(hit), ExecOutcome::HotHit),
                (Some(hit), _) => return (from_cached(hit), ExecOutcome::DiskHit),
                (None, _) => {}
            }
        } else {
            cache.note_refresh_miss();
        }
        let result = execute(app, cfg);
        let wrote = cache.mode().writes();
        if wrote {
            cache.put(&key, &to_cached(&result));
        }
        (result, ExecOutcome::Simulated { wrote })
    }

    /// The session's cumulative traffic counters, `None` when the
    /// cache is off.
    pub fn stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Whether the session has an in-memory hot tier attached.
    pub fn has_hot_tier(&self) -> bool {
        self.cache.as_ref().is_some_and(|c| c.has_hot_tier())
    }

    /// The hot tier's `(entries, capacity)`, when one is attached.
    pub fn hot_occupancy(&self) -> Option<(usize, usize)> {
        self.cache.as_ref().and_then(|c| c.hot_occupancy())
    }

    /// The session's cache mode ([`CacheMode::Off`] when no cache is
    /// configured).
    pub fn mode(&self) -> CacheMode {
        self.cache
            .as_ref()
            .map(|c| c.mode())
            .unwrap_or(CacheMode::Off)
    }

    /// Folds per-experiment [`ExecOutcome`]s into one campaign-local
    /// [`CacheStats`] — the sharing-safe alternative to diffing the
    /// session's cumulative counters, which would tangle concurrent
    /// campaigns on a shared session together. Hot-tier probes are only
    /// counted when a tier is actually attached, and evictions are a
    /// store-wide phenomenon with no per-campaign attribution, so they
    /// stay 0 here.
    pub fn fold_outcomes(&self, outcomes: &[ExecOutcome]) -> CacheStats {
        // The hot tier is only probed by reading modes (`Refresh` goes
        // straight to simulation), so only those count hot misses.
        let has_hot = self.has_hot_tier() && self.mode().reads();
        let mut s = CacheStats {
            mode: self.mode(),
            ..CacheStats::default()
        };
        for o in outcomes {
            match o {
                ExecOutcome::Off => {}
                ExecOutcome::Bypass => s.bypasses += 1,
                ExecOutcome::HotHit => {
                    s.hits += 1;
                    s.hot_hits += 1;
                }
                ExecOutcome::DiskHit => {
                    s.hits += 1;
                    s.hot_misses += u64::from(has_hot);
                }
                ExecOutcome::Simulated { wrote } => {
                    s.misses += 1;
                    s.hot_misses += u64::from(has_hot);
                    if *wrote {
                        s.writes += 1;
                    }
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_apps::synthetic;
    use cedar_hw::Configuration;

    #[test]
    fn keys_cover_app_and_config() {
        let app = synthetic::uniform_xdoall(1, 2, 4, 100, 8);
        let cfg = SimConfig::cedar(Configuration::P4);
        let k = run_key(&app, &cfg);
        assert_eq!(k, run_key(&app, &cfg), "keying is stable");
        assert_ne!(
            k,
            run_key(&app, &SimConfig::cedar(Configuration::P8)),
            "configuration changes the key"
        );
        assert_ne!(
            k,
            run_key(&app, &cfg.clone().with_seed(99)),
            "seed changes the key"
        );
        let other = synthetic::uniform_xdoall(1, 2, 4, 101, 8);
        assert_ne!(k, run_key(&other, &cfg), "workload changes the key");
    }

    #[test]
    fn cached_round_trip_preserves_the_result() {
        let app = synthetic::uniform_xdoall(1, 2, 8, 150, 8);
        let cfg = SimConfig::cedar(Configuration::P4);
        let direct = execute(&app, cfg.clone());
        let replayed =
            from_cached(CachedRun::decode(&to_cached(&direct).encode()).expect("decode"));
        assert_eq!(direct.app, replayed.app);
        assert!(std::ptr::eq(direct.app, replayed.app) || direct.app == replayed.app);
        assert_eq!(direct.completion_time, replayed.completion_time);
        assert_eq!(direct.events, replayed.events);
        assert_eq!(
            to_cached(&direct).encode(),
            to_cached(&replayed).encode(),
            "full measurement payload survives"
        );
    }

    #[test]
    fn unusable_cache_root_is_a_typed_error() {
        let file = std::env::temp_dir().join(format!("cedar-cache-root-{}", std::process::id()));
        std::fs::write(&file, "not a directory").unwrap();
        let err = RunCache::open(&file, CacheMode::ReadWrite).unwrap_err();
        assert_eq!(err.kind(), "cache_io");
        assert_eq!(err.http_status(), 500);
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn off_session_is_a_passthrough() {
        let session = CacheSession::new(&RunOptions::default()).unwrap();
        assert!(session.stats().is_none());
        let app = synthetic::uniform_xdoall(1, 1, 4, 100, 8);
        let r = session.execute(&app, SimConfig::cedar(Configuration::P1));
        assert!(r.completion_time.0 > 0);
    }
}
