//! The paper's analysis methodology (§7 and Table 3/Table 4 machinery).

pub mod conc;
pub mod contention;

pub use conc::{parallel_loop_concurrency, ClusterConcurrency};
pub use contention::{contention_overhead, ContentionEstimate};
