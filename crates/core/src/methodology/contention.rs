//! Global-memory and network contention overhead (§7, Table 4).
//!
//! The estimate is deliberately indirect, exactly as the paper computes
//! it: the 1-processor run gives the minimum possible total processing
//! time for the parallel-loop code (`T1_mc` for main-cluster-only loops,
//! `T1_sx` for the spread loops); dividing by the measured parallel-loop
//! concurrency gives the *ideal* parallel-loop time; the excess of the
//! *actual* parallel-loop time over the ideal, as a fraction of
//! completion time, is the contention overhead:
//!
//! ```text
//! T_p_ideal  = T1_mc / par_concurr_main + T1_sx / par_concurr_total
//! Ov_cont    = (T_p_actual − T_p_ideal) / CT × 100
//! ```

use cedar_sim::Cycles;
use cedar_trace::UserBucket;

use crate::methodology::conc::{parallel_loop_concurrency, total_parallel_concurrency};
use crate::result::RunResult;

/// One Table 4 cell: the contention estimate for a multiprocessor run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionEstimate {
    /// Measured parallel-loop execution time on the main task.
    pub t_p_actual: Cycles,
    /// Ideal parallel-loop time derived from the 1-processor run.
    pub t_p_ideal: Cycles,
    /// `Ov_cont` as a percentage of completion time.
    pub overhead_pct: f64,
}

/// Main-cluster-only loop time of a run (the `T1_mc`/actual `mc` term).
fn mc_time(run: &RunResult) -> Cycles {
    run.main_breakdown().get(UserBucket::ClusterLoop)
}

/// Spread-loop (s(x)doall) execution time of a run, xdoall pick-up
/// included per footnote 4.
fn sx_time(run: &RunResult) -> Cycles {
    let b = run.main_breakdown();
    b.get(UserBucket::IterExec) + b.get(UserBucket::PickupXdoall) + b.get(UserBucket::ClusterSync)
}

/// Estimates the contention overhead of `run` against the 1-processor
/// `baseline` of the same application.
///
/// # Panics
///
/// Panics if the runs are for different applications.
pub fn contention_overhead(baseline: &RunResult, run: &RunResult) -> ContentionEstimate {
    assert_eq!(
        baseline.app, run.app,
        "baseline and run must be the same application"
    );
    let t1_mc = mc_time(baseline);
    let t1_sx = sx_time(baseline);

    let conc = parallel_loop_concurrency(run);
    let par_main = conc[0].par_concurr.max(1.0);
    let par_total = total_parallel_concurrency(&conc).max(1.0);

    let t_p_ideal = Cycles((t1_mc.0 as f64 / par_main + t1_sx.0 as f64 / par_total).round() as u64);
    let t_p_actual = mc_time(run) + sx_time(run);

    let overhead_pct =
        (t_p_actual.0 as f64 - t_p_ideal.0 as f64) / run.completion_time.0.max(1) as f64 * 100.0;
    ContentionEstimate {
        t_p_actual,
        t_p_ideal,
        overhead_pct,
    }
}

/// The actual parallel-loop time of the 1-processor baseline itself
/// (Table 4's first column).
pub fn baseline_parallel_time(baseline: &RunResult) -> Cycles {
    mc_time(baseline) + sx_time(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_hw::gmem::GmemStats;
    use cedar_hw::Configuration;
    use cedar_sim::stats::LatencyHistogram;
    use cedar_trace::qmon::ClusterUtilization;
    use cedar_trace::TaskBreakdown;
    use cedar_xylem::OsAccounting;

    fn run(
        app: &'static str,
        ct: u64,
        iter: u64,
        cluster_loop: u64,
        clusters: usize,
        avg: f64,
    ) -> RunResult {
        let mut breakdowns = Vec::new();
        for c in 0..clusters {
            let mut b = TaskBreakdown::new();
            b.charge(UserBucket::IterExec, Cycles(iter));
            if c == 0 {
                b.charge(UserBucket::ClusterLoop, Cycles(cluster_loop));
                b.charge(
                    UserBucket::Serial,
                    Cycles(ct.saturating_sub(iter + cluster_loop)),
                );
            }
            breakdowns.push(b);
        }
        RunResult {
            app,
            configuration: Configuration::P8,
            completion_time: Cycles(ct),
            breakdowns,
            utilization: vec![ClusterUtilization::default(); clusters],
            os: OsAccounting::new(clusters as u8),
            concurrency: vec![avg; clusters],
            gmem: GmemStats {
                packets: 0,
                cluster_path_queued: Cycles::ZERO,
                fwd_queued: Cycles::ZERO,
                rev_queued: Cycles::ZERO,
                module_queued: Cycles::ZERO,
                module_requests: vec![],
                module_sync_requests: vec![],
                latency: LatencyHistogram::new(4),
                min_round_trip: Cycles(36),
            },
            background_stolen: Cycles::ZERO,
            bodies: 0,
            faults: (0, 0),
            events: 0,
            trace: None,
            stats: cedar_obs::RunStats::default(),
        }
    }

    #[test]
    fn no_contention_when_actual_equals_ideal() {
        // 1p: 8000 cycles of loop work. 8p run: 1000 cycles with pf such
        // that par_concurr comes out at exactly 8.
        let base = run("A", 10_000, 8_000, 0, 1, 1.0);
        // pf = 1000/1250 = 0.8; avg = (1-pf) + pf*8 = 6.6
        let multi = run("A", 1_250, 1_000, 0, 1, 6.6);
        let est = contention_overhead(&base, &multi);
        assert_eq!(est.t_p_ideal, Cycles(1_000));
        assert!(est.overhead_pct.abs() < 1e-6);
    }

    #[test]
    fn slower_actual_shows_positive_overhead() {
        let base = run("A", 10_000, 8_000, 0, 1, 1.0);
        // Same derived concurrency, but actual loop time 25% above ideal.
        // pf = 1250/2000; avg = (1-pf)+pf*8
        let pf: f64 = 1250.0 / 2000.0;
        let multi = run("A", 2_000, 1_250, 0, 1, (1.0 - pf) + pf * 8.0);
        let est = contention_overhead(&base, &multi);
        assert_eq!(est.t_p_ideal, Cycles(1_000));
        assert_eq!(est.t_p_actual, Cycles(1_250));
        assert!((est.overhead_pct - 12.5).abs() < 1e-9);
    }

    #[test]
    fn baseline_parallel_time_sums_loop_buckets() {
        let base = run("A", 10_000, 8_000, 500, 1, 1.0);
        assert_eq!(baseline_parallel_time(&base), Cycles(8_500));
    }

    #[test]
    #[should_panic(expected = "same application")]
    fn mismatched_apps_panic() {
        let a = run("A", 100, 10, 0, 1, 1.0);
        let b = run("B", 100, 10, 0, 1, 1.0);
        contention_overhead(&a, &b);
    }

    #[test]
    fn multicluster_ideal_splits_mc_and_sx_terms() {
        let base = run("A", 20_000, 16_000, 1_000, 1, 1.0);
        // Two clusters, both fully parallel (pf = 1) at concurrency 8:
        // main cluster splits its time between spread and cluster loops.
        let mut multi = run("A", 3_000, 2_000, 1_000, 2, 8.0);
        // Give the helper a fully-parallel timeline too.
        multi.breakdowns[1] = {
            let mut b = TaskBreakdown::new();
            b.charge(UserBucket::IterExec, Cycles(3_000));
            b
        };
        let est = contention_overhead(&base, &multi);
        // par_main = par_helper = 8, total = 16:
        // ideal = 1000/8 + 16000/16 = 125 + 1000.
        assert_eq!(est.t_p_ideal, Cycles(1_125));
    }
}
