//! Average parallel-loop concurrency (§7, Table 3).
//!
//! "The concurrency during non-parallel work such as serial code
//! execution, picking up iterations for the sdoall loops, spin-waiting at
//! the barrier, and busy-waiting for work, is 1 on each cluster.
//! Therefore, the average parallel loop concurrency, par_concurr, on each
//! cluster can be determined from the following equation:
//! `(1 − pf) + (pf · par_concurr) = avg_concurr`."
//!
//! `pf` is the fraction of the completion time spent on parallel-loop
//! execution on that cluster; per footnote 4, xdoall iteration pick-up is
//! a parallel activity and is included in `pf`.

use crate::result::RunResult;

/// One cluster's parallel-loop concurrency figures (a Table 3 cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConcurrency {
    /// Fraction of completion time in parallel-loop execution (`pf`).
    pub pf: f64,
    /// statfx average concurrency on the cluster (`avg_concurr`).
    pub avg_concurr: f64,
    /// Derived average parallel-loop concurrency (`par_concurr`).
    pub par_concurr: f64,
}

/// Solves the §7 equation for every cluster of a run. Index 0 is the
/// main task's cluster.
pub fn parallel_loop_concurrency(run: &RunResult) -> Vec<ClusterConcurrency> {
    run.breakdowns
        .iter()
        .zip(run.concurrency.iter())
        .map(|(breakdown, &avg_concurr)| {
            let pf = breakdown
                .parallel_execution()
                .fraction_of(run.completion_time);
            let par_concurr = if pf <= f64::EPSILON {
                1.0
            } else {
                // (1 - pf) + pf * par = avg  =>  par = (avg - 1 + pf) / pf
                ((avg_concurr - 1.0 + pf) / pf).max(0.0)
            };
            ClusterConcurrency {
                pf,
                avg_concurr,
                par_concurr,
            }
        })
        .collect()
}

/// Sum of per-cluster parallel-loop concurrencies (`par_concurr_total`
/// in the §7 multicluster formula).
pub fn total_parallel_concurrency(per_cluster: &[ClusterConcurrency]) -> f64 {
    per_cluster.iter().map(|c| c.par_concurr).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_hw::gmem::GmemStats;
    use cedar_hw::Configuration;
    use cedar_sim::stats::LatencyHistogram;
    use cedar_sim::Cycles;
    use cedar_trace::qmon::ClusterUtilization;
    use cedar_trace::{TaskBreakdown, UserBucket};
    use cedar_xylem::OsAccounting;

    fn fake_run(pf_time: u64, ct: u64, avg: f64) -> RunResult {
        let mut b = TaskBreakdown::new();
        b.charge(UserBucket::IterExec, Cycles(pf_time));
        b.charge(UserBucket::Serial, Cycles(ct - pf_time));
        RunResult {
            app: "FAKE",
            configuration: Configuration::P8,
            completion_time: Cycles(ct),
            breakdowns: vec![b],
            utilization: vec![ClusterUtilization::default()],
            os: OsAccounting::new(1),
            concurrency: vec![avg],
            gmem: GmemStats {
                packets: 0,
                cluster_path_queued: Cycles::ZERO,
                fwd_queued: Cycles::ZERO,
                rev_queued: Cycles::ZERO,
                module_queued: Cycles::ZERO,
                module_requests: vec![],
                module_sync_requests: vec![],
                latency: LatencyHistogram::new(4),
                min_round_trip: Cycles(36),
            },
            background_stolen: Cycles::ZERO,
            bodies: 0,
            faults: (0, 0),
            events: 0,
            trace: None,
            stats: cedar_obs::RunStats::default(),
        }
    }

    #[test]
    fn solves_the_paper_equation() {
        // pf = 0.5, avg = 4.0  =>  par = (4 - 1 + 0.5)/0.5 = 7.0
        let run = fake_run(500, 1000, 4.0);
        let c = parallel_loop_concurrency(&run);
        assert!((c[0].pf - 0.5).abs() < 1e-12);
        assert!((c[0].par_concurr - 7.0).abs() < 1e-9);
    }

    #[test]
    fn fully_parallel_cluster_recovers_avg() {
        // pf = 1.0: par_concurr equals avg_concurr.
        let run = fake_run(1000, 1000, 7.5);
        let c = parallel_loop_concurrency(&run);
        assert!((c[0].par_concurr - 7.5).abs() < 1e-9);
    }

    #[test]
    fn zero_parallel_fraction_defaults_to_one() {
        let run = fake_run(0, 1000, 1.0);
        let c = parallel_loop_concurrency(&run);
        assert_eq!(c[0].par_concurr, 1.0);
    }

    #[test]
    fn total_sums_clusters() {
        let cc = vec![
            ClusterConcurrency {
                pf: 0.5,
                avg_concurr: 4.0,
                par_concurr: 7.0,
            },
            ClusterConcurrency {
                pf: 0.5,
                avg_concurr: 3.5,
                par_concurr: 6.0,
            },
        ];
        assert!((total_parallel_concurrency(&cc) - 13.0).abs() < 1e-12);
    }
}
