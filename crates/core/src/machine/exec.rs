//! Loop-protocol execution: phase sequencing, SDOALL/CDOALL and XDOALL
//! orchestration, body execution and the finish barrier.

use std::sync::Arc;

use cedar_apps::{AccessPattern, BodySpec};
use cedar_hw::addr::pages_touched;
use cedar_hw::{MemOp, VectorAccess};
use cedar_rtl::loops::{pack_activity, TERMINATE_CODE};
use cedar_rtl::{
    BarrierStep, ClaimStep, IterClaimer, LoopDescriptor, LoopKind, WaitStep, WordIssue,
};
use cedar_sim::Cycles;
use cedar_trace::event::loop_kind_code;
use cedar_trace::TraceEventId;
use cedar_xylem::{PageTouch, SyscallKind};

use super::state::{CeMode, LoopCtx, Role};
use super::Machine;
use crate::program::CompiledPhase;

/// The loop currently posted by the main task (ground truth shared with
/// joining helpers; the real runtime reads this from the descriptor
/// words, which the simulated helpers also do for timing).
#[derive(Debug, Clone)]
pub struct PostedLoop {
    pub(crate) kind: LoopKind,
    pub(crate) seq: u32,
    pub(crate) outer: u32,
    pub(crate) inner: u32,
    pub(crate) body: Arc<BodySpec>,
}

impl Machine {
    // ---- program start / end ----------------------------------------

    /// Charges task-creation syscalls, arms the OS schedules, starts the
    /// helpers spinning and enters the first phase.
    pub(crate) fn startup(&mut self) {
        self.post(TraceEventId::ProgramStart, 0, 0);
        // The runtime creates and starts one helper task per non-master
        // cluster through global system calls (§2).
        for cluster in 1..self.tasks.len() {
            for kind in [SyscallKind::TaskCreate, SyscallKind::TaskStart] {
                self.charge_syscall(0, kind);
            }
            let lead = self.lead_of(cluster);
            self.set_mode(lead, CeMode::WaitWork);
            self.post(TraceEventId::WaitForWorkEnter, lead, 0);
            let step = self.tasks[cluster].waiter.begin();
            self.apply_wait_step(lead, step);
        }
        for cluster in 0..self.tasks.len() {
            let (t, _) = self.daemons[cluster].next_after(self.now);
            self.queue
                .schedule(t, crate::events::Ev::Daemon { cluster });
            let (t, _) = self.asts[cluster].next_after(self.now);
            self.queue.schedule(t, crate::events::Ev::Ast { cluster });
            if !self.background.is_empty() {
                let (t, _) = self.background[cluster].next_after(self.now);
                self.queue
                    .schedule(t, crate::events::Ev::Background { cluster });
            }
        }
        // Arm the fault campaign's timed occurrence streams.
        if let Some(driver) = self.fault_driver.as_mut() {
            for (t, kind, cluster) in driver.first_events() {
                self.queue
                    .schedule(t, crate::events::Ev::Fault { kind, cluster });
            }
        }
        self.next_phase();
    }

    /// Advances the main task to its next phase (or termination).
    pub(crate) fn next_phase(&mut self) {
        let lead = 0;
        let idx = self.phase_idx;
        self.phase_idx += 1;
        // Copy the phase's scalars (and the shared body handle) out so
        // the program borrow ends before the protocol mutates `self`.
        enum Next {
            Serial(Cycles),
            Loop(LoopKind, u32, u32, Arc<BodySpec>, Cycles),
        }
        let next = match self.program.phase(idx) {
            Some(CompiledPhase::Serial { work, .. }) => Next::Serial(*work),
            Some(CompiledPhase::Loop {
                kind,
                outer,
                inner,
                body,
                serial_region,
            }) => Next::Loop(*kind, *outer, *inner, body.clone(), *serial_region),
            None => {
                // Program over: signal the helpers and stop.
                self.loop_seq += 1;
                let word = pack_activity(self.loop_seq, TERMINATE_CODE);
                self.set_mode(lead, CeMode::TerminateWrite);
                let activity = self.layout.words().activity;
                self.start_word(lead, activity, MemOp::Write(word));
                return;
            }
        };
        match next {
            Next::Serial(work) => {
                self.post(TraceEventId::SerialStart, lead, 0);
                self.set_mode(lead, CeMode::SerialCompute);
                self.start_compute(lead, work);
            }
            Next::Loop(kind, outer, inner, body, serial_region) => {
                self.loop_seq += 1;
                let posted = PostedLoop {
                    kind,
                    seq: self.loop_seq,
                    outer,
                    inner,
                    body,
                };
                if kind.is_cross_cluster() {
                    // SDOALL / XDOALL: post to global memory so helpers
                    // can join.
                    self.post(TraceEventId::MainEncounterLoop, lead, kind.code());
                    self.post(TraceEventId::LoopSetupEnter, lead, kind.code());
                    self.posted = Some(posted);
                    self.set_mode(lead, CeMode::SetupWrite { step: 0 });
                    let setup = self.cfg.rtl.setup_local;
                    self.start_compute(lead, setup);
                } else {
                    // Main-cluster-only loop: no posting, no helpers.
                    self.post(TraceEventId::ClusterLoopStart, lead, kind.code());
                    self.tasks[0].cur = Some(LoopCtx {
                        kind,
                        seq: posted.seq,
                        outer_total: posted.outer,
                        inner_total: posted.inner,
                        body: posted.body,
                        serial_region,
                        inner_next: 0,
                        outer_current: 0,
                    });
                    if kind == LoopKind::Doacross {
                        // Reset the serialization ticket, then dispatch.
                        let ticket = self.layout.words().ticket;
                        self.set_mode(lead, CeMode::DoacrossSetup);
                        self.start_word(lead, ticket, MemOp::Write(0));
                    } else {
                        self.dispatch_cluster(0);
                    }
                }
            }
        }
    }

    // ---- the protocol dispatcher --------------------------------------

    /// Advances CE `pos` after its activity completed with `value`.
    pub(crate) fn advance(&mut self, pos: usize, value: u64) {
        let mode = self.ces[pos].mode;
        match mode {
            CeMode::Idle | CeMode::Stopped => {}
            CeMode::SerialCompute => match self.serial_access(0) {
                None => {
                    self.post(TraceEventId::SerialEnd, pos, 0);
                    self.next_phase();
                }
                Some(a) => {
                    self.set_mode(pos, CeMode::SerialAccess { idx: 0 });
                    self.serial_counter += 1;
                    self.start_access(pos, &a, self.serial_counter);
                }
            },
            CeMode::SerialAccess { idx } => {
                let next = idx + 1;
                match self.serial_access(next) {
                    Some(a) => {
                        self.set_mode(pos, CeMode::SerialAccess { idx: next });
                        self.start_access(pos, &a, self.serial_counter);
                    }
                    None => {
                        self.post(TraceEventId::SerialEnd, pos, 0);
                        self.next_phase();
                    }
                }
            }
            CeMode::SetupWrite { step } => self.advance_setup(pos, step),
            CeMode::ClaimOuter => {
                let cluster = self.cluster_of(pos);
                let step = self.tasks[cluster]
                    .outer_claimer
                    .as_mut()
                    .expect("outer claimer present in ClaimOuter")
                    .on_value(value);
                self.apply_outer_claim(pos, step);
            }
            CeMode::ClaimFlat => {
                let step = self.ces[pos]
                    .claimer
                    .as_mut()
                    .expect("flat claimer present in ClaimFlat")
                    .on_value(value);
                self.apply_flat_claim(pos, step);
            }
            CeMode::Body { iter, stage } => self.advance_body(pos, iter, stage),
            CeMode::FinishSpin => {
                let step = self.tasks[0].finish.on_value(value);
                self.apply_finish_step(pos, step);
            }
            CeMode::WaitWork => {
                let cluster = self.cluster_of(pos);
                let step = self.tasks[cluster].waiter.on_value(value);
                self.apply_wait_step(pos, step);
            }
            CeMode::JoinAdd => {
                // The +1 landed; read the descriptor to learn the loop.
                self.set_mode(pos, CeMode::JoinRead);
                let descriptor = self.layout.words().descriptor;
                self.start_word(pos, descriptor, MemOp::Read);
            }
            CeMode::JoinRead => {
                let cluster = self.cluster_of(pos);
                self.post(TraceEventId::HelperJoinLoop, pos, 0);
                // Suppress a duplicate join if this helper raced the
                // activity word (it re-validates against the descriptor).
                let seq = self.posted.as_ref().expect("loop posted").seq;
                self.tasks[cluster].waiter.mark_seen(seq);
                let join_local = self.cfg.rtl.join_local;
                self.ces[pos].pending_penalty += join_local;
                self.enter_posted_loop(cluster, value as u32);
            }
            CeMode::DetachAdd => {
                self.post(TraceEventId::TaskDetach, pos, 0);
                let cluster = self.cluster_of(pos);
                self.tasks[cluster].cur = None;
                self.set_mode(pos, CeMode::WaitWork);
                self.post(TraceEventId::WaitForWorkEnter, pos, 0);
                let cluster = self.cluster_of(pos);
                let step = self.tasks[cluster].waiter.begin();
                self.apply_wait_step(pos, step);
            }
            CeMode::DoacrossSetup => {
                // Ticket reset landed: fan the loop out.
                self.dispatch_cluster(self.cluster_of(pos));
            }
            CeMode::DoacrossTicket { iter } => {
                if value == iter {
                    // Our turn: run the serialized region.
                    let cluster = self.cluster_of(pos);
                    let region = self.tasks[cluster]
                        .cur
                        .as_ref()
                        .expect("in doacross loop")
                        .serial_region;
                    self.set_mode(pos, CeMode::DoacrossRegion { iter });
                    self.start_compute(pos, region);
                } else {
                    // Not yet: re-read the ticket after a spin period.
                    let ticket = self.layout.words().ticket;
                    let period = self.cfg.rtl.barrier_spin_period;
                    self.start_delayed_word(pos, period, ticket, MemOp::Read);
                }
            }
            CeMode::DoacrossRegion { iter } => {
                // Region done: pass the ticket to the next iteration.
                let ticket = self.layout.words().ticket;
                self.set_mode(pos, CeMode::DoacrossExit { iter });
                self.start_word(pos, ticket, MemOp::Write(iter + 1));
            }
            CeMode::DoacrossExit { iter } => {
                let _ = iter;
                self.claim_inner_or_barrier(pos, Cycles::ZERO);
            }
            CeMode::TerminateWrite => {
                self.finished_at = Some(self.now);
                self.post(TraceEventId::ProgramEnd, pos, 0);
                self.set_mode(pos, CeMode::Stopped);
            }
            CeMode::CbusWait | CeMode::BodyFaultWait { .. } => {
                unreachable!("no activity completes in {mode:?}")
            }
        }
    }

    fn advance_setup(&mut self, pos: usize, step: u8) {
        let words = self.layout.words();
        let posted = self.posted.clone().expect("posted loop during setup");
        match step {
            0 => {
                self.set_mode(pos, CeMode::SetupWrite { step: 1 });
                self.start_word(pos, words.index, MemOp::Write(0));
            }
            1 => {
                self.set_mode(pos, CeMode::SetupWrite { step: 2 });
                self.start_word(pos, words.descriptor, MemOp::Write(posted.outer as u64));
            }
            2 => {
                self.set_mode(pos, CeMode::SetupWrite { step: 3 });
                let desc = LoopDescriptor {
                    kind: posted.kind,
                    seq: posted.seq,
                    total_iters: posted.outer,
                };
                self.start_word(pos, words.activity, MemOp::Write(desc.activity_word()));
            }
            3 => {
                self.post(TraceEventId::LoopSetupExit, pos, posted.kind.code());
                let cluster = self.cluster_of(pos);
                self.enter_posted_loop(cluster, posted.outer);
            }
            _ => unreachable!("setup has four steps"),
        }
    }

    // ---- entering loops ------------------------------------------------

    /// A cluster (main after setup, helper after join) enters the posted
    /// loop.
    pub(crate) fn enter_posted_loop(&mut self, cluster: usize, observed_total: u32) {
        let posted = self.posted.clone().expect("a loop is posted");
        debug_assert_eq!(observed_total, posted.outer, "descriptor round trip");
        self.tasks[cluster].cur = Some(LoopCtx {
            kind: posted.kind,
            seq: posted.seq,
            outer_total: posted.outer,
            inner_total: posted.inner,
            body: posted.body.clone(),
            serial_region: Cycles::ZERO,
            inner_next: 0,
            outer_current: 0,
        });
        let lead = self.lead_of(cluster);
        match posted.kind {
            LoopKind::Sdoall => {
                // Only the lead touches the global iteration lock; the
                // cluster's CEs wait for the inner dispatch.
                self.begin_outer_claim(lead);
            }
            LoopKind::Xdoall => {
                // Every CE competes for iterations independently, after
                // the concurrency-bus dispatch fans them out (§2).
                let dispatch = self.cfg.hw.cluster.cbus_dispatch;
                for pos in self.cluster_ces(cluster) {
                    self.begin_flat_claim(pos, dispatch);
                }
            }
            LoopKind::Cluster | LoopKind::Doacross => {
                unreachable!("cluster loops are not posted to helpers")
            }
        }
    }

    /// Fans a cluster-only loop (or a claimed outer chunk) out across the
    /// cluster's CEs.
    pub(crate) fn dispatch_cluster(&mut self, cluster: usize) {
        let dispatch = self.cfg.hw.cluster.cbus_dispatch;
        for pos in self.cluster_ces(cluster) {
            self.claim_inner_or_barrier(pos, dispatch);
        }
    }

    fn begin_outer_claim(&mut self, lead: usize) {
        let cluster = self.cluster_of(lead);
        let kind = self.tasks[cluster].cur.as_ref().expect("in loop").kind;
        let (outer_total, words, backoff) = {
            let ctx = self.tasks[cluster].cur.as_ref().unwrap();
            (
                ctx.outer_total,
                self.layout.words(),
                self.cfg.rtl.lock_backoff,
            )
        };
        self.post(TraceEventId::PickIterEnter, lead, kind.code());
        self.set_mode(lead, CeMode::ClaimOuter);
        let mut claimer = IterClaimer::new(words, outer_total, backoff);
        let step = claimer.begin();
        self.tasks[cluster].outer_claimer = Some(claimer);
        self.apply_outer_claim(lead, step);
    }

    fn begin_flat_claim(&mut self, pos: usize, extra_delay: Cycles) {
        let cluster = self.cluster_of(pos);
        let ctx = self.tasks[cluster].cur.as_ref().expect("in loop");
        let total = ctx.outer_total;
        let words = self.layout.words();
        let backoff = self.cfg.rtl.lock_backoff;
        self.post(TraceEventId::PickIterEnter, pos, loop_kind_code::XDOALL);
        self.set_mode(pos, CeMode::ClaimFlat);
        let mut claimer = IterClaimer::new(words, total, backoff);
        let step = claimer.begin();
        self.ces[pos].claimer = Some(claimer);
        match step {
            ClaimStep::Issue(wi) => {
                self.start_delayed_word(pos, wi.after + extra_delay, wi.addr, wi.op)
            }
            _ => unreachable!("begin() always issues"),
        }
    }

    fn apply_outer_claim(&mut self, pos: usize, step: ClaimStep) {
        let cluster = self.cluster_of(pos);
        match step {
            ClaimStep::Issue(wi) => self.issue(pos, wi),
            ClaimStep::Claimed(o) => {
                self.post(TraceEventId::PickIterExit, pos, loop_kind_code::SDOALL);
                {
                    let ctx = self.tasks[cluster].cur.as_mut().expect("in loop");
                    ctx.outer_current = o;
                    ctx.inner_next = 0;
                }
                self.dispatch_cluster(cluster);
            }
            ClaimStep::Exhausted => {
                self.post(TraceEventId::PickIterExit, pos, loop_kind_code::SDOALL);
                self.tasks[cluster].outer_claimer = None;
                self.leave_loop(pos);
            }
        }
    }

    fn apply_flat_claim(&mut self, pos: usize, step: ClaimStep) {
        match step {
            ClaimStep::Issue(wi) => self.issue(pos, wi),
            ClaimStep::Claimed(i) => {
                self.post(TraceEventId::PickIterExit, pos, loop_kind_code::XDOALL);
                self.begin_body(pos, i as u64, Cycles::ZERO);
            }
            ClaimStep::Exhausted => {
                self.post(TraceEventId::PickIterExit, pos, loop_kind_code::XDOALL);
                self.ces[pos].claimer = None;
                self.cbus_arrive(pos);
            }
        }
    }

    /// A task's lead leaves the current loop (outer iterations exhausted
    /// and, for flat loops, the cluster barrier passed).
    fn leave_loop(&mut self, pos: usize) {
        let cluster = self.cluster_of(pos);
        match self.tasks[cluster].role {
            Role::Main => {
                self.tasks[cluster].cur = None;
                self.post(TraceEventId::FinishBarrierEnter, pos, 0);
                self.set_mode(pos, CeMode::FinishSpin);
                let step = self.tasks[0].finish.begin();
                self.apply_finish_step(pos, step);
            }
            Role::Helper => {
                // Decision-time ground truth: the detach is committed now;
                // the fetch-add packet is the traffic it costs.
                self.joined_truth -= 1;
                self.set_mode(pos, CeMode::DetachAdd);
                let joined = self.layout.words().joined;
                self.start_word(pos, joined, MemOp::FetchAdd(-1));
            }
        }
    }

    fn apply_finish_step(&mut self, pos: usize, step: BarrierStep) {
        match step {
            BarrierStep::Issue(wi) => self.issue(pos, wi),
            BarrierStep::Released => {
                if self.joined_truth != 0 {
                    // A helper's join fetch-add is still in flight; the
                    // observed zero is stale. Keep spinning.
                    let step = self.tasks[0].finish.begin();
                    self.apply_finish_step(pos, step);
                    return;
                }
                self.post(TraceEventId::FinishBarrierExit, pos, 0);
                self.tasks[0].cur = None;
                self.next_phase();
            }
        }
    }

    fn apply_wait_step(&mut self, pos: usize, step: WaitStep) {
        match step {
            WaitStep::Issue(wi) => self.issue(pos, wi),
            WaitStep::NewWork { seq, kind } => {
                let _ = (seq, kind);
                self.post(TraceEventId::WaitForWorkExit, pos, kind.code());
                // Commit the join at decision time (see leave_loop).
                self.joined_truth += 1;
                self.set_mode(pos, CeMode::JoinAdd);
                let joined = self.layout.words().joined;
                self.start_word(pos, joined, MemOp::FetchAdd(1));
            }
            WaitStep::Terminate => {
                // Helper stops through a task-stop system call.
                let cluster = self.cluster_of(pos);
                self.charge_syscall(cluster, SyscallKind::TaskStop);
                self.post(TraceEventId::WaitForWorkExit, pos, TERMINATE_CODE);
                self.set_mode(pos, CeMode::Stopped);
            }
        }
    }

    // ---- bodies ---------------------------------------------------------

    /// Claims the next inner (`cdoall`) iteration for CE `pos`, or sends
    /// it to the cluster barrier when the chunk is exhausted.
    pub(crate) fn claim_inner_or_barrier(&mut self, pos: usize, extra_delay: Cycles) {
        let cluster = self.cluster_of(pos);
        let claimed = {
            let ctx = self.tasks[cluster].cur.as_mut().expect("in loop");
            if ctx.inner_next < ctx.inner_total {
                let i = ctx.inner_next;
                ctx.inner_next += 1;
                Some((i, ctx.outer_current, ctx.inner_total))
            } else {
                None
            }
        };
        match claimed {
            Some((i, outer, inner_total)) => {
                let iter = outer as u64 * inner_total as u64 + i as u64;
                let claim = self.cfg.rtl.inner_claim;
                self.begin_body(pos, iter, extra_delay + claim);
            }
            None => self.cbus_arrive(pos),
        }
    }

    /// Starts executing one loop body: the jittered compute span, then
    /// the body's accesses.
    pub(crate) fn begin_body(&mut self, pos: usize, iter: u64, extra: Cycles) {
        let cluster = self.cluster_of(pos);
        let kind = self.tasks[cluster].cur.as_ref().expect("in loop").kind;
        self.post(TraceEventId::IterStart, pos, kind.code());
        self.set_mode(pos, CeMode::Body { iter, stage: 0 });
        let compute = {
            let ctx = self.tasks[cluster].cur.as_ref().unwrap();
            self.jittered(ctx.body.compute, ctx.body.jitter_pct)
        };
        self.start_compute(pos, extra + compute);
    }

    fn advance_body(&mut self, pos: usize, iter: u64, stage: u8) {
        let cluster = self.cluster_of(pos);
        let n_accesses = {
            let ctx = self.tasks[cluster].cur.as_ref().expect("in loop");
            ctx.body.accesses.len()
        };
        if (stage as usize) < n_accesses {
            let next = stage + 1;
            self.set_mode(pos, CeMode::Body { iter, stage: next });
            self.start_body_stage(pos, iter, next);
        } else {
            // Body complete.
            let kind = self.tasks[cluster].cur.as_ref().unwrap().kind;
            self.post(TraceEventId::IterEnd, pos, kind.code());
            self.scratch.bump(super::SCRATCH_BODIES);
            match kind {
                LoopKind::Doacross => {
                    // Enter the serialized region in iteration order.
                    let ticket = self.layout.words().ticket;
                    self.set_mode(pos, CeMode::DoacrossTicket { iter });
                    self.start_word(pos, ticket, MemOp::Read);
                }
                LoopKind::Xdoall => {
                    self.post(TraceEventId::PickIterEnter, pos, loop_kind_code::XDOALL);
                    self.set_mode(pos, CeMode::ClaimFlat);
                    let step = self.ces[pos]
                        .claimer
                        .as_mut()
                        .expect("flat claimer persists across bodies")
                        .begin();
                    self.apply_flat_claim(pos, step);
                }
                _ => self.claim_inner_or_barrier(pos, Cycles::ZERO),
            }
        }
    }

    /// Starts body stage `stage` (≥ 1): the access at index `stage − 1`.
    pub(crate) fn start_body_stage(&mut self, pos: usize, iter: u64, stage: u8) {
        let cluster = self.cluster_of(pos);
        let a = {
            let ctx = self.tasks[cluster].cur.as_ref().expect("in loop");
            ctx.body.accesses[(stage - 1) as usize]
        };
        self.start_access(pos, &a, iter);
    }

    /// Resolves and launches one vector access, handling demand paging.
    pub(crate) fn start_access(&mut self, pos: usize, a: &AccessPattern, iter: u64) {
        let access: VectorAccess = self.layout.resolve(a, iter, MemOp::Read);
        self.touch_pages(pos, &access);
        self.start_vector(pos, &access);
    }

    /// First-touch demand paging for an access: faults charge the OS
    /// buckets and extend the CE's activity via the penalty mechanism.
    fn touch_pages(&mut self, pos: usize, access: &VectorAccess) {
        let page_bytes = self.layout.page_bytes();
        let pages = pages_touched(access.base, access.words, access.stride_dwords, page_bytes);
        let ce_id = self.ce_id(pos);
        for page in pages {
            match self.vm.touch(page, ce_id, self.now) {
                PageTouch::Mapped => {}
                PageTouch::Fault {
                    class,
                    resume_at,
                    cost,
                    raise_cpi,
                } => {
                    let stall = resume_at - self.now;
                    self.charge_fault(pos, class, cost, stall);
                    if raise_cpi {
                        self.raise_cpi(self.cluster_of(pos));
                    }
                }
            }
        }
    }

    // ---- cluster barrier release ----------------------------------------

    /// All of a cluster's CEs reached the concurrency-bus barrier.
    pub(crate) fn on_cbus_release(&mut self, cluster: usize) {
        let kind = self.tasks[cluster].cur.as_ref().expect("in loop").kind;
        let lead = self.lead_of(cluster);
        // Non-lead CEs go back to gang-waiting.
        for pos in self.cluster_ces(cluster) {
            if pos != lead {
                self.set_mode(pos, CeMode::Idle);
            }
        }
        match kind {
            LoopKind::Sdoall => self.begin_outer_claim(lead),
            LoopKind::Xdoall => self.leave_loop(lead),
            LoopKind::Cluster | LoopKind::Doacross => {
                self.post(TraceEventId::ClusterLoopEnd, lead, kind.code());
                self.tasks[cluster].cur = None;
                self.next_phase();
            }
        }
    }

    // ---- helpers ---------------------------------------------------------

    fn issue(&mut self, pos: usize, wi: WordIssue) {
        self.start_delayed_word(pos, wi.after, wi.addr, wi.op);
    }

    /// The current serial phase's `idx`-th access, if any (by-value: the
    /// pattern is `Copy`, so the serial walk never clones the vector).
    fn serial_access(&self, idx: usize) -> Option<AccessPattern> {
        match self.program.phase(self.phase_idx - 1) {
            Some(CompiledPhase::Serial { accesses, .. }) => accesses.get(idx).copied(),
            _ => None,
        }
    }

    /// Applies per-execution jitter to a body's compute cost.
    pub(crate) fn jittered(&mut self, compute: Cycles, jitter_pct: u8) -> Cycles {
        if jitter_pct == 0 || compute == Cycles::ZERO {
            return compute;
        }
        let span = compute.0 * jitter_pct as u64 / 100;
        if span == 0 {
            return compute;
        }
        let lo = compute.0 - span / 2;
        Cycles(lo + self.rng.next_below(span + 1))
    }
}
