//! Per-CE and per-task runtime state.

use std::sync::Arc;

use cedar_apps::BodySpec;
use cedar_hw::cbus::CbusBarrier;
use cedar_hw::ce::CeEngine;
use cedar_hw::{GlobalAddr, MemOp};
use cedar_rtl::{FinishBarrier, IterClaimer, LoopKind, WorkWaiter};
use cedar_sim::{Cycles, SimTime};
use cedar_trace::UserBucket;

/// What a CE is doing, at task-protocol granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CeMode {
    /// Gang-waiting for the next intra-cluster dispatch.
    Idle,
    /// Task has terminated.
    Stopped,
    /// Main lead: executing a serial section's compute.
    SerialCompute,
    /// Main lead: performing a serial section's memory accesses.
    SerialAccess {
        /// Index of the access in flight.
        idx: usize,
    },
    /// Main lead: posting a loop (local setup + three descriptor writes).
    SetupWrite {
        /// 0 = local compute, 1 = index reset, 2 = descriptor,
        /// 3 = activity flag.
        step: u8,
    },
    /// Main lead: spin-waiting at the finish barrier.
    FinishSpin,
    /// Main lead: posting the termination word.
    TerminateWrite,
    /// Helper lead: spin-waiting for work on the activity word.
    WaitWork,
    /// Helper lead: fetch-adding +1 on the joined count.
    JoinAdd,
    /// Helper lead: reading the loop descriptor after joining.
    JoinRead,
    /// Helper lead: fetch-adding −1 on the joined count.
    DetachAdd,
    /// Lead: claiming an outer `sdoall` iteration via the lock protocol.
    ClaimOuter,
    /// Any CE: claiming a flat `xdoall` iteration via the lock protocol.
    ClaimFlat,
    /// Any CE: executing a loop body. `stage` 0 is the compute span;
    /// stages `1..=n` are the body's accesses.
    Body {
        /// Global iteration number (drives address resolution).
        iter: u64,
        /// Current stage.
        stage: u8,
    },
    /// Any CE: stalled on a page fault before injecting a body access.
    BodyFaultWait {
        /// Global iteration number.
        iter: u64,
        /// Stage to resume at (the access that faulted).
        stage: u8,
    },
    /// Any CE: arrived at the intra-cluster barrier, waiting for release.
    CbusWait,
    /// Main lead: resetting the DOACROSS ticket before dispatch.
    DoacrossSetup,
    /// Any CE: spinning on the DOACROSS ticket for its turn.
    DoacrossTicket {
        /// Iteration whose serialized region is waiting.
        iter: u64,
    },
    /// Any CE: executing its serialized region.
    DoacrossRegion {
        /// Iteration being serialized.
        iter: u64,
    },
    /// Any CE: writing the next ticket on region exit.
    DoacrossExit {
        /// Iteration that just finished its region.
        iter: u64,
    },
}

impl CeMode {
    /// `true` if this CE counts as an *active processor* for the statfx
    /// concurrency monitor. CEs halted at the concurrency-bus barrier are
    /// *not* active: the Alliant hardware parks them until the release,
    /// which is why the paper's equation can take the concurrency during
    /// non-parallel work as exactly 1 per cluster (§7).
    pub fn is_busy(self) -> bool {
        !matches!(self, CeMode::Idle | CeMode::Stopped | CeMode::CbusWait)
    }
}

/// One CE's runtime state.
#[derive(Debug)]
pub struct Ce {
    /// The hardware activity engine.
    pub engine: CeEngine,
    /// Current protocol mode.
    pub mode: CeMode,
    /// OS service time to serialize before the next activity.
    pub pending_penalty: Cycles,
    /// Value delivered by the last completed activity.
    pub stashed_value: u64,
    /// A word operation to issue once the current (delay) compute ends.
    pub pending_word: Option<(GlobalAddr, MemOp)>,
    /// Per-CE claimer for flat (`xdoall`) loops.
    pub claimer: Option<IterClaimer>,
    /// Set while a penalty stall is in flight.
    pub in_penalty: bool,
}

impl Ce {
    /// Creates an idle CE.
    pub fn new(engine: CeEngine) -> Self {
        Ce {
            engine,
            mode: CeMode::Idle,
            pending_penalty: Cycles::ZERO,
            stashed_value: 0,
            pending_word: None,
            claimer: None,
            in_penalty: false,
        }
    }
}

/// Task role on its cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The application's main task (cluster 0).
    Main,
    /// A helper task created by the runtime.
    Helper,
}

/// The loop a cluster task is currently executing.
#[derive(Debug, Clone)]
pub struct LoopCtx {
    /// Construct.
    pub kind: LoopKind,
    /// Loop sequence number.
    pub seq: u32,
    /// Outer iterations (flat count for `xdoall`).
    pub outer_total: u32,
    /// Inner iterations per outer (1 for flat/cluster handled as inner
    /// loop of the single outer? No — cluster loops use `outer_total=1`).
    pub inner_total: u32,
    /// Per-iteration work (shared handle; never deep-copied on entry).
    pub body: Arc<BodySpec>,
    /// DOACROSS: serialized-region work per iteration (zero otherwise).
    pub serial_region: Cycles,
    /// Next inner iteration to hand out (intra-cluster self-scheduling).
    pub inner_next: u32,
    /// Outer iteration this cluster currently owns (sdoall).
    pub outer_current: u32,
}

/// One cluster task's runtime state.
#[derive(Debug)]
pub struct Task {
    /// Role.
    pub role: Role,
    /// Helper: the wait-for-work spin machine.
    pub waiter: WorkWaiter,
    /// Main: the finish-barrier spin machine.
    pub finish: FinishBarrier,
    /// Lead's claimer for outer `sdoall` iterations.
    pub outer_claimer: Option<IterClaimer>,
    /// Intra-cluster barrier on the concurrency bus.
    pub barrier: CbusBarrier,
    /// Barrier episode counter (stale release guard).
    pub barrier_episode: u64,
    /// The loop currently being executed, if any.
    pub cur: Option<LoopCtx>,
    /// Lead-CE user-time bucket currently accruing.
    pub lead_bucket: Option<UserBucket>,
    /// When the current bucket began accruing.
    pub lead_since: SimTime,
    /// OS wall time overlapping the current bucket span (subtracted at
    /// charge time so OS stalls are not double-counted as user time).
    pub lead_overlap: Cycles,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_hw::CeId;

    #[test]
    fn busy_classification() {
        assert!(!CeMode::Idle.is_busy());
        assert!(!CeMode::Stopped.is_busy());
        assert!(CeMode::WaitWork.is_busy(), "spinning counts as active");
        assert!(CeMode::FinishSpin.is_busy());
        assert!(CeMode::Body { iter: 0, stage: 0 }.is_busy());
        assert!(!CeMode::CbusWait.is_busy(), "parked at the cbus barrier");
    }

    #[test]
    fn new_ce_is_idle_with_no_pending_state() {
        let ce = Ce::new(CeEngine::new(CeId(0)));
        assert_eq!(ce.mode, CeMode::Idle);
        assert_eq!(ce.pending_penalty, Cycles::ZERO);
        assert!(ce.pending_word.is_none());
        assert!(!ce.in_penalty);
    }
}
