//! Machine-level behaviour tests on small workloads.

use cedar_apps::{synthetic, AppBuilder, BodySpec};
use cedar_hw::Configuration;
use cedar_sim::Cycles;
use cedar_trace::UserBucket;
use cedar_xylem::accounting::Category;

use crate::config::SimConfig;
use crate::machine::Machine;
use crate::result::RunResult;

fn run(app: cedar_apps::AppSpec, c: Configuration) -> RunResult {
    Machine::new(&app, SimConfig::cedar(c)).run()
}

#[test]
fn serial_only_program_finishes_in_about_its_work() {
    let app = AppBuilder::new("S").serial(10_000).serial(5_000).build();
    let r = run(app, Configuration::P1);
    assert!(r.completion_time >= Cycles(15_000));
    // Overheads exist but must be modest on a serial program.
    assert!(
        r.completion_time < Cycles(25_000),
        "CT {} far above serial work",
        r.completion_time
    );
    assert!(r.main_breakdown().get(UserBucket::Serial) >= Cycles(15_000));
}

#[test]
fn cluster_loop_executes_all_bodies() {
    let app = AppBuilder::new("C")
        .cluster_loop(20, BodySpec::compute(100))
        .build();
    let r = run(app, Configuration::P8);
    assert_eq!(r.bodies, 20);
    assert!(r.main_breakdown().get(UserBucket::ClusterLoop) > Cycles::ZERO);
}

#[test]
fn sdoall_runs_on_one_cluster() {
    let app = synthetic::uniform_sdoall(1, 2, 4, 8, 200, 0);
    let r = run(app, Configuration::P8);
    assert_eq!(r.bodies, 2 * 4 * 8);
    assert!(r.main_breakdown().get(UserBucket::IterExec) > Cycles::ZERO);
}

#[test]
fn sdoall_spreads_across_clusters() {
    let app = synthetic::uniform_sdoall(1, 1, 8, 8, 500, 0);
    let r = run(app, Configuration::P32);
    assert_eq!(r.bodies, 8 * 8);
    // Helpers must have joined and executed iterations.
    let helper_work: u64 = r
        .helper_breakdowns()
        .iter()
        .map(|b| b.get(UserBucket::IterExec).0)
        .sum();
    assert!(helper_work > 0, "helpers never executed loop bodies");
}

#[test]
fn xdoall_executes_exactly_once_per_iteration() {
    let app = synthetic::uniform_xdoall(2, 3, 32, 300, 0);
    let r = run(app, Configuration::P32);
    assert_eq!(r.bodies, 2 * 3 * 32, "every iteration exactly once");
}

#[test]
fn xdoall_pickup_shows_up_as_overhead() {
    let app = synthetic::uniform_xdoall(1, 2, 64, 400, 0);
    let r = run(app, Configuration::P32);
    assert!(r.main_breakdown().get(UserBucket::PickupXdoall) > Cycles::ZERO);
}

#[test]
fn multiprocessor_runs_are_faster() {
    let app = || synthetic::uniform_sdoall(2, 2, 8, 16, 400, 8);
    let r1 = run(app(), Configuration::P1);
    let r8 = run(app(), Configuration::P8);
    let r32 = run(app(), Configuration::P32);
    assert!(r8.completion_time < r1.completion_time);
    assert!(r32.completion_time < r8.completion_time);
    let s8 = r8.speedup_over(&r1);
    assert!(s8 > 3.0, "8-processor speedup {s8} too low");
}

#[test]
fn concurrency_tracks_processors() {
    let app = || synthetic::uniform_sdoall(2, 2, 8, 16, 400, 0);
    let r1 = run(app(), Configuration::P1);
    let r8 = run(app(), Configuration::P8);
    assert!(r1.total_concurrency() <= 1.01);
    assert!(r8.total_concurrency() > 2.0);
    assert!(r8.total_concurrency() <= 8.01);
}

#[test]
fn speedup_is_below_concurrency() {
    // §3.1 result (2): part of active processors' time goes to overhead.
    let app = || synthetic::uniform_sdoall(2, 4, 8, 16, 300, 8);
    let r1 = run(app(), Configuration::P1);
    let r32 = run(app(), Configuration::P32);
    assert!(r32.speedup_over(&r1) < r32.total_concurrency());
}

#[test]
fn page_faults_occur_and_split_by_class() {
    let app = synthetic::streaming(1, 4, 8, 32);
    let r = run(app, Configuration::P8);
    let (seq, conc) = r.faults;
    assert!(seq > 0, "first touches must fault");
    // Parallel sweeps of a fresh array produce concurrent faults too.
    assert!(seq + conc > 4);
}

#[test]
fn machine_internal_accounting_helpers_agree() {
    let app = synthetic::uniform_sdoall(1, 1, 4, 8, 200, 4);
    let mut m = Machine::new(&app, SimConfig::cedar(Configuration::P4));
    assert_eq!(m.os_wall(0), Cycles::ZERO);
    m.charge_os(0, cedar_xylem::OsActivity::Ctx, Cycles(100));
    m.charge_os(0, cedar_xylem::OsActivity::Cpi, Cycles(40));
    assert_eq!(m.os_wall(0), Cycles(140));
    assert_eq!(m.category_total(Category::System), Cycles(100));
    assert_eq!(m.category_total(Category::Interrupt), Cycles(40));
}

#[test]
fn os_accounting_is_consistent_with_qmon() {
    let app = synthetic::uniform_sdoall(4, 2, 8, 16, 300, 8);
    let r = run(app, Configuration::P8);
    // Same charges flow to both accountings.
    let os_total: Cycles = [Category::System, Category::Interrupt, Category::Spin]
        .iter()
        .map(|c| r.os.category_total(*c))
        .sum();
    let q_total: Cycles = r.utilization.iter().map(|u| u.os_total()).sum();
    assert_eq!(os_total, q_total);
    assert!(os_total > Cycles::ZERO, "daemons must have fired");
}

#[test]
fn os_overhead_stays_below_completion_time() {
    let app = synthetic::uniform_sdoall(4, 2, 8, 16, 300, 8);
    let r = run(app, Configuration::P32);
    for u in &r.utilization {
        assert!(u.os_total() < r.completion_time);
    }
    // And user() does not panic:
    let _ = r.os_category_fraction(Category::User);
}

#[test]
fn deterministic_across_identical_runs() {
    let app = || synthetic::uniform_xdoall(1, 2, 32, 300, 8);
    let a = run(app(), Configuration::P16);
    let b = run(app(), Configuration::P16);
    assert_eq!(a.completion_time, b.completion_time);
    assert_eq!(a.events, b.events);
    assert_eq!(a.faults, b.faults);
}

#[test]
fn trace_can_be_kept_and_pairs_iterations() {
    let app = synthetic::uniform_sdoall(1, 1, 2, 4, 100, 0);
    let r = Machine::new(&app, SimConfig::cedar(Configuration::P4).with_trace()).run();
    let trace = r.trace.as_ref().expect("trace kept");
    let starts = trace
        .iter()
        .filter(|e| e.id == cedar_trace::TraceEventId::IterStart)
        .count();
    let ends = trace
        .iter()
        .filter(|e| e.id == cedar_trace::TraceEventId::IterEnd)
        .count();
    assert_eq!(starts, 8);
    assert_eq!(ends, 8);
}

#[test]
fn helper_wait_dominates_when_main_is_serial() {
    // A mostly-serial program: helpers spin the whole time (§6's
    // helper_wait explanation).
    let app = AppBuilder::new("SER")
        .serial(50_000)
        .xdoall(16, BodySpec::compute(100))
        .serial(50_000)
        .build();
    let r = run(app, Configuration::P16);
    let helper = &r.helper_breakdowns()[0];
    let wait_frac = helper
        .get(UserBucket::HelperWait)
        .fraction_of(r.completion_time);
    assert!(
        wait_frac > 0.7,
        "helper wait fraction {wait_frac} should dominate a serial program"
    );
}

#[test]
fn doacross_executes_all_bodies_in_serialized_order() {
    let app = synthetic::doacross_pipeline(2, 16, 100, 200);
    let r = Machine::new(&app, SimConfig::cedar(Configuration::P8).with_trace()).run();
    assert_eq!(r.bodies, 2 * 16);
    // The serialized regions bound the completion time from below...
    assert!(
        r.completion_time >= Cycles(2 * 16 * 200),
        "serialized regions must serialize: CT {}",
        r.completion_time
    );
    // ...but the parallel bodies overlap, so it beats full serialization
    // of body + region + protocol.
    let trace = r.trace.as_ref().unwrap();
    let ends: Vec<_> = trace
        .iter()
        .filter(|e| e.id == cedar_trace::TraceEventId::IterEnd)
        .collect();
    assert_eq!(ends.len(), 32);
}

#[test]
fn doacross_region_time_lands_in_cluster_loop_bucket() {
    let app = synthetic::doacross_pipeline(1, 8, 100, 300);
    let r = run(app, Configuration::P4);
    assert!(
        r.main_breakdown().get(UserBucket::ClusterLoop) >= Cycles(8 * 300 / 2),
        "doacross time charges to the cluster-loop bucket"
    );
}

#[test]
fn doacross_parallel_bodies_beat_one_processor() {
    let app = || synthetic::doacross_pipeline(2, 16, 2_000, 100);
    let r1 = run(app(), Configuration::P1);
    let r8 = run(app(), Configuration::P8);
    assert!(
        r8.completion_time.0 * 2 < r1.completion_time.0,
        "parallel parts must overlap: {} vs {}",
        r8.completion_time,
        r1.completion_time
    );
}

#[test]
fn hotspot_workload_contends_on_the_lock_module() {
    let app = synthetic::hotspot(1, 256);
    let r = run(app, Configuration::P32);
    let max_sync = r.gmem.module_sync_requests.iter().max().copied().unwrap();
    let total_sync: u64 = r.gmem.module_sync_requests.iter().sum();
    assert!(
        max_sync as f64 > total_sync as f64 * 0.4,
        "sync traffic should concentrate on the lock's module"
    );
    assert!(r.gmem.total_queued() > Cycles::ZERO);
}

#[test]
fn background_load_stretches_completion_time() {
    use cedar_xylem::BackgroundLoad;
    let app = || synthetic::uniform_sdoall(4, 2, 8, 16, 400, 4);
    let dedicated = run(app(), Configuration::P8);
    let loaded = Machine::new(
        &app(),
        SimConfig::cedar(Configuration::P8).with_background(BackgroundLoad::heavy()),
    )
    .run();
    assert_eq!(dedicated.background_stolen, Cycles::ZERO);
    assert!(loaded.background_stolen > Cycles::ZERO);
    assert!(
        loaded.completion_time.0 as f64 > dedicated.completion_time.0 as f64 * 1.2,
        "heavy load must stretch CT: {} vs {}",
        loaded.completion_time,
        dedicated.completion_time
    );
    // Same work still executes exactly once.
    assert_eq!(loaded.bodies, dedicated.bodies);
}

#[test]
fn xdoall_works_on_one_processor() {
    let app = synthetic::uniform_xdoall(1, 2, 12, 200, 4);
    let r = run(app, Configuration::P1);
    assert_eq!(r.bodies, 24);
    assert!(r.total_concurrency() <= 1.0 + 1e-9);
}

#[test]
fn sdoall_with_fewer_chunks_than_clusters() {
    // Two outer chunks on a 4-cluster machine: two clusters do the work,
    // the late-joining others discover exhaustion and detach cleanly.
    let app = synthetic::uniform_sdoall(1, 1, 2, 8, 800, 0);
    let r = run(app, Configuration::P32);
    assert_eq!(r.bodies, 16);
}

#[test]
fn single_iteration_loops_round_trip() {
    let app = synthetic::uniform_xdoall(1, 4, 1, 500, 4);
    let r = run(app, Configuration::P16);
    assert_eq!(r.bodies, 4);
}

#[test]
fn serial_only_program_terminates_helpers_on_multicluster() {
    let app = AppBuilder::new("SER32").serial(30_000).build();
    let r = run(app, Configuration::P32);
    assert_eq!(r.bodies, 0);
    // Every helper spent essentially its whole life waiting for work.
    for h in r.helper_breakdowns() {
        let wait = h.get(UserBucket::HelperWait).fraction_of(r.completion_time);
        assert!(wait > 0.8, "helper wait {wait}");
    }
}

#[test]
fn many_tiny_loops_reuse_the_rtl_words_safely() {
    // 30 back-to-back two-iteration loops: the activity word, index and
    // joined counter are reset/reused every time without double or lost
    // executions.
    let app = synthetic::uniform_xdoall(30, 1, 2, 300, 0);
    let r = run(app, Configuration::P16);
    assert_eq!(r.bodies, 60);
}

#[test]
fn alternating_constructs_in_one_program() {
    let app = AppBuilder::new("MIX")
        .array("a", 128 * 1024)
        .serial(2_000)
        .sdoall(4, 8, BodySpec::compute(300))
        .xdoall(16, BodySpec::compute(300))
        .cluster_loop(8, BodySpec::compute(200))
        .doacross(6, BodySpec::compute(200), 100)
        .build();
    let r = run(app, Configuration::P16);
    assert_eq!(r.bodies, 32 + 16 + 8 + 6);
}

#[test]
fn seed_changes_jitter_but_not_coverage() {
    // Bodies carry 15% jitter, so different seeds must produce different
    // (but equally complete) runs.
    let app = || {
        AppBuilder::new("JIT")
            .array("a", 128 * 1024)
            .sdoall(8, 16, BodySpec::compute(400).with_jitter(15))
            .build()
    };
    let a = Machine::new(&app(), SimConfig::cedar(Configuration::P8).with_seed(1)).run();
    let b = Machine::new(&app(), SimConfig::cedar(Configuration::P8).with_seed(2)).run();
    assert_eq!(a.bodies, b.bodies, "coverage is seed-independent");
    assert_ne!(
        a.completion_time, b.completion_time,
        "jitter must vary with the seed"
    );
}

#[test]
fn fault_events_count_under_their_own_class() {
    use cedar_faults::{FaultPlan, InterruptStorm};

    let app = || synthetic::uniform_sdoall(2, 2, 8, 16, 400, 0);
    let plan = FaultPlan::default().with_interrupt_storm(InterruptStorm {
        mean_interval: Cycles(20_000),
        burst: 2,
    });
    let base = run(app(), Configuration::P4);
    let faulted = Machine::new(
        &app(),
        SimConfig::cedar(Configuration::P4).with_faults(plan),
    )
    .run();

    // Injected occurrences ride a distinct event class — never folded
    // into the organic counts.
    assert_eq!(base.stats.counters.get("events.fault"), 0);
    let fault_events = faulted.stats.counters.get("events.fault");
    assert!(fault_events > 0, "armed plan must fire fault events");
    assert_eq!(
        fault_events,
        faulted.stats.counters.get("faults.occ.storm"),
        "event class and occurrence counter agree"
    );
    // The storm charges only the CPI bucket's primitives; its injected
    // cost is recorded.
    assert!(faulted.stats.counters.get("faults.injected.cpi") > 0);
    assert_eq!(faulted.stats.counters.get("faults.injected.ast"), 0);
    // Empty plans carry no fault counters at all.
    assert_eq!(base.stats.counters.get("faults.occ.storm"), 0);
    assert!(!base
        .stats
        .counters
        .iter()
        .any(|(name, _)| name.starts_with("faults.")));
}

#[test]
fn empty_plan_is_byte_identical_to_no_plan() {
    let app = || synthetic::uniform_sdoall(2, 2, 8, 16, 400, 8);
    let base = run(app(), Configuration::P8);
    let with_default_plan = Machine::new(
        &app(),
        SimConfig::cedar(Configuration::P8).with_faults(cedar_faults::FaultPlan::default()),
    )
    .run();
    assert_eq!(base.completion_time, with_default_plan.completion_time);
    assert_eq!(base.events, with_default_plan.events);
    assert_eq!(
        base.stats.counters.iter().collect::<Vec<_>>(),
        with_default_plan.stats.counters.iter().collect::<Vec<_>>()
    );
}

#[test]
fn injected_page_faults_stay_out_of_organic_vm_counts() {
    use cedar_faults::{FaultPlan, PageFaultWave};

    let app = || synthetic::uniform_sdoall(1, 2, 8, 16, 400, 4);
    let plan = FaultPlan::default().with_page_fault_wave(PageFaultWave {
        mean_interval: Cycles(15_000),
        faults_per_wave: 4,
        concurrent_pct: 50,
        seq_cost: Cycles(700),
        conc_cost: Cycles(1_100),
    });
    let base = run(app(), Configuration::P4);
    let faulted = Machine::new(
        &app(),
        SimConfig::cedar(Configuration::P4).with_faults(plan),
    )
    .run();
    // RunResult.faults reports organic demand faults only.
    assert_eq!(base.faults, faulted.faults);
    let injected = faulted.stats.counters.get("faults.count.pgflt_seq")
        + faulted.stats.counters.get("faults.count.pgflt_conc");
    assert!(injected > 0, "waves must inject faults");
}
