//! Fault-injection occurrence handling and injected-cost accounting.
//!
//! Each timed fault class maps onto exactly one existing OS charging
//! primitive, so an injected disturbance lands in the same Table-2
//! bucket the organic activity would — and [`InjectedCost`] records how
//! many cycles each class added, which the attribution-invariant suite
//! compares against the bucket deltas:
//!
//! * interrupt storms → [`Machine::raise_cpi`] (the `Cpi` bucket, gang
//!   penalty);
//! * AST bursts → `Ast` charge plus a lead penalty, like
//!   [`Machine::on_ast`];
//! * page-fault waves → `PgFlt*` charges plus a lead penalty.
//!   Deliberately **no** CPI and **no** kernel-lock acquire, so the wave
//!   moves only the page-fault buckets (organic concurrent faults do
//!   gather CPIs; the deviation is what lets the tests isolate buckets);
//! * helper stalls → a bare pending penalty on the helper's lead CE.
//!   No OS bucket and no lead-bucket overlap: the lost time stays
//!   attributed to user-side waiting, which is exactly how a descheduled
//!   helper reads in the paper's Figure 4.
//!
//! The two static classes never reach [`Machine::on_fault`]:
//! lock-hold inflation rides every kernel-lock acquire via
//! [`Machine::lock_inflate_pct`], and network degradation is baked into
//! the memory system's latency parameters at construction.

use cedar_faults::FaultKind;
use cedar_sim::Cycles;
use cedar_xylem::{FaultClass, OsActivity};

use super::state::CeMode;
use super::Machine;
use crate::events::Ev;

/// Cycles added by the fault campaign so far, per attribution surface.
/// All zero when the plan is empty (nothing ever fires).
#[derive(Debug, Clone, Copy, Default)]
pub struct InjectedCost {
    /// Per-CE CPI service time from interrupt storms (`Cpi` bucket).
    pub cpi: Cycles,
    /// AST service time from bursts (`Ast` bucket).
    pub ast: Cycles,
    /// Sequential-fault service time from waves (`PgFltSequential`).
    pub pgflt_seq: Cycles,
    /// Concurrent-fault service time from waves (`PgFltConcurrent`).
    pub pgflt_conc: Cycles,
    /// Helper lead-CE freeze time (no OS bucket; user time absorbs it).
    pub stall: Cycles,
    /// Extra cluster-lock hold time from inflation (`CrSectCluster`).
    pub lock_cluster: Cycles,
    /// Extra global-lock hold time from inflation (`CrSectGlobal`).
    pub lock_global: Cycles,
}

impl Machine {
    /// Extra kernel-lock hold percentage the campaign dictates (0 when
    /// lock inflation is not armed — `acquire_scaled` is then exactly
    /// `acquire`).
    pub(crate) fn lock_inflate_pct(&self) -> u32 {
        self.cfg
            .faults
            .lock_inflation
            .map(|l| l.hold_pct)
            .unwrap_or(0)
    }

    /// A timed fault occurrence fires on `cluster`. Mirrors the OS
    /// schedule handlers: bail after program completion, reschedule
    /// first (the next occurrence time never depends on what this one
    /// does), then inject.
    pub(crate) fn on_fault(&mut self, kind: FaultKind, cluster: usize) {
        if self.finished_at.is_some() {
            return; // program over: stop rescheduling
        }
        let next = self
            .fault_driver
            .as_mut()
            .expect("fault event dispatched without a driver")
            .next_after(kind, cluster, self.now);
        self.queue.schedule(next, Ev::Fault { kind, cluster });
        match kind {
            FaultKind::InterruptStorm => self.inject_storm(cluster),
            FaultKind::AstBurst => self.inject_ast_burst(cluster),
            FaultKind::PageFaultWave => self.inject_wave(cluster),
            FaultKind::HelperStall => self.inject_helper_stall(cluster),
        }
    }

    /// `burst` back-to-back cross-processor interrupts, each at the
    /// machine's configured per-CE CPI cost.
    fn inject_storm(&mut self, cluster: usize) {
        let spec = self
            .cfg
            .faults
            .interrupt_storm
            .expect("storm fired unarmed");
        for _ in 0..spec.burst {
            self.raise_cpi(cluster);
        }
        self.injected.cpi += self.cfg.os.cpi_cost_per_ce * spec.burst as u64;
    }

    /// `burst` AST deliveries to the cluster's lead CE.
    fn inject_ast_burst(&mut self, cluster: usize) {
        let spec = self.cfg.faults.ast_burst.expect("ast burst fired unarmed");
        for _ in 0..spec.burst {
            self.charge_os(cluster, OsActivity::Ast, spec.cost);
            self.lead_penalty(cluster, spec.cost);
        }
        self.injected.ast += spec.cost * spec.burst as u64;
    }

    /// One wave of synthetic page faults, split sequential/concurrent by
    /// the driver's per-cluster stream. The counts go to the address
    /// space's *injected* tally, never the organic one.
    fn inject_wave(&mut self, cluster: usize) {
        let spec = self.cfg.faults.page_fault_wave.expect("wave fired unarmed");
        let shape = self
            .fault_driver
            .as_mut()
            .expect("wave fired without a driver")
            .wave_shape(cluster);
        for _ in 0..shape.sequential {
            self.charge_os(cluster, OsActivity::PgFltSequential, spec.seq_cost);
            self.lead_penalty(cluster, spec.seq_cost);
            self.vm.record_injected(FaultClass::Sequential);
        }
        for _ in 0..shape.concurrent {
            self.charge_os(cluster, OsActivity::PgFltConcurrent, spec.conc_cost);
            self.lead_penalty(cluster, spec.conc_cost);
            self.vm.record_injected(FaultClass::Concurrent);
        }
        self.injected.pgflt_seq += spec.seq_cost * shape.sequential as u64;
        self.injected.pgflt_conc += spec.conc_cost * shape.concurrent as u64;
    }

    /// Freezes a busy helper lead CE for the stall length. No OS charge
    /// and no lead-bucket overlap: the time stays in whatever user
    /// bucket the lead was accruing (typically helper wait or iteration
    /// execution), stretching completion time the way a descheduled
    /// helper does.
    fn inject_helper_stall(&mut self, cluster: usize) {
        debug_assert!(cluster >= 1, "helper stall on the main cluster");
        let spec = self.cfg.faults.helper_stall.expect("stall fired unarmed");
        let lead = self.lead_of(cluster);
        if !self.ces[lead].mode.is_busy() {
            return; // nothing to freeze (already stopped/idle)
        }
        self.ces[lead].pending_penalty += spec.stall;
        if self.ces[lead].mode == CeMode::WaitWork {
            self.tasks[cluster].waiter.record_stall(spec.stall);
        }
        self.injected.stall += spec.stall;
    }
}
