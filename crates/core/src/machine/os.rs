//! Operating-system activity: daemons, ASTs, page-fault charging,
//! cross-processor interrupts and system calls.
//!
//! All OS time is charged twice over, deliberately: once into
//! [`OsAccounting`](cedar_xylem::OsAccounting) per activity (Table 2),
//! and once into the [`QMonitor`](cedar_trace::QMonitor) per Figure 3
//! category. CE timelines are extended through the penalty mechanism
//! (the service time serializes in front of the CE's next activity
//! boundary), and a lead CE's user-time bucket subtracts the overlap so
//! user and OS time never double-count.

use cedar_hw::ClusterId;
use cedar_sim::Cycles;
use cedar_trace::TraceEventId;
use cedar_xylem::syscall::CrSect;
use cedar_xylem::{FaultClass, OsActivity, SyscallKind};

use super::Machine;
use crate::events::Ev;

impl Machine {
    /// Charges `wall` cycles of OS time on `cluster` to `activity` (both
    /// accountings).
    pub(crate) fn charge_os(&mut self, cluster: usize, activity: OsActivity, wall: Cycles) {
        let cid = ClusterId(cluster as u8);
        self.os_acct.charge(cid, activity, wall);
        self.qmon.charge(cid, activity.figure3_category(), wall);
    }

    /// Extends every busy CE of `cluster` by `wall` (gang preemption) and
    /// records the lead-bucket overlap.
    pub(crate) fn gang_penalty(&mut self, cluster: usize, wall: Cycles) {
        let lead = self.lead_of(cluster);
        for pos in self.cluster_ces(cluster) {
            if self.ces[pos].mode.is_busy() {
                self.ces[pos].pending_penalty += wall;
                if pos == lead {
                    self.tasks[cluster].lead_overlap += wall;
                }
            }
        }
    }

    /// Extends only the lead CE (single-CE OS deliveries such as ASTs).
    pub(crate) fn lead_penalty(&mut self, cluster: usize, wall: Cycles) {
        let lead = self.lead_of(cluster);
        if self.ces[lead].mode.is_busy() {
            self.ces[lead].pending_penalty += wall;
            self.tasks[cluster].lead_overlap += wall;
        }
    }

    /// Raises a cross-processor interrupt on `cluster`: every CE performs
    /// register saves/restores and accounting before synchronizing to a
    /// single execution thread (§5.1).
    pub(crate) fn raise_cpi(&mut self, cluster: usize) {
        let cost = self.cfg.os.cpi_cost_per_ce;
        self.charge_os(cluster, OsActivity::Cpi, cost);
        self.gang_penalty(cluster, cost);
    }

    /// Charges one system call issued on `cluster`, including the
    /// critical section its handler enters.
    pub(crate) fn charge_syscall(&mut self, cluster: usize, kind: SyscallKind) {
        let cost = kind.cost(&self.cfg.os);
        let activity = if kind.is_global() {
            OsActivity::SyscallGlobal
        } else {
            OsActivity::SyscallCluster
        };
        self.charge_os(cluster, activity, cost);
        let pct = self.lock_inflate_pct();
        match kind.critical_section() {
            Some(CrSect::Global) => {
                let hold = self.cfg.os.cr_sect_global;
                let (_, spin, held) = self.global_lock.acquire_scaled(self.now, hold, pct);
                self.charge_os(cluster, OsActivity::CrSectGlobal, held);
                self.injected.lock_global += held - hold;
                if spin > Cycles::ZERO {
                    self.charge_os(cluster, OsActivity::KernelSpin, spin);
                }
                self.lead_penalty(cluster, cost + held + spin);
            }
            Some(CrSect::Cluster) => {
                let hold = self.cfg.os.cr_sect_cluster;
                let (_, spin, held) =
                    self.cluster_locks[cluster].acquire_scaled(self.now, hold, pct);
                self.charge_os(cluster, OsActivity::CrSectCluster, held);
                self.injected.lock_cluster += held - hold;
                if spin > Cycles::ZERO {
                    self.charge_os(cluster, OsActivity::KernelSpin, spin);
                }
                self.lead_penalty(cluster, cost + held + spin);
            }
            None => self.lead_penalty(cluster, cost),
        }
    }

    /// Charges one page fault taken by CE `pos` and stalls it for
    /// `stall` (the time until the page is mapped plus the service cost).
    pub(crate) fn charge_fault(
        &mut self,
        pos: usize,
        class: FaultClass,
        cost: Cycles,
        stall: Cycles,
    ) {
        let cluster = self.cluster_of(pos);
        let activity = match class {
            FaultClass::Sequential => OsActivity::PgFltSequential,
            FaultClass::Concurrent => OsActivity::PgFltConcurrent,
        };
        self.charge_os(cluster, activity, cost);
        // The fault handler spends part of its service inside a cluster
        // critical section; only the *extra* spin (if another handler
        // holds the lock) is charged on top. Under lock-hold inflation
        // the handler occupies the lock longer; the extra hold is
        // critical-section time and extends the stall.
        let hold = cost.scale(0.12);
        let pct = self.lock_inflate_pct();
        let (_, spin, held) = self.cluster_locks[cluster].acquire_scaled(self.now, hold, pct);
        let extra = held - hold;
        if extra > Cycles::ZERO {
            self.charge_os(cluster, OsActivity::CrSectCluster, extra);
            self.injected.lock_cluster += extra;
        }
        if spin > Cycles::ZERO {
            self.charge_os(cluster, OsActivity::KernelSpin, spin);
        }
        // The faulting CE is stalled for the whole mapping time.
        self.ces[pos].pending_penalty += stall + spin + extra;
        if pos == self.lead_of(cluster) {
            self.tasks[cluster].lead_overlap += stall + spin + extra;
        }
    }

    /// The periodic bookkeeping daemon fires on `cluster` (§5.1): the
    /// application task is context-switched out, the system task runs,
    /// and a CPI gathers the single-CE execution thread.
    pub(crate) fn on_daemon(&mut self, cluster: usize) {
        if self.finished_at.is_some() {
            return; // program over: stop rescheduling
        }
        let work = {
            let (next_at, work) = self.daemons[cluster].next_after(self.now);
            self.queue.schedule(next_at, Ev::Daemon { cluster });
            work
        };
        let lead = self.lead_of(cluster);
        self.post(TraceEventId::ContextSwitch, lead, 0);
        // Save/restore plus the non-categorized bookkeeping time.
        self.charge_os(cluster, OsActivity::Ctx, work.ctx_per_ce + work.other);
        // Cluster critical sections the system task enters.
        let pct = self.lock_inflate_pct();
        let (_, spin, held) =
            self.cluster_locks[cluster].acquire_scaled(self.now, work.cr_sect, pct);
        self.charge_os(cluster, OsActivity::CrSectCluster, held);
        let extra = held - work.cr_sect;
        self.injected.lock_cluster += extra;
        if spin > Cycles::ZERO {
            self.charge_os(cluster, OsActivity::KernelSpin, spin);
        }
        // Cluster system calls the system task makes.
        self.charge_os(cluster, OsActivity::SyscallCluster, work.syscall);
        // The context-switch request interrupts every CE.
        self.raise_cpi(cluster);
        // The cluster is held for the whole daemon duration.
        self.gang_penalty(cluster, work.ctx_per_ce + work.duration() + spin + extra);
    }

    /// A competing job's gang quantum steals `cluster` (multiprogrammed
    /// extension): the application pays two context switches, and the
    /// whole cluster loses the quantum.
    pub(crate) fn on_background(&mut self, cluster: usize) {
        if self.finished_at.is_some() {
            return;
        }
        let quantum = {
            let (next_at, quantum) = self.background[cluster].next_after(self.now);
            self.queue.schedule(next_at, Ev::Background { cluster });
            quantum
        };
        // Switch out + switch in.
        let ctx = self.cfg.os.ctx_cost_per_ce * 2;
        self.charge_os(cluster, OsActivity::Ctx, ctx);
        self.raise_cpi(cluster);
        self.background_stolen += quantum;
        self.gang_penalty(cluster, ctx + quantum);
    }

    /// An asynchronous system trap fires on `cluster`.
    pub(crate) fn on_ast(&mut self, cluster: usize) {
        if self.finished_at.is_some() {
            return;
        }
        let cost = {
            let (next_at, cost) = self.asts[cluster].next_after(self.now);
            self.queue.schedule(next_at, Ev::Ast { cluster });
            cost
        };
        self.charge_os(cluster, OsActivity::Ast, cost);
        self.lead_penalty(cluster, cost);
    }

    /// Total OS wall time charged on a cluster so far (test aid).
    #[cfg(test)]
    pub(crate) fn os_wall(&self, cluster: usize) -> Cycles {
        let c = self.qmon.cluster(ClusterId(cluster as u8));
        c.os_total()
    }

    /// Category totals snapshot (test aid).
    #[cfg(test)]
    pub(crate) fn category_total(&self, category: cedar_xylem::accounting::Category) -> Cycles {
        self.os_acct.category_total(category)
    }
}
