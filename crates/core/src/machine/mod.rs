//! The assembled Cedar machine: event loop and primitive operations.
//!
//! The machine owns every component (global-memory system, CE engines,
//! task state machines, OS models, monitors) and routes the master event
//! stream between them. Loop-protocol logic lives in [`exec`]; OS
//! activity handling lives in [`os`].

pub mod exec;
pub mod faults;
pub mod os;
pub mod state;

#[cfg(test)]
mod tests;

use cedar_apps::AppSpec;
use cedar_hw::cbus::CbusBarrier;
use cedar_hw::ce::{Activity, CeEngine};
use cedar_hw::{CeId, ClusterId, GlobalAddr, GlobalMemorySystem, GmemEvent, MemOp, VectorAccess};
use cedar_rtl::{FinishBarrier, WorkWaiter};
use cedar_sim::{Cycles, EventQueue, Outbox, SimTime, SplitMix64};
use cedar_trace::{HpmMonitor, QMonitor, Statfx, TraceEventId, UserBucket};
use cedar_xylem::{AddressSpace, AstSchedule, DaemonSchedule, KernelLock, OsAccounting};

use crate::config::SimConfig;
use crate::events::Ev;
use crate::layout::MemoryLayout;
use crate::program::CompiledProgram;
use crate::result::RunResult;
use state::{Ce, CeMode, Role, Task};

/// Scratch slot of the `events.total` tally.
pub(crate) const SCRATCH_EVENTS_TOTAL: usize = 0;
/// First scratch slot of the per-class event tallies.
pub(crate) const SCRATCH_EV_CLASS0: usize = 1;
/// Scratch slot of the loop-bodies tally.
pub(crate) const SCRATCH_BODIES: usize = SCRATCH_EV_CLASS0 + crate::events::EV_CLASS_NAMES.len();
/// Slots in the machine's scratch-counter block.
pub(crate) const SCRATCH_SLOTS: usize = SCRATCH_BODIES + 1;

/// Flush names of the machine's scratch block, slot by slot.
const fn scratch_names() -> [&'static str; SCRATCH_SLOTS] {
    let mut names = [""; SCRATCH_SLOTS];
    names[SCRATCH_EVENTS_TOTAL] = "events.total";
    let mut i = 0;
    while i < crate::events::EV_CLASS_NAMES.len() {
        names[SCRATCH_EV_CLASS0 + i] = crate::events::EV_CLASS_NAMES[i];
        i += 1;
    }
    names[SCRATCH_BODIES] = "bodies";
    names
}

/// The complete simulated machine for one run.
pub struct Machine {
    pub(crate) cfg: SimConfig,
    pub(crate) app_name: &'static str,
    pub(crate) layout: MemoryLayout,
    pub(crate) program: CompiledProgram,
    pub(crate) queue: EventQueue<Ev>,
    pub(crate) gmem: GlobalMemorySystem,
    /// Long-lived scratch outbox for memory-system events. Reused across
    /// every inject/handle call (slab-style) so the packet-heavy network
    /// model does not allocate a fresh buffer per event.
    pub(crate) gmem_out: Outbox<GmemEvent>,
    pub(crate) ces: Vec<Ce>,
    pub(crate) tasks: Vec<Task>,
    pub(crate) vm: AddressSpace,
    pub(crate) os_acct: OsAccounting,
    pub(crate) qmon: QMonitor,
    pub(crate) statfx: Statfx,
    pub(crate) hpm: HpmMonitor,
    pub(crate) cluster_locks: Vec<KernelLock>,
    pub(crate) global_lock: KernelLock,
    pub(crate) daemons: Vec<DaemonSchedule>,
    pub(crate) asts: Vec<AstSchedule>,
    pub(crate) background: Vec<cedar_xylem::BackgroundSchedule>,
    pub(crate) background_stolen: Cycles,
    /// Occurrence engine of the fault-injection campaign; `None` when
    /// the plan is empty, so the unperturbed machine carries no fault
    /// state at all.
    pub(crate) fault_driver: Option<cedar_faults::FaultDriver>,
    /// Cycles injected so far, per attribution surface.
    pub(crate) injected: faults::InjectedCost,
    pub(crate) rng: SplitMix64,
    /// Outstanding global-memory requests per CE position. A CE's
    /// activity completes only when every response has arrived, and a
    /// new activity begins only after that — so every in-flight request
    /// of a CE belongs to its current activity, and a plain count is
    /// exactly equivalent to the per-request owner map it replaces,
    /// without a hash insert/remove per memory packet.
    pub(crate) outstanding: Vec<u32>,
    /// CE position by raw `CeId`, for routing memory responses.
    pub(crate) pos_of_ce: Vec<usize>,
    pub(crate) joined_truth: i32,
    pub(crate) now: SimTime,
    pub(crate) finished_at: Option<SimTime>,
    pub(crate) loop_seq: u32,
    pub(crate) posted: Option<exec::PostedLoop>,
    pub(crate) phase_idx: usize,
    pub(crate) serial_counter: u64,
    /// Batched per-event tallies (event total, per-class counts, loop
    /// bodies), flushed into the counter rollup once at end of run.
    pub(crate) scratch: cedar_obs::ScratchCounters<SCRATCH_SLOTS>,
    pub(crate) breakdowns: Vec<cedar_trace::TaskBreakdown>,
}

impl Machine {
    /// Builds the machine for `app` under `cfg`.
    pub fn new(app: &AppSpec, cfg: SimConfig) -> Self {
        cfg.os.validate();
        let configuration = cfg.configuration();
        let n_clusters = configuration.clusters() as usize;
        let per = configuration.ces_per_cluster();
        let layout = MemoryLayout::new(app, cfg.os.page_bytes);
        let program = CompiledProgram::compile(app);
        let mut rng = SplitMix64::new(cfg.seed);

        let mut vm = AddressSpace::new(&cfg.os);
        // The runtime data area (locks, flags, counters) is warmed before
        // the measured region; only application arrays demand-fault.
        let words = layout.words();
        for a in [
            words.activity,
            words.lock,
            words.index,
            words.descriptor,
            words.joined,
            words.ticket,
        ] {
            vm.premap(a.page(cfg.os.page_bytes));
        }

        let ces: Vec<Ce> = configuration
            .ces()
            .map(|id| Ce::new(CeEngine::new(id)))
            .collect();
        let mut pos_of_ce = Vec::new();
        for (pos, ce) in ces.iter().enumerate() {
            let raw = ce.engine.id().0 as usize;
            if raw >= pos_of_ce.len() {
                pos_of_ce.resize(raw + 1, usize::MAX);
            }
            pos_of_ce[raw] = pos;
        }
        let outstanding = vec![0u32; ces.len()];

        // The hpm trace buffer only matters when the run keeps a trace;
        // gating it here makes the per-event post() a no-op otherwise.
        let mut hpm = HpmMonitor::new();
        hpm.set_enabled(cfg.keep_trace);

        let tasks = (0..n_clusters)
            .map(|c| Task {
                role: if c == 0 { Role::Main } else { Role::Helper },
                waiter: WorkWaiter::new(words, cfg.rtl.activity_spin_period),
                finish: FinishBarrier::new(words, cfg.rtl.barrier_spin_period),
                outer_claimer: None,
                barrier: CbusBarrier::new(per, cfg.hw.cluster.cbus_barrier),
                barrier_episode: 0,
                cur: None,
                lead_bucket: None,
                lead_since: Cycles::ZERO,
                lead_overlap: Cycles::ZERO,
            })
            .collect();

        let daemons = (0..n_clusters)
            .map(|_| DaemonSchedule::new(&cfg.os, rng.next_u64()))
            .collect();
        let asts = (0..n_clusters)
            .map(|_| AstSchedule::new(&cfg.os, rng.next_u64()))
            .collect();
        let background = cfg
            .background
            .map(|load| {
                (0..n_clusters)
                    .map(|_| cedar_xylem::BackgroundSchedule::new(load, rng.next_u64()))
                    .collect()
            })
            .unwrap_or_default();

        // A degraded-network fault statically stretches the latency
        // parameters the memory system is built with; everything
        // downstream (min_round_trip, queueing stats) stays consistent.
        let net = match cfg.faults.degraded_network {
            Some(d) => cfg.hw.net.slowed(d.switch_pct, d.module_pct),
            None => cfg.hw.net.clone(),
        };
        let fault_driver = (!cfg.faults.is_empty())
            .then(|| cedar_faults::FaultDriver::new(&cfg.faults, n_clusters));

        Machine {
            app_name: app.name,
            layout,
            program,
            queue: EventQueue::with_kind_capacity(cfg.sched, 1 << 16).with_tiebreak(cfg.tiebreak),
            gmem: GlobalMemorySystem::new(net),
            gmem_out: Outbox::new(),
            ces,
            tasks,
            vm,
            os_acct: OsAccounting::new(n_clusters as u8),
            qmon: QMonitor::new(n_clusters as u8),
            statfx: Statfx::new(n_clusters as u8, per),
            hpm,
            cluster_locks: (0..n_clusters).map(|_| KernelLock::new()).collect(),
            global_lock: KernelLock::new(),
            daemons,
            asts,
            background,
            background_stolen: Cycles::ZERO,
            fault_driver,
            injected: faults::InjectedCost::default(),
            rng,
            outstanding,
            pos_of_ce,
            joined_truth: 0,
            now: Cycles::ZERO,
            finished_at: None,
            loop_seq: 0,
            posted: None,
            phase_idx: 0,
            serial_counter: 0,
            scratch: cedar_obs::ScratchCounters::new(scratch_names()),
            breakdowns: (0..n_clusters)
                .map(|_| cedar_trace::TaskBreakdown::new())
                .collect(),
            cfg,
        }
    }

    // ---- topology helpers -------------------------------------------

    /// Active CEs per cluster.
    pub(crate) fn per_cluster(&self) -> usize {
        self.cfg.configuration().ces_per_cluster() as usize
    }

    /// Cluster position of CE position `pos`.
    pub(crate) fn cluster_of(&self, pos: usize) -> usize {
        pos / self.per_cluster()
    }

    /// The hardware `CeId` of CE position `pos`.
    pub(crate) fn ce_id(&self, pos: usize) -> CeId {
        self.ces[pos].engine.id()
    }

    /// `true` if `pos` is its cluster's lead CE.
    pub(crate) fn is_lead(&self, pos: usize) -> bool {
        pos.is_multiple_of(self.per_cluster())
    }

    /// Lead CE position of cluster `cluster`.
    pub(crate) fn lead_of(&self, cluster: usize) -> usize {
        cluster * self.per_cluster()
    }

    /// CE positions of cluster `cluster`.
    pub(crate) fn cluster_ces(&self, cluster: usize) -> std::ops::Range<usize> {
        let per = self.per_cluster();
        cluster * per..(cluster + 1) * per
    }

    // ---- mode & accounting ------------------------------------------

    /// Transitions CE `pos` to `mode`, updating the concurrency monitor
    /// and (for lead CEs) the task's user-time bucket.
    pub(crate) fn set_mode(&mut self, pos: usize, mode: CeMode) {
        let was_busy = self.ces[pos].mode.is_busy();
        self.ces[pos].mode = mode;
        let ce_id = self.ce_id(pos);
        if mode.is_busy() && !was_busy {
            self.statfx.mark_busy(ce_id, self.now);
        } else if !mode.is_busy() && was_busy {
            self.statfx.mark_idle(ce_id, self.now);
        }
        if self.is_lead(pos) {
            let cluster = self.cluster_of(pos);
            let bucket = self.bucket_for(cluster, mode);
            self.set_lead_bucket(cluster, bucket);
        }
    }

    /// Maps a lead CE's mode to its Figure 4 bucket.
    fn bucket_for(&self, cluster: usize, mode: CeMode) -> Option<UserBucket> {
        let kind = self.tasks[cluster].cur.as_ref().map(|l| l.kind);
        match mode {
            CeMode::Idle | CeMode::Stopped => None,
            CeMode::SerialCompute | CeMode::SerialAccess { .. } | CeMode::TerminateWrite => {
                Some(UserBucket::Serial)
            }
            CeMode::SetupWrite { .. } => Some(UserBucket::LoopSetup),
            CeMode::FinishSpin => Some(UserBucket::BarrierWait),
            CeMode::WaitWork | CeMode::JoinAdd | CeMode::JoinRead | CeMode::DetachAdd => {
                Some(UserBucket::HelperWait)
            }
            CeMode::ClaimOuter => Some(UserBucket::PickupSdoall),
            CeMode::ClaimFlat => Some(UserBucket::PickupXdoall),
            CeMode::Body { .. } | CeMode::BodyFaultWait { .. } => match kind {
                Some(cedar_rtl::LoopKind::Cluster) | Some(cedar_rtl::LoopKind::Doacross) => {
                    Some(UserBucket::ClusterLoop)
                }
                _ => Some(UserBucket::IterExec),
            },
            CeMode::CbusWait => Some(UserBucket::ClusterSync),
            CeMode::DoacrossSetup
            | CeMode::DoacrossTicket { .. }
            | CeMode::DoacrossRegion { .. }
            | CeMode::DoacrossExit { .. } => Some(UserBucket::ClusterLoop),
        }
    }

    /// Charges the elapsed span to the cluster's current lead bucket and
    /// switches to `bucket`.
    pub(crate) fn set_lead_bucket(&mut self, cluster: usize, bucket: Option<UserBucket>) {
        let now = self.now;
        let task = &mut self.tasks[cluster];
        if let Some(old) = task.lead_bucket {
            let elapsed = now - task.lead_since;
            let overlap_used = task.lead_overlap.min(elapsed);
            task.lead_overlap -= overlap_used;
            self.breakdowns[cluster].charge(old, elapsed - overlap_used);
        } else {
            // No bucket was accruing; drop any overlap accrued while
            // unattributed.
            task.lead_overlap = Cycles::ZERO;
        }
        task.lead_bucket = bucket;
        task.lead_since = now;
    }

    // ---- primitive activity starts ----------------------------------

    /// Starts a pure-compute activity on CE `pos` and schedules its
    /// completion.
    pub(crate) fn start_compute(&mut self, pos: usize, dur: Cycles) {
        let gen = self.ces[pos]
            .engine
            .begin(&Activity::Compute(dur), self.now);
        self.queue
            .schedule(self.now + dur, Ev::CeDone { ce: pos, gen });
    }

    /// Starts a compute delay after which `word` is issued (spin periods
    /// and lock backoff).
    pub(crate) fn start_delayed_word(
        &mut self,
        pos: usize,
        delay: Cycles,
        addr: GlobalAddr,
        op: MemOp,
    ) {
        if delay == Cycles::ZERO {
            self.start_word(pos, addr, op);
        } else {
            self.ces[pos].pending_word = Some((addr, op));
            self.start_compute(pos, delay);
        }
    }

    /// Issues a single-word global-memory operation from CE `pos`.
    pub(crate) fn start_word(&mut self, pos: usize, addr: GlobalAddr, op: MemOp) {
        self.ces[pos]
            .engine
            .begin(&Activity::Word { addr, op }, self.now);
        let ce_id = self.ce_id(pos);
        self.gmem
            .inject(ce_id, addr, op, self.now, &mut self.gmem_out);
        self.outstanding[pos] += 1;
        self.gmem_out
            .flush_map_into(self.now, &mut self.queue, Ev::Gmem);
    }

    /// Issues a vector burst from CE `pos`, pipelined one word per cycle.
    pub(crate) fn start_vector(&mut self, pos: usize, access: &VectorAccess) {
        assert!(access.words > 0, "empty vector access");
        self.ces[pos]
            .engine
            .begin(&Activity::Vector(*access), self.now);
        let ce_id = self.ce_id(pos);
        for (k, addr) in access.addresses().enumerate() {
            self.gmem
                .inject(ce_id, addr, access.op, self.now, &mut self.gmem_out);
            self.outstanding[pos] += 1;
            // Re-anchor this word's events k cycles later (issue pipeline).
            self.gmem_out
                .flush_map_into(self.now + Cycles(k as u64), &mut self.queue, Ev::Gmem);
        }
    }

    /// Posts a trace event for CE `pos`.
    pub(crate) fn post(&mut self, id: TraceEventId, pos: usize, arg: u32) {
        let ce = self.ce_id(pos);
        self.hpm.post(id, ce, arg, self.now);
    }

    // ---- intra-cluster barrier ---------------------------------------

    /// CE `pos` arrives at its cluster's concurrency-bus barrier.
    pub(crate) fn cbus_arrive(&mut self, pos: usize) {
        let cluster = self.cluster_of(pos);
        self.set_mode(pos, CeMode::CbusWait);
        let episode = self.tasks[cluster].barrier_episode;
        if let Some(release_at) = self.tasks[cluster].barrier.arrive(self.now) {
            self.queue
                .schedule(release_at, Ev::CbusRelease { cluster, episode });
        }
    }

    // ---- event loop ---------------------------------------------------

    /// Runs the program to completion and returns the measured results.
    ///
    /// The result carries the run's self-telemetry
    /// ([`RunResult::stats`]): wall-clock per phase (the event loop vs.
    /// result assembly; machine construction is timed by the caller via
    /// [`crate::run::execute`]) and the counter rollup.
    ///
    /// # Panics
    ///
    /// Panics if the event bound (`SimConfig::max_events`) is exceeded —
    /// a deadlock guard for malformed workloads.
    pub fn run(mut self) -> RunResult {
        let t_loop = std::time::Instant::now();
        self.startup();
        while let Some((t, ev)) = self.queue.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.scratch.bump(SCRATCH_EVENTS_TOTAL);
            assert!(
                self.scratch.get(SCRATCH_EVENTS_TOTAL) <= self.cfg.max_events,
                "event bound exceeded at {} — likely deadlock or runaway workload",
                self.now
            );
            self.scratch.bump(SCRATCH_EV_CLASS0 + ev.class());
            self.dispatch(ev);
            if self.all_stopped() {
                break;
            }
        }
        assert!(
            self.finished_at.is_some(),
            "event queue drained before the main task finished (deadlock)"
        );
        let run_ns = t_loop.elapsed().as_nanos() as u64;
        let t_breakdown = std::time::Instant::now();
        let mut result = self.into_result();
        result.stats.run_ns = run_ns;
        result.stats.breakdown_ns = t_breakdown.elapsed().as_nanos() as u64;
        result
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Gmem(g) => {
                let delivered = self.gmem.handle(g, self.now, &mut self.gmem_out);
                self.gmem_out
                    .flush_map_into(self.now, &mut self.queue, Ev::Gmem);
                if let Some(cedar_hw::GmemOutput::Deliver(resp)) = delivered {
                    self.on_response(resp);
                }
            }
            Ev::CeDone { ce, gen } => {
                if self.ces[ce].engine.is_current(gen) {
                    self.on_activity_complete(ce, 0);
                }
            }
            Ev::CeResume { ce, gen: _ } => self.on_resume(ce),
            Ev::CbusRelease { cluster, episode } => {
                if self.tasks[cluster].barrier_episode == episode {
                    self.tasks[cluster].barrier_episode += 1;
                    self.on_cbus_release(cluster);
                }
            }
            Ev::Daemon { cluster } => self.on_daemon(cluster),
            Ev::Ast { cluster } => self.on_ast(cluster),
            Ev::Background { cluster } => self.on_background(cluster),
            Ev::Fault { kind, cluster } => self.on_fault(kind, cluster),
        }
    }

    fn on_response(&mut self, resp: cedar_hw::MemResponse) {
        let pos = match self.pos_of_ce.get(resp.ce.0 as usize) {
            Some(&p) if p != usize::MAX && self.outstanding[p] > 0 => p,
            _ => return, // response for a stopped task's stray request
        };
        self.outstanding[pos] -= 1;
        if self.ces[pos].engine.on_response(resp.value) {
            self.on_activity_complete(pos, resp.value);
        }
    }

    /// Common completion path: finish the engine activity, serialize any
    /// pending OS penalty, then advance the protocol. The engine's
    /// recorded last response value is authoritative for word/vector
    /// activities; compute completions do not consume it.
    fn on_activity_complete(&mut self, pos: usize, value: u64) {
        let _ = self.ces[pos].engine.finish(self.now);
        let penalty = std::mem::take(&mut self.ces[pos].pending_penalty);
        if penalty > Cycles::ZERO {
            self.ces[pos].stashed_value = value;
            self.ces[pos].in_penalty = true;
            self.queue
                .schedule(self.now + penalty, Ev::CeResume { ce: pos, gen: 0 });
        } else {
            self.proceed(pos, value);
        }
    }

    /// Issues a deferred word (spin/backoff pattern) or advances the
    /// protocol.
    fn proceed(&mut self, pos: usize, value: u64) {
        if let Some((addr, op)) = self.ces[pos].pending_word.take() {
            self.start_word(pos, addr, op);
        } else {
            self.advance(pos, value);
        }
    }

    fn on_resume(&mut self, pos: usize) {
        if self.ces[pos].in_penalty {
            self.ces[pos].in_penalty = false;
            let v = self.ces[pos].stashed_value;
            self.proceed(pos, v);
        } else if let CeMode::BodyFaultWait { iter, stage } = self.ces[pos].mode {
            // Fault serviced: proceed with the access that faulted.
            self.set_mode(pos, CeMode::Body { iter, stage });
            self.start_body_stage(pos, iter, stage);
        }
    }

    /// Folds the machine's self-telemetry counters — per-class event
    /// totals, queue statistics (with the hold-distance histogram), and
    /// outbox reuse — into one [`cedar_obs::Counters`] rollup.
    fn telemetry_counters(&self) -> cedar_obs::Counters {
        /// Counter name of each hold-histogram bucket, by index.
        const HOLD_NAMES: [&str; cedar_sim::HOLD_BUCKETS] = [
            "queue.hold.p2_00",
            "queue.hold.p2_01",
            "queue.hold.p2_02",
            "queue.hold.p2_03",
            "queue.hold.p2_04",
            "queue.hold.p2_05",
            "queue.hold.p2_06",
            "queue.hold.p2_07",
            "queue.hold.p2_08",
            "queue.hold.p2_09",
            "queue.hold.p2_10",
            "queue.hold.p2_11",
            "queue.hold.p2_12",
            "queue.hold.p2_13",
            "queue.hold.p2_14",
            "queue.hold.p2_15",
        ];
        let mut c = cedar_obs::Counters::new();
        // One batched flush covers events.total, the per-class event
        // counts and the bodies tally.
        self.scratch.flush_into(&mut c);
        let q = self.queue.stats();
        c.add("queue.scheduled", q.scheduled);
        c.add("queue.popped", q.popped);
        c.record_max("queue.pending.peak", q.pending_peak);
        c.add("queue.overflow_spills", q.overflow_spills);
        c.record_max("queue.wheel.peak", q.wheel_peak);
        for (name, &count) in HOLD_NAMES.iter().zip(&q.hold_hist) {
            if count > 0 {
                c.add(name, count);
            }
        }
        let o = self.gmem_out.stats();
        c.add("outbox.emitted", o.emitted);
        c.add("outbox.flushes", o.flushes);
        c.add("outbox.grows", o.grows);
        c.record_max("outbox.buffered.peak", o.peak_buffered);
        // Fault-campaign counters only exist when a plan is armed, so an
        // empty plan leaves the rollup byte-identical to the pre-faults
        // machine.
        if !self.cfg.faults.is_empty() {
            c.add("faults.injected.cpi", self.injected.cpi.0);
            c.add("faults.injected.ast", self.injected.ast.0);
            c.add("faults.injected.pgflt_seq", self.injected.pgflt_seq.0);
            c.add("faults.injected.pgflt_conc", self.injected.pgflt_conc.0);
            c.add("faults.injected.stall", self.injected.stall.0);
            c.add("faults.injected.lock_cluster", self.injected.lock_cluster.0);
            c.add("faults.injected.lock_global", self.injected.lock_global.0);
            let (inj_seq, inj_conc) = self.vm.injected_faults();
            c.add("faults.count.pgflt_seq", inj_seq);
            c.add("faults.count.pgflt_conc", inj_conc);
            if let Some(driver) = &self.fault_driver {
                for kind in cedar_faults::FaultKind::ALL {
                    c.add(kind.counter_name(), driver.occurrences(kind));
                }
            }
            let waiter_stalled: u64 = self.tasks.iter().map(|t| t.waiter.stalled().0).sum();
            c.add("faults.waiter_stalled", waiter_stalled);
        }
        c
    }

    /// Assembles the run's measurements.
    fn into_result(mut self) -> RunResult {
        let ct = self.finished_at.expect("run finished");
        self.now = ct;
        // Flush the lead buckets at completion time.
        for cluster in 0..self.tasks.len() {
            self.set_lead_bucket(cluster, None);
        }
        let n = self.tasks.len();
        let utilization = (0..n)
            .map(|c| self.qmon.cluster(ClusterId(c as u8)))
            .collect();
        let concurrency = (0..n)
            .map(|c| self.statfx.cluster_average(ClusterId(c as u8), ct))
            .collect();
        let stats = cedar_obs::RunStats {
            counters: self.telemetry_counters(),
            ..cedar_obs::RunStats::default()
        };
        RunResult {
            app: self.app_name,
            configuration: self.cfg.configuration(),
            completion_time: ct,
            breakdowns: self.breakdowns,
            utilization,
            os: self.os_acct,
            concurrency,
            gmem: self.gmem.stats(),
            background_stolen: self.background_stolen,
            bodies: self.scratch.get(SCRATCH_BODIES),
            faults: (self.vm.seq_faults(), self.vm.conc_faults()),
            events: self.scratch.get(SCRATCH_EVENTS_TOTAL),
            trace: if self.cfg.keep_trace {
                Some(self.hpm.into_events())
            } else {
                None
            },
            stats,
        }
    }

    fn all_stopped(&self) -> bool {
        if self.finished_at.is_none() {
            return false;
        }
        (1..self.tasks.len()).all(|c| self.ces[self.lead_of(c)].mode == CeMode::Stopped)
    }
}
