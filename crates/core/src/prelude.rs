//! One-import surface for driving experiments.
//!
//! Pulls in the experiment entry points ([`Experiment`], [`SuiteResult`]),
//! the typed configuration surface ([`SimConfig`], [`RunOptions`],
//! [`SchedKind`], [`TelemetryLevel`], [`FaultPlan`], [`CacheMode`]), the
//! typed error enum ([`CedarError`]), the workload registry
//! ([`AppSpec`], [`perfect_suite`], [`app_by_name`]), the machine-size
//! enum ([`Configuration`]), and the result types — everything a tool or
//! test needs to set up and run a measurement campaign:
//!
//! ```
//! use cedar_core::prelude::*;
//!
//! let opts = RunOptions::default()
//!     .with_scheduler(SchedKind::Heap)
//!     .with_telemetry(TelemetryLevel::Off);
//! let cfg = SimConfig::cedar(Configuration::P4).with_scheduler(opts.scheduler);
//! assert_eq!(cfg.sched, SchedKind::Heap);
//! ```
//!
//! Report rendering (tables, figures, golden checks) lives in
//! `cedar-report`; the facade crate's `cedar::prelude` re-exports this
//! prelude together with those entry points.

pub use cedar_apps::{app_by_name, perfect_suite, AppSpec};
pub use cedar_cache::CacheStats;
pub use cedar_faults::{
    AstBurst, DegradedNetwork, FaultPlan, HelperStall, InterruptStorm, LockInflation, PageFaultWave,
};
pub use cedar_hw::Configuration;
pub use cedar_obs::{
    CacheMode, CedarError, Counters, Recorder, RunOptions, RunStats, TelemetryLevel,
};
pub use cedar_sim::SchedKind;

pub use crate::cache::CacheSession;
pub use crate::config::SimConfig;
pub use crate::pool::{PoolError, PoolStats};
pub use crate::result::RunResult;
pub use crate::run::Experiment;
pub use crate::suite::{AppResults, SuiteResult, SuiteTelemetry};
