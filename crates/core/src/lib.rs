//! # cedar-core — the reproduction's measurement methodology
//!
//! This crate assembles the substrates — [`cedar_hw`] (clusters, network,
//! global memory), [`cedar_xylem`] (operating system), [`cedar_rtl`]
//! (runtime library), [`cedar_trace`] (cedarhpm / statfx / Q monitors) —
//! into a complete simulated Cedar machine, runs the [`cedar_apps`]
//! workload models on it, and applies the paper's methodology:
//!
//! * **completion-time breakdown** into user / system / interrupt / spin
//!   (Figure 3) with per-activity OS detail (Table 2);
//! * **user-time breakdown** into the Figure 4 taxonomy (Figures 5–9);
//! * **average parallel-loop concurrency** from
//!   `(1 − pf) + pf·par_concurr = avg_concurr` (Table 3,
//!   [`methodology::conc`]);
//! * **global-memory and network contention overhead**
//!   `Ov_cont = (T_p_actual − T_p_ideal)/CT` (Table 4,
//!   [`methodology::contention`]).
//!
//! ## Quickstart
//!
//! ```
//! use cedar_core::prelude::*;
//! use cedar_apps::synthetic;
//!
//! let app = synthetic::uniform_sdoall(2, 2, 4, 8, 200, 8);
//! let cfg = SimConfig::cedar(Configuration::P8).with_scheduler(SchedKind::Calendar);
//! let result = Experiment::new(app, cfg).run();
//! assert!(result.completion_time.0 > 0);
//! assert!(result.stats.counters.get("events.total") > 0);
//! ```
//!
//! Campaign-level runs take a typed [`RunOptions`] (build one, or parse
//! the `CEDAR_*` environment once via [`RunOptions::from_env`]):
//!
//! ```no_run
//! use cedar_core::prelude::*;
//!
//! let opts = RunOptions::default().with_scheduler(SchedKind::Heap);
//! let suite = SuiteResult::full_campaign(&opts);
//! assert_eq!(suite.apps.len(), 5);
//! ```

pub mod cache;
pub mod config;
pub mod events;
pub mod layout;
pub mod machine;
pub mod methodology;
pub mod metrics;
pub mod pool;
pub mod prelude;
pub mod program;
pub mod result;
pub mod run;
pub mod suite;

pub use cache::CacheSession;
pub use cedar_cache::CacheStats;
pub use cedar_obs::{CacheMode, CedarError, RunOptions, TelemetryLevel};
pub use config::SimConfig;
pub use pool::{PoolError, PoolStats};
pub use result::RunResult;
pub use run::Experiment;
pub use suite::{AppResults, SuiteResult, SuiteTelemetry};
