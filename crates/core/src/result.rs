//! The measured outcome of one run.

use cedar_hw::gmem::GmemStats;
use cedar_hw::{ClusterId, Configuration};
use cedar_sim::Cycles;
use cedar_trace::qmon::ClusterUtilization;
use cedar_trace::{TaskBreakdown, TraceEvent};
use cedar_xylem::accounting::Category;
use cedar_xylem::{OsAccounting, OsActivity};

/// Everything the methodology needs from one `(application,
/// configuration)` run.
#[derive(Debug)]
pub struct RunResult {
    /// Application name.
    pub app: &'static str,
    /// Processor configuration.
    pub configuration: Configuration,
    /// Completion time (the paper's CT).
    pub completion_time: Cycles,
    /// Per-cluster user-time breakdowns; index 0 is the main task,
    /// indices 1.. are the helper tasks.
    pub breakdowns: Vec<TaskBreakdown>,
    /// Per-cluster Q-facility utilization (system/interrupt/spin).
    pub utilization: Vec<ClusterUtilization>,
    /// Per-activity OS accounting (Table 2).
    pub os: OsAccounting,
    /// statfx average concurrency per cluster.
    pub concurrency: Vec<f64>,
    /// Global-memory system statistics.
    pub gmem: GmemStats,
    /// Cluster time stolen by a competing job (zero in the paper's
    /// dedicated setting).
    pub background_stolen: Cycles,
    /// Loop bodies executed.
    pub bodies: u64,
    /// (sequential, concurrent) page-fault counts.
    pub faults: (u64, u64),
    /// Events processed by the simulator (work proxy).
    pub events: u64,
    /// The cedarhpm trace, when `SimConfig::keep_trace` was set.
    pub trace: Option<Vec<TraceEvent>>,
    /// The simulator's own telemetry for this run: per-phase wall-clock
    /// and the counter rollup (event classes, queue and outbox
    /// statistics). The counters are deterministic for a fixed
    /// configuration; only the `*_ns` phase fields vary run to run.
    pub stats: cedar_obs::RunStats,
}

impl RunResult {
    /// The main task's breakdown.
    pub fn main_breakdown(&self) -> &TaskBreakdown {
        &self.breakdowns[0]
    }

    /// Helper-task breakdowns (empty on single-cluster configurations).
    pub fn helper_breakdowns(&self) -> &[TaskBreakdown] {
        &self.breakdowns[1..]
    }

    /// Machine-wide average concurrency (sum over clusters, as Table 1
    /// reports).
    pub fn total_concurrency(&self) -> f64 {
        self.concurrency.iter().sum()
    }

    /// Speedup of this run relative to `base` (normally the 1-processor
    /// run of the same application).
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        base.completion_time.0 as f64 / self.completion_time.0 as f64
    }

    /// Completion time in (scaled) seconds, as the tables print.
    pub fn ct_seconds(&self) -> f64 {
        self.completion_time.as_secs()
    }

    /// Fraction of completion time spent in a Figure 3 OS category on
    /// the main cluster.
    pub fn os_category_fraction(&self, category: Category) -> f64 {
        let u = self.utilization[0];
        let c = match category {
            Category::System => u.system,
            Category::Interrupt => u.interrupt,
            Category::Spin => u.spin,
            Category::User => u.user(self.completion_time),
        };
        c.fraction_of(self.completion_time)
    }

    /// Total OS overhead fraction (system + interrupt + spin) on the
    /// main cluster — the paper's "operating system overhead" headline.
    pub fn os_overhead_fraction(&self) -> f64 {
        self.utilization[0]
            .os_total()
            .fraction_of(self.completion_time)
    }

    /// Main-cluster time charged to one OS activity (a Table 2 cell).
    pub fn os_activity(&self, activity: OsActivity) -> Cycles {
        self.os.cluster(ClusterId(0)).get(activity).total()
    }

    /// The main task's parallelization-overhead fraction of CT.
    pub fn main_parallelization_fraction(&self) -> f64 {
        self.main_breakdown()
            .parallelization_overhead()
            .fraction_of(self.completion_time)
    }

    /// A helper task's parallelization-overhead fraction of CT.
    pub fn helper_parallelization_fraction(&self, helper: usize) -> f64 {
        self.helper_breakdowns()[helper]
            .parallelization_overhead()
            .fraction_of(self.completion_time)
    }
}
