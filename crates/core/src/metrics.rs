//! Small derived metrics shared by tables and figures.

use cedar_sim::Cycles;

/// Speedup of `fast` over `base`.
///
/// # Example
///
/// ```
/// use cedar_core::metrics::speedup;
/// use cedar_sim::Cycles;
/// assert!((speedup(Cycles(1000), Cycles(250)) - 4.0).abs() < 1e-12);
/// ```
pub fn speedup(base: Cycles, fast: Cycles) -> f64 {
    if fast.0 == 0 {
        0.0
    } else {
        base.0 as f64 / fast.0 as f64
    }
}

/// Percentage `part / whole * 100`.
pub fn percent(part: Cycles, whole: Cycles) -> f64 {
    part.fraction_of(whole) * 100.0
}

/// Parallel efficiency: speedup divided by processor count.
pub fn efficiency(base: Cycles, fast: Cycles, processors: u16) -> f64 {
    if processors == 0 {
        0.0
    } else {
        speedup(base, fast) / processors as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_handles_zero() {
        assert_eq!(speedup(Cycles(10), Cycles(0)), 0.0);
    }

    #[test]
    fn percent_of_whole() {
        assert!((percent(Cycles(25), Cycles(200)) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn efficiency_is_speedup_per_processor() {
        assert!((efficiency(Cycles(3200), Cycles(100), 32) - 1.0).abs() < 1e-12);
        assert_eq!(efficiency(Cycles(1), Cycles(1), 0), 0.0);
    }
}
