//! A `std::thread` worker pool for fanning experiment grids across
//! cores.
//!
//! The measurement campaign is an embarrassingly parallel grid of
//! independent `(application, configuration)` simulations. The pool runs
//! an arbitrary job list on a bounded number of OS threads (instead of
//! one thread per job), returns results **in job-submission order**
//! regardless of completion order, and converts a panicking job into an
//! error for the caller instead of poisoning or hanging the pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A job panicked while running on the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Index of the failed job in the submitted job list.
    pub job: usize,
    /// The panic payload, when it was a string.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool job {} panicked: {}", self.job, self.message)
    }
}

impl std::error::Error for PoolError {}

/// The number of workers to use when the caller does not specify one:
/// the machine's available parallelism. Configuration by environment
/// (`CEDAR_WORKERS`) is the business of `cedar_obs::RunOptions::from_env`,
/// whose `workers` field callers pass down explicitly.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Self-telemetry of one pool invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned (after clamping to the job count).
    pub workers: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Summed wall-clock of job bodies across all workers, in
    /// nanoseconds.
    pub busy_ns: u64,
    /// Wall-clock of the whole pool invocation, in nanoseconds.
    pub wall_ns: u64,
}

impl PoolStats {
    /// Total worker idle time: thread-seconds allocated minus
    /// thread-seconds spent in job bodies. High idle on a balanced grid
    /// means the tail jobs serialized the pool.
    pub fn idle_ns(&self) -> u64 {
        (self.workers as u64 * self.wall_ns).saturating_sub(self.busy_ns)
    }

    /// Fraction of allocated thread time spent in job bodies (1.0 =
    /// perfectly packed).
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 || self.wall_ns == 0 {
            return 1.0;
        }
        self.busy_ns as f64 / (self.workers as u64 * self.wall_ns) as f64
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `jobs` on `workers` OS threads and returns their outputs in
/// submission order.
///
/// Work is distributed dynamically (an atomic next-job cursor), so an
/// expensive job does not serialize the rest of the grid behind it. If
/// any job panics, the remaining jobs still run to completion and the
/// first failure (by job index) is returned as `Err`.
pub fn run_jobs<T, F>(workers: usize, jobs: Vec<F>) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_jobs_timed(workers, jobs).map(|(out, _)| out)
}

/// [`run_jobs`], additionally reporting the pool's own telemetry
/// (worker count, busy vs. wall time) so suite runners can roll worker
/// idle time into the run manifest.
pub fn run_jobs_timed<T, F>(workers: usize, jobs: Vec<F>) -> Result<(Vec<T>, PoolStats), PoolError>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Ok((Vec::new(), PoolStats::default()));
    }
    let workers = workers.clamp(1, n);
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let outputs: Vec<Mutex<Option<Result<T, String>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let busy_ns = std::sync::atomic::AtomicU64::new(0);
    let wall = std::time::Instant::now();

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot lock")
                    .take()
                    .expect("each job is taken exactly once");
                let t = std::time::Instant::now();
                let out = catch_unwind(AssertUnwindSafe(job)).map_err(panic_message);
                busy_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                *outputs[i].lock().expect("output slot lock") = Some(out);
            });
        }
    });

    let stats = PoolStats {
        workers,
        jobs: n,
        busy_ns: busy_ns.into_inner(),
        wall_ns: wall.elapsed().as_nanos() as u64,
    };

    let mut results = Vec::with_capacity(n);
    for (i, slot) in outputs.into_iter().enumerate() {
        match slot.into_inner().expect("output slot lock") {
            Some(Ok(v)) => results.push(v),
            Some(Err(message)) => return Err(PoolError { job: i, message }),
            None => unreachable!("every job index below the cursor is executed"),
        }
    }
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Make late-submitted jobs finish first to exercise the ordering.
        let jobs: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    if i % 2 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(32 - i));
                    }
                    i * i
                }
            })
            .collect();
        let out = run_jobs(4, jobs).unwrap();
        assert_eq!(out, (0..32u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        for workers in [1, 2, 3, 8, 64] {
            let jobs: Vec<_> = (0..10u64).map(|i| move || i + 1).collect();
            assert_eq!(
                run_jobs(workers, jobs).unwrap(),
                (1..=10).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u64> = run_jobs(8, Vec::<fn() -> u64>::new()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn panicking_job_surfaces_as_error_not_hang() {
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("experiment exploded")),
            Box::new(|| 3),
        ];
        let err = run_jobs(2, jobs).unwrap_err();
        assert_eq!(err.job, 1);
        assert!(
            err.message.contains("experiment exploded"),
            "{}",
            err.message
        );
    }

    #[test]
    fn first_failing_job_index_is_reported() {
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = vec![
            Box::new(|| 0),
            Box::new(|| panic!("first")),
            Box::new(|| panic!("second")),
        ];
        let err = run_jobs(1, jobs).unwrap_err();
        assert_eq!(err.job, 1);
        assert!(err.message.contains("first"));
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn timed_variant_reports_pool_stats() {
        let jobs: Vec<_> = (0..6u64)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    i
                }
            })
            .collect();
        let (out, stats) = run_jobs_timed(3, jobs).unwrap();
        assert_eq!(out, (0..6).collect::<Vec<_>>());
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.jobs, 6);
        assert!(stats.busy_ns > 0);
        assert!(stats.wall_ns > 0);
        assert!(stats.utilization() > 0.0 && stats.utilization() <= 1.0);
        assert_eq!(
            stats.idle_ns(),
            (stats.workers as u64 * stats.wall_ns).saturating_sub(stats.busy_ns)
        );
    }
}
