//! The master event enum of the simulation.

use cedar_hw::GmemEvent;

/// Every event the machine's queue can carry.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// A packet hop inside the global-memory system.
    Gmem(GmemEvent),
    /// A CE's current activity (compute span) completed. `gen` is the
    /// activity generation; stale completions are dropped.
    CeDone {
        /// CE position (dense index among active CEs).
        ce: usize,
        /// Activity generation stamped at scheduling time.
        gen: u64,
    },
    /// A CE resumes after an OS stall or penalty with its stashed state.
    CeResume {
        /// CE position.
        ce: usize,
        /// Activity generation stamped at scheduling time.
        gen: u64,
    },
    /// An intra-cluster (concurrency-bus) barrier released.
    CbusRelease {
        /// Cluster position (dense index among active clusters).
        cluster: usize,
        /// Barrier episode, to drop stale releases.
        episode: u64,
    },
    /// The OS bookkeeping daemon fires on a cluster.
    Daemon {
        /// Cluster position.
        cluster: usize,
    },
    /// An asynchronous system trap fires on a cluster.
    Ast {
        /// Cluster position.
        cluster: usize,
    },
    /// A competing job's gang quantum steals a cluster (multiprogrammed
    /// extension; never fires in the paper's dedicated setting).
    Background {
        /// Cluster position.
        cluster: usize,
    },
    /// A timed fault-injection occurrence fires on a cluster (never
    /// scheduled when the run's `FaultPlan` is empty). A distinct class
    /// so injected events are never silently folded into the organic
    /// event counts.
    Fault {
        /// Which timed fault class fired.
        kind: cedar_faults::FaultKind,
        /// Cluster position.
        cluster: usize,
    },
}

/// Telemetry counter name of each event class, indexed by
/// [`Ev::class`]. Dotted `events.*` paths, ready for the run manifest's
/// counter rollup.
pub const EV_CLASS_NAMES: [&str; 8] = [
    "events.gmem",
    "events.ce_done",
    "events.ce_resume",
    "events.cbus_release",
    "events.daemon",
    "events.ast",
    "events.background",
    "events.fault",
];

impl Ev {
    /// Dense class index for per-class event accounting (the index into
    /// [`EV_CLASS_NAMES`]).
    pub fn class(&self) -> usize {
        match self {
            Ev::Gmem(_) => 0,
            Ev::CeDone { .. } => 1,
            Ev::CeResume { .. } => 2,
            Ev::CbusRelease { .. } => 3,
            Ev::Daemon { .. } => 4,
            Ev::Ast { .. } => 5,
            Ev::Background { .. } => 6,
            Ev::Fault { .. } => 7,
        }
    }
}
