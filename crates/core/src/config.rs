//! Complete simulation configuration.

use cedar_hw::{Configuration, HwConfig};
use cedar_rtl::RtlConfig;
use cedar_xylem::{BackgroundLoad, OsConfig};

/// Everything needed to instantiate one simulated Cedar machine.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hardware: configuration, network, cluster parameters.
    pub hw: HwConfig,
    /// Operating-system cost model.
    pub os: OsConfig,
    /// Runtime-library cost model.
    pub rtl: RtlConfig,
    /// Master random seed (workload jitter, daemon phases).
    pub seed: u64,
    /// Keep the full cedarhpm event trace in the result (memory-hungry
    /// on long runs; breakdowns are computed either way).
    pub keep_trace: bool,
    /// Safety valve: abort if the event count exceeds this bound.
    pub max_events: u64,
    /// Competing multiprogrammed load (None = the paper's dedicated,
    /// single-user setting).
    pub background: Option<BackgroundLoad>,
}

impl SimConfig {
    /// The machine the paper measured, at a given processor count.
    pub fn cedar(configuration: Configuration) -> Self {
        SimConfig {
            hw: HwConfig::cedar(configuration),
            os: OsConfig::cedar(),
            rtl: RtlConfig::cedar(),
            seed: 0xCEDA_12B5,
            keep_trace: false,
            max_events: 4_000_000_000,
            background: None,
        }
    }

    /// Overrides the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Keeps the cedarhpm trace in the result (builder style).
    pub fn with_trace(mut self) -> Self {
        self.keep_trace = true;
        self
    }

    /// Adds a competing multiprogrammed load (builder style) — beyond
    /// the paper, which measured a dedicated system.
    pub fn with_background(mut self, load: BackgroundLoad) -> Self {
        self.background = Some(load);
        self
    }

    /// The active processor configuration.
    pub fn configuration(&self) -> Configuration {
        self.hw.configuration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cedar_config_carries_configuration() {
        let c = SimConfig::cedar(Configuration::P16);
        assert_eq!(c.configuration(), Configuration::P16);
        assert_eq!(c.hw.net.modules, 32);
    }

    #[test]
    fn builder_overrides() {
        let c = SimConfig::cedar(Configuration::P1)
            .with_seed(7)
            .with_trace();
        assert_eq!(c.seed, 7);
        assert!(c.keep_trace);
    }
}
