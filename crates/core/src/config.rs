//! Complete simulation configuration.

use cedar_faults::FaultPlan;
use cedar_hw::{Configuration, HwConfig};
use cedar_obs::CedarError;
use cedar_rtl::RtlConfig;
use cedar_sim::{SchedKind, TieBreak};
use cedar_xylem::{BackgroundLoad, OsConfig};

/// Everything needed to instantiate one simulated Cedar machine.
///
/// The builders are total: every field has both a setter and (where the
/// field is a toggle) an unsetter, so any configuration is reachable
/// from [`SimConfig::cedar`] by chaining.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hardware: configuration, network, cluster parameters.
    pub hw: HwConfig,
    /// Operating-system cost model.
    pub os: OsConfig,
    /// Runtime-library cost model.
    pub rtl: RtlConfig,
    /// Master random seed (workload jitter, daemon phases).
    pub seed: u64,
    /// Keep the full cedarhpm event trace in the result (memory-hungry
    /// on long runs; breakdowns are computed either way).
    pub keep_trace: bool,
    /// Safety valve: abort if the event count exceeds this bound.
    pub max_events: u64,
    /// Pending-event-set implementation backing the machine's queue.
    /// Both kinds produce bit-identical runs; see
    /// [`cedar_sim::EventQueue`].
    pub sched: SchedKind,
    /// Simultaneous-event ordering policy. Measurements must not
    /// depend on it — `cedar-check` perturbs it to prove that; the
    /// FIFO default is the documented scheduling order.
    pub tiebreak: TieBreak,
    /// Competing multiprogrammed load (None = the paper's dedicated,
    /// single-user setting).
    pub background: Option<BackgroundLoad>,
    /// Fault-injection campaign (the empty default injects nothing —
    /// the run is byte-identical to one without the faults subsystem).
    pub faults: FaultPlan,
}

impl SimConfig {
    /// The machine the paper measured, at a given processor count.
    pub fn cedar(configuration: Configuration) -> Self {
        SimConfig {
            hw: HwConfig::cedar(configuration),
            os: OsConfig::cedar(),
            rtl: RtlConfig::cedar(),
            seed: 0xCEDA_12B5,
            keep_trace: false,
            max_events: 4_000_000_000,
            sched: SchedKind::default(),
            tiebreak: TieBreak::default(),
            background: None,
            faults: FaultPlan::default(),
        }
    }

    /// Overrides the seed (builder style).
    ///
    /// ```
    /// use cedar_core::SimConfig;
    /// use cedar_hw::Configuration;
    ///
    /// let c = SimConfig::cedar(Configuration::P8).with_seed(42);
    /// assert_eq!(c.seed, 42);
    /// ```
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Keeps the cedarhpm trace in the result (builder style).
    ///
    /// ```
    /// use cedar_core::SimConfig;
    /// use cedar_hw::Configuration;
    ///
    /// let c = SimConfig::cedar(Configuration::P8).with_trace();
    /// assert!(c.keep_trace);
    /// ```
    pub fn with_trace(mut self) -> Self {
        self.keep_trace = true;
        self
    }

    /// Drops the cedarhpm trace from the result (builder style) — the
    /// default, provided so [`with_trace`](Self::with_trace) has an
    /// inverse and configurations can be toggled back.
    ///
    /// ```
    /// use cedar_core::SimConfig;
    /// use cedar_hw::Configuration;
    ///
    /// let c = SimConfig::cedar(Configuration::P8)
    ///     .with_trace()
    ///     .with_trace_off();
    /// assert!(!c.keep_trace);
    /// ```
    pub fn with_trace_off(mut self) -> Self {
        self.keep_trace = false;
        self
    }

    /// Overrides the runaway-workload event bound (builder style).
    ///
    /// ```
    /// use cedar_core::SimConfig;
    /// use cedar_hw::Configuration;
    ///
    /// let c = SimConfig::cedar(Configuration::P8).with_max_events(10_000);
    /// assert_eq!(c.max_events, 10_000);
    /// ```
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Selects the pending-event-set implementation (builder style).
    /// The scheduler changes wall-clock speed only, never results.
    ///
    /// ```
    /// use cedar_core::SimConfig;
    /// use cedar_hw::Configuration;
    /// use cedar_sim::SchedKind;
    ///
    /// let c = SimConfig::cedar(Configuration::P8).with_scheduler(SchedKind::Heap);
    /// assert_eq!(c.sched, SchedKind::Heap);
    /// ```
    pub fn with_scheduler(mut self, sched: SchedKind) -> Self {
        self.sched = sched;
        self
    }

    /// Selects the simultaneous-event ordering policy (builder style).
    /// Like the scheduler, the tie-break never changes measurements —
    /// a claim `cedar-check` verifies by perturbing it.
    ///
    /// ```
    /// use cedar_core::SimConfig;
    /// use cedar_hw::Configuration;
    /// use cedar_sim::TieBreak;
    ///
    /// let c = SimConfig::cedar(Configuration::P8).with_tiebreak(TieBreak::Lifo);
    /// assert_eq!(c.tiebreak, TieBreak::Lifo);
    /// ```
    pub fn with_tiebreak(mut self, tiebreak: TieBreak) -> Self {
        self.tiebreak = tiebreak;
        self
    }

    /// Adds a competing multiprogrammed load (builder style) — beyond
    /// the paper, which measured a dedicated system.
    ///
    /// ```
    /// use cedar_core::SimConfig;
    /// use cedar_hw::Configuration;
    /// use cedar_xylem::BackgroundLoad;
    ///
    /// let c = SimConfig::cedar(Configuration::P8)
    ///     .with_background(BackgroundLoad::heavy());
    /// assert!(c.background.is_some());
    /// ```
    pub fn with_background(mut self, load: BackgroundLoad) -> Self {
        self.background = Some(load);
        self
    }

    /// Applies a fault-injection campaign (builder style). Passing
    /// `FaultPlan::default()` restores the unperturbed machine, so the
    /// builder is total.
    ///
    /// ```
    /// use cedar_core::SimConfig;
    /// use cedar_faults::FaultPlan;
    /// use cedar_hw::Configuration;
    ///
    /// let c = SimConfig::cedar(Configuration::P8)
    ///     .with_faults(FaultPlan::canonical());
    /// assert!(!c.faults.is_empty());
    /// assert!(c.with_faults(FaultPlan::default()).faults.is_empty());
    /// ```
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The active processor configuration.
    pub fn configuration(&self) -> Configuration {
        self.hw.configuration
    }

    /// Checks the configuration's structural invariants, returning the
    /// first violation as [`CedarError::ConfigInvalid`] instead of
    /// letting it surface later as a panic deep inside the machine.
    /// Every configuration reachable from [`SimConfig::cedar`] by
    /// builder chaining with sane values passes.
    ///
    /// ```
    /// use cedar_core::SimConfig;
    /// use cedar_hw::Configuration;
    ///
    /// assert!(SimConfig::cedar(Configuration::P8).validate().is_ok());
    /// let bad = SimConfig::cedar(Configuration::P8).with_max_events(0);
    /// assert!(bad.validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), CedarError> {
        if self.max_events == 0 {
            return Err(CedarError::ConfigInvalid(
                "max_events must be at least 1 (0 would abort every run immediately)".to_string(),
            ));
        }
        if self.hw.net.modules == 0 {
            return Err(CedarError::ConfigInvalid(
                "network configuration has zero memory modules".to_string(),
            ));
        }
        if self.hw.net.radix == 0 {
            return Err(CedarError::ConfigInvalid(
                "network configuration has a zero switch radix".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cedar_config_carries_configuration() {
        let c = SimConfig::cedar(Configuration::P16);
        assert_eq!(c.configuration(), Configuration::P16);
        assert_eq!(c.hw.net.modules, 32);
        assert_eq!(c.sched, SchedKind::Calendar);
    }

    #[test]
    fn builder_overrides() {
        let c = SimConfig::cedar(Configuration::P1)
            .with_seed(7)
            .with_trace()
            .with_max_events(123)
            .with_scheduler(SchedKind::Heap);
        assert_eq!(c.seed, 7);
        assert!(c.keep_trace);
        assert_eq!(c.max_events, 123);
        assert_eq!(c.sched, SchedKind::Heap);
        assert!(!c.with_trace_off().keep_trace);
    }
}
