//! Statistics helpers: counters, time-weighted averages and histograms.
//!
//! The measurement facilities in `cedar-trace` (the `statfx` concurrency
//! monitor and the `Q` utilization facility) are built on these primitives.

use std::fmt;

use crate::time::{Cycles, SimTime};

/// Accumulates the time integral of a piecewise-constant signal, e.g. the
/// number of busy processors over time — exactly what the paper's `statfx`
/// monitor reports as *average concurrency*.
///
/// # Example
///
/// ```
/// use cedar_sim::{Cycles, stats::TimeWeighted};
///
/// let mut tw = TimeWeighted::new(Cycles::ZERO, 0.0);
/// tw.update(Cycles(10), 4.0); // signal was 0.0 during [0, 10)
/// tw.update(Cycles(30), 0.0); // signal was 4.0 during [10, 30)
/// assert!((tw.average(Cycles(30)) - (4.0 * 20.0 / 30.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Starts integrating from `start` with initial signal `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: value,
            integral: 0.0,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update (time runs forward).
    pub fn update(&mut self, now: SimTime, value: f64) {
        assert!(
            now >= self.last_time,
            "time went backwards: {} < {}",
            now,
            self.last_time
        );
        self.integral += self.last_value * (now - self.last_time).0 as f64;
        self.last_time = now;
        self.last_value = value;
    }

    /// Current signal value.
    pub fn value(&self) -> f64 {
        self.last_value
    }

    /// Time average of the signal over `[start, end)`, assuming
    /// construction at `start` and the signal holding its last value up to
    /// `end`. Returns 0.0 for an empty interval.
    pub fn average(&self, end: SimTime) -> f64 {
        let total = end.0 as f64;
        if total == 0.0 {
            return 0.0;
        }
        let tail = self.last_value * end.saturating_sub(self.last_time).0 as f64;
        (self.integral + tail) / total
    }
}

/// A named monotonically increasing event counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.count
    }
}

/// Accumulates durations into named buckets; the backbone of every
/// time-breakdown table in the reproduction.
#[derive(Debug, Clone)]
pub struct DurationAccum {
    total: Cycles,
    samples: u64,
    max: Cycles,
}

impl DurationAccum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        DurationAccum {
            total: Cycles::ZERO,
            samples: 0,
            max: Cycles::ZERO,
        }
    }

    /// Adds one observed duration.
    pub fn add(&mut self, d: Cycles) {
        self.total += d;
        self.samples += 1;
        if d > self.max {
            self.max = d;
        }
    }

    /// Reconstitutes an accumulator from its observable parts — the
    /// inverse of reading `total`/`samples`/`max`, used by the run cache
    /// to round-trip accounting tables exactly.
    pub fn from_parts(total: Cycles, samples: u64, max: Cycles) -> Self {
        DurationAccum {
            total,
            samples,
            max,
        }
    }

    /// Sum of all observed durations.
    pub fn total(&self) -> Cycles {
        self.total
    }

    /// Number of observations.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Largest single observation.
    pub fn max(&self) -> Cycles {
        self.max
    }

    /// Mean duration, or zero if nothing was observed.
    pub fn mean(&self) -> Cycles {
        if self.samples == 0 {
            Cycles::ZERO
        } else {
            self.total / self.samples
        }
    }
}

impl Default for DurationAccum {
    fn default() -> Self {
        DurationAccum::new()
    }
}

impl fmt::Display for DurationAccum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total={} n={} mean={} max={}",
            self.total,
            self.samples,
            self.mean(),
            self.max
        )
    }
}

/// A fixed-bucket latency histogram (power-of-two bucket edges).
///
/// Used by the network model to report packet-latency distributions in the
/// hot-spot ablation experiments.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    overflow: u64,
}

impl LatencyHistogram {
    /// Creates a histogram with `n` power-of-two buckets:
    /// `[0,1), [1,2), [2,4), [4,8), ...`.
    pub fn new(n: usize) -> Self {
        LatencyHistogram {
            buckets: vec![0; n],
            overflow: 0,
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Cycles) {
        let idx = if latency.0 == 0 {
            0
        } else {
            (64 - latency.0.leading_zeros()) as usize
        };
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Reconstitutes a histogram from its bucket counts — the inverse
    /// of reading [`bucket`](Self::bucket)/[`overflow`](Self::overflow),
    /// used by the run cache to round-trip distributions exactly.
    pub fn from_parts(buckets: Vec<u64>, overflow: u64) -> Self {
        LatencyHistogram { buckets, overflow }
    }

    /// Number of buckets (the `n` the histogram was created with).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Observations exceeding the largest bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Smallest upper bound `b` such that at least `q` (0..=1) of the
    /// observations fall below `b`. Returns `None` when empty.
    pub fn quantile_bound(&self, q: f64) -> Option<Cycles> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(Cycles(if i == 0 { 1 } else { 1 << i }));
            }
        }
        Some(Cycles::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_average_of_step_signal() {
        let mut tw = TimeWeighted::new(Cycles::ZERO, 1.0);
        tw.update(Cycles(50), 3.0);
        // [0,50): 1.0; [50,100): 3.0 -> average 2.0
        assert!((tw.average(Cycles(100)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_tracks_current_value() {
        let mut tw = TimeWeighted::new(Cycles::ZERO, 0.0);
        tw.update(Cycles(5), 7.5);
        assert_eq!(tw.value(), 7.5);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_weighted_rejects_backwards_time() {
        let mut tw = TimeWeighted::new(Cycles(10), 0.0);
        tw.update(Cycles(5), 1.0);
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn duration_accum_mean_and_max() {
        let mut a = DurationAccum::new();
        a.add(Cycles(10));
        a.add(Cycles(30));
        assert_eq!(a.total(), Cycles(40));
        assert_eq!(a.mean(), Cycles(20));
        assert_eq!(a.max(), Cycles(30));
        assert_eq!(a.samples(), 2);
    }

    #[test]
    fn duration_accum_empty_mean_is_zero() {
        assert_eq!(DurationAccum::new().mean(), Cycles::ZERO);
    }

    #[test]
    fn histogram_buckets_power_of_two() {
        let mut h = LatencyHistogram::new(8);
        h.record(Cycles(0)); // bucket 0
        h.record(Cycles(1)); // bucket 1
        h.record(Cycles(2)); // bucket 2
        h.record(Cycles(3)); // bucket 2
        h.record(Cycles(4)); // bucket 3
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histogram_overflow() {
        let mut h = LatencyHistogram::new(3);
        h.record(Cycles(1000));
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_quantile_bound() {
        let mut h = LatencyHistogram::new(10);
        for _ in 0..90 {
            h.record(Cycles(2));
        }
        for _ in 0..10 {
            h.record(Cycles(100));
        }
        assert_eq!(h.quantile_bound(0.5), Some(Cycles(4)));
        assert!(h.quantile_bound(0.99).unwrap() >= Cycles(64));
        assert_eq!(LatencyHistogram::new(4).quantile_bound(0.5), None);
    }
}
