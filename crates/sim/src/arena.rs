//! Pooled event storage: a slab arena with generation-tagged handles.
//!
//! Both pending-event set implementations park event payloads here and
//! keep only a 24-byte `(time, seq, handle)` entry in their ordering
//! structures (wheel buckets, overflow heap, binary-heap lanes). Freed
//! slots go on a LIFO free list and are recycled on the next
//! [`alloc`](EventArena::alloc), so steady-state scheduling performs no
//! heap allocation: the arena grows to the peak pending population once
//! and then only moves slot indices around. The LIFO discipline also
//! keeps the recycled slots cache-hot.
//!
//! Handles are *generation tagged*: every slot carries a counter that is
//! bumped each time the slot is freed, and a handle is only valid while
//! its recorded generation matches. A cancelled event's entry can thus
//! stay behind in a wheel bucket or heap lane as a tombstone — when the
//! entry finally surfaces, the generation mismatch identifies it as
//! stale and it is silently discarded. This is what makes O(1)
//! cancellation possible without searching the ordering structures.

/// A generation-tagged reference to a pending event's arena slot.
///
/// Returned by the cancellable scheduling entry points
/// ([`EventQueue::schedule_cancellable`](crate::EventQueue::schedule_cancellable));
/// pass it back to [`cancel`](crate::EventQueue::cancel) to revoke the
/// event. A handle is single-use: once the event fires or is cancelled,
/// the handle goes stale and further cancels return `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    pub(crate) index: u32,
    pub(crate) gen: u32,
}

/// One arena slot: the payload plus the bookkeeping that cancellation
/// and self-telemetry need.
struct Slot<E> {
    /// Bumped on every free; a handle is live iff its gen matches.
    gen: u32,
    /// Hold-histogram bucket recorded when the event was scheduled, so a
    /// cancel can reverse exactly the contribution the schedule made.
    hold_bucket: u8,
    /// `true` while the event sits on the calendar wheel (as opposed to
    /// the overflow tier); lets a cancel decrement the right occupancy
    /// counter.
    on_wheel: bool,
    /// The event payload; `None` while the slot is free.
    payload: Option<E>,
}

/// Slab-recycled storage for pending-event payloads.
pub(crate) struct EventArena<E> {
    slots: Vec<Slot<E>>,
    /// LIFO free list (indices into `slots`).
    free: Vec<u32>,
    live: usize,
}

impl<E> EventArena<E> {
    pub(crate) fn new() -> Self {
        EventArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Parks `payload`, recycling a freed slot when one exists.
    pub(crate) fn alloc(&mut self, payload: E, hold_bucket: u8, on_wheel: bool) -> EventHandle {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.payload.is_none(), "free-listed slot still occupied");
            slot.hold_bucket = hold_bucket;
            slot.on_wheel = on_wheel;
            slot.payload = Some(payload);
            EventHandle {
                index,
                gen: slot.gen,
            }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                hold_bucket,
                on_wheel,
                payload: Some(payload),
            });
            EventHandle { index, gen: 0 }
        }
    }

    /// `true` while `h` refers to a pending (not fired, not cancelled)
    /// event.
    pub(crate) fn is_live(&self, h: EventHandle) -> bool {
        self.slots[h.index as usize].gen == h.gen
    }

    /// Removes the payload `h` refers to (event fired). Returns `None`
    /// when the handle is stale — the tombstone case.
    pub(crate) fn take(&mut self, h: EventHandle) -> Option<E> {
        let slot = &mut self.slots[h.index as usize];
        if slot.gen != h.gen {
            return None;
        }
        let payload = slot.payload.take().expect("live slot holds a payload");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(h.index);
        self.live -= 1;
        Some(payload)
    }

    /// Cancels the event `h` refers to, returning the bookkeeping the
    /// queue's stats need to reverse: `(hold_bucket, on_wheel)`. `None`
    /// when the handle is stale.
    pub(crate) fn cancel(&mut self, h: EventHandle) -> Option<(u8, bool)> {
        let slot = &mut self.slots[h.index as usize];
        if slot.gen != h.gen {
            return None;
        }
        slot.payload = None;
        let info = (slot.hold_bucket, slot.on_wheel);
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(h.index);
        self.live -= 1;
        Some(info)
    }

    /// Flags the event as now living on the calendar wheel (overflow →
    /// wheel migration).
    pub(crate) fn set_on_wheel(&mut self, h: EventHandle) {
        let slot = &mut self.slots[h.index as usize];
        debug_assert_eq!(slot.gen, h.gen, "migrating a stale handle");
        slot.on_wheel = true;
    }

    /// Number of live (pending) events.
    pub(crate) fn live(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_take_roundtrip() {
        let mut a: EventArena<&str> = EventArena::new();
        let h = a.alloc("x", 3, true);
        assert_eq!(a.live(), 1);
        assert!(a.is_live(h));
        assert_eq!(a.take(h), Some("x"));
        assert_eq!(a.live(), 0);
        assert!(!a.is_live(h));
        assert_eq!(a.take(h), None, "second take sees a stale handle");
    }

    #[test]
    fn slots_recycle_lifo_without_growth() {
        let mut a: EventArena<u64> = EventArena::new();
        let h0 = a.alloc(0, 0, true);
        let h1 = a.alloc(1, 0, true);
        assert_eq!((h0.index, h1.index), (0, 1));
        a.take(h1);
        let h2 = a.alloc(2, 0, true);
        assert_eq!(h2.index, 1, "freed slot is reused LIFO");
        assert_ne!(h2.gen, h1.gen, "reuse bumps the generation");
        assert_eq!(a.take(h1), None, "old handle cannot steal the new event");
        assert_eq!(a.take(h2), Some(2));
        a.take(h0);
    }

    #[test]
    fn cancel_reports_bookkeeping_once() {
        let mut a: EventArena<u8> = EventArena::new();
        let h = a.alloc(9, 7, false);
        assert_eq!(a.cancel(h), Some((7, false)));
        assert_eq!(a.cancel(h), None);
        assert_eq!(a.take(h), None);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn wheel_migration_flag() {
        let mut a: EventArena<u8> = EventArena::new();
        let h = a.alloc(1, 2, false);
        a.set_on_wheel(h);
        assert_eq!(a.cancel(h), Some((2, true)));
    }
}
