//! Deterministic pseudo-random number generation.
//!
//! Workload models use small amounts of randomness (iteration-cost jitter,
//! access-pattern offsets). To keep runs reproducible the simulator uses a
//! fixed-seed SplitMix64 generator — fast, tiny state, well-distributed,
//! and trivially portable.

/// A SplitMix64 pseudo-random generator.
///
/// # Example
///
/// ```
/// use cedar_sim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded generation (Lemire); bias is negligible
        // for the workload-jitter use case.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range {lo}..={hi}");
        lo + self.next_below(hi - lo + 1)
    }

    /// Splits off an independent generator (for per-component streams).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_range_is_inclusive() {
        let mut r = SplitMix64::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi, "range endpoints should both occur");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = SplitMix64::new(123);
        let mut child = root.split();
        // The child stream should not equal the continuation of the root.
        let diverged = (0..10).any(|_| root.next_u64() != child.next_u64());
        assert!(diverged);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn mean_of_next_f64_is_near_half() {
        let mut r = SplitMix64::new(2024);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
