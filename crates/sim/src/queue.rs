//! Deterministic pending-event sets.
//!
//! Two interchangeable schedulers implement the [`EventSchedule`] trait:
//!
//! * [`HeapSchedule`] — an implicit 4-ary min-heap future-event set,
//!   O(log n) per operation;
//! * [`CalendarSchedule`](crate::calendar::CalendarSchedule) — a
//!   calendar queue (bucketed wheel over [`SimTime`] with an overflow
//!   tier), O(1) amortized per operation on the event-dense schedules
//!   the Cedar machine produces.
//!
//! Both pop events in exactly the same order — ascending fire time, ties
//! broken by scheduling sequence — so whole-run results are bit-identical
//! whichever is selected. [`EventQueue`] wraps the two behind a single
//! type; the implementation is an explicit [`SchedKind`] parameter
//! (`calendar` is the default). Selection by environment variable is the
//! business of `cedar_obs::RunOptions::from_env`, not this crate.
//!
//! ## Zero-allocation steady state
//!
//! The ordering structures store plain [`schedule`](EventSchedule::schedule)d
//! payloads inline in their entries — no indirection, no per-event
//! allocation once the structures have grown to the peak pending
//! population. Only [`schedule_cancellable`](EventSchedule::schedule_cancellable)
//! routes the payload through the slab-recycled [`EventArena`] shared by
//! the calendar wheel and the overflow heap: the entry then carries a
//! generation-tagged handle, giving O(1) [`cancel`](EventQueue::cancel)
//! — a cancelled event's entry stays behind as a tombstone and is swept
//! out when it surfaces. Arena slots are recycled through a free list,
//! so the cancellable tier is allocation-free in steady state too.
//!
//! Every implementation keeps cheap always-on self-telemetry counters
//! (events scheduled, popped and cancelled, peak pending population, and
//! a power-of-two histogram of scheduling distances) surfaced through
//! [`QueueStats`] — the paper's measurement discipline applied to the
//! simulator's own hot loop.

use crate::arena::{EventArena, EventHandle};
use crate::calendar::CalendarSchedule;
use crate::time::SimTime;

/// Packs a `(fire time, sequence)` ordering key into one `u128` whose
/// natural integer order is exactly the lexicographic event order.
#[inline]
pub(crate) fn order_key(at: SimTime, seq: u64) -> u128 {
    ((at.0 as u128) << 64) | seq as u128
}

/// Fire time half of an [`order_key`].
#[inline]
pub(crate) fn key_time(key: u128) -> SimTime {
    crate::time::Cycles((key >> 64) as u64)
}

/// How simultaneous events — same fire time — are ordered relative to
/// each other.
///
/// The policy is a *bijective rank transform* of the scheduling
/// sequence, applied once at schedule time: FIFO keeps the sequence,
/// LIFO reverses it (`!seq`), and a seeded shuffle maps it through the
/// SplitMix64 finalizer (a permutation of `u64`, so two events never
/// collide on a rank). Both schedule backends order ties by the rank,
/// so heap and calendar agree on the pop order under every policy.
///
/// Anything the simulation *measures* must not depend on this choice;
/// `cedar-check` perturbs it adversarially to prove that. The default
/// is FIFO — the documented `(fire time, scheduling sequence)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Ties pop in scheduling order (the default, and the order the
    /// rest of the documentation describes).
    #[default]
    Fifo,
    /// Ties pop in reverse scheduling order.
    Lifo,
    /// Ties pop in a seeded pseudo-random order.
    Shuffle(u64),
}

impl TieBreak {
    /// The rank that stands in for sequence `seq` under this policy.
    /// A bijection of `u64` for every policy, so ranks are unique.
    #[inline]
    pub(crate) fn rank(self, seq: u64) -> u64 {
        match self {
            TieBreak::Fifo => seq,
            TieBreak::Lifo => !seq,
            TieBreak::Shuffle(seed) => {
                // SplitMix64 finalizer: xor-shifts and odd multiplies,
                // each invertible, so the whole mix is a permutation.
                let mut z = seq ^ seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
        }
    }
}

impl std::fmt::Display for TieBreak {
    /// Canonical text form (`fifo` / `lifo` / `shuffle:0x<seed>`), the
    /// inverse of the [`FromStr`](std::str::FromStr) parse.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TieBreak::Fifo => f.write_str("fifo"),
            TieBreak::Lifo => f.write_str("lifo"),
            TieBreak::Shuffle(seed) => write!(f, "shuffle:{seed:#x}"),
        }
    }
}

impl std::str::FromStr for TieBreak {
    type Err = String;

    /// Parses `"fifo"`, `"lifo"` or `"shuffle:<seed>"` (seed decimal or
    /// `0x`-hex; empty selects the default).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fifo" | "" => Ok(TieBreak::Fifo),
            "lifo" => Ok(TieBreak::Lifo),
            other => {
                let seed = other
                    .strip_prefix("shuffle:")
                    .and_then(|raw| match raw.strip_prefix("0x") {
                        Some(hex) => u64::from_str_radix(hex, 16).ok(),
                        None => raw.parse().ok(),
                    })
                    .ok_or_else(|| {
                        format!(
                            "tie-break must be `fifo`, `lifo` or `shuffle:<seed>`, got `{other}`"
                        )
                    })?;
                Ok(TieBreak::Shuffle(seed))
            }
        }
    }
}

/// One pending-event entry: the payload itself for the plain-schedule
/// fast path, or an arena handle for cancellable events. `Taken` marks
/// a calendar-bucket slot whose payload has already been drained (the
/// slot is dead until its bucket resets; it never reaches a consumer).
pub(crate) enum Entry<E> {
    Inline(E),
    Pooled(EventHandle),
    Taken,
}

impl<E> Entry<E> {
    /// `true` for entries whose event is still pending (inline entries
    /// always are; pooled ones unless cancelled; `Taken` never).
    #[inline]
    pub(crate) fn is_live(&self, arena: &EventArena<E>) -> bool {
        match self {
            Entry::Inline(_) => true,
            Entry::Pooled(h) => arena.is_live(*h),
            Entry::Taken => false,
        }
    }
}

/// One min-heap node: a packed order key plus its entry. The `Ord` impl
/// is *inverted* (greater key ⇒ lesser node) so the max-heap semantics
/// of [`std::collections::BinaryHeap`] pop the minimum key.
struct Node<E> {
    key: u128,
    entry: Entry<E>,
}

impl<E> PartialEq for Node<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Node<E> {}
impl<E> PartialOrd for Node<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Node<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key.cmp(&self.key)
    }
}

/// A min-heap over `(order key, entry)` pairs — a thin wrapper around
/// the standard binary heap with the ordering inverted to pop minima.
/// Shared by [`HeapSchedule`] and the calendar queue's overflow tier.
///
/// Measured alternatives lost to this: a hand-rolled 4-ary heap with
/// swap-based sifts ran ~2× slower on the hold benchmark despite
/// touching half the levels, because the standard heap's hole-based
/// sift moves each node once per level (and sift-down-to-bottom skips
/// the per-level early-exit comparison entirely).
pub(crate) struct MinHeap<E> {
    heap: std::collections::BinaryHeap<Node<E>>,
}

impl<E> MinHeap<E> {
    pub(crate) fn new() -> Self {
        MinHeap {
            heap: std::collections::BinaryHeap::new(),
        }
    }

    pub(crate) fn with_capacity(cap: usize) -> Self {
        MinHeap {
            heap: std::collections::BinaryHeap::with_capacity(cap),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, key: u128, entry: Entry<E>) {
        self.heap.push(Node { key, entry });
    }

    #[inline]
    pub(crate) fn peek(&self) -> Option<(u128, &Entry<E>)> {
        self.heap.peek().map(|n| (n.key, &n.entry))
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(u128, Entry<E>)> {
        self.heap.pop().map(|n| (n.key, n.entry))
    }

    /// Removes cancelled-event tombstones from the root so that
    /// [`peek`](Self::peek) always reports a live event. Called after
    /// any operation that can surface a stale entry at the root; a
    /// no-op (one root inspection) when the root is inline or live.
    pub(crate) fn purge_stale(&mut self, arena: &EventArena<E>) {
        while let Some((_, entry)) = self.peek() {
            if entry.is_live(arena) {
                break;
            }
            self.pop();
        }
    }
}

/// Common interface of the pending-event set implementations.
///
/// The contract every implementor must uphold: [`pop`](Self::pop)
/// returns events in ascending `(fire time, scheduling sequence)` order,
/// where the sequence is the number of `schedule` calls made before the
/// event's own. Simulation determinism rests on this ordering, so it is
/// exact — not "time order with arbitrary tie-breaks".
pub trait EventSchedule<E> {
    /// Schedules `payload` to fire at absolute time `at`. The payload is
    /// stored inline in the ordering structure — the cheapest path, used
    /// by all non-revocable traffic.
    fn schedule(&mut self, at: SimTime, payload: E) {
        let _ = self.schedule_cancellable(at, payload);
    }

    /// Schedules `payload` to fire at `at` and returns a handle that can
    /// revoke it via [`cancel`](Self::cancel). The payload is pooled in
    /// the event arena rather than stored inline.
    fn schedule_cancellable(&mut self, at: SimTime, payload: E) -> EventHandle;

    /// Revokes a pending event in O(1). Returns `false` when the handle
    /// is stale (the event already fired or was already cancelled).
    ///
    /// A cancelled event never pops; its occupancy and hold-histogram
    /// contributions are reversed immediately, so an event cancelled and
    /// re-scheduled counts exactly once in [`QueueStats`].
    fn cancel(&mut self, handle: EventHandle) -> bool;

    /// Removes and returns the earliest pending event, or `None` if empty.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// Fire time of the earliest pending event without removing it.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of events currently pending.
    fn len(&self) -> usize;

    /// `true` when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (a cheap proxy for
    /// simulation work, reported by the bench harness).
    fn scheduled_total(&self) -> u64;

    /// Snapshot of the implementation's self-telemetry counters.
    fn stats(&self) -> QueueStats;
}

/// Number of power-of-two buckets in the hold-distance histogram.
pub const HOLD_BUCKETS: usize = 16;

/// Self-telemetry counters every pending-event set maintains. All are
/// plain integer increments on the schedule/pop paths, cheap enough to
/// stay on unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled (monotonic; includes later-cancelled ones).
    pub scheduled: u64,
    /// Events ever popped.
    pub popped: u64,
    /// Events cancelled before firing.
    pub cancelled: u64,
    /// Peak pending population (live events only — a cancel immediately
    /// releases its occupancy, so a cancel-and-reschedule within one
    /// cycle-day raises the population once, not twice).
    pub pending_peak: u64,
    /// Events that missed the calendar wheel's horizon and spilled to
    /// the overflow heap (always 0 for the heap scheduler).
    pub overflow_spills: u64,
    /// Peak live population on the calendar wheel proper (always 0 for
    /// the heap scheduler).
    pub wheel_peak: u64,
    /// Histogram of hold distances — how far ahead of the most recent
    /// pop each event was scheduled. Bucket 0 counts zero-cycle
    /// distances; bucket `k ≥ 1` counts distances in
    /// `[2^(k-1), 2^k)`; the last bucket absorbs everything beyond.
    /// Counts *pending or fired* schedulings: a cancel removes the
    /// event's bucket entry, so a cancelled-and-rescheduled event is
    /// histogrammed exactly once.
    pub hold_hist: [u64; HOLD_BUCKETS],
}

impl QueueStats {
    pub(crate) fn new() -> Self {
        QueueStats {
            scheduled: 0,
            popped: 0,
            cancelled: 0,
            pending_peak: 0,
            overflow_spills: 0,
            wheel_peak: 0,
            hold_hist: [0; HOLD_BUCKETS],
        }
    }

    /// Hold-histogram bucket for a scheduling `distance` cycles ahead of
    /// the most recent pop.
    pub(crate) fn bucket_of(distance: u64) -> u8 {
        if distance == 0 {
            0
        } else {
            (HOLD_BUCKETS - 1).min(64 - distance.leading_zeros() as usize) as u8
        }
    }

    /// Records one scheduling into hold bucket `bucket`, with `pending`
    /// live events now in the set.
    #[inline]
    pub(crate) fn on_schedule(&mut self, bucket: u8, pending: usize) {
        self.scheduled += 1;
        self.pending_peak = self.pending_peak.max(pending as u64);
        self.hold_hist[bucket as usize] += 1;
    }

    /// Reverses the per-event contribution of one scheduling (the event
    /// was cancelled before firing).
    pub(crate) fn on_cancel(&mut self, bucket: u8) {
        self.cancelled += 1;
        self.hold_hist[bucket as usize] -= 1;
    }
}

/// The 4-ary-min-heap-backed future-event set: O(log n) schedule and
/// pop.
///
/// Kept as the reference implementation for A/B verification of the
/// calendar queue (`CEDAR_SCHED=heap`). Plain payloads live inline in
/// the heap entries; cancellable ones in the shared [`EventArena`].
pub struct HeapSchedule<E> {
    heap: MinHeap<E>,
    arena: EventArena<E>,
    /// Live pending events (inline plus uncancelled pooled).
    live: usize,
    next_seq: u64,
    tiebreak: TieBreak,
    stats: QueueStats,
    last_popped: SimTime,
}

impl<E> HeapSchedule<E> {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty schedule with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        HeapSchedule {
            heap: MinHeap::with_capacity(cap),
            arena: EventArena::new(),
            live: 0,
            next_seq: 0,
            tiebreak: TieBreak::default(),
            stats: QueueStats::new(),
            last_popped: SimTime::ZERO,
        }
    }

    /// Selects the simultaneous-event ordering policy. Ranks are
    /// assigned at schedule time, so this must be set before any event
    /// is scheduled.
    pub fn with_tiebreak(mut self, tiebreak: TieBreak) -> Self {
        debug_assert_eq!(self.next_seq, 0, "tie-break set after scheduling");
        self.tiebreak = tiebreak;
        self
    }
}

impl<E> EventSchedule<E> for HeapSchedule<E> {
    fn schedule(&mut self, at: SimTime, payload: E) {
        let rank = self.tiebreak.rank(self.next_seq);
        self.next_seq += 1;
        let bucket = QueueStats::bucket_of(at.0.saturating_sub(self.last_popped.0));
        self.live += 1;
        self.heap.push(order_key(at, rank), Entry::Inline(payload));
        self.stats.on_schedule(bucket, self.live);
    }

    fn schedule_cancellable(&mut self, at: SimTime, payload: E) -> EventHandle {
        let rank = self.tiebreak.rank(self.next_seq);
        self.next_seq += 1;
        let bucket = QueueStats::bucket_of(at.0.saturating_sub(self.last_popped.0));
        let handle = self.arena.alloc(payload, bucket, false);
        self.live += 1;
        self.heap.push(order_key(at, rank), Entry::Pooled(handle));
        self.stats.on_schedule(bucket, self.live);
        handle
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        match self.arena.cancel(handle) {
            Some((bucket, _)) => {
                debug_assert!(
                    self.arena.live() < self.live,
                    "pooled live population must stay a subset of the total"
                );
                self.live -= 1;
                self.stats.on_cancel(bucket);
                // Keep the root live so `peek_time` stays exact.
                self.heap.purge_stale(&self.arena);
                true
            }
            None => false,
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let (key, entry) = self.heap.pop()?;
            let payload = match entry {
                Entry::Inline(payload) => payload,
                Entry::Pooled(handle) => match self.arena.take(handle) {
                    Some(payload) => payload,
                    // Cancelled tombstone: swept, not counted as a pop.
                    None => continue,
                },
                Entry::Taken => unreachable!("Taken entries never enter the heap"),
            };
            self.heap.purge_stale(&self.arena);
            let at = key_time(key);
            self.live -= 1;
            self.stats.popped += 1;
            self.last_popped = at;
            return Some((at, payload));
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        // The root is always live (stale roots are purged on cancel/pop).
        self.heap.peek().map(|(key, _)| key_time(key))
    }

    fn len(&self) -> usize {
        self.live
    }

    fn scheduled_total(&self) -> u64 {
        self.stats.scheduled
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

impl<E> Default for HeapSchedule<E> {
    fn default() -> Self {
        HeapSchedule::new()
    }
}

/// Which pending-event set implementation an [`EventQueue`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// 4-ary min-heap future-event set ([`HeapSchedule`]).
    Heap,
    /// Calendar queue ([`CalendarSchedule`](crate::calendar::CalendarSchedule)).
    Calendar,
}

impl SchedKind {
    /// Canonical lower-case name (`"heap"` / `"calendar"`), the inverse
    /// of the [`FromStr`](std::str::FromStr) parse.
    pub fn as_str(self) -> &'static str {
        match self {
            SchedKind::Heap => "heap",
            SchedKind::Calendar => "calendar",
        }
    }
}

impl Default for SchedKind {
    /// The calendar queue: O(1) amortized on the event-dense schedules
    /// the Cedar machine produces.
    fn default() -> Self {
        SchedKind::Calendar
    }
}

impl std::str::FromStr for SchedKind {
    type Err = String;

    /// Parses `"heap"` or `"calendar"` (empty selects the default).
    /// Used by `cedar_obs::RunOptions::from_env` for `CEDAR_SCHED`; this
    /// crate itself never consults the environment.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "calendar" | "" => Ok(SchedKind::Calendar),
            "heap" => Ok(SchedKind::Heap),
            other => Err(format!(
                "scheduler must be `heap` or `calendar`, got `{other}`"
            )),
        }
    }
}

/// A deterministic future-event set keyed by simulated time.
///
/// Ties in fire time are broken by scheduling order, which makes whole-run
/// behaviour reproducible: replaying the same schedule yields the same pop
/// order, bit for bit.
///
/// The backing implementation is chosen at construction: `new` and
/// `with_capacity` use the default [`SchedKind`] (calendar);
/// [`heap`](Self::heap), [`calendar`](Self::calendar),
/// [`with_kind`](Self::with_kind) and
/// [`with_kind_capacity`](Self::with_kind_capacity) select explicitly —
/// callers that honour a run configuration pass
/// `RunOptions::scheduler` down here. Every implementation pops in the
/// same order, so the choice affects wall-clock speed only.
///
/// # Example
///
/// ```
/// use cedar_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles(10), 'b');
/// q.schedule(Cycles(2), 'a');
/// let pending = q.schedule_cancellable(Cycles(5), 'x');
/// assert!(q.cancel(pending));
/// assert_eq!(q.pop(), Some((Cycles(2), 'a')));
/// assert_eq!(q.pop(), Some((Cycles(10), 'b')));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E>(QueueImpl<E>);

enum QueueImpl<E> {
    Heap(HeapSchedule<E>),
    Calendar(CalendarSchedule<E>),
}

impl<E> EventQueue<E> {
    /// Creates an empty queue of the default kind (calendar).
    pub fn new() -> Self {
        Self::with_kind(SchedKind::default())
    }

    /// Creates an empty queue of the default kind with room for `cap`
    /// pending events (a pre-allocation hint; the calendar queue sizes
    /// its buckets lazily and ignores it).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_kind_capacity(SchedKind::default(), cap)
    }

    /// Creates an empty queue of an explicit kind.
    pub fn with_kind(kind: SchedKind) -> Self {
        match kind {
            SchedKind::Heap => Self::heap(),
            SchedKind::Calendar => Self::calendar(),
        }
    }

    /// Creates an empty queue of an explicit kind with room for `cap`
    /// pending events.
    pub fn with_kind_capacity(kind: SchedKind, cap: usize) -> Self {
        match kind {
            SchedKind::Heap => EventQueue(QueueImpl::Heap(HeapSchedule::with_capacity(cap))),
            SchedKind::Calendar => Self::calendar(),
        }
    }

    /// Creates an empty heap-backed queue.
    pub fn heap() -> Self {
        EventQueue(QueueImpl::Heap(HeapSchedule::new()))
    }

    /// Creates an empty calendar-queue-backed queue.
    pub fn calendar() -> Self {
        EventQueue(QueueImpl::Calendar(CalendarSchedule::new()))
    }

    /// The backing implementation in use.
    pub fn kind(&self) -> SchedKind {
        match self.0 {
            QueueImpl::Heap(_) => SchedKind::Heap,
            QueueImpl::Calendar(_) => SchedKind::Calendar,
        }
    }

    /// Selects the simultaneous-event ordering policy (see
    /// [`TieBreak`]). Must be called before any event is scheduled;
    /// both backends honour the policy identically.
    pub fn with_tiebreak(self, tiebreak: TieBreak) -> Self {
        match self.0 {
            QueueImpl::Heap(q) => EventQueue(QueueImpl::Heap(q.with_tiebreak(tiebreak))),
            QueueImpl::Calendar(q) => EventQueue(QueueImpl::Calendar(q.with_tiebreak(tiebreak))),
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        match &mut self.0 {
            QueueImpl::Heap(q) => q.schedule(at, payload),
            QueueImpl::Calendar(q) => q.schedule(at, payload),
        }
    }

    /// Schedules `payload` at `at`, returning a cancellation handle.
    pub fn schedule_cancellable(&mut self, at: SimTime, payload: E) -> EventHandle {
        match &mut self.0 {
            QueueImpl::Heap(q) => q.schedule_cancellable(at, payload),
            QueueImpl::Calendar(q) => q.schedule_cancellable(at, payload),
        }
    }

    /// Revokes a pending event in O(1); `false` when the handle is stale.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        match &mut self.0 {
            QueueImpl::Heap(q) => EventSchedule::cancel(q, handle),
            QueueImpl::Calendar(q) => EventSchedule::cancel(q, handle),
        }
    }

    /// Removes and returns the earliest pending event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.0 {
            QueueImpl::Heap(q) => q.pop(),
            QueueImpl::Calendar(q) => q.pop(),
        }
    }

    /// Fire time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.0 {
            QueueImpl::Heap(q) => q.peek_time(),
            QueueImpl::Calendar(q) => q.peek_time(),
        }
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        match &self.0 {
            QueueImpl::Heap(q) => EventSchedule::len(q),
            QueueImpl::Calendar(q) => EventSchedule::len(q),
        }
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue (a cheap proxy
    /// for simulation work, reported by the bench harness).
    pub fn scheduled_total(&self) -> u64 {
        match &self.0 {
            QueueImpl::Heap(q) => EventSchedule::scheduled_total(q),
            QueueImpl::Calendar(q) => EventSchedule::scheduled_total(q),
        }
    }

    /// Snapshot of the backing implementation's self-telemetry counters.
    pub fn stats(&self) -> QueueStats {
        match &self.0 {
            QueueImpl::Heap(q) => EventSchedule::stats(q),
            QueueImpl::Calendar(q) => EventSchedule::stats(q),
        }
    }
}

impl<E> EventSchedule<E> for EventQueue<E> {
    fn schedule(&mut self, at: SimTime, payload: E) {
        EventQueue::schedule(self, at, payload);
    }
    fn schedule_cancellable(&mut self, at: SimTime, payload: E) -> EventHandle {
        EventQueue::schedule_cancellable(self, at, payload)
    }
    fn cancel(&mut self, handle: EventHandle) -> bool {
        EventQueue::cancel(self, handle)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn scheduled_total(&self) -> u64 {
        EventQueue::scheduled_total(self)
    }
    fn stats(&self) -> QueueStats {
        EventQueue::stats(self)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("kind", &self.kind())
            .field("pending", &self.len())
            .field("scheduled_total", &self.scheduled_total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Cycles;

    /// Every behavioural test runs against both implementations.
    fn both(f: impl Fn(EventQueue<i64>)) {
        f(EventQueue::heap());
        f(EventQueue::calendar());
    }

    #[test]
    fn pops_in_time_order() {
        both(|mut q| {
            q.schedule(Cycles(30), 3);
            q.schedule(Cycles(10), 1);
            q.schedule(Cycles(20), 2);
            assert_eq!(q.pop(), Some((Cycles(10), 1)));
            assert_eq!(q.pop(), Some((Cycles(20), 2)));
            assert_eq!(q.pop(), Some((Cycles(30), 3)));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn ties_break_by_insertion_order() {
        both(|mut q| {
            for i in 0..100 {
                q.schedule(Cycles(7), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((Cycles(7), i)));
            }
        });
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        both(|mut q| {
            q.schedule(Cycles(5), 0);
            assert_eq!(q.pop(), Some((Cycles(5), 0)));
            q.schedule(Cycles(3), 1);
            q.schedule(Cycles(1), 2);
            assert_eq!(q.pop(), Some((Cycles(1), 2)));
            q.schedule(Cycles(2), 3);
            assert_eq!(q.pop(), Some((Cycles(2), 3)));
            assert_eq!(q.pop(), Some((Cycles(3), 1)));
        });
    }

    #[test]
    fn peek_does_not_remove() {
        both(|mut q| {
            q.schedule(Cycles(4), 0);
            assert_eq!(q.peek_time(), Some(Cycles(4)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        });
    }

    #[test]
    fn counts_total_scheduled() {
        both(|mut q| {
            for i in 0..5 {
                q.schedule(Cycles(i as u64), i);
            }
            while q.pop().is_some() {}
            assert_eq!(q.scheduled_total(), 5);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn explicit_kinds_are_honoured() {
        assert_eq!(EventQueue::<u8>::heap().kind(), SchedKind::Heap);
        assert_eq!(EventQueue::<u8>::calendar().kind(), SchedKind::Calendar);
        assert_eq!(
            EventQueue::<u8>::with_kind(SchedKind::Heap).kind(),
            SchedKind::Heap
        );
    }

    #[test]
    fn default_kind_is_calendar() {
        assert_eq!(EventQueue::<u8>::new().kind(), SchedKind::Calendar);
        assert_eq!(
            EventQueue::<u8>::with_capacity(64).kind(),
            SchedKind::Calendar
        );
        assert_eq!(SchedKind::default(), SchedKind::Calendar);
    }

    #[test]
    fn kind_parses_and_roundtrips() {
        for kind in [SchedKind::Heap, SchedKind::Calendar] {
            assert_eq!(kind.as_str().parse::<SchedKind>().unwrap(), kind);
            assert_eq!(EventQueue::<u8>::with_kind_capacity(kind, 16).kind(), kind);
        }
        assert_eq!("".parse::<SchedKind>().unwrap(), SchedKind::Calendar);
        assert!("typo".parse::<SchedKind>().is_err());
    }

    #[test]
    fn stats_track_traffic() {
        both(|mut q| {
            q.schedule(Cycles(0), 0); // distance 0 → bucket 0
            q.schedule(Cycles(1), 1); // distance 1 → bucket 1
            q.schedule(Cycles(6), 2); // distance 6 → bucket 3 ([4,8))
            let s = q.stats();
            assert_eq!(s.scheduled, 3);
            assert_eq!(s.popped, 0);
            assert_eq!(s.pending_peak, 3);
            assert_eq!(s.hold_hist[0], 1);
            assert_eq!(s.hold_hist[1], 1);
            assert_eq!(s.hold_hist[3], 1);
            while q.pop().is_some() {}
            assert_eq!(q.stats().popped, 3);
            // Distances are measured from the last pop (now at t=6).
            q.schedule(Cycles(6 + 40_000), 3);
            let s = q.stats();
            assert_eq!(s.hold_hist[HOLD_BUCKETS - 1], 1, "tail bucket absorbs");
            assert_eq!(s.pending_peak, 3, "peak is a high-water mark");
        });
    }

    #[test]
    fn cancelled_events_never_pop() {
        both(|mut q| {
            q.schedule(Cycles(10), 1);
            let doomed = q.schedule_cancellable(Cycles(5), 2);
            q.schedule(Cycles(20), 3);
            assert_eq!(q.len(), 3);
            assert!(q.cancel(doomed));
            assert!(!q.cancel(doomed), "second cancel sees a stale handle");
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(Cycles(10)), "peek skips the ghost");
            assert_eq!(q.pop(), Some((Cycles(10), 1)));
            assert_eq!(q.pop(), Some((Cycles(20), 3)));
            assert_eq!(q.pop(), None);
            let s = q.stats();
            assert_eq!(s.cancelled, 1);
            assert_eq!(s.popped, 2);
        });
    }

    #[test]
    fn handle_goes_stale_after_pop() {
        both(|mut q| {
            let h = q.schedule_cancellable(Cycles(1), 42);
            assert_eq!(q.pop(), Some((Cycles(1), 42)));
            assert!(!q.cancel(h), "fired events cannot be cancelled");
        });
    }

    /// Regression test for the cancel-and-reschedule double count: the
    /// occupancy (pending peak) and the hold histogram must each count a
    /// cancelled-and-rescheduled event exactly once, even when the
    /// cancel and the replacement land in the same cycle-day.
    #[test]
    fn cancel_reschedule_same_day_counts_once() {
        both(|mut q| {
            // Advance the clock so distances are non-trivial.
            q.schedule(Cycles(100), 0);
            assert_eq!(q.pop(), Some((Cycles(100), 0)));
            let baseline = q.stats();
            // Schedule at t=103 (distance 3 → bucket 2), think better of
            // it, and rebook the same work in the same cycle-day.
            let h = q.schedule_cancellable(Cycles(103), 7);
            assert!(q.cancel(h));
            q.schedule(Cycles(103), 8);
            let s = q.stats();
            let hist_delta: u64 = s
                .hold_hist
                .iter()
                .zip(baseline.hold_hist.iter())
                .map(|(a, b)| a - b)
                .sum();
            assert_eq!(hist_delta, 1, "histogram counts the event once");
            assert_eq!(
                s.pending_peak, baseline.pending_peak,
                "occupancy peak unchanged: the ghost freed its slot first"
            );
            assert_eq!(s.scheduled - baseline.scheduled, 2, "both calls counted");
            assert_eq!(s.cancelled - baseline.cancelled, 1);
            assert_eq!(q.pop(), Some((Cycles(103), 8)));
        });
    }

    #[test]
    fn cancel_interleaves_with_pop_order() {
        both(|mut q| {
            let mut handles = Vec::new();
            for i in 0..50 {
                handles.push(q.schedule_cancellable(Cycles(i as u64), i));
            }
            // Cancel every odd event.
            for (i, h) in handles.iter().enumerate() {
                if i % 2 == 1 {
                    assert!(q.cancel(*h));
                }
            }
            let popped: Vec<i64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            let want: Vec<i64> = (0..50).filter(|i| i % 2 == 0).collect();
            assert_eq!(popped, want);
        });
    }

    /// Every behavioural test that also varies the tie-break policy.
    fn both_with(tiebreak: TieBreak, f: impl Fn(EventQueue<i64>)) {
        f(EventQueue::heap().with_tiebreak(tiebreak));
        f(EventQueue::calendar().with_tiebreak(tiebreak));
    }

    #[test]
    fn lifo_ties_pop_in_reverse_insertion_order() {
        both_with(TieBreak::Lifo, |mut q| {
            for i in 0..100 {
                q.schedule(Cycles(7), i);
            }
            for i in (0..100).rev() {
                assert_eq!(q.pop(), Some((Cycles(7), i)));
            }
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn shuffle_ties_are_a_seeded_permutation() {
        // The shuffle is deterministic per seed, identical across
        // backends, a true permutation (nothing lost, nothing doubled),
        // and different seeds give different orders.
        let order_of = |q: &mut EventQueue<i64>| -> Vec<i64> {
            for i in 0..64 {
                q.schedule(Cycles(3), i);
            }
            std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect()
        };
        let mut heap = EventQueue::heap().with_tiebreak(TieBreak::Shuffle(42));
        let mut cal = EventQueue::calendar().with_tiebreak(TieBreak::Shuffle(42));
        let a = order_of(&mut heap);
        let b = order_of(&mut cal);
        assert_eq!(a, b, "backends must agree on the shuffled order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>(), "a permutation");
        assert_ne!(a, (0..64).collect::<Vec<_>>(), "not FIFO");
        let mut other = EventQueue::heap().with_tiebreak(TieBreak::Shuffle(43));
        assert_ne!(order_of(&mut other), a, "seed changes the order");
    }

    #[test]
    fn tiebreak_never_reorders_across_distinct_times() {
        for tiebreak in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Shuffle(9)] {
            both_with(tiebreak, |mut q| {
                q.schedule(Cycles(30), 3);
                q.schedule(Cycles(10), 1);
                q.schedule(Cycles(20), 2);
                assert_eq!(q.pop(), Some((Cycles(10), 1)));
                assert_eq!(q.pop(), Some((Cycles(20), 2)));
                assert_eq!(q.pop(), Some((Cycles(30), 3)));
            });
        }
    }

    #[test]
    fn tiebreak_cancellation_still_works() {
        for tiebreak in [TieBreak::Lifo, TieBreak::Shuffle(5)] {
            both_with(tiebreak, |mut q| {
                let doomed = q.schedule_cancellable(Cycles(4), 0);
                q.schedule(Cycles(4), 1);
                let kept = q.schedule_cancellable(Cycles(4), 2);
                assert!(q.cancel(doomed));
                let mut popped: Vec<i64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
                popped.sort_unstable();
                assert_eq!(popped, vec![1, 2]);
                assert!(!q.cancel(kept), "fired handle is stale");
            });
        }
    }

    #[test]
    fn tiebreak_parses_and_roundtrips() {
        for tiebreak in [
            TieBreak::Fifo,
            TieBreak::Lifo,
            TieBreak::Shuffle(0),
            TieBreak::Shuffle(0xDEAD_BEEF),
        ] {
            assert_eq!(tiebreak.to_string().parse::<TieBreak>().unwrap(), tiebreak);
        }
        assert_eq!("".parse::<TieBreak>().unwrap(), TieBreak::Fifo);
        assert_eq!(
            "shuffle:12345".parse::<TieBreak>().unwrap(),
            TieBreak::Shuffle(12345)
        );
        assert!("random".parse::<TieBreak>().is_err());
        assert!("shuffle:zebra".parse::<TieBreak>().is_err());
    }

    #[test]
    fn shuffle_ranks_are_unique() {
        // The rank transform must be injective, or the calendar's
        // bucket sort and the heap could disagree on equal ranks.
        let mut seen = std::collections::HashSet::new();
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Shuffle(7)] {
            seen.clear();
            for seq in 0..10_000u64 {
                assert!(seen.insert(policy.rank(seq)), "{policy} rank collision");
            }
            // The extremes map somewhere, uniquely.
            assert!(seen.insert(policy.rank(u64::MAX)));
        }
    }

    #[test]
    fn mixed_inline_and_cancellable_interleave_exactly() {
        both(|mut q| {
            // Inline and pooled entries must obey one global (time, seq)
            // order regardless of which tier stores them.
            q.schedule(Cycles(5), 0);
            let h = q.schedule_cancellable(Cycles(5), 1);
            q.schedule(Cycles(5), 2);
            let _keep = q.schedule_cancellable(Cycles(4), 3);
            assert_eq!(q.pop(), Some((Cycles(4), 3)));
            assert!(q.cancel(h));
            assert_eq!(q.pop(), Some((Cycles(5), 0)));
            assert_eq!(q.pop(), Some((Cycles(5), 2)));
            assert_eq!(q.pop(), None);
        });
    }
}
