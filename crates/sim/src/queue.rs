//! Deterministic pending-event set.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: fire time, tie-break sequence, payload.
struct Pending<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Pending<E> {}

impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties,
        // the first-scheduled) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event set keyed by simulated time.
///
/// Ties in fire time are broken by scheduling order, which makes whole-run
/// behaviour reproducible: replaying the same schedule yields the same pop
/// order, bit for bit.
///
/// # Example
///
/// ```
/// use cedar_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles(10), 'b');
/// q.schedule(Cycles(2), 'a');
/// assert_eq!(q.pop(), Some((Cycles(2), 'a')));
/// assert_eq!(q.pop(), Some((Cycles(10), 'b')));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Pending<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Creates an empty queue with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Pending { at, seq, payload });
    }

    /// Removes and returns the earliest pending event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|p| (p.at, p.payload))
    }

    /// Fire time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|p| p.at)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue (a cheap proxy
    /// for simulation work, reported by the bench harness).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Cycles;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(30), 3);
        q.schedule(Cycles(10), 1);
        q.schedule(Cycles(20), 2);
        assert_eq!(q.pop(), Some((Cycles(10), 1)));
        assert_eq!(q.pop(), Some((Cycles(20), 2)));
        assert_eq!(q.pop(), Some((Cycles(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles(7), i)));
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(5), 'a');
        assert_eq!(q.pop(), Some((Cycles(5), 'a')));
        q.schedule(Cycles(3), 'b');
        q.schedule(Cycles(1), 'c');
        assert_eq!(q.pop(), Some((Cycles(1), 'c')));
        q.schedule(Cycles(2), 'd');
        assert_eq!(q.pop(), Some((Cycles(2), 'd')));
        assert_eq!(q.pop(), Some((Cycles(3), 'b')));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(4), ());
        assert_eq!(q.peek_time(), Some(Cycles(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counts_total_scheduled() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(Cycles(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 5);
        assert!(q.is_empty());
    }
}
