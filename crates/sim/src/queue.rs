//! Deterministic pending-event sets.
//!
//! Two interchangeable schedulers implement the [`EventSchedule`] trait:
//!
//! * [`HeapSchedule`] — the classic `BinaryHeap` future-event set,
//!   O(log n) per operation;
//! * [`CalendarSchedule`](crate::calendar::CalendarSchedule) — a
//!   calendar queue (bucketed wheel over [`SimTime`] with an overflow
//!   tier), O(1) amortized per operation on the event-dense schedules
//!   the Cedar machine produces.
//!
//! Both pop events in exactly the same order — ascending fire time, ties
//! broken by scheduling sequence — so whole-run results are bit-identical
//! whichever is selected. [`EventQueue`] wraps the two behind a single
//! type; the implementation is an explicit [`SchedKind`] parameter
//! (`calendar` is the default). Selection by environment variable is the
//! business of `cedar_obs::RunOptions::from_env`, not this crate.
//!
//! Every implementation keeps cheap always-on self-telemetry counters
//! (events scheduled and popped, peak pending population, and a
//! power-of-two histogram of scheduling distances) surfaced through
//! [`QueueStats`] — the paper's measurement discipline applied to the
//! simulator's own hot loop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::calendar::CalendarSchedule;
use crate::time::SimTime;

/// A pending event: fire time, tie-break sequence, payload.
pub(crate) struct Pending<E> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) payload: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Pending<E> {}

impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties,
        // the first-scheduled) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Common interface of the pending-event set implementations.
///
/// The contract every implementor must uphold: [`pop`](Self::pop)
/// returns events in ascending `(fire time, scheduling sequence)` order,
/// where the sequence is the number of `schedule` calls made before the
/// event's own. Simulation determinism rests on this ordering, so it is
/// exact — not "time order with arbitrary tie-breaks".
pub trait EventSchedule<E> {
    /// Schedules `payload` to fire at absolute time `at`.
    fn schedule(&mut self, at: SimTime, payload: E);

    /// Removes and returns the earliest pending event, or `None` if empty.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// Fire time of the earliest pending event without removing it.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of events currently pending.
    fn len(&self) -> usize;

    /// `true` when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (a cheap proxy for
    /// simulation work, reported by the bench harness).
    fn scheduled_total(&self) -> u64;

    /// Snapshot of the implementation's self-telemetry counters.
    fn stats(&self) -> QueueStats;
}

/// Number of power-of-two buckets in the hold-distance histogram.
pub const HOLD_BUCKETS: usize = 16;

/// Self-telemetry counters every pending-event set maintains. All are
/// plain integer increments on the schedule/pop paths, cheap enough to
/// stay on unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events ever popped.
    pub popped: u64,
    /// Peak pending population.
    pub pending_peak: u64,
    /// Events that missed the calendar wheel's horizon and spilled to
    /// the overflow heap (always 0 for the heap scheduler).
    pub overflow_spills: u64,
    /// Peak population on the calendar wheel proper (always 0 for the
    /// heap scheduler).
    pub wheel_peak: u64,
    /// Histogram of hold distances — how far ahead of the most recent
    /// pop each event was scheduled. Bucket 0 counts zero-cycle
    /// distances; bucket `k ≥ 1` counts distances in
    /// `[2^(k-1), 2^k)`; the last bucket absorbs everything beyond.
    pub hold_hist: [u64; HOLD_BUCKETS],
}

impl QueueStats {
    pub(crate) fn new() -> Self {
        QueueStats {
            scheduled: 0,
            popped: 0,
            pending_peak: 0,
            overflow_spills: 0,
            wheel_peak: 0,
            hold_hist: [0; HOLD_BUCKETS],
        }
    }

    /// Records one scheduling of an event `distance` cycles ahead of the
    /// most recent pop, with `pending` events now in the set.
    pub(crate) fn on_schedule(&mut self, distance: u64, pending: usize) {
        self.scheduled += 1;
        self.pending_peak = self.pending_peak.max(pending as u64);
        let bucket = if distance == 0 {
            0
        } else {
            (HOLD_BUCKETS - 1).min(64 - distance.leading_zeros() as usize)
        };
        self.hold_hist[bucket] += 1;
    }
}

/// The `BinaryHeap`-backed future-event set: O(log n) schedule and pop.
///
/// Kept as the reference implementation for A/B verification of the
/// calendar queue (`CEDAR_SCHED=heap`).
pub struct HeapSchedule<E> {
    heap: BinaryHeap<Pending<E>>,
    next_seq: u64,
    stats: QueueStats,
    last_popped: SimTime,
}

impl<E> HeapSchedule<E> {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty schedule with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        HeapSchedule {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            stats: QueueStats::new(),
            last_popped: SimTime::ZERO,
        }
    }
}

impl<E> EventSchedule<E> for HeapSchedule<E> {
    fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Pending { at, seq, payload });
        self.stats
            .on_schedule(at.0.saturating_sub(self.last_popped.0), self.heap.len());
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|p| {
            self.stats.popped += 1;
            self.last_popped = p.at;
            (p.at, p.payload)
        })
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|p| p.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn scheduled_total(&self) -> u64 {
        self.stats.scheduled
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

impl<E> Default for HeapSchedule<E> {
    fn default() -> Self {
        HeapSchedule::new()
    }
}

/// Which pending-event set implementation an [`EventQueue`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// `BinaryHeap` future-event set ([`HeapSchedule`]).
    Heap,
    /// Calendar queue ([`CalendarSchedule`](crate::calendar::CalendarSchedule)).
    Calendar,
}

impl SchedKind {
    /// Canonical lower-case name (`"heap"` / `"calendar"`), the inverse
    /// of the [`FromStr`](std::str::FromStr) parse.
    pub fn as_str(self) -> &'static str {
        match self {
            SchedKind::Heap => "heap",
            SchedKind::Calendar => "calendar",
        }
    }
}

impl Default for SchedKind {
    /// The calendar queue: O(1) amortized on the event-dense schedules
    /// the Cedar machine produces.
    fn default() -> Self {
        SchedKind::Calendar
    }
}

impl std::str::FromStr for SchedKind {
    type Err = String;

    /// Parses `"heap"` or `"calendar"` (empty selects the default).
    /// Used by `cedar_obs::RunOptions::from_env` for `CEDAR_SCHED`; this
    /// crate itself never consults the environment.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "calendar" | "" => Ok(SchedKind::Calendar),
            "heap" => Ok(SchedKind::Heap),
            other => Err(format!(
                "scheduler must be `heap` or `calendar`, got `{other}`"
            )),
        }
    }
}

/// A deterministic future-event set keyed by simulated time.
///
/// Ties in fire time are broken by scheduling order, which makes whole-run
/// behaviour reproducible: replaying the same schedule yields the same pop
/// order, bit for bit.
///
/// The backing implementation is chosen at construction: `new` and
/// `with_capacity` use the default [`SchedKind`] (calendar);
/// [`heap`](Self::heap), [`calendar`](Self::calendar),
/// [`with_kind`](Self::with_kind) and
/// [`with_kind_capacity`](Self::with_kind_capacity) select explicitly —
/// callers that honour a run configuration pass
/// `RunOptions::scheduler` down here. Every implementation pops in the
/// same order, so the choice affects wall-clock speed only.
///
/// # Example
///
/// ```
/// use cedar_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles(10), 'b');
/// q.schedule(Cycles(2), 'a');
/// assert_eq!(q.pop(), Some((Cycles(2), 'a')));
/// assert_eq!(q.pop(), Some((Cycles(10), 'b')));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E>(QueueImpl<E>);

enum QueueImpl<E> {
    Heap(HeapSchedule<E>),
    Calendar(CalendarSchedule<E>),
}

impl<E> EventQueue<E> {
    /// Creates an empty queue of the default kind (calendar).
    pub fn new() -> Self {
        Self::with_kind(SchedKind::default())
    }

    /// Creates an empty queue of the default kind with room for `cap`
    /// pending events (a pre-allocation hint; the calendar queue sizes
    /// its buckets lazily and ignores it).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_kind_capacity(SchedKind::default(), cap)
    }

    /// Creates an empty queue of an explicit kind.
    pub fn with_kind(kind: SchedKind) -> Self {
        match kind {
            SchedKind::Heap => Self::heap(),
            SchedKind::Calendar => Self::calendar(),
        }
    }

    /// Creates an empty queue of an explicit kind with room for `cap`
    /// pending events.
    pub fn with_kind_capacity(kind: SchedKind, cap: usize) -> Self {
        match kind {
            SchedKind::Heap => EventQueue(QueueImpl::Heap(HeapSchedule::with_capacity(cap))),
            SchedKind::Calendar => Self::calendar(),
        }
    }

    /// Creates an empty `BinaryHeap`-backed queue.
    pub fn heap() -> Self {
        EventQueue(QueueImpl::Heap(HeapSchedule::new()))
    }

    /// Creates an empty calendar-queue-backed queue.
    pub fn calendar() -> Self {
        EventQueue(QueueImpl::Calendar(CalendarSchedule::new()))
    }

    /// The backing implementation in use.
    pub fn kind(&self) -> SchedKind {
        match self.0 {
            QueueImpl::Heap(_) => SchedKind::Heap,
            QueueImpl::Calendar(_) => SchedKind::Calendar,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        match &mut self.0 {
            QueueImpl::Heap(q) => q.schedule(at, payload),
            QueueImpl::Calendar(q) => q.schedule(at, payload),
        }
    }

    /// Removes and returns the earliest pending event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.0 {
            QueueImpl::Heap(q) => q.pop(),
            QueueImpl::Calendar(q) => q.pop(),
        }
    }

    /// Fire time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.0 {
            QueueImpl::Heap(q) => q.peek_time(),
            QueueImpl::Calendar(q) => q.peek_time(),
        }
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        match &self.0 {
            QueueImpl::Heap(q) => EventSchedule::len(q),
            QueueImpl::Calendar(q) => EventSchedule::len(q),
        }
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue (a cheap proxy
    /// for simulation work, reported by the bench harness).
    pub fn scheduled_total(&self) -> u64 {
        match &self.0 {
            QueueImpl::Heap(q) => EventSchedule::scheduled_total(q),
            QueueImpl::Calendar(q) => EventSchedule::scheduled_total(q),
        }
    }

    /// Snapshot of the backing implementation's self-telemetry counters.
    pub fn stats(&self) -> QueueStats {
        match &self.0 {
            QueueImpl::Heap(q) => EventSchedule::stats(q),
            QueueImpl::Calendar(q) => EventSchedule::stats(q),
        }
    }
}

impl<E> EventSchedule<E> for EventQueue<E> {
    fn schedule(&mut self, at: SimTime, payload: E) {
        EventQueue::schedule(self, at, payload);
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn scheduled_total(&self) -> u64 {
        EventQueue::scheduled_total(self)
    }
    fn stats(&self) -> QueueStats {
        EventQueue::stats(self)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("kind", &self.kind())
            .field("pending", &self.len())
            .field("scheduled_total", &self.scheduled_total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Cycles;

    /// Every behavioural test runs against both implementations.
    fn both(f: impl Fn(EventQueue<i64>)) {
        f(EventQueue::heap());
        f(EventQueue::calendar());
    }

    #[test]
    fn pops_in_time_order() {
        both(|mut q| {
            q.schedule(Cycles(30), 3);
            q.schedule(Cycles(10), 1);
            q.schedule(Cycles(20), 2);
            assert_eq!(q.pop(), Some((Cycles(10), 1)));
            assert_eq!(q.pop(), Some((Cycles(20), 2)));
            assert_eq!(q.pop(), Some((Cycles(30), 3)));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn ties_break_by_insertion_order() {
        both(|mut q| {
            for i in 0..100 {
                q.schedule(Cycles(7), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((Cycles(7), i)));
            }
        });
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        both(|mut q| {
            q.schedule(Cycles(5), 0);
            assert_eq!(q.pop(), Some((Cycles(5), 0)));
            q.schedule(Cycles(3), 1);
            q.schedule(Cycles(1), 2);
            assert_eq!(q.pop(), Some((Cycles(1), 2)));
            q.schedule(Cycles(2), 3);
            assert_eq!(q.pop(), Some((Cycles(2), 3)));
            assert_eq!(q.pop(), Some((Cycles(3), 1)));
        });
    }

    #[test]
    fn peek_does_not_remove() {
        both(|mut q| {
            q.schedule(Cycles(4), 0);
            assert_eq!(q.peek_time(), Some(Cycles(4)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        });
    }

    #[test]
    fn counts_total_scheduled() {
        both(|mut q| {
            for i in 0..5 {
                q.schedule(Cycles(i as u64), i);
            }
            while q.pop().is_some() {}
            assert_eq!(q.scheduled_total(), 5);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn explicit_kinds_are_honoured() {
        assert_eq!(EventQueue::<u8>::heap().kind(), SchedKind::Heap);
        assert_eq!(EventQueue::<u8>::calendar().kind(), SchedKind::Calendar);
        assert_eq!(
            EventQueue::<u8>::with_kind(SchedKind::Heap).kind(),
            SchedKind::Heap
        );
    }

    #[test]
    fn default_kind_is_calendar() {
        assert_eq!(EventQueue::<u8>::new().kind(), SchedKind::Calendar);
        assert_eq!(
            EventQueue::<u8>::with_capacity(64).kind(),
            SchedKind::Calendar
        );
        assert_eq!(SchedKind::default(), SchedKind::Calendar);
    }

    #[test]
    fn kind_parses_and_roundtrips() {
        for kind in [SchedKind::Heap, SchedKind::Calendar] {
            assert_eq!(kind.as_str().parse::<SchedKind>().unwrap(), kind);
            assert_eq!(EventQueue::<u8>::with_kind_capacity(kind, 16).kind(), kind);
        }
        assert_eq!("".parse::<SchedKind>().unwrap(), SchedKind::Calendar);
        assert!("typo".parse::<SchedKind>().is_err());
    }

    #[test]
    fn stats_track_traffic() {
        both(|mut q| {
            q.schedule(Cycles(0), 0); // distance 0 → bucket 0
            q.schedule(Cycles(1), 1); // distance 1 → bucket 1
            q.schedule(Cycles(6), 2); // distance 6 → bucket 3 ([4,8))
            let s = q.stats();
            assert_eq!(s.scheduled, 3);
            assert_eq!(s.popped, 0);
            assert_eq!(s.pending_peak, 3);
            assert_eq!(s.hold_hist[0], 1);
            assert_eq!(s.hold_hist[1], 1);
            assert_eq!(s.hold_hist[3], 1);
            while q.pop().is_some() {}
            assert_eq!(q.stats().popped, 3);
            // Distances are measured from the last pop (now at t=6).
            q.schedule(Cycles(6 + 40_000), 3);
            let s = q.stats();
            assert_eq!(s.hold_hist[HOLD_BUCKETS - 1], 1, "tail bucket absorbs");
            assert_eq!(s.pending_peak, 3, "peak is a high-water mark");
        });
    }
}
