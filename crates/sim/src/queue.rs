//! Deterministic pending-event sets.
//!
//! Two interchangeable schedulers implement the [`EventSchedule`] trait:
//!
//! * [`HeapSchedule`] — the classic `BinaryHeap` future-event set,
//!   O(log n) per operation;
//! * [`CalendarSchedule`](crate::calendar::CalendarSchedule) — a
//!   calendar queue (bucketed wheel over [`SimTime`] with an overflow
//!   tier), O(1) amortized per operation on the event-dense schedules
//!   the Cedar machine produces.
//!
//! Both pop events in exactly the same order — ascending fire time, ties
//! broken by scheduling sequence — so whole-run results are bit-identical
//! whichever is selected. [`EventQueue`] wraps the two behind a single
//! type and picks the implementation from the `CEDAR_SCHED` environment
//! variable (`calendar` is the default; set `CEDAR_SCHED=heap` for A/B
//! verification).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::calendar::CalendarSchedule;
use crate::time::SimTime;

/// A pending event: fire time, tie-break sequence, payload.
pub(crate) struct Pending<E> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) payload: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Pending<E> {}

impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties,
        // the first-scheduled) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Common interface of the pending-event set implementations.
///
/// The contract every implementor must uphold: [`pop`](Self::pop)
/// returns events in ascending `(fire time, scheduling sequence)` order,
/// where the sequence is the number of `schedule` calls made before the
/// event's own. Simulation determinism rests on this ordering, so it is
/// exact — not "time order with arbitrary tie-breaks".
pub trait EventSchedule<E> {
    /// Schedules `payload` to fire at absolute time `at`.
    fn schedule(&mut self, at: SimTime, payload: E);

    /// Removes and returns the earliest pending event, or `None` if empty.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// Fire time of the earliest pending event without removing it.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of events currently pending.
    fn len(&self) -> usize;

    /// `true` when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (a cheap proxy for
    /// simulation work, reported by the bench harness).
    fn scheduled_total(&self) -> u64;
}

/// The `BinaryHeap`-backed future-event set: O(log n) schedule and pop.
///
/// Kept as the reference implementation for A/B verification of the
/// calendar queue (`CEDAR_SCHED=heap`).
pub struct HeapSchedule<E> {
    heap: BinaryHeap<Pending<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> HeapSchedule<E> {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        HeapSchedule {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Creates an empty schedule with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        HeapSchedule {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
        }
    }
}

impl<E> EventSchedule<E> for HeapSchedule<E> {
    fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Pending { at, seq, payload });
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|p| (p.at, p.payload))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|p| p.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

impl<E> Default for HeapSchedule<E> {
    fn default() -> Self {
        HeapSchedule::new()
    }
}

/// Which pending-event set implementation an [`EventQueue`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// `BinaryHeap` future-event set ([`HeapSchedule`]).
    Heap,
    /// Calendar queue ([`CalendarSchedule`](crate::calendar::CalendarSchedule)).
    Calendar,
}

impl SchedKind {
    /// Reads the scheduler selection from `CEDAR_SCHED`.
    ///
    /// `calendar` (the default when unset) or `heap`.
    ///
    /// # Panics
    ///
    /// Panics on any other value, so a typo fails loudly instead of
    /// silently benchmarking the wrong scheduler.
    pub fn from_env() -> SchedKind {
        match std::env::var("CEDAR_SCHED") {
            Err(_) => SchedKind::Calendar,
            Ok(v) => match v.as_str() {
                "calendar" | "" => SchedKind::Calendar,
                "heap" => SchedKind::Heap,
                other => panic!("CEDAR_SCHED must be `heap` or `calendar`, got `{other}`"),
            },
        }
    }
}

/// A deterministic future-event set keyed by simulated time.
///
/// Ties in fire time are broken by scheduling order, which makes whole-run
/// behaviour reproducible: replaying the same schedule yields the same pop
/// order, bit for bit.
///
/// The backing implementation is chosen at construction: `new` and
/// `with_capacity` consult `CEDAR_SCHED` (see [`SchedKind::from_env`]);
/// [`heap`](Self::heap), [`calendar`](Self::calendar) and
/// [`with_kind`](Self::with_kind) select explicitly. Every implementation
/// pops in the same order, so the choice affects wall-clock speed only.
///
/// # Example
///
/// ```
/// use cedar_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles(10), 'b');
/// q.schedule(Cycles(2), 'a');
/// assert_eq!(q.pop(), Some((Cycles(2), 'a')));
/// assert_eq!(q.pop(), Some((Cycles(10), 'b')));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E>(QueueImpl<E>);

enum QueueImpl<E> {
    Heap(HeapSchedule<E>),
    Calendar(CalendarSchedule<E>),
}

impl<E> EventQueue<E> {
    /// Creates an empty queue of the kind selected by `CEDAR_SCHED`.
    pub fn new() -> Self {
        Self::with_kind(SchedKind::from_env())
    }

    /// Creates an empty queue of the `CEDAR_SCHED` kind with room for
    /// `cap` pending events (a pre-allocation hint; the calendar queue
    /// sizes its buckets lazily and ignores it).
    pub fn with_capacity(cap: usize) -> Self {
        match SchedKind::from_env() {
            SchedKind::Heap => EventQueue(QueueImpl::Heap(HeapSchedule::with_capacity(cap))),
            SchedKind::Calendar => Self::calendar(),
        }
    }

    /// Creates an empty queue of an explicit kind.
    pub fn with_kind(kind: SchedKind) -> Self {
        match kind {
            SchedKind::Heap => Self::heap(),
            SchedKind::Calendar => Self::calendar(),
        }
    }

    /// Creates an empty `BinaryHeap`-backed queue.
    pub fn heap() -> Self {
        EventQueue(QueueImpl::Heap(HeapSchedule::new()))
    }

    /// Creates an empty calendar-queue-backed queue.
    pub fn calendar() -> Self {
        EventQueue(QueueImpl::Calendar(CalendarSchedule::new()))
    }

    /// The backing implementation in use.
    pub fn kind(&self) -> SchedKind {
        match self.0 {
            QueueImpl::Heap(_) => SchedKind::Heap,
            QueueImpl::Calendar(_) => SchedKind::Calendar,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        match &mut self.0 {
            QueueImpl::Heap(q) => q.schedule(at, payload),
            QueueImpl::Calendar(q) => q.schedule(at, payload),
        }
    }

    /// Removes and returns the earliest pending event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.0 {
            QueueImpl::Heap(q) => q.pop(),
            QueueImpl::Calendar(q) => q.pop(),
        }
    }

    /// Fire time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.0 {
            QueueImpl::Heap(q) => q.peek_time(),
            QueueImpl::Calendar(q) => q.peek_time(),
        }
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        match &self.0 {
            QueueImpl::Heap(q) => EventSchedule::len(q),
            QueueImpl::Calendar(q) => EventSchedule::len(q),
        }
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue (a cheap proxy
    /// for simulation work, reported by the bench harness).
    pub fn scheduled_total(&self) -> u64 {
        match &self.0 {
            QueueImpl::Heap(q) => EventSchedule::scheduled_total(q),
            QueueImpl::Calendar(q) => EventSchedule::scheduled_total(q),
        }
    }
}

impl<E> EventSchedule<E> for EventQueue<E> {
    fn schedule(&mut self, at: SimTime, payload: E) {
        EventQueue::schedule(self, at, payload);
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn scheduled_total(&self) -> u64 {
        EventQueue::scheduled_total(self)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("kind", &self.kind())
            .field("pending", &self.len())
            .field("scheduled_total", &self.scheduled_total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Cycles;

    /// Every behavioural test runs against both implementations.
    fn both(f: impl Fn(EventQueue<i64>)) {
        f(EventQueue::heap());
        f(EventQueue::calendar());
    }

    #[test]
    fn pops_in_time_order() {
        both(|mut q| {
            q.schedule(Cycles(30), 3);
            q.schedule(Cycles(10), 1);
            q.schedule(Cycles(20), 2);
            assert_eq!(q.pop(), Some((Cycles(10), 1)));
            assert_eq!(q.pop(), Some((Cycles(20), 2)));
            assert_eq!(q.pop(), Some((Cycles(30), 3)));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn ties_break_by_insertion_order() {
        both(|mut q| {
            for i in 0..100 {
                q.schedule(Cycles(7), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((Cycles(7), i)));
            }
        });
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        both(|mut q| {
            q.schedule(Cycles(5), 0);
            assert_eq!(q.pop(), Some((Cycles(5), 0)));
            q.schedule(Cycles(3), 1);
            q.schedule(Cycles(1), 2);
            assert_eq!(q.pop(), Some((Cycles(1), 2)));
            q.schedule(Cycles(2), 3);
            assert_eq!(q.pop(), Some((Cycles(2), 3)));
            assert_eq!(q.pop(), Some((Cycles(3), 1)));
        });
    }

    #[test]
    fn peek_does_not_remove() {
        both(|mut q| {
            q.schedule(Cycles(4), 0);
            assert_eq!(q.peek_time(), Some(Cycles(4)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        });
    }

    #[test]
    fn counts_total_scheduled() {
        both(|mut q| {
            for i in 0..5 {
                q.schedule(Cycles(i as u64), i);
            }
            while q.pop().is_some() {}
            assert_eq!(q.scheduled_total(), 5);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn explicit_kinds_are_honoured() {
        assert_eq!(EventQueue::<u8>::heap().kind(), SchedKind::Heap);
        assert_eq!(EventQueue::<u8>::calendar().kind(), SchedKind::Calendar);
        assert_eq!(
            EventQueue::<u8>::with_kind(SchedKind::Heap).kind(),
            SchedKind::Heap
        );
    }

    #[test]
    fn default_kind_is_calendar_when_env_unset() {
        // The test environment never sets CEDAR_SCHED; if it does, the
        // selection must still round-trip through `from_env`.
        assert_eq!(EventQueue::<u8>::new().kind(), SchedKind::from_env());
        if std::env::var("CEDAR_SCHED").is_err() {
            assert_eq!(SchedKind::from_env(), SchedKind::Calendar);
        }
    }
}
