//! # cedar-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate underneath the Cedar machine reproduction.
//! It deliberately contains nothing Cedar-specific: simulated time
//! ([`Cycles`], [`SimTime`]), deterministic pending-event sets (the
//! [`EventSchedule`] trait with its [`HeapSchedule`] and
//! [`CalendarSchedule`] implementations behind the [`EventQueue`]
//! facade), the outbox pattern used by component state machines
//! ([`Outbox`]), a small deterministic RNG ([`SplitMix64`]), and
//! time-weighted statistics helpers ([`stats`]).
//!
//! ## Determinism
//!
//! Every run of the simulator with the same inputs produces bit-identical
//! traces. Two mechanisms guarantee this:
//!
//! * [`EventQueue`] breaks timestamp ties by insertion sequence number, so
//!   simultaneous events fire in the order they were scheduled. Both
//!   backing schedulers (selected by an explicit [`SchedKind`]) honour
//!   the exact same order, so the selection affects wall-clock speed
//!   only. A [`TieBreak`] policy can reorder simultaneous events
//!   (LIFO, seeded shuffle) — deterministically, and identically on
//!   both backends — so the model checker can prove measurements don't
//!   depend on tie order.
//! * [`SplitMix64`] is a fixed-seed PRNG; no ambient entropy is consulted.
//!
//! This crate never reads environment variables — scheduler selection by
//! `CEDAR_SCHED` happens in `cedar_obs::RunOptions::from_env`, which
//! passes a typed [`SchedKind`] down here. The queues and [`Outbox`]
//! keep cheap always-on self-telemetry counters ([`QueueStats`],
//! [`OutboxStats`]) that the observability layer rolls into the run
//! manifest.
//!
//! ## Example
//!
//! ```
//! use cedar_sim::{Cycles, EventQueue, SchedKind};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new(); // calendar default
//! q.schedule(Cycles(5), "later");
//! q.schedule(Cycles(1), "first");
//! q.schedule(Cycles(5), "tie-broken-second");
//! assert_eq!(q.pop(), Some((Cycles(1), "first")));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("later"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("tie-broken-second"));
//!
//! // The heap backend pops the same order, and both count traffic:
//! let mut h: EventQueue<u8> = EventQueue::with_kind(SchedKind::Heap);
//! h.schedule(Cycles(3), 1);
//! assert_eq!(h.pop(), Some((Cycles(3), 1)));
//! assert_eq!(h.stats().popped, 1);
//! ```

pub mod arena;
pub mod calendar;
pub mod outbox;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use arena::EventHandle;
pub use calendar::CalendarSchedule;
pub use outbox::{Outbox, OutboxStats};
pub use queue::{
    EventQueue, EventSchedule, HeapSchedule, QueueStats, SchedKind, TieBreak, HOLD_BUCKETS,
};
pub use rng::SplitMix64;
pub use time::{Cycles, HpmTicks, SimTime, CYCLE_NS, HPM_TICKS_PER_CYCLE, HPM_TICK_NS};
