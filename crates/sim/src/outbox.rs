//! The outbox pattern used by component state machines.
//!
//! Components in `cedar-hw`, `cedar-xylem` and `cedar-rtl` are plain
//! structs whose `handle(...)` methods receive an event, the current time
//! and a mutable [`Outbox`]. Instead of scheduling directly into the global
//! queue (which would require every component to hold a queue reference,
//! entangling ownership), they *emit* `(delay, event)` pairs into the
//! outbox; the machine loop in `cedar-core` drains the outbox into the
//! master [`EventQueue`](crate::EventQueue). This keeps each component
//! independently unit-testable: tests call `handle` with a scratch outbox
//! and assert on what was emitted.

use crate::time::{Cycles, SimTime};

/// A buffer of events emitted by a component during one `handle` call.
///
/// # Example
///
/// ```
/// use cedar_sim::{Cycles, Outbox};
///
/// let mut out: Outbox<&'static str> = Outbox::new();
/// out.emit(Cycles(3), "fires at now+3");
/// out.emit_now("fires immediately");
/// let drained: Vec<_> = out.drain().collect();
/// assert_eq!(drained, vec![(Cycles(3), "fires at now+3"),
///                          (Cycles(0), "fires immediately")]);
/// ```
#[derive(Debug)]
pub struct Outbox<E> {
    items: Vec<(Cycles, E)>,
}

impl<E> Outbox<E> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox { items: Vec::new() }
    }

    /// Emits `event` to fire `delay` cycles after the current time.
    pub fn emit(&mut self, delay: Cycles, event: E) {
        self.items.push((delay, event));
    }

    /// Emits `event` to fire at the current time (zero delay).
    pub fn emit_now(&mut self, event: E) {
        self.emit(Cycles::ZERO, event);
    }

    /// Drains all buffered `(delay, event)` pairs in emission order.
    pub fn drain(&mut self) -> impl Iterator<Item = (Cycles, E)> + '_ {
        self.items.drain(..)
    }

    /// Drains into an absolute-time event schedule, anchoring delays at
    /// `now`.
    pub fn flush_into<Q: crate::EventSchedule<E>>(&mut self, now: SimTime, queue: &mut Q) {
        for (delay, ev) in self.items.drain(..) {
            queue.schedule(now + delay, ev);
        }
    }

    /// Drains into a schedule of a *wrapping* event type, anchoring
    /// delays at `now` and applying `wrap` to each event.
    ///
    /// This is the machine-loop fast path: `cedar-core` keeps one
    /// long-lived outbox and flushes component events into its master
    /// queue (wrapping them in the master event enum) without allocating
    /// a fresh buffer per dispatch.
    pub fn flush_map_into<E2, Q, F>(&mut self, now: SimTime, queue: &mut Q, mut wrap: F)
    where
        Q: crate::EventSchedule<E2>,
        F: FnMut(E) -> E2,
    {
        for (delay, ev) in self.items.drain(..) {
            queue.schedule(now + delay, wrap(ev));
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing has been emitted (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<E> Default for Outbox<E> {
    fn default() -> Self {
        Outbox::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    #[test]
    fn emits_in_order() {
        let mut out = Outbox::new();
        out.emit(Cycles(2), "b");
        out.emit(Cycles(1), "a");
        let v: Vec<_> = out.drain().collect();
        assert_eq!(v, vec![(Cycles(2), "b"), (Cycles(1), "a")]);
        assert!(out.is_empty());
    }

    #[test]
    fn flush_anchors_at_now() {
        let mut out = Outbox::new();
        out.emit(Cycles(5), 'x');
        out.emit_now('y');
        let mut q = EventQueue::new();
        out.flush_into(Cycles(100), &mut q);
        assert_eq!(q.pop(), Some((Cycles(100), 'y')));
        assert_eq!(q.pop(), Some((Cycles(105), 'x')));
        assert!(out.is_empty());
    }

    #[test]
    fn len_tracks_buffered_events() {
        let mut out: Outbox<u8> = Outbox::new();
        assert_eq!(out.len(), 0);
        out.emit_now(1);
        out.emit_now(2);
        assert_eq!(out.len(), 2);
    }
}
