//! The outbox pattern used by component state machines.
//!
//! Components in `cedar-hw`, `cedar-xylem` and `cedar-rtl` are plain
//! structs whose `handle(...)` methods receive an event, the current time
//! and a mutable [`Outbox`]. Instead of scheduling directly into the global
//! queue (which would require every component to hold a queue reference,
//! entangling ownership), they *emit* `(delay, event)` pairs into the
//! outbox; the machine loop in `cedar-core` drains the outbox into the
//! master [`EventQueue`](crate::EventQueue). This keeps each component
//! independently unit-testable: tests call `handle` with a scratch outbox
//! and assert on what was emitted.

use crate::time::{Cycles, SimTime};

/// A buffer of events emitted by a component during one `handle` call.
///
/// # Example
///
/// ```
/// use cedar_sim::{Cycles, Outbox};
///
/// let mut out: Outbox<&'static str> = Outbox::new();
/// out.emit(Cycles(3), "fires at now+3");
/// out.emit_now("fires immediately");
/// let drained: Vec<_> = out.drain().collect();
/// assert_eq!(drained, vec![(Cycles(3), "fires at now+3"),
///                          (Cycles(0), "fires immediately")]);
/// ```
#[derive(Debug)]
pub struct Outbox<E> {
    items: Vec<(Cycles, E)>,
    stats: OutboxStats,
}

/// Self-telemetry of one outbox: how hard the slab-reuse pattern works.
/// `grows` counts buffer reallocations; a long-lived outbox that has
/// reached its steady-state capacity emits and flushes millions of
/// events with `grows` frozen — the reuse rate
/// [`OutboxStats::reuse_rate`] is then ~1.0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutboxStats {
    /// Events ever emitted into this outbox.
    pub emitted: u64,
    /// Drain/flush calls (each reuses the buffer allocation).
    pub flushes: u64,
    /// Buffer reallocations (capacity growth events).
    pub grows: u64,
    /// Peak number of events buffered at once.
    pub peak_buffered: u64,
}

impl OutboxStats {
    /// Fraction of emits that reused existing capacity (1.0 = perfect
    /// slab behaviour; 0 emits count as perfect).
    pub fn reuse_rate(&self) -> f64 {
        if self.emitted == 0 {
            1.0
        } else {
            1.0 - self.grows as f64 / self.emitted as f64
        }
    }
}

impl<E> Outbox<E> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox {
            items: Vec::new(),
            stats: OutboxStats::default(),
        }
    }

    /// Emits `event` to fire `delay` cycles after the current time.
    pub fn emit(&mut self, delay: Cycles, event: E) {
        if self.items.len() == self.items.capacity() {
            self.stats.grows += 1;
        }
        self.items.push((delay, event));
        self.stats.emitted += 1;
        self.stats.peak_buffered = self.stats.peak_buffered.max(self.items.len() as u64);
    }

    /// Emits `event` to fire at the current time (zero delay).
    pub fn emit_now(&mut self, event: E) {
        self.emit(Cycles::ZERO, event);
    }

    /// Drains all buffered `(delay, event)` pairs in emission order.
    pub fn drain(&mut self) -> impl Iterator<Item = (Cycles, E)> + '_ {
        self.stats.flushes += 1;
        self.items.drain(..)
    }

    /// Drains into an absolute-time event schedule, anchoring delays at
    /// `now`.
    pub fn flush_into<Q: crate::EventSchedule<E>>(&mut self, now: SimTime, queue: &mut Q) {
        self.stats.flushes += 1;
        for (delay, ev) in self.items.drain(..) {
            queue.schedule(now + delay, ev);
        }
    }

    /// Drains into a schedule of a *wrapping* event type, anchoring
    /// delays at `now` and applying `wrap` to each event.
    ///
    /// This is the machine-loop fast path: `cedar-core` keeps one
    /// long-lived outbox and flushes component events into its master
    /// queue (wrapping them in the master event enum) without allocating
    /// a fresh buffer per dispatch.
    pub fn flush_map_into<E2, Q, F>(&mut self, now: SimTime, queue: &mut Q, mut wrap: F)
    where
        Q: crate::EventSchedule<E2>,
        F: FnMut(E) -> E2,
    {
        self.stats.flushes += 1;
        for (delay, ev) in self.items.drain(..) {
            queue.schedule(now + delay, wrap(ev));
        }
    }

    /// Snapshot of the outbox's self-telemetry counters.
    pub fn stats(&self) -> OutboxStats {
        self.stats
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing has been emitted (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<E> Default for Outbox<E> {
    fn default() -> Self {
        Outbox::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    #[test]
    fn emits_in_order() {
        let mut out = Outbox::new();
        out.emit(Cycles(2), "b");
        out.emit(Cycles(1), "a");
        let v: Vec<_> = out.drain().collect();
        assert_eq!(v, vec![(Cycles(2), "b"), (Cycles(1), "a")]);
        assert!(out.is_empty());
    }

    #[test]
    fn flush_anchors_at_now() {
        let mut out = Outbox::new();
        out.emit(Cycles(5), 'x');
        out.emit_now('y');
        let mut q = EventQueue::new();
        out.flush_into(Cycles(100), &mut q);
        assert_eq!(q.pop(), Some((Cycles(100), 'y')));
        assert_eq!(q.pop(), Some((Cycles(105), 'x')));
        assert!(out.is_empty());
    }

    #[test]
    fn len_tracks_buffered_events() {
        let mut out: Outbox<u8> = Outbox::new();
        assert_eq!(out.len(), 0);
        out.emit_now(1);
        out.emit_now(2);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn stats_track_reuse() {
        let mut out: Outbox<u8> = Outbox::new();
        let mut q = EventQueue::new();
        // First fill grows the buffer; subsequent fills reuse it.
        for round in 0..10 {
            out.emit_now(round);
            out.emit_now(round);
            out.flush_into(Cycles(round as u64), &mut q);
        }
        let s = out.stats();
        assert_eq!(s.emitted, 20);
        assert_eq!(s.flushes, 10);
        assert_eq!(s.peak_buffered, 2);
        assert!(s.grows <= 2, "steady state must stop reallocating");
        assert!(s.reuse_rate() >= 0.9, "reuse rate {}", s.reuse_rate());
        assert_eq!(OutboxStats::default().reuse_rate(), 1.0);
    }
}
