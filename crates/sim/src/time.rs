//! Simulated time.
//!
//! The simulator counts **CE clock cycles**. The Cedar computational
//! elements are modelled as 10 MHz processors (Alliant FX/8 class), so one
//! cycle is 100 ns. The `cedarhpm` hardware performance monitor the paper
//! used timestamps events with 50 ns resolution, i.e. two *hpm ticks* per
//! CE cycle; [`HpmTicks`] preserves that resolution in recorded traces.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Nanoseconds per simulated CE clock cycle (10 MHz CE clock).
pub const CYCLE_NS: u64 = 100;

/// Nanoseconds per `cedarhpm` timestamp tick (the monitor's resolution).
pub const HPM_TICK_NS: u64 = 50;

/// `cedarhpm` ticks per CE cycle.
pub const HPM_TICKS_PER_CYCLE: u64 = CYCLE_NS / HPM_TICK_NS;

/// A duration or instant measured in CE clock cycles.
///
/// `Cycles` is the universal currency of the simulator: event timestamps,
/// component service times and accounted overheads are all `Cycles`.
///
/// # Example
///
/// ```
/// use cedar_sim::Cycles;
/// let t = Cycles(40) + Cycles(2);
/// assert_eq!(t, Cycles(42));
/// assert!((t.as_secs() - 4.2e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero duration / time origin.
    pub const ZERO: Cycles = Cycles(0);

    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Duration in simulated seconds at the modelled 10 MHz CE clock.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * CYCLE_NS as f64 * 1e-9
    }

    /// Duration in simulated milliseconds.
    pub fn as_millis(self) -> f64 {
        self.as_secs() * 1e3
    }

    /// Convert to the `cedarhpm` monitor's 50 ns timestamp ticks.
    pub fn to_hpm_ticks(self) -> HpmTicks {
        HpmTicks(self.0 * HPM_TICKS_PER_CYCLE)
    }

    /// Saturating subtraction; clamps at zero instead of underflowing.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition returning `None` on overflow.
    pub fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_add(rhs.0).map(Cycles)
    }

    /// Fraction `self / total` as an `f64` in `[0, 1]` for non-degenerate
    /// inputs. Returns 0.0 when `total` is zero.
    pub fn fraction_of(self, total: Cycles) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }

    /// `self` scaled by a non-negative real factor, rounded to nearest.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Cycles {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        Cycles((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Rem<u64> for Cycles {
    type Output = Cycles;
    fn rem(self, rhs: u64) -> Cycles {
        Cycles(self.0 % rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Cycles {
        Cycles(v)
    }
}

/// An instant on the simulation clock. Alias of [`Cycles`]: instants and
/// durations share the representation, as is conventional in DES kernels.
pub type SimTime = Cycles;

/// A timestamp in the `cedarhpm` monitor's 50 ns resolution.
///
/// Traces recorded by `cedar-trace` store `HpmTicks`, mirroring the
/// hardware monitor the paper describes (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HpmTicks(pub u64);

impl HpmTicks {
    /// Convert back to CE cycles, truncating sub-cycle precision.
    pub fn to_cycles(self) -> Cycles {
        Cycles(self.0 / HPM_TICKS_PER_CYCLE)
    }

    /// Timestamp in simulated seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * HPM_TICK_NS as f64 * 1e-9
    }
}

impl fmt::Display for HpmTicks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}hpm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic_behaves_like_u64() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(10) - Cycles(4), Cycles(6));
        assert_eq!(Cycles(3) * 4, Cycles(12));
        assert_eq!(Cycles(12) / 4, Cycles(3));
        assert_eq!(Cycles(13) % 4, Cycles(1));
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut t = Cycles(5);
        t += Cycles(2);
        assert_eq!(t, Cycles(7));
        t -= Cycles(3);
        assert_eq!(t, Cycles(4));
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(Cycles(3).saturating_sub(Cycles(10)), Cycles::ZERO);
        assert_eq!(Cycles(10).saturating_sub(Cycles(3)), Cycles(7));
    }

    #[test]
    fn hpm_conversion_round_trips_at_cycle_granularity() {
        let t = Cycles(1234);
        assert_eq!(t.to_hpm_ticks(), HpmTicks(2468));
        assert_eq!(t.to_hpm_ticks().to_cycles(), t);
    }

    #[test]
    fn seconds_conversion_uses_ten_megahertz_clock() {
        // 10_000_000 cycles at 10 MHz is exactly one simulated second.
        assert!((Cycles(10_000_000).as_secs() - 1.0).abs() < 1e-12);
        assert!((HpmTicks(20_000_000).as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_of_handles_zero_total() {
        assert_eq!(Cycles(5).fraction_of(Cycles::ZERO), 0.0);
        assert!((Cycles(25).fraction_of(Cycles(100)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn scale_rounds_to_nearest() {
        assert_eq!(Cycles(10).scale(0.5), Cycles(5));
        assert_eq!(Cycles(3).scale(0.5), Cycles(2)); // 1.5 rounds to 2
        assert_eq!(Cycles(100).scale(0.0), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scale_rejects_negative_factor() {
        let _ = Cycles(1).scale(-1.0);
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cycles(7).to_string(), "7cy");
        assert_eq!(HpmTicks(7).to_string(), "7hpm");
    }
}
