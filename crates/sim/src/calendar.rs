//! Calendar-queue pending-event set: a bucketed wheel over [`SimTime`]
//! with an overflow tier.
//!
//! The wheel divides simulated time into fixed-width *days* (a power of
//! two of cycles each) and keeps one bucket per day for the next
//! `days` days. Scheduling an event within that horizon is an append to
//! its day's bucket; scheduling beyond it pushes into an overflow
//! min-heap that is drained into the wheel as the cursor advances.
//! Popping reads the next entry at the cursor bucket's drain cursor.
//! Because the Cedar machine schedules almost every event a handful of
//! cycles ahead (switch hops, module service, spin periods are all 1–8
//! cycles), nearly all traffic stays on the O(1) wheel path and the
//! heap's O(log n) per-event cost — with n in the tens of thousands
//! during a 32-processor campaign — drops out of the simulator's hot
//! loop.
//!
//! Ordering is identical to [`HeapSchedule`](crate::queue::HeapSchedule):
//! ascending fire time, ties broken by the
//! [`TieBreak`](crate::queue::TieBreak) rank of the scheduling sequence
//! (the sequence itself under the default FIFO policy). Buckets keep
//! their undrained tail in ascending `(time, rank)` order and advance a
//! drain cursor per pop; under FIFO appends almost always arrive in
//! ascending order already (one-day buckets hold simultaneous events,
//! whose tie-break sequences are issued ascending), so the common case
//! is a plain `Vec::push` with no sorting or shifting at all. An
//! order-breaking insert (an earlier-day stray clamped into the
//! cursor's bucket, an overflow migration landing behind a direct
//! insert, or a non-monotone LIFO/shuffle rank) flips a dirty bit and
//! the tail is re-sorted once on the next pop.
//! Cross-bucket order holds because a bucket only ever drains events of
//! a single pending day.
//!
//! Plain-scheduled payloads are stored inline in the bucket and overflow
//! entries (see [`Entry`](crate::queue::Entry)) — the hot path touches
//! no side storage at all. Cancellable payloads live in the shared
//! [`EventArena`] and their entries carry a generation-tagged handle.
//! Drained buckets reset to empty while retaining capacity, so
//! steady-state operation performs no allocation at all. Cancellation is
//! O(1): the arena slot is freed immediately (releasing its occupancy
//! and hold-histogram contribution) and the wheel/overflow entry stays
//! behind as a generation-stale tombstone, swept when it surfaces.

use crate::arena::{EventArena, EventHandle};
use crate::queue::{key_time, order_key, Entry, EventSchedule, MinHeap, QueueStats, TieBreak};
use crate::time::SimTime;

/// Default log2 of the day width: one-cycle days. A bucket then only
/// ever holds simultaneous events, whose tie-break sequences arrive in
/// ascending order — so appends never disturb the ascending tail and
/// the per-event cost stays flat instead of re-paying the heap's
/// O(log n) inside large buckets.
const DEFAULT_DAY_SHIFT: u32 = 0;

/// Default number of days on the wheel (must be a power of two).
/// 256 one-cycle days keep the whole bucket array within ~8 KiB, so the
/// cursor scan stays in L1 — measurements show the wheel's cache
/// footprint, not the bucket maintenance, dominates throughput (256
/// days run ~2.5× faster than 4096 on the packet-dense network
/// workload). The 256-cycle horizon still covers every hop, service and
/// occupancy constant in the machine model; longer rebookings (spin
/// periods, daemon wakeups, serial sections) take the overflow tier,
/// which the wheel drains as the cursor advances.
const DEFAULT_DAYS: u64 = 256;

/// One day's worth of pending-event entries.
///
/// `items[cursor..]` — the undrained tail — is in ascending `(time,
/// seq)` order whenever `sorted` is true; the next entry to fire sits at
/// `cursor`. Entries before the cursor are dead (already drained, left
/// as [`Entry::Taken`]) and are reclaimed wholesale when the tail
/// empties: the vector resets to empty, *retaining its capacity* for the
/// wheel's next rotation.
struct Bucket<E> {
    items: Vec<(SimTime, u64, Entry<E>)>,
    cursor: usize,
    sorted: bool,
}

impl<E> Bucket<E> {
    fn new() -> Self {
        Bucket {
            items: Vec::new(),
            cursor: 0,
            sorted: true,
        }
    }

    /// Appends an entry, flagging the tail dirty if it breaks ascending
    /// order (rare: earlier-day strays and late overflow migrations).
    fn push(&mut self, at: SimTime, seq: u64, entry: Entry<E>) {
        if self.sorted {
            if let Some(&(last_at, last_seq, _)) = self.items.last() {
                if (at, seq) < (last_at, last_seq) {
                    self.sorted = false;
                }
            }
        }
        self.items.push((at, seq, entry));
    }

    /// Restores the ascending tail order after order-breaking appends.
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.items[self.cursor..].sort_unstable_by_key(|e| (e.0, e.1));
            self.sorted = true;
        }
    }

    fn is_drained(&self) -> bool {
        self.cursor >= self.items.len()
    }

    /// Removes and returns the tail's head entry (leaving a
    /// [`Entry::Taken`] husk in the drained prefix). Caller must have
    /// called [`ensure_sorted`](Self::ensure_sorted) and checked
    /// [`is_drained`](Self::is_drained).
    fn take_next(&mut self) -> (SimTime, u64, Entry<E>) {
        let slot = &mut self.items[self.cursor];
        let out = (slot.0, slot.1, std::mem::replace(&mut slot.2, Entry::Taken));
        self.cursor += 1;
        if self.cursor == self.items.len() {
            self.items.clear();
            self.cursor = 0;
            self.sorted = true;
        }
        out
    }
}

/// A calendar queue: O(1) amortized schedule and pop for the near-future
/// event traffic that dominates discrete-event simulation.
///
/// Selected by default in [`EventQueue`](crate::EventQueue); construct
/// directly (or via `CEDAR_SCHED=calendar`) when the choice must be
/// explicit. Ordering semantics are exactly those of
/// [`EventSchedule`]: `(fire time, scheduling sequence)` ascending.
///
/// # Example
///
/// ```
/// use cedar_sim::calendar::CalendarSchedule;
/// use cedar_sim::{Cycles, EventSchedule};
///
/// let mut q = CalendarSchedule::new();
/// q.schedule(Cycles(5), "later");
/// q.schedule(Cycles(5), "tie-broken-second");
/// q.schedule(Cycles(1), "first");
/// assert_eq!(q.pop(), Some((Cycles(1), "first")));
/// assert_eq!(q.pop(), Some((Cycles(5), "later")));
/// assert_eq!(q.pop(), Some((Cycles(5), "tie-broken-second")));
/// ```
pub struct CalendarSchedule<E> {
    buckets: Vec<Bucket<E>>,
    /// `buckets.len() - 1`; bucket count is a power of two so the day →
    /// bucket map is a mask, not a modulo.
    day_mask: u64,
    /// log2 of cycles per day; the time → day map is a shift, not a div.
    day_shift: u32,
    /// The day the pop cursor is on. Every live wheel event's day is in
    /// `[cur_day, cur_day + days)` (earlier-day strays are clamped into
    /// `cur_day`'s bucket at insert).
    cur_day: u64,
    /// Live events currently on the wheel, inline and pooled alike
    /// (excludes overflow and cancelled tombstones).
    wheel_live: usize,
    /// Entries at or beyond the wheel horizon, drained in as the cursor
    /// advances. The root is always live (stale roots are purged on
    /// cancel), so its key is an exact peek.
    overflow: MinHeap<E>,
    /// Live events in the overflow tier.
    overflow_live: usize,
    /// Pool for cancellable events only; plain traffic never touches it.
    arena: EventArena<E>,
    next_seq: u64,
    tiebreak: TieBreak,
    stats: QueueStats,
    last_popped: SimTime,
}

impl<E> CalendarSchedule<E> {
    /// Creates an empty queue with the default geometry (one-cycle
    /// days, 256-day wheel).
    pub fn new() -> Self {
        Self::with_geometry(1 << DEFAULT_DAY_SHIFT, DEFAULT_DAYS)
    }

    /// Creates an empty queue with `day_width` cycles per bucket and a
    /// `days`-bucket wheel. Both must be powers of two.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or not a power of two.
    pub fn with_geometry(day_width: u64, days: u64) -> Self {
        assert!(
            day_width.is_power_of_two(),
            "day width must be a power of two, got {day_width}"
        );
        assert!(
            days.is_power_of_two(),
            "day count must be a power of two, got {days}"
        );
        CalendarSchedule {
            buckets: (0..days).map(|_| Bucket::new()).collect(),
            day_mask: days - 1,
            day_shift: day_width.trailing_zeros(),
            cur_day: 0,
            wheel_live: 0,
            overflow: MinHeap::new(),
            overflow_live: 0,
            arena: EventArena::new(),
            next_seq: 0,
            tiebreak: TieBreak::default(),
            stats: QueueStats::new(),
            last_popped: SimTime::ZERO,
        }
    }

    /// Selects the simultaneous-event ordering policy. Ranks are
    /// assigned at schedule time, so this must be set before any event
    /// is scheduled.
    pub fn with_tiebreak(mut self, tiebreak: TieBreak) -> Self {
        debug_assert_eq!(self.next_seq, 0, "tie-break set after scheduling");
        self.tiebreak = tiebreak;
        self
    }

    /// Number of days on the wheel.
    fn days(&self) -> u64 {
        self.day_mask + 1
    }

    /// The day `t` falls on.
    fn day_of(&self, t: SimTime) -> u64 {
        t.0 >> self.day_shift
    }

    /// `true` if `day` falls inside the wheel's current coverage,
    /// `[cur_day, cur_day + days)`. When `cur_day + days` overflows
    /// `u64`, the window `[cur_day, u64::MAX]` is no larger than the
    /// wheel, so every remaining day fits.
    fn fits_wheel(&self, day: u64) -> bool {
        match self.cur_day.checked_add(self.days()) {
            Some(horizon) => day < horizon,
            None => true,
        }
    }

    /// Moves every live overflow event whose day now falls inside the
    /// horizon onto the wheel (sweeping any stale tombstones met on the
    /// way). Called whenever `cur_day` changes, preserving the invariant
    /// that live overflow events are strictly beyond the wheel.
    fn refill_from_overflow(&mut self) {
        while let Some((key, entry)) = self.overflow.peek() {
            if !entry.is_live(&self.arena) {
                self.overflow.pop();
                continue;
            }
            let at = key_time(key);
            if !self.fits_wheel(self.day_of(at)) {
                break;
            }
            let (_, entry) = self.overflow.pop().expect("peeked root exists");
            if let Entry::Pooled(handle) = entry {
                self.arena.set_on_wheel(handle);
            }
            let day = self.day_of(at).max(self.cur_day);
            let idx = (day & self.day_mask) as usize;
            let seq = key as u64;
            self.buckets[idx].push(at, seq, entry);
            self.wheel_live += 1;
            self.overflow_live -= 1;
            self.stats.wheel_peak = self.stats.wheel_peak.max(self.wheel_live as u64);
        }
    }

    /// Live events pending in the overflow tier (diagnostics and tests).
    pub fn overflow_len(&self) -> usize {
        self.overflow_live
    }
}

impl<E> EventSchedule<E> for CalendarSchedule<E> {
    fn schedule(&mut self, at: SimTime, payload: E) {
        let rank = self.tiebreak.rank(self.next_seq);
        self.next_seq += 1;
        let bucket = QueueStats::bucket_of(at.0.saturating_sub(self.last_popped.0));
        let day = self.day_of(at);
        if !self.fits_wheel(day) {
            self.overflow
                .push(order_key(at, rank), Entry::Inline(payload));
            self.overflow_live += 1;
            self.stats.overflow_spills += 1;
        } else {
            let day = day.max(self.cur_day);
            let idx = (day & self.day_mask) as usize;
            self.buckets[idx].push(at, rank, Entry::Inline(payload));
            self.wheel_live += 1;
            self.stats.wheel_peak = self.stats.wheel_peak.max(self.wheel_live as u64);
        }
        self.stats
            .on_schedule(bucket, self.wheel_live + self.overflow_live);
    }

    fn schedule_cancellable(&mut self, at: SimTime, payload: E) -> EventHandle {
        let rank = self.tiebreak.rank(self.next_seq);
        self.next_seq += 1;
        let bucket = QueueStats::bucket_of(at.0.saturating_sub(self.last_popped.0));
        let day = self.day_of(at);
        let handle;
        if !self.fits_wheel(day) {
            handle = self.arena.alloc(payload, bucket, false);
            self.overflow
                .push(order_key(at, rank), Entry::Pooled(handle));
            self.overflow_live += 1;
            self.stats.overflow_spills += 1;
        } else {
            let day = day.max(self.cur_day);
            let idx = (day & self.day_mask) as usize;
            handle = self.arena.alloc(payload, bucket, true);
            self.buckets[idx].push(at, rank, Entry::Pooled(handle));
            self.wheel_live += 1;
            self.stats.wheel_peak = self.stats.wheel_peak.max(self.wheel_live as u64);
        }
        self.stats
            .on_schedule(bucket, self.wheel_live + self.overflow_live);
        handle
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        match self.arena.cancel(handle) {
            Some((bucket, on_wheel)) => {
                debug_assert!(
                    self.arena.live() < self.wheel_live + self.overflow_live,
                    "pooled live population must stay a subset of the total"
                );
                self.stats.on_cancel(bucket);
                if on_wheel {
                    self.wheel_live -= 1;
                } else {
                    self.overflow_live -= 1;
                    // Keep the overflow root live so peeks stay exact.
                    self.overflow.purge_stale(&self.arena);
                }
                true
            }
            None => false,
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if self.wheel_live == 0 {
                if self.overflow_live == 0 {
                    return None;
                }
                // Wheel empty: jump the cursor to the overflow head's day
                // and pull its cohort in.
                let (key, _) = self.overflow.peek().expect("live overflow has a root");
                self.cur_day = self.day_of(key_time(key));
                self.refill_from_overflow();
                debug_assert!(self.wheel_live > 0, "refill pulled nothing despite head");
                continue;
            }
            let idx = (self.cur_day & self.day_mask) as usize;
            let bucket = &mut self.buckets[idx];
            if bucket.is_drained() {
                self.cur_day += 1;
                self.refill_from_overflow();
                continue;
            }
            bucket.ensure_sorted();
            let (at, _seq, entry) = bucket.take_next();
            let payload = match entry {
                Entry::Inline(payload) => payload,
                Entry::Pooled(handle) => match self.arena.take(handle) {
                    Some(payload) => payload,
                    // Cancelled tombstone: swept, not counted as a pop.
                    None => continue,
                },
                Entry::Taken => unreachable!("Taken husks never sit at the drain cursor"),
            };
            self.wheel_live -= 1;
            self.stats.popped += 1;
            self.last_popped = at;
            return Some((at, payload));
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        if self.wheel_live > 0 {
            // The first bucket from the cursor holding a live entry holds
            // the global minimum (single-day buckets; live overflow is
            // beyond the wheel; stale tombstones are skipped).
            for d in 0..self.days() {
                let idx = (self.cur_day.wrapping_add(d) & self.day_mask) as usize;
                let bucket = &self.buckets[idx];
                let mut live = bucket.items[bucket.cursor..]
                    .iter()
                    .filter(|(_, _, e)| e.is_live(&self.arena))
                    .map(|&(at, seq, _)| (at, seq));
                let found = if bucket.sorted {
                    live.next()
                } else {
                    live.min()
                };
                if let Some((at, _)) = found {
                    return Some(at);
                }
            }
            unreachable!("wheel_live > 0 but no live wheel entry");
        }
        if self.overflow_live > 0 {
            // The root is always live (stale roots purged on cancel).
            return self.overflow.peek().map(|(key, _)| key_time(key));
        }
        None
    }

    fn len(&self) -> usize {
        self.wheel_live + self.overflow_live
    }

    fn scheduled_total(&self) -> u64 {
        self.stats.scheduled
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

impl<E> Default for CalendarSchedule<E> {
    fn default() -> Self {
        CalendarSchedule::new()
    }
}

impl<E> std::fmt::Debug for CalendarSchedule<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarSchedule")
            .field("days", &self.days())
            .field("day_width", &(1u64 << self.day_shift))
            .field("cur_day", &self.cur_day)
            .field("wheel", &self.wheel_live)
            .field("overflow", &self.overflow_live)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::HeapSchedule;
    use crate::rng::SplitMix64;
    use crate::time::Cycles;

    /// Pops everything from both schedulers, asserting identical streams.
    fn assert_equivalent_drain(
        heap: &mut HeapSchedule<u64>,
        cal: &mut CalendarSchedule<u64>,
        context: &str,
    ) {
        loop {
            let h = heap.pop();
            let c = cal.pop();
            assert_eq!(h, c, "pop streams diverged ({context})");
            if h.is_none() {
                break;
            }
        }
    }

    #[test]
    fn overflow_events_pop_in_order() {
        // A tiny wheel (4 days of 4 cycles) forces heavy overflow use.
        let mut q: CalendarSchedule<u32> = CalendarSchedule::with_geometry(4, 4);
        for (i, t) in [100u64, 3, 50, 17, 2_000, 16, 0].iter().enumerate() {
            q.schedule(Cycles(*t), i as u32);
        }
        assert!(q.overflow_len() > 0, "test must exercise the overflow tier");
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(times, vec![0, 3, 16, 17, 50, 100, 2_000]);
    }

    #[test]
    fn overflow_ties_interleave_with_wheel_ties() {
        let mut q: CalendarSchedule<u32> = CalendarSchedule::with_geometry(4, 4);
        // Both time-1000 events start in the overflow tier and migrate to
        // the wheel as the cursor advances; insertion order must survive
        // the migration.
        q.schedule(Cycles(1_000), 0);
        q.schedule(Cycles(1), 1);
        q.schedule(Cycles(1_000), 2);
        assert_eq!(q.pop(), Some((Cycles(1), 1)));
        assert_eq!(q.pop(), Some((Cycles(1_000), 0)));
        assert_eq!(q.pop(), Some((Cycles(1_000), 2)));
    }

    #[test]
    fn earlier_than_cursor_inserts_still_pop_first() {
        let mut q: CalendarSchedule<u32> = CalendarSchedule::new();
        q.schedule(Cycles(500), 0);
        assert_eq!(q.pop(), Some((Cycles(500), 0)));
        // The cursor now sits at day 500; scheduling in its past is
        // legal for the queue (the machine never does it) and must pop
        // before anything later.
        q.schedule(Cycles(600), 1);
        q.schedule(Cycles(10), 2);
        assert_eq!(q.pop(), Some((Cycles(10), 2)));
        assert_eq!(q.pop(), Some((Cycles(600), 1)));
    }

    #[test]
    fn simtime_extremes() {
        let mut q: CalendarSchedule<u32> = CalendarSchedule::new();
        q.schedule(Cycles::MAX, 0);
        q.schedule(Cycles::ZERO, 1);
        q.schedule(Cycles(u64::MAX - 1), 2);
        q.schedule(Cycles::MAX, 3);
        assert_eq!(q.peek_time(), Some(Cycles::ZERO));
        assert_eq!(q.pop(), Some((Cycles::ZERO, 1)));
        assert_eq!(q.pop(), Some((Cycles(u64::MAX - 1), 2)));
        assert_eq!(q.pop(), Some((Cycles::MAX, 0)));
        assert_eq!(q.pop(), Some((Cycles::MAX, 3)));
        assert_eq!(q.pop(), None);
    }

    /// Regression (PR 9): same-timestamp events straddling the
    /// wheel/overflow boundary must pop in one global tie order, under
    /// every tie-break policy, identically on both backends. The
    /// dangerous shape: part of a tie cohort lands on the wheel
    /// directly while the rest spills to the overflow heap and only
    /// migrates in later — the migrated entries' ranks (LIFO/shuffle
    /// ranks are non-monotone in insertion order) must still interleave
    /// exactly with the direct inserts.
    #[test]
    fn tie_cohorts_split_across_wheel_and_overflow_pop_identically() {
        for tiebreak in [
            TieBreak::Fifo,
            TieBreak::Lifo,
            TieBreak::Shuffle(0x5EED),
            TieBreak::Shuffle(u64::MAX),
        ] {
            let mut heap = HeapSchedule::new().with_tiebreak(tiebreak);
            // Tiny wheel: 4 days × 4 cycles = 16-cycle horizon.
            let mut cal = CalendarSchedule::with_geometry(4, 4).with_tiebreak(tiebreak);
            // t=15 is the last on-wheel day; t=16/t=100 overflow. The
            // t=16 cohort is split: scheduled before and after a pop
            // advances the cursor (so some entries migrate, some insert
            // directly once the horizon has moved).
            for (t, p) in [(15u64, 0u64), (16, 1), (16, 2), (100, 3), (15, 4)] {
                heap.schedule(Cycles(t), p);
                cal.schedule(Cycles(t), p);
            }
            assert!(cal.overflow_len() > 0, "cohort must straddle the boundary");
            assert_eq!(heap.pop(), cal.pop(), "{tiebreak}: first pop");
            // Cursor has advanced; the rest of the t=16 cohort now fits
            // the wheel and lands next to its migrated siblings.
            for p in 5..9u64 {
                heap.schedule(Cycles(16), p);
                cal.schedule(Cycles(16), p);
            }
            assert_equivalent_drain(&mut heap, &mut cal, &format!("{tiebreak} boundary"));
        }
    }

    /// Regression (PR 9): tie cohorts at `SimTime::MAX` — where the
    /// day index saturates and (under LIFO) ranks reach `u64::MAX`, so
    /// packed order keys hit `u128::MAX` — must pop in one global
    /// order on both backends under every policy.
    #[test]
    fn tie_cohorts_at_simtime_max_pop_identically() {
        for tiebreak in [
            TieBreak::Fifo,
            TieBreak::Lifo,
            TieBreak::Shuffle(1),
            TieBreak::Shuffle(u64::MAX),
        ] {
            let mut heap = HeapSchedule::new().with_tiebreak(tiebreak);
            let mut cal = CalendarSchedule::new().with_tiebreak(tiebreak);
            for (t, p) in [
                (u64::MAX, 0u64),
                (0, 1),
                (u64::MAX, 2),
                (u64::MAX - 1, 3),
                (u64::MAX, 4),
            ] {
                heap.schedule(Cycles(t), p);
                cal.schedule(Cycles(t), p);
            }
            assert_eq!(heap.peek_time(), cal.peek_time(), "{tiebreak}");
            assert_equivalent_drain(&mut heap, &mut cal, &format!("{tiebreak} at MAX"));
            // And a pure all-MAX cohort, scheduled after the cursor has
            // already jumped to the end of time.
            for p in 0..16u64 {
                heap.schedule(Cycles(u64::MAX), p);
                cal.schedule(Cycles(u64::MAX), p);
            }
            assert_equivalent_drain(&mut heap, &mut cal, &format!("{tiebreak} all-MAX"));
        }
    }

    /// The random heap-equivalence property, re-run under the
    /// non-default tie-break policies (the FIFO version is
    /// [`property_pop_order_matches_heap_on_random_schedules`]).
    #[test]
    fn property_pop_order_matches_heap_under_all_tiebreaks() {
        for tiebreak in [TieBreak::Lifo, TieBreak::Shuffle(0xC0DE)] {
            for seed in 0..24u64 {
                let mut rng = SplitMix64::new(0x71EB_0000 + seed);
                let mut heap = HeapSchedule::new().with_tiebreak(tiebreak);
                let mut cal = CalendarSchedule::with_geometry(4, 16).with_tiebreak(tiebreak);
                let n = 1 + rng.next_below(300);
                for i in 0..n {
                    let t = match rng.next_below(10) {
                        0..=5 => rng.next_below(1 << 10),  // on-wheel
                        6 | 7 => rng.next_below(1 << 24),  // overflow
                        8 => 7,                            // heavy tie
                        _ => u64::MAX - rng.next_below(2), // extremes
                    };
                    heap.schedule(Cycles(t), i);
                    cal.schedule(Cycles(t), i);
                }
                assert_equivalent_drain(&mut heap, &mut cal, &format!("{tiebreak} seed {seed}"));
            }
        }
    }

    #[test]
    fn property_pop_order_matches_heap_on_random_schedules() {
        for seed in 0..64u64 {
            let mut rng = SplitMix64::new(0xCA1E_0000 + seed);
            let mut heap = HeapSchedule::new();
            let mut cal = CalendarSchedule::new();
            // Mixed near/far/tied times, including u64::MAX extremes.
            let n = 1 + rng.next_below(400);
            for i in 0..n {
                let t = match rng.next_below(10) {
                    0..=5 => rng.next_below(1 << 12),  // on-wheel
                    6 | 7 => rng.next_below(1 << 30),  // overflow
                    8 => 7,                            // heavy tie
                    _ => u64::MAX - rng.next_below(2), // extremes
                };
                heap.schedule(Cycles(t), i);
                cal.schedule(Cycles(t), i);
            }
            assert_equivalent_drain(&mut heap, &mut cal, &format!("seed {seed}"));
        }
    }

    #[test]
    fn property_interleaved_ops_match_heap() {
        // The machine's actual usage pattern: pop one, schedule a few
        // near-future successors, repeat. Exercises cursor advance,
        // same-bucket insertion after sort, and overflow refill.
        for seed in 0..32u64 {
            let mut rng = SplitMix64::new(0xBEE5_0000 + seed);
            let mut heap = HeapSchedule::new();
            let mut cal = CalendarSchedule::with_geometry(4, 64);
            let mut payload = 0u64;
            for _ in 0..50 {
                let t = rng.next_below(256);
                heap.schedule(Cycles(t), payload);
                cal.schedule(Cycles(t), payload);
                payload += 1;
            }
            for step in 0..2_000u64 {
                let h = heap.pop();
                let c = cal.pop();
                assert_eq!(h, c, "seed {seed} step {step}");
                let Some((now, _)) = h else { break };
                let successors = rng.next_below(3);
                for _ in 0..successors {
                    let delay = match rng.next_below(8) {
                        0..=5 => 1 + rng.next_below(8),   // hop-like
                        6 => 1 + rng.next_below(512),     // spin-like
                        _ => 1 + rng.next_below(1 << 20), // daemon-like
                    };
                    heap.schedule(now + Cycles(delay), payload);
                    cal.schedule(now + Cycles(delay), payload);
                    payload += 1;
                }
            }
        }
    }

    #[test]
    fn property_interleaved_cancels_match_heap() {
        // As above, but a third of scheduled events are revoked before
        // they fire — on both schedulers — so tombstone sweeping on the
        // wheel, in the overflow tier, and across refills is exercised
        // against the reference implementation.
        for seed in 0..32u64 {
            let mut rng = SplitMix64::new(0xDEAD_0000 + seed);
            let mut heap = HeapSchedule::new();
            let mut cal = CalendarSchedule::with_geometry(4, 64);
            let mut payload = 0u64;
            let mut pending: Vec<(EventHandle, EventHandle)> = Vec::new();
            for _ in 0..50 {
                let t = rng.next_below(4_000);
                pending.push((
                    heap.schedule_cancellable(Cycles(t), payload),
                    cal.schedule_cancellable(Cycles(t), payload),
                ));
                payload += 1;
            }
            for step in 0..2_000u64 {
                if !pending.is_empty() && rng.next_below(3) == 0 {
                    let victim = rng.next_below(pending.len() as u64) as usize;
                    let (hh, ch) = pending.swap_remove(victim);
                    assert_eq!(heap.cancel(hh), cal.cancel(ch), "seed {seed} step {step}");
                } else {
                    let h = heap.pop();
                    let c = cal.pop();
                    assert_eq!(h, c, "seed {seed} step {step}");
                    assert_eq!(heap.len(), cal.len(), "seed {seed} step {step}");
                    let Some((now, _)) = h else { break };
                    for _ in 0..rng.next_below(3) {
                        let delay = 1 + rng.next_below(600);
                        pending.push((
                            heap.schedule_cancellable(now + Cycles(delay), payload),
                            cal.schedule_cancellable(now + Cycles(delay), payload),
                        ));
                        payload += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn property_mixed_inline_and_cancellable_match_heap() {
        // Both storage tiers at once: plain (inline) and cancellable
        // (pooled) events interleave on the same wheel and overflow heap,
        // with a third of the cancellable ones revoked before firing.
        for seed in 0..32u64 {
            let mut rng = SplitMix64::new(0x4D12_0000 + seed);
            let mut heap = HeapSchedule::new();
            let mut cal = CalendarSchedule::with_geometry(4, 64);
            let mut payload = 0u64;
            let mut pending: Vec<(EventHandle, EventHandle)> = Vec::new();
            for _ in 0..60 {
                let t = rng.next_below(4_000);
                if rng.next_below(2) == 0 {
                    heap.schedule(Cycles(t), payload);
                    cal.schedule(Cycles(t), payload);
                } else {
                    pending.push((
                        heap.schedule_cancellable(Cycles(t), payload),
                        cal.schedule_cancellable(Cycles(t), payload),
                    ));
                }
                payload += 1;
            }
            for step in 0..2_000u64 {
                if !pending.is_empty() && rng.next_below(4) == 0 {
                    let victim = rng.next_below(pending.len() as u64) as usize;
                    let (hh, ch) = pending.swap_remove(victim);
                    assert_eq!(heap.cancel(hh), cal.cancel(ch), "seed {seed} step {step}");
                } else {
                    let h = heap.pop();
                    let c = cal.pop();
                    assert_eq!(h, c, "seed {seed} step {step}");
                    assert_eq!(heap.len(), cal.len(), "seed {seed} step {step}");
                    assert_eq!(heap.peek_time(), cal.peek_time(), "seed {seed} step {step}");
                    let Some((now, _)) = h else { break };
                    for _ in 0..rng.next_below(3) {
                        let delay = 1 + rng.next_below(600);
                        if rng.next_below(2) == 0 {
                            heap.schedule(now + Cycles(delay), payload);
                            cal.schedule(now + Cycles(delay), payload);
                        } else {
                            pending.push((
                                heap.schedule_cancellable(now + Cycles(delay), payload),
                                cal.schedule_cancellable(now + Cycles(delay), payload),
                            ));
                        }
                        payload += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn property_len_and_peek_agree_with_heap() {
        let mut rng = SplitMix64::new(0x1DE5);
        let mut heap = HeapSchedule::new();
        let mut cal = CalendarSchedule::with_geometry(8, 32);
        for i in 0..500u64 {
            let t = rng.next_below(1 << 16);
            heap.schedule(Cycles(t), i);
            cal.schedule(Cycles(t), i);
            assert_eq!(heap.len(), cal.len());
            assert_eq!(heap.peek_time(), cal.peek_time());
            if rng.next_below(3) == 0 {
                assert_eq!(heap.pop(), cal.pop());
            }
        }
        assert_equivalent_drain(&mut heap, &mut cal, "len/peek property");
    }

    #[test]
    fn stats_count_spills_and_wheel_peak() {
        let mut q: CalendarSchedule<u32> = CalendarSchedule::with_geometry(4, 4);
        q.schedule(Cycles(1), 0); // wheel
        q.schedule(Cycles(2), 1); // wheel
        q.schedule(Cycles(10_000), 2); // beyond the 16-cycle horizon
        let s = EventSchedule::stats(&q);
        assert_eq!(s.scheduled, 3);
        assert_eq!(s.overflow_spills, 1);
        assert_eq!(s.wheel_peak, 2);
        assert_eq!(s.pending_peak, 3);
        while q.pop().is_some() {}
        let s = EventSchedule::stats(&q);
        assert_eq!(s.popped, 3);
        assert_eq!(
            s.wheel_peak, 2,
            "refill of a lone event does not raise the peak"
        );
    }

    #[test]
    fn cancelled_overflow_events_never_migrate() {
        let mut q: CalendarSchedule<u32> = CalendarSchedule::with_geometry(4, 4);
        q.schedule(Cycles(1), 0);
        let doomed = q.schedule_cancellable(Cycles(1_000), 1);
        q.schedule(Cycles(1_000), 2);
        assert_eq!(q.overflow_len(), 2);
        assert!(q.cancel(doomed));
        assert_eq!(q.overflow_len(), 1, "cancel releases overflow occupancy");
        assert_eq!(q.pop(), Some((Cycles(1), 0)));
        assert_eq!(q.pop(), Some((Cycles(1_000), 2)));
        assert_eq!(q.pop(), None);
        let s = EventSchedule::stats(&q);
        assert_eq!((s.popped, s.cancelled), (2, 1));
    }

    #[test]
    fn cancelled_wheel_events_release_occupancy_immediately() {
        let mut q: CalendarSchedule<u32> = CalendarSchedule::new();
        let a = q.schedule_cancellable(Cycles(3), 0);
        assert!(q.cancel(a));
        // The freed slot is recycled: occupancy peaks at 1, not 2, even
        // though the tombstone still sits in day 3's bucket.
        q.schedule(Cycles(3), 1);
        let s = EventSchedule::stats(&q);
        assert_eq!(s.pending_peak, 1);
        assert_eq!(s.wheel_peak, 1);
        assert_eq!(q.pop(), Some((Cycles(3), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn buckets_recycle_without_allocation_growth() {
        // Steady-state hold pattern: capacity stabilizes, lengths return
        // to zero, and scheduled_total keeps counting.
        let mut q: CalendarSchedule<u64> = CalendarSchedule::with_geometry(4, 16);
        let mut now = Cycles::ZERO;
        for i in 0..10_000u64 {
            q.schedule(now + Cycles(1 + i % 60), i);
            let (t, _) = q.pop().expect("held one event");
            now = t;
        }
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 10_000);
    }
}
