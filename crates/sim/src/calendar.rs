//! Calendar-queue pending-event set: a bucketed wheel over [`SimTime`]
//! with an overflow tier.
//!
//! The wheel divides simulated time into fixed-width *days* (a power of
//! two of cycles each) and keeps one bucket per day for the next
//! `days` days. Scheduling an event within that horizon is an append to
//! its day's bucket; scheduling beyond it pushes into an overflow
//! binary heap that is drained into the wheel as the cursor advances.
//! Popping takes the next event from the cursor's bucket, sorting the
//! bucket lazily on first touch. Because the Cedar machine schedules
//! almost every event a handful of cycles ahead (switch hops, module
//! service, spin periods are all 1–8 cycles), nearly all traffic stays
//! on the O(1) wheel path and the heap's O(log n) per-event cost — with
//! n in the tens of thousands during a 32-processor campaign — drops
//! out of the simulator's hot loop.
//!
//! Ordering is identical to [`HeapSchedule`](crate::queue::HeapSchedule):
//! ascending fire time, ties broken by scheduling sequence. Buckets sort
//! by `(time, seq)` descending and pop from the back; cross-bucket order
//! holds because a bucket only ever contains events of a single pending
//! day (events of an earlier day than the cursor's — legal but unusual —
//! are clamped into the cursor's bucket, where the in-bucket sort still
//! pops them first). Bucket vectors are retained across wheel rotations,
//! so steady-state operation performs no allocation at all.

use std::collections::BinaryHeap;

use crate::queue::{EventSchedule, Pending, QueueStats};
use crate::time::SimTime;

/// Default log2 of the day width: one-cycle days. A bucket then only
/// ever holds simultaneous events, whose tie-break sequences arrive in
/// ascending order — so the lazy bucket sort runs on an already-ordered
/// run and costs O(k), keeping the per-event cost flat instead of
/// re-paying the heap's O(log n) inside large buckets.
const DEFAULT_DAY_SHIFT: u32 = 0;

/// Default number of days on the wheel (must be a power of two).
/// 256 one-cycle days keep the whole bucket array within ~8 KiB, so the
/// cursor scan stays in L1 — measurements show the wheel's cache
/// footprint, not the bucket sorts, dominates throughput (256 days run
/// ~2.5× faster than 4096 on the packet-dense network workload). The
/// 256-cycle horizon still covers every hop, service and occupancy
/// constant in the machine model; longer rebookings (spin periods,
/// daemon wakeups, serial sections) take the overflow tier, which the
/// wheel drains as the cursor advances.
const DEFAULT_DAYS: u64 = 256;

/// One day's worth of pending events.
///
/// `items` is sorted by `(time, seq)` descending whenever `sorted` is
/// true, so the next event to fire is at the back. Inserts that keep the
/// order cheap-append; inserts that break it defer to one lazy
/// `sort_unstable` on the next pop from this bucket.
struct Bucket<E> {
    items: Vec<(SimTime, u64, E)>,
    sorted: bool,
}

impl<E> Bucket<E> {
    fn new() -> Self {
        Bucket {
            items: Vec::new(),
            sorted: true,
        }
    }

    fn push(&mut self, at: SimTime, seq: u64, payload: E) {
        if self.sorted {
            if let Some(last) = self.items.last() {
                if (at, seq) > (last.0, last.1) {
                    self.sorted = false;
                }
            }
        }
        self.items.push((at, seq, payload));
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.items
                .sort_unstable_by_key(|it| std::cmp::Reverse((it.0, it.1)));
            self.sorted = true;
        }
    }

    /// Inserts preserving descending order. Used for the cursor's own
    /// bucket, where a lazy re-sort would otherwise run once per
    /// interleaved insert; a binary-search insert keeps the drain O(1)
    /// per pop.
    fn insert_sorted(&mut self, at: SimTime, seq: u64, payload: E) {
        if !self.sorted {
            // Bucket was bulk-filled and not yet drained: stay lazy.
            self.items.push((at, seq, payload));
            return;
        }
        let pos = self.items.partition_point(|it| (it.0, it.1) > (at, seq));
        self.items.insert(pos, (at, seq, payload));
    }
}

/// A calendar queue: O(1) amortized schedule and pop for the near-future
/// event traffic that dominates discrete-event simulation.
///
/// Selected by default in [`EventQueue`](crate::EventQueue); construct
/// directly (or via `CEDAR_SCHED=calendar`) when the choice must be
/// explicit. Ordering semantics are exactly those of
/// [`EventSchedule`]: `(fire time, scheduling sequence)` ascending.
///
/// # Example
///
/// ```
/// use cedar_sim::calendar::CalendarSchedule;
/// use cedar_sim::{Cycles, EventSchedule};
///
/// let mut q = CalendarSchedule::new();
/// q.schedule(Cycles(5), "later");
/// q.schedule(Cycles(5), "tie-broken-second");
/// q.schedule(Cycles(1), "first");
/// assert_eq!(q.pop(), Some((Cycles(1), "first")));
/// assert_eq!(q.pop(), Some((Cycles(5), "later")));
/// assert_eq!(q.pop(), Some((Cycles(5), "tie-broken-second")));
/// ```
pub struct CalendarSchedule<E> {
    buckets: Vec<Bucket<E>>,
    /// `buckets.len() - 1`; bucket count is a power of two so the day →
    /// bucket map is a mask, not a modulo.
    day_mask: u64,
    /// log2 of cycles per day; the time → day map is a shift, not a div.
    day_shift: u32,
    /// The day the pop cursor is on. Every wheel event's day is in
    /// `[cur_day, cur_day + days)` (earlier-day strays are clamped into
    /// `cur_day`'s bucket at insert).
    cur_day: u64,
    /// Events currently on the wheel (excludes overflow).
    wheel_len: usize,
    /// Events at or beyond the wheel horizon, drained in as the cursor
    /// advances.
    overflow: BinaryHeap<Pending<E>>,
    next_seq: u64,
    stats: QueueStats,
    last_popped: SimTime,
}

impl<E> CalendarSchedule<E> {
    /// Creates an empty queue with the default geometry (one-cycle
    /// days, 256-day wheel).
    pub fn new() -> Self {
        Self::with_geometry(1 << DEFAULT_DAY_SHIFT, DEFAULT_DAYS)
    }

    /// Creates an empty queue with `day_width` cycles per bucket and a
    /// `days`-bucket wheel. Both must be powers of two.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or not a power of two.
    pub fn with_geometry(day_width: u64, days: u64) -> Self {
        assert!(
            day_width.is_power_of_two(),
            "day width must be a power of two, got {day_width}"
        );
        assert!(
            days.is_power_of_two(),
            "day count must be a power of two, got {days}"
        );
        CalendarSchedule {
            buckets: (0..days).map(|_| Bucket::new()).collect(),
            day_mask: days - 1,
            day_shift: day_width.trailing_zeros(),
            cur_day: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            stats: QueueStats::new(),
            last_popped: SimTime::ZERO,
        }
    }

    /// Number of days on the wheel.
    fn days(&self) -> u64 {
        self.day_mask + 1
    }

    /// The day `t` falls on.
    fn day_of(&self, t: SimTime) -> u64 {
        t.0 >> self.day_shift
    }

    /// `true` if `day` falls inside the wheel's current coverage,
    /// `[cur_day, cur_day + days)`. When `cur_day + days` overflows
    /// `u64`, the window `[cur_day, u64::MAX]` is no larger than the
    /// wheel, so every remaining day fits.
    fn fits_wheel(&self, day: u64) -> bool {
        match self.cur_day.checked_add(self.days()) {
            Some(horizon) => day < horizon,
            None => true,
        }
    }

    /// Moves every overflow event whose day now falls inside the horizon
    /// onto the wheel. Called whenever `cur_day` changes, preserving the
    /// invariant that overflow events are strictly beyond the wheel.
    fn refill_from_overflow(&mut self) {
        while let Some(head) = self.overflow.peek() {
            if !self.fits_wheel(self.day_of(head.at)) {
                break;
            }
            let p = self.overflow.pop().expect("peeked above");
            let day = self.day_of(p.at).max(self.cur_day);
            let idx = (day & self.day_mask) as usize;
            self.buckets[idx].push(p.at, p.seq, p.payload);
            self.wheel_len += 1;
            self.stats.wheel_peak = self.stats.wheel_peak.max(self.wheel_len as u64);
        }
    }

    /// Events pending in the overflow tier (diagnostics and tests).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }
}

impl<E> EventSchedule<E> for CalendarSchedule<E> {
    fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let day = self.day_of(at);
        if !self.fits_wheel(day) {
            self.overflow.push(Pending { at, seq, payload });
            self.stats.overflow_spills += 1;
        } else {
            let day = day.max(self.cur_day);
            let idx = (day & self.day_mask) as usize;
            if day == self.cur_day {
                self.buckets[idx].insert_sorted(at, seq, payload);
            } else {
                self.buckets[idx].push(at, seq, payload);
            }
            self.wheel_len += 1;
            self.stats.wheel_peak = self.stats.wheel_peak.max(self.wheel_len as u64);
        }
        self.stats.on_schedule(
            at.0.saturating_sub(self.last_popped.0),
            self.wheel_len + self.overflow.len(),
        );
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if self.wheel_len == 0 {
                // Wheel empty: jump the cursor to the overflow head's day
                // and pull its cohort in (or report empty).
                let head_day = self.day_of(self.overflow.peek()?.at);
                self.cur_day = head_day;
                self.refill_from_overflow();
                debug_assert!(self.wheel_len > 0, "refill pulled nothing despite head");
                continue;
            }
            let idx = (self.cur_day & self.day_mask) as usize;
            if self.buckets[idx].items.is_empty() {
                self.cur_day += 1;
                self.refill_from_overflow();
                continue;
            }
            let bucket = &mut self.buckets[idx];
            bucket.ensure_sorted();
            let (at, _seq, payload) = bucket.items.pop().expect("checked non-empty");
            self.wheel_len -= 1;
            self.stats.popped += 1;
            self.last_popped = at;
            return Some((at, payload));
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        if self.wheel_len > 0 {
            // The first non-empty bucket from the cursor holds the global
            // minimum (single-day buckets; overflow is beyond the wheel).
            for d in 0..self.days() {
                let idx = ((self.cur_day + d) & self.day_mask) as usize;
                let bucket = &self.buckets[idx];
                if bucket.items.is_empty() {
                    continue;
                }
                return if bucket.sorted {
                    bucket.items.last().map(|item| item.0)
                } else {
                    bucket.items.iter().map(|item| item.0).min()
                };
            }
            unreachable!("wheel_len > 0 but every bucket is empty");
        }
        self.overflow.peek().map(|p| p.at)
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    fn scheduled_total(&self) -> u64 {
        self.stats.scheduled
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

impl<E> Default for CalendarSchedule<E> {
    fn default() -> Self {
        CalendarSchedule::new()
    }
}

impl<E> std::fmt::Debug for CalendarSchedule<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarSchedule")
            .field("days", &self.days())
            .field("day_width", &(1u64 << self.day_shift))
            .field("cur_day", &self.cur_day)
            .field("wheel", &self.wheel_len)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::HeapSchedule;
    use crate::rng::SplitMix64;
    use crate::time::Cycles;

    /// Pops everything from both schedulers, asserting identical streams.
    fn assert_equivalent_drain(
        heap: &mut HeapSchedule<u64>,
        cal: &mut CalendarSchedule<u64>,
        context: &str,
    ) {
        loop {
            let h = heap.pop();
            let c = cal.pop();
            assert_eq!(h, c, "pop streams diverged ({context})");
            if h.is_none() {
                break;
            }
        }
    }

    #[test]
    fn overflow_events_pop_in_order() {
        // A tiny wheel (4 days of 4 cycles) forces heavy overflow use.
        let mut q: CalendarSchedule<u32> = CalendarSchedule::with_geometry(4, 4);
        for (i, t) in [100u64, 3, 50, 17, 2_000, 16, 0].iter().enumerate() {
            q.schedule(Cycles(*t), i as u32);
        }
        assert!(q.overflow_len() > 0, "test must exercise the overflow tier");
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(times, vec![0, 3, 16, 17, 50, 100, 2_000]);
    }

    #[test]
    fn overflow_ties_interleave_with_wheel_ties() {
        let mut q: CalendarSchedule<u32> = CalendarSchedule::with_geometry(4, 4);
        // Both time-1000 events start in the overflow tier and migrate to
        // the wheel as the cursor advances; insertion order must survive
        // the migration.
        q.schedule(Cycles(1_000), 0);
        q.schedule(Cycles(1), 1);
        q.schedule(Cycles(1_000), 2);
        assert_eq!(q.pop(), Some((Cycles(1), 1)));
        assert_eq!(q.pop(), Some((Cycles(1_000), 0)));
        assert_eq!(q.pop(), Some((Cycles(1_000), 2)));
    }

    #[test]
    fn earlier_than_cursor_inserts_still_pop_first() {
        let mut q: CalendarSchedule<u32> = CalendarSchedule::new();
        q.schedule(Cycles(500), 0);
        assert_eq!(q.pop(), Some((Cycles(500), 0)));
        // The cursor now sits at day 125; scheduling in its past is
        // legal for the queue (the machine never does it) and must pop
        // before anything later.
        q.schedule(Cycles(600), 1);
        q.schedule(Cycles(10), 2);
        assert_eq!(q.pop(), Some((Cycles(10), 2)));
        assert_eq!(q.pop(), Some((Cycles(600), 1)));
    }

    #[test]
    fn simtime_extremes() {
        let mut q: CalendarSchedule<u32> = CalendarSchedule::new();
        q.schedule(Cycles::MAX, 0);
        q.schedule(Cycles::ZERO, 1);
        q.schedule(Cycles(u64::MAX - 1), 2);
        q.schedule(Cycles::MAX, 3);
        assert_eq!(q.peek_time(), Some(Cycles::ZERO));
        assert_eq!(q.pop(), Some((Cycles::ZERO, 1)));
        assert_eq!(q.pop(), Some((Cycles(u64::MAX - 1), 2)));
        assert_eq!(q.pop(), Some((Cycles::MAX, 0)));
        assert_eq!(q.pop(), Some((Cycles::MAX, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn property_pop_order_matches_heap_on_random_schedules() {
        for seed in 0..64u64 {
            let mut rng = SplitMix64::new(0xCA1E_0000 + seed);
            let mut heap = HeapSchedule::new();
            let mut cal = CalendarSchedule::new();
            // Mixed near/far/tied times, including u64::MAX extremes.
            let n = 1 + rng.next_below(400);
            for i in 0..n {
                let t = match rng.next_below(10) {
                    0..=5 => rng.next_below(1 << 12),  // on-wheel
                    6 | 7 => rng.next_below(1 << 30),  // overflow
                    8 => 7,                            // heavy tie
                    _ => u64::MAX - rng.next_below(2), // extremes
                };
                heap.schedule(Cycles(t), i);
                cal.schedule(Cycles(t), i);
            }
            assert_equivalent_drain(&mut heap, &mut cal, &format!("seed {seed}"));
        }
    }

    #[test]
    fn property_interleaved_ops_match_heap() {
        // The machine's actual usage pattern: pop one, schedule a few
        // near-future successors, repeat. Exercises cursor advance,
        // same-bucket insertion after sort, and overflow refill.
        for seed in 0..32u64 {
            let mut rng = SplitMix64::new(0xBEE5_0000 + seed);
            let mut heap = HeapSchedule::new();
            let mut cal = CalendarSchedule::with_geometry(4, 64);
            let mut payload = 0u64;
            for _ in 0..50 {
                let t = rng.next_below(256);
                heap.schedule(Cycles(t), payload);
                cal.schedule(Cycles(t), payload);
                payload += 1;
            }
            for step in 0..2_000u64 {
                let h = heap.pop();
                let c = cal.pop();
                assert_eq!(h, c, "seed {seed} step {step}");
                let Some((now, _)) = h else { break };
                let successors = rng.next_below(3);
                for _ in 0..successors {
                    let delay = match rng.next_below(8) {
                        0..=5 => 1 + rng.next_below(8),   // hop-like
                        6 => 1 + rng.next_below(512),     // spin-like
                        _ => 1 + rng.next_below(1 << 20), // daemon-like
                    };
                    heap.schedule(now + Cycles(delay), payload);
                    cal.schedule(now + Cycles(delay), payload);
                    payload += 1;
                }
            }
        }
    }

    #[test]
    fn property_len_and_peek_agree_with_heap() {
        let mut rng = SplitMix64::new(0x1DE5);
        let mut heap = HeapSchedule::new();
        let mut cal = CalendarSchedule::with_geometry(8, 32);
        for i in 0..500u64 {
            let t = rng.next_below(1 << 16);
            heap.schedule(Cycles(t), i);
            cal.schedule(Cycles(t), i);
            assert_eq!(heap.len(), cal.len());
            assert_eq!(heap.peek_time(), cal.peek_time());
            if rng.next_below(3) == 0 {
                assert_eq!(heap.pop(), cal.pop());
            }
        }
        assert_equivalent_drain(&mut heap, &mut cal, "len/peek property");
    }

    #[test]
    fn stats_count_spills_and_wheel_peak() {
        let mut q: CalendarSchedule<u32> = CalendarSchedule::with_geometry(4, 4);
        q.schedule(Cycles(1), 0); // wheel
        q.schedule(Cycles(2), 1); // wheel
        q.schedule(Cycles(10_000), 2); // beyond the 16-cycle horizon
        let s = EventSchedule::stats(&q);
        assert_eq!(s.scheduled, 3);
        assert_eq!(s.overflow_spills, 1);
        assert_eq!(s.wheel_peak, 2);
        assert_eq!(s.pending_peak, 3);
        while q.pop().is_some() {}
        let s = EventSchedule::stats(&q);
        assert_eq!(s.popped, 3);
        assert_eq!(
            s.wheel_peak, 2,
            "refill of a lone event does not raise the peak"
        );
    }

    #[test]
    fn buckets_recycle_without_allocation_growth() {
        // Steady-state hold pattern: capacity stabilizes, lengths return
        // to zero, and scheduled_total keeps counting.
        let mut q: CalendarSchedule<u64> = CalendarSchedule::with_geometry(4, 16);
        let mut now = Cycles::ZERO;
        for i in 0..10_000u64 {
            q.schedule(now + Cycles(1 + i % 60), i);
            let (t, _) = q.pop().expect("held one event");
            now = t;
        }
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 10_000);
    }
}
