//! The run manifest: the campaign's self-measurement, applied to the
//! simulator the way the paper applied cedarhpm to Cedar.
//!
//! After a campaign, [`write`] drops `RUN_manifest.json` next to the
//! tables' CSVs: the typed [`RunOptions`] the run was configured with
//! (plus their stable fingerprint), best-effort git provenance, event
//! totals, the merged counter rollup (per-class event counts, queue and
//! outbox statistics, hold-latency histogram), per-phase wall-clock, and
//! the worker pool's busy/idle accounting. At `CEDAR_OBS=full` a
//! `RUN_telemetry.jsonl` stream rides along — one JSON line per
//! `(application, configuration)` run with that run's own counters.
//!
//! Every field except the `*_ns` wall-clock timings, `utilization`, the
//! `git` line, and the `cache` traffic object is deterministic for a
//! fixed configuration, so two manifests from identical runs diff clean
//! once timings are masked. (The `cache` object varies by design: a cold
//! campaign reports misses where a warm one reports hits, even though
//! the measurements themselves are byte-identical.)

use std::io;
use std::path::{Path, PathBuf};

use cedar_core::suite::SuiteResult;
use cedar_obs::json::{self, Obj};
use cedar_obs::{Counters, RunOptions, TelemetryLevel};

/// Where campaign artifacts land when `opts.output_dir` is unset: the
/// workspace-root `results/`, regardless of the binary's cwd.
fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn counters_obj(counters: &Counters) -> String {
    let mut o = Obj::new();
    for (name, value) in counters.iter() {
        o.u64(name, value);
    }
    o.finish()
}

fn options_obj(opts: &RunOptions) -> String {
    let mut o = Obj::new();
    o.str("scheduler", opts.scheduler.as_str());
    o.opt_u64("workers", opts.workers.map(|w| w as u64));
    o.u64("shrink", opts.shrink as u64);
    o.bool("smoke", opts.smoke);
    o.str("telemetry", opts.telemetry.as_str());
    o.str("faults", &opts.faults.fingerprint());
    o.str("cache", opts.cache.as_str());
    o.finish()
}

/// Where artifacts for `opts` land: its `output_dir` override, else the
/// workspace-root `results/`. Shared by the manifest writer and the
/// sweep binaries so every campaign file ends up in one place.
pub fn artifact_dir(opts: &RunOptions) -> PathBuf {
    opts.output_dir.clone().unwrap_or_else(default_dir)
}

/// Renders `RUN_manifest.json` for a finished campaign.
pub fn manifest_json(suite: &SuiteResult, opts: &RunOptions) -> String {
    let t = &suite.telemetry;
    let runs: usize = suite.apps.iter().map(|a| a.runs.len()).sum();
    let mut o = Obj::new();
    o.str("schema", "cedar-obs/1");
    o.str(
        "fingerprint",
        &format!("{:016x}", json::fnv1a(opts.fingerprint_seed().as_bytes())),
    );
    o.raw("options", options_obj(opts));
    o.u64(
        "seed",
        cedar_core::SimConfig::cedar(cedar_hw::Configuration::P1).seed,
    );
    match json::git_describe() {
        Some(d) => o.str("git", &d),
        None => o.raw("git", "null"),
    };
    o.raw("apps", json::str_array(suite.apps.iter().map(|a| a.app)));
    o.u64("runs", runs as u64);
    o.u64("events_total", t.events_total());
    o.u64("wall_ns", t.wall_ns);
    o.u64("setup_ns", t.setup_ns);
    o.u64("run_ns", t.run_ns);
    o.u64("breakdown_ns", t.breakdown_ns);
    match &t.pool {
        Some(p) => {
            let mut po = Obj::new();
            po.u64("workers", p.workers as u64);
            po.u64("jobs", p.jobs as u64);
            po.u64("busy_ns", p.busy_ns);
            po.u64("wall_ns", p.wall_ns);
            po.u64("idle_ns", p.idle_ns());
            po.f64("utilization", p.utilization());
            o.raw("pool", po.finish())
        }
        None => o.raw("pool", "null"),
    };
    match &t.cache {
        Some(c) => {
            let mut co = Obj::new();
            co.str("mode", c.mode.as_str());
            co.u64("hits", c.hits);
            co.u64("misses", c.misses);
            co.u64("writes", c.writes);
            co.u64("bypasses", c.bypasses);
            // Hot-tier fields follow the base traffic so existing
            // prefix-anchored consumers (the CI soundness grep) keep
            // matching byte-for-byte.
            co.u64("hot_hits", c.hot_hits);
            co.u64("hot_misses", c.hot_misses);
            co.u64("hot_evictions", c.hot_evictions);
            co.f64("hit_rate", c.hit_rate());
            o.raw("cache", co.finish())
        }
        None => o.raw("cache", "null"),
    };
    o.raw("counters", counters_obj(&t.counters));
    let mut out = o.finish();
    out.push('\n');
    out
}

/// Renders the `RUN_telemetry.jsonl` stream: one JSON line per run, in
/// grid order, carrying that run's own counters and phase timings.
pub fn telemetry_jsonl(suite: &SuiteResult) -> String {
    let mut out = String::new();
    for app in &suite.apps {
        for r in &app.runs {
            let mut o = Obj::new();
            o.str("app", r.app);
            o.str("configuration", &format!("{:?}", r.configuration));
            o.u64("completion_time", r.completion_time.0);
            o.u64("events", r.events);
            o.u64("setup_ns", r.stats.setup_ns);
            o.u64("run_ns", r.stats.run_ns);
            o.u64("breakdown_ns", r.stats.breakdown_ns);
            o.raw("counters", counters_obj(&r.stats.counters));
            out.push_str(&o.finish());
            out.push('\n');
        }
    }
    out
}

/// Writes the manifest (and, at [`TelemetryLevel::Full`], the JSONL
/// stream) under `opts.output_dir` or the workspace `results/`. A no-op
/// returning an empty list at [`TelemetryLevel::Off`]. Returns the paths
/// written.
pub fn write(suite: &SuiteResult, opts: &RunOptions) -> io::Result<Vec<PathBuf>> {
    if opts.telemetry == TelemetryLevel::Off {
        return Ok(Vec::new());
    }
    let dir = artifact_dir(opts);
    std::fs::create_dir_all(&dir)?;
    let mut written = Vec::new();
    let manifest = dir.join("RUN_manifest.json");
    std::fs::write(&manifest, manifest_json(suite, opts))?;
    written.push(manifest);
    if opts.telemetry == TelemetryLevel::Full {
        let stream = dir.join("RUN_telemetry.jsonl");
        std::fs::write(&stream, telemetry_jsonl(suite))?;
        written.push(stream);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_hw::Configuration;

    fn tiny_suite(opts: &RunOptions) -> SuiteResult {
        let apps = vec![cedar_apps::synthetic::uniform_xdoall(1, 2, 8, 120, 4)];
        SuiteResult::run_sequential(&apps, &[Configuration::P1, Configuration::P4], opts)
            .expect("tiny campaign")
    }

    #[test]
    fn manifest_carries_options_and_counters() {
        let opts = RunOptions::default().with_shrink(4);
        let suite = tiny_suite(&opts);
        let m = manifest_json(&suite, &opts);
        assert!(m.starts_with("{\"schema\":\"cedar-obs/1\""));
        assert!(m.contains("\"scheduler\":\"calendar\""));
        assert!(m.contains("\"shrink\":4"));
        assert!(m.contains("\"events.total\":"));
        assert!(m.contains("\"queue.scheduled\":"));
        assert!(m.contains("\"pool\":null"));
        assert!(m.contains("\"cache\":null"));
        assert!(m.contains("\"cache\":\"off\""));
        assert!(m.ends_with("}\n"));
    }

    #[test]
    fn manifest_reports_cache_traffic_when_enabled() {
        let dir = std::env::temp_dir().join(format!("cedar-manifest-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunOptions::default()
            .with_cache(cedar_obs::CacheMode::ReadWrite)
            .with_output_dir(&dir);
        let suite = tiny_suite(&opts);
        let m = manifest_json(&suite, &opts);
        assert!(m.contains("\"cache\":\"rw\""));
        assert!(m.contains("\"cache\":{\"mode\":\"rw\",\"hits\":0,\"misses\":2,\"writes\":2"));
        let warm = tiny_suite(&opts);
        let m2 = manifest_json(&warm, &opts);
        assert!(
            m2.contains("\"hits\":2,\"misses\":0,\"writes\":0"),
            "second identical campaign is all hits: {m2}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_has_one_line_per_run() {
        let opts = RunOptions::default();
        let suite = tiny_suite(&opts);
        let s = telemetry_jsonl(&suite);
        assert_eq!(s.lines().count(), 2);
        for line in s.lines() {
            assert!(line.starts_with("{\"app\":"));
            assert!(line.contains("\"counters\":{"));
        }
    }

    #[test]
    fn off_level_writes_nothing() {
        let opts = RunOptions::default().with_telemetry(TelemetryLevel::Off);
        let suite = tiny_suite(&opts);
        assert!(write(&suite, &opts).unwrap().is_empty());
    }
}
