//! Benchmark-regression gate: compares a fresh `BENCH_*.json` against
//! the committed baseline and fails on runtime regressions.
//!
//! The harness emits a fixed, self-authored JSON shape (see
//! [`harness::Harness::to_json`](crate::harness)), so the reader here is
//! a minimal scanner for `"name"`/`"median_ns"` pairs rather than a
//! general JSON parser — the workspace stays zero-dependency.
//!
//! Two checks, driven by `scripts/bench_check.sh` in CI:
//!
//! 1. **Suite regression** — the fresh `suite/mini_campaign` median must
//!    not exceed the baseline median by more than the tolerance
//!    (default 15%). Catches simulator-wide slowdowns.
//! 2. **Scheduler margin** — within the *same fresh run* (so the check
//!    is machine-speed independent), the calendar queue must beat the
//!    heap by at least 1.3x on the event-dense network workload.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Allowed suite-runtime growth over the baseline: +15%.
pub const SUITE_TOLERANCE: f64 = 0.15;

/// Required calendar-over-heap speedup on `sched/net_dense`.
pub const SCHED_MARGIN: f64 = 1.3;

/// Allowed fault-path runtime growth over the baseline: +15%. Keeps
/// the injection machinery (driver draws, extra fault events, scaled
/// lock acquires) honest the same way the suite check keeps the clean
/// simulator honest.
pub const FAULTS_TOLERANCE: f64 = 0.15;

/// Extracts `benchmark name -> median_ns` from harness-format JSON.
///
/// Scans for `"name":"<s>"` followed by `"median_ns":<f>` within the
/// same benchmark object. Returns an error if the text yields no pairs,
/// so a truncated or hand-mangled file fails loudly instead of passing
/// an empty gate.
pub fn medians(json: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let mut rest = json;
    while let Some(i) = rest.find("\"name\":\"") {
        rest = &rest[i + 8..];
        let end = rest
            .find('"')
            .ok_or_else(|| "unterminated name string".to_string())?;
        let name = &rest[..end];
        rest = &rest[end..];
        let j = rest
            .find("\"median_ns\":")
            .ok_or_else(|| format!("benchmark `{name}` has no median_ns"))?;
        rest = &rest[j + 12..];
        let num_end = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        let value: f64 = rest[..num_end]
            .parse()
            .map_err(|e| format!("bad median_ns for `{name}`: {e}"))?;
        out.insert(name.to_string(), value);
    }
    if out.is_empty() {
        return Err("no benchmarks found in JSON".to_string());
    }
    Ok(out)
}

fn get(map: &BTreeMap<String, f64>, key: &str, which: &str) -> Result<f64, String> {
    map.get(key)
        .copied()
        .ok_or_else(|| format!("{which} JSON is missing `{key}`"))
}

/// Runs both gate checks. Returns a human-readable report on success and
/// the list of violations on failure.
pub fn check(fresh: &str, baseline: &str) -> Result<String, String> {
    let fresh = medians(fresh).map_err(|e| format!("fresh results: {e}"))?;
    let baseline = medians(baseline).map_err(|e| format!("baseline: {e}"))?;

    let mut report = String::new();
    let mut failures = String::new();

    let suite_now = get(&fresh, "suite/mini_campaign", "fresh")?;
    let suite_base = get(&baseline, "suite/mini_campaign", "baseline")?;
    let growth = suite_now / suite_base - 1.0;
    writeln!(
        report,
        "suite/mini_campaign: {:.1} ms vs baseline {:.1} ms ({:+.1}%, budget {:+.0}%)",
        suite_now / 1e6,
        suite_base / 1e6,
        growth * 100.0,
        SUITE_TOLERANCE * 100.0
    )
    .unwrap();
    if growth > SUITE_TOLERANCE {
        writeln!(
            failures,
            "suite runtime regressed {:.1}% (budget {:.0}%); if the slowdown is \
             intentional, refresh results/bench_baseline.json (see scripts/bench_check.sh)",
            growth * 100.0,
            SUITE_TOLERANCE * 100.0
        )
        .unwrap();
    }

    let faults_now = get(&fresh, "faults/flo52_p8/calendar", "fresh")?;
    let faults_base = get(&baseline, "faults/flo52_p8/calendar", "baseline")?;
    let faults_growth = faults_now / faults_base - 1.0;
    writeln!(
        report,
        "faults/flo52_p8: {:.1} ms vs baseline {:.1} ms ({:+.1}%, budget {:+.0}%)",
        faults_now / 1e6,
        faults_base / 1e6,
        faults_growth * 100.0,
        FAULTS_TOLERANCE * 100.0
    )
    .unwrap();
    if faults_growth > FAULTS_TOLERANCE {
        writeln!(
            failures,
            "fault-path runtime regressed {:.1}% (budget {:.0}%); if the slowdown is \
             intentional, refresh results/bench_baseline.json (see scripts/bench_check.sh)",
            faults_growth * 100.0,
            FAULTS_TOLERANCE * 100.0
        )
        .unwrap();
    }

    let heap = get(&fresh, "sched/net_dense/heap", "fresh")?;
    let calendar = get(&fresh, "sched/net_dense/calendar", "fresh")?;
    let speedup = heap / calendar;
    writeln!(
        report,
        "sched/net_dense: calendar {:.1} ms vs heap {:.1} ms ({speedup:.2}x, floor {SCHED_MARGIN}x)",
        calendar / 1e6,
        heap / 1e6,
    )
    .unwrap();
    if speedup < SCHED_MARGIN {
        writeln!(
            failures,
            "calendar queue is only {speedup:.2}x over the heap on sched/net_dense \
             (floor {SCHED_MARGIN}x)"
        )
        .unwrap();
    }

    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!("{report}\nFAIL:\n{failures}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(entries: &[(&str, f64)]) -> String {
        let body: Vec<String> = entries
            .iter()
            .map(|(n, m)| format!("{{\"name\":\"{n}\",\"iters\":3,\"median_ns\":{m:.1}}}"))
            .collect();
        format!(
            "{{\"suite\":\"scheduler\",\"benchmarks\":[{}]}}",
            body.join(",")
        )
    }

    #[test]
    fn medians_roundtrip_harness_shape() {
        let m = medians(&json(&[("a/b", 12.5), ("c", 7.0)])).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m["a/b"], 12.5);
        assert_eq!(m["c"], 7.0);
    }

    #[test]
    fn medians_reject_empty_and_truncated() {
        assert!(medians("{}").is_err());
        assert!(medians("{\"benchmarks\":[{\"name\":\"x\",\"iters\":3}]}").is_err());
    }

    /// Baseline with both gated medians at 100 ms.
    fn base_json() -> String {
        json(&[
            ("suite/mini_campaign", 100.0e6),
            ("faults/flo52_p8/calendar", 100.0e6),
        ])
    }

    #[test]
    fn gate_passes_within_budget() {
        let fresh = json(&[
            ("suite/mini_campaign", 110.0e6),
            ("faults/flo52_p8/calendar", 110.0e6),
            ("sched/net_dense/heap", 50.0e6),
            ("sched/net_dense/calendar", 20.0e6),
        ]);
        let report = check(&fresh, &base_json()).unwrap();
        assert!(report.contains("suite/mini_campaign"));
        assert!(report.contains("faults/flo52_p8"));
    }

    #[test]
    fn gate_fails_on_suite_regression() {
        let fresh = json(&[
            ("suite/mini_campaign", 120.0e6),
            ("faults/flo52_p8/calendar", 100.0e6),
            ("sched/net_dense/heap", 50.0e6),
            ("sched/net_dense/calendar", 20.0e6),
        ]);
        let err = check(&fresh, &base_json()).unwrap_err();
        assert!(err.contains("suite runtime regressed"), "{err}");
    }

    #[test]
    fn gate_fails_on_fault_path_regression() {
        let fresh = json(&[
            ("suite/mini_campaign", 100.0e6),
            ("faults/flo52_p8/calendar", 130.0e6),
            ("sched/net_dense/heap", 50.0e6),
            ("sched/net_dense/calendar", 20.0e6),
        ]);
        let err = check(&fresh, &base_json()).unwrap_err();
        assert!(err.contains("fault-path runtime regressed"), "{err}");
    }

    #[test]
    fn gate_fails_when_calendar_loses_margin() {
        let fresh = json(&[
            ("suite/mini_campaign", 100.0e6),
            ("faults/flo52_p8/calendar", 100.0e6),
            ("sched/net_dense/heap", 50.0e6),
            ("sched/net_dense/calendar", 45.0e6),
        ]);
        let err = check(&fresh, &base_json()).unwrap_err();
        assert!(err.contains("floor 1.3x"), "{err}");
    }

    #[test]
    fn gate_reports_missing_benchmarks() {
        let base = json(&[("other", 1.0)]);
        let fresh = json(&[("suite/mini_campaign", 1.0)]);
        let err = check(&fresh, &base).unwrap_err();
        assert!(err.contains("missing `suite/mini_campaign`"), "{err}");
    }
}
