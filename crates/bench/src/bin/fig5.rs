//! Regenerates Figure 5: the user-time breakdown for FLO52 across
//! configurations (main and helper tasks).
fn main() {
    let suite = cedar_bench::campaign();
    println!(
        "Figure 5: {}",
        cedar_report::figures::user_breakdown(suite.app("FLO52"))
    );
}
