//! Paper-vs-measured comparison: runs the campaign and prints the
//! published Table 1/3/4 numbers next to the simulator's, the executable
//! form of EXPERIMENTS.md.
fn main() {
    let suite = cedar_bench::campaign();
    println!("{}", cedar_report::paper::speedup_comparison(suite));
    println!("{}", cedar_report::paper::concurrency_comparison(suite));
    println!("{}", cedar_report::paper::contention_comparison(suite));
    println!("{}", cedar_report::paper::table3_comparison(suite));
}
