//! Regenerates Figure 3: the completion-time breakdown into
//! user/system/interrupt/spin per configuration, for every application.
fn main() {
    println!(
        "{}",
        cedar_report::figures::figure3(cedar_bench::campaign())
    );
}
