//! Regenerates Figure 8: the user-time breakdown for OCEAN across
//! configurations (main and helper tasks).
fn main() {
    let suite = cedar_bench::campaign();
    println!(
        "Figure 8: {}",
        cedar_report::figures::user_breakdown(suite.app("OCEAN"))
    );
}
