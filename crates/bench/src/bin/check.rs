//! Runs the invariant-oracle checker over the seeded corpus (or a
//! single replayed case) and writes `results/CHECK_violations.json`
//! plus a run manifest recording what was checked.
//!
//! Knobs, all through the typed options surface:
//!
//! * `BENCH_SMOKE=1` — the four-case smoke corpus at 1/64 scale (the
//!   `scripts/ci.sh` leg) instead of the full 30-case corpus at 1/16.
//! * `CEDAR_SHRINK=<n>` — override the corpus workload scale.
//! * `CEDAR_CHECK_REPLAY='app=…;procs=…;faults=…;shrink=…;seed=…'` —
//!   re-check exactly one case from a violation report's replay token.
//!
//! Exit status: 0 when every oracle holds, 1 on any violation (after
//! shrinking each to a minimal reproducer), 2 on a malformed replay
//! token.

use std::process::ExitCode;

use cedar_check::{corpus, shrink, smoke_corpus, CheckConfig, CheckOptions, CheckReport, Harness};
use cedar_core::suite::{SuiteResult, SuiteTelemetry};

fn main() -> ExitCode {
    let opts = cedar_bench::run_options();
    let check_opts = match CheckOptions::from_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let cases = match check_opts.replay {
        Some(case) => {
            eprintln!("replaying one case: {}", case.label());
            vec![case]
        }
        None => {
            let scale = if opts.shrink > 1 {
                opts.shrink
            } else if opts.smoke {
                64
            } else {
                16
            };
            if opts.smoke {
                smoke_corpus(scale)
            } else {
                corpus(scale)
            }
        }
    };

    let mut harness = Harness::new(CheckConfig::default());
    let mut violations = Vec::new();
    let t0 = std::time::Instant::now();
    eprintln!(
        "checking {} case(s) under {} oracles...",
        cases.len(),
        cedar_check::OracleKind::ALL.len()
    );
    for case in &cases {
        let found = harness.check_case(case);
        if found.is_empty() {
            continue;
        }
        eprintln!("VIOLATION at {}: shrinking...", case.label());
        // One shrink session per violated oracle: each minimal
        // reproducer is specific to the law it breaks.
        let mut oracles: Vec<_> = found.iter().map(|v| v.oracle).collect();
        oracles.dedup();
        for oracle in oracles {
            let outcome = shrink(case, oracle, &mut harness);
            let minimal = harness
                .check_case(&outcome.minimal)
                .into_iter()
                .filter(|v| v.oracle == oracle);
            for v in minimal {
                eprintln!(
                    "  {}: {} (replay: {})",
                    v.oracle,
                    v.detail,
                    v.case.replay_token()
                );
                violations.push(v);
            }
        }
    }
    eprintln!(
        "checked {} case(s) in {:.1}s: {} simulation(s), {} violation(s)",
        harness.counters.get("check.cases"),
        t0.elapsed().as_secs_f64(),
        harness.counters.get("check.runs"),
        violations.len()
    );

    let clean = violations.is_empty();
    let report = CheckReport::new(violations, harness.counters.clone());
    let dir = cedar_bench::manifest::artifact_dir(opts);
    let path = dir.join("CHECK_violations.json");
    match report.write(&path) {
        Ok(()) => eprintln!("violation report written to {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", path.display());
            return ExitCode::from(1);
        }
    }

    // The manifest records the checker's whole rollup — simulator
    // counters from every re-execution plus the check.* oracle
    // pass/violation counters — in the standard RUN_manifest.json
    // shape.
    let suite = SuiteResult {
        apps: Vec::new(),
        telemetry: SuiteTelemetry {
            counters: harness.counters.clone(),
            wall_ns: t0.elapsed().as_nanos() as u64,
            ..SuiteTelemetry::default()
        },
    };
    match cedar_bench::manifest::write(&suite, opts) {
        Ok(paths) => {
            for p in paths {
                eprintln!("run manifest written to {}", p.display());
            }
        }
        Err(e) => eprintln!("warning: could not write run manifest: {e}"),
    }

    if clean {
        println!(
            "check: PASS — {} oracle evaluations, 0 violations",
            report.counters.get("check.oracles.pass")
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "check: FAIL — {} violation(s); reproducers in {}",
            report.violations.len(),
            path.display()
        );
        ExitCode::from(1)
    }
}
