//! Regenerates Figure 7: the user-time breakdown for ARC2D across
//! configurations (main and helper tasks).
fn main() {
    let suite = cedar_bench::campaign();
    println!(
        "Figure 7: {}",
        cedar_report::figures::user_breakdown(suite.app("ARC2D"))
    );
}
