//! Regenerates Table 2: detailed OS-activity overheads on the 4-cluster
//! (32-processor) Cedar for FLO52, ARC2D and MDG.
fn main() {
    println!("{}", cedar_report::tables::table2(cedar_bench::campaign()));
}
