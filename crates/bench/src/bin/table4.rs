//! Regenerates Table 4: actual and ideal parallel-loop execution times
//! and the global-memory/network contention overhead Ov_cont.
fn main() {
    println!("{}", cedar_report::tables::table4(cedar_bench::campaign()));
}
