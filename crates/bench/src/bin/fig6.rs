//! Regenerates Figure 6: the user-time breakdown for MDG across
//! configurations (main and helper tasks).
fn main() {
    let suite = cedar_bench::campaign();
    println!(
        "Figure 6: {}",
        cedar_report::figures::user_breakdown(suite.app("MDG"))
    );
}
