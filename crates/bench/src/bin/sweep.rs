//! Parameter sweeps: where do the paper's overheads bite?
//!
//! Two sweeps on the 32-processor Cedar:
//!
//! 1. **Granularity**: shrink the xdoall iteration body and watch the
//!    distribution overhead cross §6's 10%-of-CT line — "synchronizations
//!    degrade performance for problems that do not have sufficiently
//!    large loop granularity, as is the case with the Perfect
//!    Benchmarks' data set".
//! 2. **Traffic density**: grow the per-iteration vector traffic of an
//!    sdoall loop and watch the global-memory/network contention
//!    overhead climb toward FLO52 territory (Table 4).

use cedar_apps::synthetic;
use cedar_core::methodology::contention_overhead;
use cedar_core::{pool, CacheSession, SimConfig};
use cedar_hw::Configuration;
use cedar_trace::UserBucket;

fn main() {
    let opts = cedar_bench::run_options();
    let workers = opts.workers.unwrap_or_else(pool::default_workers);
    let session = CacheSession::new(opts).expect("run cache unavailable");
    let session = &session;
    println!("Sweep 1: xdoall granularity vs distribution overhead (32 proc)");
    println!(
        "{:>12} | {:>10} | {:>12} | {:>10}",
        "body (cy)", "CT (s)", "pickup %", "par-ov %"
    );
    println!("{}", "-".repeat(52));
    let computes = [200u64, 500, 1_000, 2_000, 5_000, 10_000, 20_000];
    let runs = pool::run_jobs(
        workers,
        computes
            .iter()
            .map(|&compute| {
                move || {
                    let app = synthetic::uniform_xdoall(4, 2, 64, compute, 8);
                    session.execute(
                        &app,
                        SimConfig::cedar(Configuration::P32).with_scheduler(opts.scheduler),
                    )
                }
            })
            .collect(),
    )
    .expect("sweep experiment panicked");
    for (compute, run) in computes.iter().zip(&runs) {
        let pickup = run
            .main_breakdown()
            .get(UserBucket::PickupXdoall)
            .fraction_of(run.completion_time)
            * 100.0;
        let marker = if pickup > 10.0 {
            "  <= over the S6 line"
        } else {
            ""
        };
        println!(
            "{:>12} | {:>10.4} | {:>12.1} | {:>10.1}{}",
            compute,
            run.ct_seconds(),
            pickup,
            run.main_parallelization_fraction() * 100.0,
            marker
        );
    }

    println!();
    println!("Sweep 2: vector traffic vs contention overhead (32 proc, sdoall)");
    println!(
        "{:>12} | {:>10} | {:>10} | {:>14}",
        "words/iter", "CT (s)", "Ov_cont %", "queue/packet"
    );
    println!("{}", "-".repeat(54));
    let word_counts = [0u32, 8, 16, 32, 64, 96];
    let pairs = pool::run_jobs(
        workers,
        word_counts
            .iter()
            .map(|&words| {
                move || {
                    let mk = || synthetic::uniform_sdoall(4, 2, 8, 16, 400, words);
                    let base = session.execute(
                        &mk(),
                        SimConfig::cedar(Configuration::P1).with_scheduler(opts.scheduler),
                    );
                    let run = session.execute(
                        &mk(),
                        SimConfig::cedar(Configuration::P32).with_scheduler(opts.scheduler),
                    );
                    (base, run)
                }
            })
            .collect(),
    )
    .expect("sweep experiment panicked");
    for (words, (base, run)) in word_counts.iter().zip(&pairs) {
        let ov = contention_overhead(base, run).overhead_pct;
        println!(
            "{:>12} | {:>10.4} | {:>10.1} | {:>14.2}",
            words,
            run.ct_seconds(),
            ov,
            run.gmem.mean_queued_per_packet(),
        );
    }
    println!();
    println!("Granularity buys off the distribution overhead; traffic buys it");
    println!("back as contention — the two levers behind Tables 1 and 4.");
    if let Some(c) = session.stats() {
        println!("{}", cedar_report::tables::cache_line(&c));
    }
}
