//! Hot-spot ablation (Pfister & Norton \[15\], §6 discussion): empty-body
//! flat loops concentrate all synchronization on one memory module;
//! sweeping the processor count shows the hot module's share and the
//! queueing growth that §6's "was clustering a good idea?" argument is
//! about.
use cedar_apps::synthetic;
use cedar_core::{Experiment, SimConfig};
use cedar_hw::Configuration;

fn main() {
    println!("Hot-spot ablation: 4 x 256-iteration empty-body xdoall loops");
    println!(
        "{:>8} | {:>10} | {:>12} | {:>12} | {:>14}",
        "config", "CT (s)", "hot-mod sync", "hot share %", "queue/packet"
    );
    println!("{}", "-".repeat(70));
    for c in Configuration::ALL {
        let run = Experiment::new(synthetic::hotspot(4, 256), SimConfig::cedar(c)).run();
        let total: u64 = run.gmem.module_sync_requests.iter().sum();
        let hot = run
            .gmem
            .module_sync_requests
            .iter()
            .max()
            .copied()
            .unwrap_or(0);
        println!(
            "{:>8} | {:>10.4} | {:>12} | {:>12.1} | {:>14.2}",
            c.label(),
            run.ct_seconds(),
            hot,
            hot as f64 / total.max(1) as f64 * 100.0,
            run.gmem.mean_queued_per_packet(),
        );
    }
}
