//! Runs the full measurement campaign and regenerates every table and
//! figure of the paper, plus machine-readable CSVs and the run manifest
//! (`RUN_manifest.json`) under `results/`.
use std::fs;

fn main() {
    let opts = cedar_bench::run_options();
    let suite = cedar_bench::campaign();
    println!("{}", cedar_report::tables::table1(suite));
    println!("{}", cedar_report::figures::figure3(suite));
    println!("{}", cedar_report::tables::table2(suite));
    println!("{}", cedar_report::figures::figures5to9(suite));
    println!("{}", cedar_report::tables::table3(suite));
    println!("{}", cedar_report::tables::table4(suite));
    let dir = std::path::Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let _ = fs::write(
            dir.join("summary.csv"),
            cedar_report::csv::summary_csv(suite),
        );
        let _ = fs::write(
            dir.join("breakdown.csv"),
            cedar_report::csv::breakdown_csv(suite),
        );
        let _ = fs::write(
            dir.join("concurrency.csv"),
            cedar_report::csv::concurrency_csv(suite),
        );
        println!("CSV output written to results/");
    }
    if let Some(c) = &suite.telemetry.cache {
        println!("{}", cedar_report::tables::cache_line(c));
    }
    match cedar_bench::manifest::write(suite, opts) {
        Ok(paths) => {
            for p in paths {
                println!("run manifest written to {}", p.display());
            }
        }
        Err(e) => eprintln!("warning: could not write run manifest: {e}"),
    }
}
