//! Where does the mini-campaign's wall-clock go?
//!
//! Runs the same reduced-scale campaign as the `suite/mini_campaign`
//! benchmark once and prints the suite's own telemetry split — machine
//! construction vs. event loop vs. result assembly vs. pool overhead —
//! plus the per-event cost. Use it to decide *what* to optimize before
//! reaching for the microbenchmarks: if `run` dominates, work on the
//! event hot path; if `setup`/`breakdown` dominate, the simulator loop
//! is not the problem.
//!
//! ```text
//! cargo run --release -p cedar-bench --bin suite_profile
//! ```

use cedar_apps::perfect_suite;
use cedar_core::suite::SuiteResult;
use cedar_hw::Configuration;

fn main() {
    let apps: Vec<_> = perfect_suite().into_iter().map(|a| a.shrunk(24)).collect();
    let configs = [Configuration::P1, Configuration::P8, Configuration::P32];
    let suite = SuiteResult::measure(&apps, &configs, cedar_bench::run_options());
    let t = &suite.telemetry;
    let events = t.events_total();
    let ms = |ns: u64| ns as f64 / 1e6;
    println!(
        "mini campaign: {} runs, {events} events",
        apps.len() * configs.len()
    );
    println!("  setup     {:>9.2} ms", ms(t.setup_ns));
    println!("  run       {:>9.2} ms", ms(t.run_ns));
    println!("  breakdown {:>9.2} ms", ms(t.breakdown_ns));
    println!(
        "  wall      {:>9.2} ms (pool overhead {:.2} ms)",
        ms(t.wall_ns),
        ms(t.wall_ns
            .saturating_sub(t.setup_ns + t.run_ns + t.breakdown_ns)),
    );
    if events > 0 {
        println!(
            "  event loop: {:.1} ns/event",
            t.run_ns as f64 / events as f64
        );
    }
    println!("hot-path counters:");
    for name in [
        "queue.scheduled",
        "queue.popped",
        "queue.overflow_spills",
        "queue.pending.peak",
        "queue.wheel.peak",
        "outbox.emitted",
        "events.gmem",
    ] {
        println!("  {name:<24} {}", t.counters.get(name));
    }
}
