//! Fault-sensitivity sweep: how each injected disturbance moves the
//! paper's overhead buckets as the campaign intensity grows.
//!
//! Runs FLO52 at 8 and 32 processors under `FaultPlan::canonical_at`
//! levels 0..=4 (0 = unperturbed, 1 = the canonical campaign, higher
//! levels fire every timed class proportionally more often and stretch
//! the static multipliers), writes one CSV row per (configuration,
//! level) to `results/FAULTS_sensitivity.csv`, and prints the
//! fault-attribution report for the canonical level — each injected
//! overhead next to the Table-2 bucket it landed in.
//!
//! Honors the usual typed knobs: `CEDAR_SHRINK` scales the workload,
//! `CEDAR_SCHED` picks the event scheduler, `CEDAR_WORKERS` bounds the
//! sweep pool, `BENCH_JSON_DIR` redirects the CSV.

use std::fmt::Write as _;

use cedar_core::prelude::FaultPlan;
use cedar_core::{pool, CacheSession, RunResult, SimConfig};
use cedar_hw::Configuration;
use cedar_xylem::OsActivity;

const LEVELS: [u32; 5] = [0, 1, 2, 3, 4];
const CONFIGS: [Configuration; 2] = [Configuration::P8, Configuration::P32];

fn flo52(shrink: u32) -> cedar_apps::AppSpec {
    cedar_apps::perfect_suite()
        .into_iter()
        .find(|a| a.name == "FLO52")
        .expect("FLO52 in the perfect suite")
        .shrunk(shrink)
}

fn csv(results: &[(Configuration, u32, RunResult)]) -> String {
    let mut s = String::from(
        "config,level,fingerprint,ct_cycles,os_fraction,\
         cpi,ctx,pgflt_conc,pgflt_seq,crsect_cluster,crsect_global,\
         syscall_cluster,syscall_global,ast,kernel_spin,\
         injected_cpi,injected_ast,injected_pgflt,injected_lock,injected_stall,\
         gmem_queued_per_packet\n",
    );
    for (c, level, r) in results {
        let os = |a: OsActivity| r.os.total(a).0;
        let inj = |name: &str| r.stats.counters.get(name);
        let _ = writeln!(
            s,
            "{},{},\"{}\",{},{:.4},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.2}",
            c.label(),
            level,
            FaultPlan::canonical_at(*level).fingerprint(),
            r.completion_time.0,
            r.os_overhead_fraction(),
            os(OsActivity::Cpi),
            os(OsActivity::Ctx),
            os(OsActivity::PgFltConcurrent),
            os(OsActivity::PgFltSequential),
            os(OsActivity::CrSectCluster),
            os(OsActivity::CrSectGlobal),
            os(OsActivity::SyscallCluster),
            os(OsActivity::SyscallGlobal),
            os(OsActivity::Ast),
            os(OsActivity::KernelSpin),
            inj("faults.injected.cpi"),
            inj("faults.injected.ast"),
            inj("faults.injected.pgflt_seq") + inj("faults.injected.pgflt_conc"),
            inj("faults.injected.lock_cluster") + inj("faults.injected.lock_global"),
            inj("faults.injected.stall"),
            r.gmem.mean_queued_per_packet(),
        );
    }
    s
}

fn main() {
    let opts = cedar_bench::run_options();
    let workers = opts.workers.unwrap_or_else(pool::default_workers);
    let shrink = opts.shrink.max(1);
    println!("Fault sensitivity sweep: FLO52/{shrink}, levels {LEVELS:?} of the canonical plan");

    let cells: Vec<(Configuration, u32)> = CONFIGS
        .iter()
        .flat_map(|&c| LEVELS.iter().map(move |&l| (c, l)))
        .collect();
    let session = CacheSession::new(opts).expect("run cache unavailable");
    let session = &session;
    let runs = pool::run_jobs(
        workers,
        cells
            .iter()
            .map(|&(c, level)| {
                let app = flo52(shrink);
                let sched = opts.scheduler;
                move || {
                    session.execute(
                        &app,
                        SimConfig::cedar(c)
                            .with_scheduler(sched)
                            .with_faults(FaultPlan::canonical_at(level)),
                    )
                }
            })
            .collect(),
    )
    .expect("sweep experiment panicked");
    let results: Vec<(Configuration, u32, RunResult)> = cells
        .iter()
        .zip(runs)
        .map(|(&(c, l), r)| (c, l, r))
        .collect();

    println!(
        "\n{:>8} | {:>5} | {:>12} | {:>8} | {:>12}",
        "config", "level", "CT (cyc)", "OS %", "CT stretch"
    );
    println!("{}", "-".repeat(58));
    for &c in &CONFIGS {
        let base_ct = results
            .iter()
            .find(|(rc, l, _)| *rc == c && *l == 0)
            .map(|(_, _, r)| r.completion_time.0)
            .expect("level 0 present");
        for (rc, level, r) in &results {
            if rc != &c {
                continue;
            }
            println!(
                "{:>8} | {:>5} | {:>12} | {:>7.1}% | {:>11.3}x",
                c.label(),
                level,
                r.completion_time.0,
                r.os_overhead_fraction() * 100.0,
                r.completion_time.0 as f64 / base_ct as f64,
            );
        }
    }

    // The attribution report at the canonical level, 8 processors — the
    // same pairing the golden snapshot pins.
    let pick = |level: u32| {
        results
            .iter()
            .find(|(c, l, _)| *c == Configuration::P8 && *l == level)
            .map(|(_, _, r)| r)
            .expect("P8 level present")
    };
    println!();
    println!("{}", cedar_report::tables::fault_report(pick(0), pick(1)));

    let dir = cedar_bench::manifest::artifact_dir(opts);
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("FAULTS_sensitivity.csv");
        std::fs::write(&path, csv(&results)).expect("write sensitivity CSV");
        println!("CSV written to {}", path.display());
    }
    if let Some(c) = session.stats() {
        println!("{}", cedar_report::tables::cache_line(&c));
    }
}
