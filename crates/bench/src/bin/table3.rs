//! Regenerates Table 3: average parallel-loop concurrency per
//! task/cluster, from the (1 - pf) + pf * par_concurr = avg_concurr
//! methodology of section 7.
fn main() {
    println!("{}", cedar_report::tables::table3(cedar_bench::campaign()));
}
