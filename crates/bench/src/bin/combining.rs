//! Flat barrier vs. software combining tree (\[16\], §6).
//!
//! Measures one barrier episode on the simulated memory system: N
//! processors arrive simultaneously and fetch-add counters until the
//! barrier completes. The *flat* barrier uses one counter word (the hot
//! spot §6 warns about); the *combining tree* spreads counters across
//! memory modules so each word sees at most `fanout` operations.
//!
//! This experiment drives `GlobalMemorySystem` directly — no OS, no
//! runtime — so the numbers isolate pure memory-system behaviour.

use cedar_hw::{CeId, GlobalAddr, GlobalMemorySystem, GmemEvent, GmemOutput, MemOp, NetConfig};
use cedar_rtl::{CombiningTree, Propagation};
use cedar_sim::{Cycles, EventQueue, Outbox, SimTime};

/// Drives one flat-barrier episode; returns the completion time.
fn flat_barrier(n: u32) -> SimTime {
    let mut sys = GlobalMemorySystem::new(NetConfig::cedar());
    let counter = GlobalAddr(0x4000);
    let mut q = EventQueue::new();
    let mut out: Outbox<GmemEvent> = Outbox::new();
    for p in 0..n {
        sys.inject(
            CeId(p as u16),
            counter,
            MemOp::FetchAdd(1),
            Cycles(0),
            &mut out,
        );
        out.flush_into(Cycles(0), &mut q);
    }
    let mut done = Cycles::ZERO;
    let mut completed = 0;
    while let Some((now, ev)) = q.pop() {
        if let Some(GmemOutput::Deliver(resp)) = sys.handle(ev, now, &mut out) {
            completed += 1;
            if resp.value + 1 == n as u64 {
                done = now; // the arrival that completed the count
            }
        }
        out.flush_into(now, &mut q);
    }
    assert_eq!(completed, n);
    done
}

/// Drives one combining-tree episode; returns the completion time (the
/// moment the root completes).
fn combining_barrier(n: u32, fanout: u32) -> SimTime {
    let mut sys = GlobalMemorySystem::new(NetConfig::cedar());
    let tree = CombiningTree::new(GlobalAddr(0x4000), n, fanout);
    let mut q = EventQueue::new();
    let mut out: Outbox<GmemEvent> = Outbox::new();
    // Track which (level, idx) each in-flight request targets.
    let mut target: std::collections::HashMap<u64, (usize, u32)> = std::collections::HashMap::new();
    for p in 0..n {
        let leaf = tree.leaf_of(p);
        let id = sys.inject(
            CeId(p as u16),
            leaf,
            MemOp::FetchAdd(1),
            Cycles(0),
            &mut out,
        );
        target.insert(id.0, (0, tree.leaf_index(p)));
        out.flush_into(Cycles(0), &mut q);
    }
    let mut released_at = None;
    while let Some((now, ev)) = q.pop() {
        if let Some(GmemOutput::Deliver(resp)) = sys.handle(ev, now, &mut out) {
            let (level, idx) = target.remove(&resp.id.0).expect("tracked request");
            match tree.propagate(level, idx, resp.value) {
                Propagation::Waiting => {}
                Propagation::Up { level, idx, addr } => {
                    let id = sys.inject(resp.ce, addr, MemOp::FetchAdd(1), now, &mut out);
                    target.insert(id.0, (level, idx));
                }
                Propagation::Release => released_at = Some(now),
            }
        }
        out.flush_into(now, &mut q);
    }
    released_at.expect("barrier completed")
}

fn main() {
    println!("One barrier episode: flat fetch-add counter vs software combining tree");
    println!(
        "{:>6} | {:>12} | {:>14} | {:>14} | {:>8}",
        "N", "flat (cy)", "tree k=4 (cy)", "tree k=8 (cy)", "flat/k4"
    );
    println!("{}", "-".repeat(66));
    for n in [4u32, 8, 16, 32] {
        let flat = flat_barrier(n);
        let k4 = combining_barrier(n, 4);
        let k8 = combining_barrier(n, 8);
        println!(
            "{:>6} | {:>12} | {:>14} | {:>14} | {:>8.2}",
            n,
            flat.0,
            k4.0,
            k8.0,
            flat.0 as f64 / k4.0 as f64
        );
    }
    println!();
    println!("The flat counter serializes all N fetch-adds at one memory module");
    println!("(§6's hot spot); the tree pays extra levels of latency but caps any");
    println!("module at `fanout` operations — the [16] trade-off. Clustering gets");
    println!("the same effect in hardware: only one processor per cluster reaches");
    println!("global memory for the barrier.");
}
