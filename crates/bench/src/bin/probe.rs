use cedar_apps::app_by_name;
use cedar_core::methodology::{contention_overhead, parallel_loop_concurrency};
use cedar_core::{Experiment, SimConfig};
use cedar_hw::Configuration;
use cedar_trace::UserBucket;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "FLO52".into());
    let shrink: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let app = app_by_name(&name).unwrap().shrunk(shrink);
    let mut base = None;
    for c in Configuration::ALL {
        let t0 = std::time::Instant::now();
        let r = Experiment::new(app.clone(), SimConfig::cedar(c)).run();
        let wall = t0.elapsed().as_secs_f64();
        let ct = r.completion_time;
        let speed = base
            .as_ref()
            .map(|b: &cedar_core::RunResult| r.speedup_over(b))
            .unwrap_or(1.0);
        println!("{} {:>7}: CT={:>10} ({:.4}s) speedup={:.2} concurr={:.2} OS%={:.1} par_ov%={:.1} events={}M wall={:.1}s",
            r.app, c.label(), ct.0, r.ct_seconds(), speed, r.total_concurrency(),
            r.os_overhead_fraction()*100.0, r.main_parallelization_fraction()*100.0,
            r.events/1_000_000, wall);
        let b = r.main_breakdown();
        println!("   main: iter={:.1}% serial={:.1}% clus={:.1}% setup={:.1}% pickS={:.1}% pickX={:.1}% barrier={:.1}% sync={:.1}%",
            b.fraction(UserBucket::IterExec, ct)*100.0,
            b.fraction(UserBucket::Serial, ct)*100.0,
            b.fraction(UserBucket::ClusterLoop, ct)*100.0,
            b.fraction(UserBucket::LoopSetup, ct)*100.0,
            b.fraction(UserBucket::PickupSdoall, ct)*100.0,
            b.fraction(UserBucket::PickupXdoall, ct)*100.0,
            b.fraction(UserBucket::BarrierWait, ct)*100.0,
            b.fraction(UserBucket::ClusterSync, ct)*100.0);
        if let Some(h) = r.helper_breakdowns().first() {
            println!(
                "   hlp0: iter={:.1}% pickX={:.1}% wait={:.1}% sync={:.1}% par_ov={:.1}%",
                h.fraction(UserBucket::IterExec, ct) * 100.0,
                h.fraction(UserBucket::PickupXdoall, ct) * 100.0,
                h.fraction(UserBucket::HelperWait, ct) * 100.0,
                h.fraction(UserBucket::ClusterSync, ct) * 100.0,
                h.parallelization_overhead().fraction_of(ct) * 100.0
            );
        }
        if let Some(b) = &base {
            let est = contention_overhead(b, &r);
            let cc = parallel_loop_concurrency(&r);
            println!(
                "   cont: Tact={} Tideal={} Ov={:.1}%  par_concurr={:?}",
                est.t_p_actual.0,
                est.t_p_ideal.0,
                est.overhead_pct,
                cc.iter()
                    .map(|c| (c.par_concurr * 100.0).round() / 100.0)
                    .collect::<Vec<_>>()
            );
        }
        if c == Configuration::P1 {
            base = Some(r);
        }
    }
}
