//! Construct ablation (§6 suggestion): the same computation written as a
//! flat XDOALL versus strip-mined into the hierarchical SDOALL/CDOALL
//! nest, across configurations. The hierarchical construct exploits the
//! clustering hardware during work distribution; the flat one pays at
//! the global iteration lock.
use cedar_apps::synthetic;
use cedar_core::{pool, CacheSession, SimConfig};
use cedar_hw::Configuration;
use cedar_trace::UserBucket;

fn main() {
    let opts = cedar_bench::run_options();
    let workers = opts.workers.unwrap_or_else(pool::default_workers);
    let session = CacheSession::new(opts).expect("run cache unavailable");
    let session = &session;
    println!("Construct ablation: 20 steps x 2 loops of 128 iterations (c=1200, 8 words)");
    println!(
        "{:>8} | {:>14} | {:>14} | {:>10} | {:>12}",
        "config", "xdoall CT (s)", "sdoall CT (s)", "xdoall adv", "pickup x/s %"
    );
    println!("{}", "-".repeat(72));
    let pairs = pool::run_jobs(
        workers,
        Configuration::ALL
            .into_iter()
            .map(|c| {
                move || {
                    let flat = synthetic::uniform_xdoall(20, 2, 128, 1200, 8);
                    let hier = synthetic::uniform_sdoall(20, 2, 16, 8, 1200, 8);
                    let rf =
                        session.execute(&flat, SimConfig::cedar(c).with_scheduler(opts.scheduler));
                    let rh =
                        session.execute(&hier, SimConfig::cedar(c).with_scheduler(opts.scheduler));
                    (rf, rh)
                }
            })
            .collect(),
    )
    .expect("ablation experiment panicked");
    for (c, (rf, rh)) in Configuration::ALL.into_iter().zip(&pairs) {
        let pick_x = rf
            .main_breakdown()
            .get(UserBucket::PickupXdoall)
            .fraction_of(rf.completion_time)
            * 100.0;
        let pick_s = rh
            .main_breakdown()
            .get(UserBucket::PickupSdoall)
            .fraction_of(rh.completion_time)
            * 100.0;
        println!(
            "{:>8} | {:>14.4} | {:>14.4} | {:>10.3} | {:>5.1} / {:>4.1}",
            c.label(),
            rf.ct_seconds(),
            rh.ct_seconds(),
            rf.completion_time.0 as f64 / rh.completion_time.0 as f64,
            pick_x,
            pick_s,
        );
    }
    println!();
    println!("ratio > 1 means the flat construct is slower; the gap opens with");
    println!("the processor count as the iteration lock becomes a hot spot (S6).");
    if let Some(c) = session.stats() {
        println!("{}", cedar_report::tables::cache_line(&c));
    }
}
