//! Regenerates Figure 9: the user-time breakdown for ADM across
//! configurations (main and helper tasks).
fn main() {
    let suite = cedar_bench::campaign();
    println!(
        "Figure 9: {}",
        cedar_report::figures::user_breakdown(suite.app("ADM"))
    );
}
