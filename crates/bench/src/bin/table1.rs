//! Regenerates Table 1: completion times, speedups and average
//! concurrency for the five applications on 1–32 processors.
fn main() {
    println!("{}", cedar_report::tables::table1(cedar_bench::campaign()));
}
