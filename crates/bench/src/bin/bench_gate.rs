//! CI benchmark gate: `bench_gate <fresh.json> <baseline.json>`.
//!
//! Compares a fresh `results/BENCH_scheduler.json` against the committed
//! `results/bench_baseline.json` (see [`cedar_bench::gate`]) and exits
//! non-zero on a suite-runtime regression or a lost scheduler margin.
//! Driven by `scripts/bench_check.sh`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (fresh_path, base_path) = match (args.next(), args.next()) {
        (Some(f), Some(b)) => (f, b),
        _ => {
            eprintln!("usage: bench_gate <fresh.json> <baseline.json>");
            return ExitCode::from(2);
        }
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    match cedar_bench::gate::check(&read(&fresh_path), &read(&base_path)) {
        Ok(report) => {
            print!("{report}");
            println!("bench gate: OK");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprint!("{report}");
            ExitCode::FAILURE
        }
    }
}
