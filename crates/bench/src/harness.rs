//! A zero-dependency micro-benchmark harness.
//!
//! Replaces the former criterion benches so the workspace builds
//! offline. Each benchmark runs a warmup phase followed by N timed
//! iterations and reports min/median/mean/stddev wall times. Results
//! print as an aligned table and are written as machine-readable JSON to
//! `results/BENCH_<suite>.json` for trajectory tracking across commits.
//!
//! Iteration counts and the output directory come from a typed
//! [`RunOptions`] value ([`Harness::with_options`]); the plain
//! [`Harness::new`] uses the process-wide [`crate::run_options`], so the
//! environment knobs (`BENCH_SMOKE=1` — one timed iteration, no warmup;
//! `BENCH_ITERS=n` — timed iterations, default 30; `BENCH_WARMUP=n` —
//! warmup iterations, default 5; `BENCH_JSON_DIR=dir` — where the JSON
//! lands) still work, parsed exactly once by
//! [`cedar_obs::RunOptions::from_env`].

use std::hint::black_box as hint_black_box;
use std::time::Instant;

use cedar_obs::RunOptions;

/// An opaque value sink preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Summary statistics of one benchmark, in nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark name.
    pub name: String,
    /// Timed iterations measured.
    pub iters: u32,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
    /// Median iteration.
    pub median_ns: f64,
    /// Mean iteration.
    pub mean_ns: f64,
    /// Population standard deviation.
    pub stddev_ns: f64,
}

impl BenchStats {
    fn from_samples(name: &str, samples: &[f64]) -> BenchStats {
        assert!(!samples.is_empty(), "benchmark ran zero iterations");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        BenchStats {
            name: name.to_string(),
            iters: n as u32,
            min_ns: sorted[0],
            max_ns: sorted[n - 1],
            median_ns: median,
            mean_ns: mean,
            stddev_ns: var.sqrt(),
        }
    }

    /// One JSON object, keys in stable order.
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"iters\":{},\"min_ns\":{:.1},\"max_ns\":{:.1},\
             \"median_ns\":{:.1},\"mean_ns\":{:.1},\"stddev_ns\":{:.1}}}",
            json_string(&self.name),
            self.iters,
            self.min_ns,
            self.max_ns,
            self.median_ns,
            self.mean_ns,
            self.stddev_ns
        )
    }
}

/// Escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A suite of benchmarks sharing warmup/iteration settings.
pub struct Harness {
    suite: String,
    warmup: u32,
    iters: u32,
    out_dir: Option<std::path::PathBuf>,
    results: Vec<BenchStats>,
}

impl Harness {
    /// Creates a harness for `suite` under the process-wide
    /// [`crate::run_options`] (the `BENCH_*` environment, parsed once).
    pub fn new(suite: &str) -> Harness {
        Harness::with_options(suite, crate::run_options())
    }

    /// Creates a harness for `suite` with explicit, typed settings:
    /// `opts.smoke` forces one timed iteration with no warmup;
    /// otherwise `opts.bench_warmup`/`opts.bench_iters` apply (defaults
    /// 5 and 30); `opts.output_dir` overrides where
    /// [`finish`](Self::finish) writes the JSON.
    pub fn with_options(suite: &str, opts: &RunOptions) -> Harness {
        let (warmup, iters) = if opts.smoke {
            (0, 1)
        } else {
            (
                opts.bench_warmup.unwrap_or(5),
                opts.bench_iters.unwrap_or(30).max(1),
            )
        };
        if opts.smoke {
            eprintln!("[{suite}] smoke mode — single iteration, timings not meaningful");
        }
        Harness {
            suite: suite.to_string(),
            warmup,
            iters,
            out_dir: opts.output_dir.clone(),
            results: Vec::new(),
        }
    }

    /// Runs one benchmark: `warmup` untimed calls, then `iters` timed
    /// calls of `f`, and records the statistics.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchStats {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        let stats = BenchStats::from_samples(name, &samples);
        eprintln!(
            "  {:<38} min {:>12} | median {:>12} | mean {:>12} ± {}",
            stats.name,
            fmt_ns(stats.min_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.stddev_ns),
        );
        self.results.push(stats);
        self.results.last().expect("just pushed")
    }

    /// The whole suite as a JSON document.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self.results.iter().map(BenchStats::to_json).collect();
        format!(
            "{{\"suite\":{},\"warmup\":{},\"iters\":{},\"benchmarks\":[{}]}}\n",
            json_string(&self.suite),
            self.warmup,
            self.iters,
            body.join(",")
        )
    }

    /// Writes `BENCH_<suite>.json` under the configured output
    /// directory (default: the workspace-root `results/`, regardless of
    /// the bench cwd) and returns the path written.
    pub fn finish(self) -> std::io::Result<std::path::PathBuf> {
        let dir = self.out_dir.clone().unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
        });
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.suite));
        std::fs::write(&path, self.to_json())?;
        eprintln!("[{}] wrote {}", self.suite, path.display());
        Ok(path)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(samples: &[f64]) -> BenchStats {
        BenchStats::from_samples("t", samples)
    }

    #[test]
    fn stats_on_known_samples() {
        let s = stats(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.min_ns, 10.0);
        assert_eq!(s.max_ns, 40.0);
        assert_eq!(s.median_ns, 25.0);
        assert_eq!(s.mean_ns, 25.0);
        assert!((s.stddev_ns - 125.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn odd_sample_count_median_is_middle_element() {
        assert_eq!(stats(&[5.0, 1.0, 3.0]).median_ns, 3.0);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn harness_records_and_serializes() {
        let mut h = Harness {
            suite: "unit".into(),
            warmup: 0,
            iters: 3,
            out_dir: None,
            results: Vec::new(),
        };
        let mut calls = 0u32;
        h.bench("counting", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 3, "no warmup, three timed calls");
        let json = h.to_json();
        assert!(json.starts_with("{\"suite\":\"unit\""));
        assert!(json.contains("\"name\":\"counting\""));
        assert!(json.contains("\"median_ns\""));
        assert!(json.contains("\"stddev_ns\""));
    }

    #[test]
    fn bench_stats_are_ordered() {
        let mut h = Harness {
            suite: "unit".into(),
            warmup: 0,
            iters: 8,
            out_dir: None,
            results: Vec::new(),
        };
        let s = h.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.max_ns);
        assert!(s.min_ns <= s.mean_ns && s.mean_ns <= s.max_ns);
        assert_eq!(s.iters, 8);
    }
}
