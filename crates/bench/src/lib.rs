//! # cedar-bench — the benchmark harness
//!
//! One binary per table and data figure of the paper:
//!
//! | binary   | regenerates                                             |
//! |----------|---------------------------------------------------------|
//! | `table1` | Table 1 — CTs, speedups, average concurrency            |
//! | `table2` | Table 2 — detailed OS overheads at 32 processors        |
//! | `table3` | Table 3 — average parallel-loop concurrency             |
//! | `table4` | Table 4 — GM and network contention overhead            |
//! | `fig3`   | Figure 3 — completion-time breakdown                    |
//! | `fig5` … `fig9` | Figures 5–9 — per-app user-time breakdowns       |
//! | `all`    | the full campaign: every table, every figure, CSVs      |
//! | `probe`  | calibration view of one application                     |
//! | `hotspot`| the Pfister & Norton hot-spot ablation (§6 discussion)  |
//! | `ablation` | xdoall-vs-sdoall rewrite ablation (§6 suggestion)     |
//!
//! Set `CEDAR_SHRINK=<n>` to divide every time-step count by `n` for a
//! quick (non-publication) pass, and `CEDAR_WORKERS=<n>` to bound the
//! worker pool that fans the campaign grid across cores.
//!
//! The former criterion benches now run on the in-repo [`harness`]
//! (`cargo bench --offline`); `BENCH_SMOKE=1` reduces them to one
//! iteration for CI.

pub mod gate;
pub mod harness;

use std::sync::OnceLock;

use cedar_apps::AppSpec;
use cedar_core::pool;
use cedar_core::suite::SuiteResult;
use cedar_hw::Configuration;

/// The shrink factor from `CEDAR_SHRINK` (default 1 = full scale).
pub fn shrink_factor() -> u32 {
    std::env::var("CEDAR_SHRINK")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(1)
}

/// The (possibly shrunk) Perfect suite.
pub fn suite_apps() -> Vec<AppSpec> {
    let f = shrink_factor();
    cedar_apps::perfect_suite()
        .into_iter()
        .map(|a| if f > 1 { a.shrunk(f) } else { a })
        .collect()
}

/// Runs the full measurement campaign once per process and caches it —
/// every table/figure binary shares the same run.
pub fn campaign() -> &'static SuiteResult {
    static CAMPAIGN: OnceLock<SuiteResult> = OnceLock::new();
    CAMPAIGN.get_or_init(|| {
        let f = shrink_factor();
        if f > 1 {
            eprintln!("note: CEDAR_SHRINK={f} — quick pass, not publication scale");
        }
        let workers = pool::default_workers();
        eprintln!("running measurement campaign (5 apps x 5 configurations, {workers} workers)...");
        let t0 = std::time::Instant::now();
        let suite = SuiteResult::run_parallel(&suite_apps(), &Configuration::ALL, Some(workers))
            .expect("campaign experiment panicked");
        eprintln!("campaign done in {:.1}s", t0.elapsed().as_secs_f64());
        suite
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_factor_defaults_to_one() {
        // The test environment does not set CEDAR_SHRINK.
        assert!(shrink_factor() >= 1);
    }

    #[test]
    fn suite_apps_are_the_perfect_five() {
        let names: Vec<_> = suite_apps().iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["FLO52", "ARC2D", "MDG", "OCEAN", "ADM"]);
    }
}
