//! # cedar-bench — the benchmark harness
//!
//! One binary per table and data figure of the paper:
//!
//! | binary   | regenerates                                             |
//! |----------|---------------------------------------------------------|
//! | `table1` | Table 1 — CTs, speedups, average concurrency            |
//! | `table2` | Table 2 — detailed OS overheads at 32 processors        |
//! | `table3` | Table 3 — average parallel-loop concurrency             |
//! | `table4` | Table 4 — GM and network contention overhead            |
//! | `fig3`   | Figure 3 — completion-time breakdown                    |
//! | `fig5` … `fig9` | Figures 5–9 — per-app user-time breakdowns       |
//! | `all`    | the full campaign: every table, every figure, CSVs      |
//! | `probe`  | calibration view of one application                     |
//! | `hotspot`| the Pfister & Norton hot-spot ablation (§6 discussion)  |
//! | `ablation` | xdoall-vs-sdoall rewrite ablation (§6 suggestion)     |
//!
//! All binaries are configured by one typed [`cedar_obs::RunOptions`]
//! value, parsed **once** from the `CEDAR_*`/`BENCH_*` environment by
//! [`run_options`] and passed down explicitly — no library code below
//! this point reads `std::env`. The knobs: `CEDAR_SHRINK=<n>` divides
//! every time-step count by `n` for a quick (non-publication) pass,
//! `CEDAR_WORKERS=<n>` bounds the worker pool, `CEDAR_SCHED` picks the
//! pending-event-set implementation, and `CEDAR_OBS` sets the telemetry
//! level (`off`/`summary`/`full`).
//!
//! The former criterion benches now run on the in-repo [`harness`]
//! (`cargo bench --offline`); `BENCH_SMOKE=1` reduces them to one
//! iteration for CI. Campaign runs write a run manifest (and, at
//! `CEDAR_OBS=full`, a JSONL telemetry stream) via [`manifest`].

pub mod gate;
pub mod harness;
pub mod manifest;

use std::sync::OnceLock;

use cedar_apps::AppSpec;
use cedar_core::suite::SuiteResult;
use cedar_hw::Configuration;
use cedar_obs::RunOptions;

/// The process-wide run options, parsed from the environment exactly
/// once. This is the single place the bench binaries touch `CEDAR_*` /
/// `BENCH_*`; everything downstream takes the typed value.
pub fn run_options() -> &'static RunOptions {
    static OPTS: OnceLock<RunOptions> = OnceLock::new();
    OPTS.get_or_init(RunOptions::from_env)
}

/// [`run_options`] with the run cache structurally forced off. The
/// in-repo benchmarks (and through them the regression gate in
/// `scripts/bench_check.sh`) measure **real simulation time**; replaying
/// memoized results would make every number a lie, so the benches use
/// this accessor and no `CEDAR_CACHE` setting can reach them.
pub fn bench_options() -> &'static RunOptions {
    static OPTS: OnceLock<RunOptions> = OnceLock::new();
    OPTS.get_or_init(|| run_options().clone().with_cache(cedar_obs::CacheMode::Off))
}

/// The shrink factor of `opts` (1 = full scale).
pub fn shrink_factor(opts: &RunOptions) -> u32 {
    opts.shrink
}

/// The Perfect suite at the scale `opts` asks for.
pub fn suite_apps(opts: &RunOptions) -> Vec<AppSpec> {
    let f = opts.shrink;
    cedar_apps::perfect_suite()
        .into_iter()
        .map(|a| if f > 1 { a.shrunk(f) } else { a })
        .collect()
}

/// Runs the full measurement campaign once per process under
/// [`run_options`] and caches it — every table/figure binary shares the
/// same run.
pub fn campaign() -> &'static SuiteResult {
    static CAMPAIGN: OnceLock<SuiteResult> = OnceLock::new();
    CAMPAIGN.get_or_init(|| {
        let opts = run_options();
        if opts.shrink > 1 {
            eprintln!(
                "note: CEDAR_SHRINK={} — quick pass, not publication scale",
                opts.shrink
            );
        }
        let workers = opts
            .workers
            .unwrap_or_else(cedar_core::pool::default_workers);
        eprintln!(
            "running measurement campaign (5 apps x 5 configurations, {workers} workers, {} scheduler)...",
            opts.scheduler.as_str()
        );
        let t0 = std::time::Instant::now();
        let suite = SuiteResult::run_parallel(&suite_apps(opts), &Configuration::ALL, opts)
            .expect("campaign experiment panicked");
        eprintln!("campaign done in {:.1}s", t0.elapsed().as_secs_f64());
        suite
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_factor_mirrors_options() {
        assert_eq!(shrink_factor(&RunOptions::default()), 1);
        assert_eq!(shrink_factor(&RunOptions::default().with_shrink(8)), 8);
    }

    #[test]
    fn suite_apps_are_the_perfect_five() {
        let names: Vec<_> = suite_apps(&RunOptions::default())
            .iter()
            .map(|a| a.name)
            .collect();
        assert_eq!(names, vec!["FLO52", "ARC2D", "MDG", "OCEAN", "ADM"]);
    }

    #[test]
    fn shrunk_suite_keeps_names() {
        let opts = RunOptions::default().with_shrink(16);
        let names: Vec<_> = suite_apps(&opts).iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["FLO52", "ARC2D", "MDG", "OCEAN", "ADM"]);
    }
}
