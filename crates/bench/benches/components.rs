//! Micro-benchmarks of the simulator's building blocks: the per-event
//! costs that determine how fast a full campaign runs.
//!
//! Runs on the in-repo harness (`cargo bench --offline`); JSON lands in
//! `results/BENCH_components.json`. `BENCH_SMOKE=1` for a one-iteration
//! smoke pass.

use cedar_bench::harness::{black_box, Harness};
use cedar_hw::cache::{Cache, CacheConfig};
use cedar_hw::cbus::CbusBarrier;
use cedar_hw::module::MemoryModule;
use cedar_hw::net::DeltaNet;
use cedar_hw::{GlobalAddr, MemOp, NetConfig};
use cedar_rtl::{ClaimStep, IterClaimer, RtlWords};
use cedar_sim::{Cycles, EventQueue, SplitMix64};

fn bench_event_queue(h: &mut Harness) {
    let mut rng = SplitMix64::new(1);
    h.bench("event_queue_schedule_pop_1k", || {
        let mut q = EventQueue::with_capacity(1024);
        for i in 0..1000u64 {
            q.schedule(Cycles(rng.next_below(1 << 20)), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        black_box(sum)
    });
}

fn bench_network(h: &mut Harness) {
    let mut net = DeltaNet::new(&NetConfig::cedar());
    let mut t = 0u64;
    h.bench("delta_net_two_stage_transit", || {
        t += 1;
        let mid = net.transit_stage1((t % 32) as u16, ((t * 7) % 32) as u16, Cycles(t));
        black_box(net.transit_stage2(((t * 7) % 32) as u16, mid))
    });
}

fn bench_memory_module(h: &mut Harness) {
    let mut m = MemoryModule::new(Cycles(4), Cycles(8));
    let mut t = 0u64;
    h.bench("memory_module_serve", || {
        t += 2;
        black_box(m.serve(t % 64, MemOp::Read, Cycles(t)))
    });
    let mut m = MemoryModule::new(Cycles(4), Cycles(8));
    let mut t = 0u64;
    h.bench("memory_module_fetch_add", || {
        t += 2;
        black_box(m.serve(3, MemOp::FetchAdd(1), Cycles(t)))
    });
}

fn bench_claim_protocol(h: &mut Harness) {
    h.bench("iter_claimer_4k_claims", || {
        let mut claimer = IterClaimer::new(RtlWords::cedar(), 4096, Cycles(150));
        let mut index = 0u64;
        let mut lock = 0u64;
        let mut step = claimer.begin();
        loop {
            match step {
                ClaimStep::Issue(wi) => {
                    let w = RtlWords::cedar();
                    let v = if wi.addr == w.lock {
                        match wi.op {
                            MemOp::TestAndSet => {
                                let old = lock;
                                lock = 1;
                                old
                            }
                            MemOp::Unset => {
                                lock = 0;
                                0
                            }
                            _ => 0,
                        }
                    } else {
                        match wi.op {
                            MemOp::Read => index,
                            MemOp::FetchAdd(d) => {
                                let old = index;
                                index = index.wrapping_add_signed(d);
                                old
                            }
                            _ => 0,
                        }
                    };
                    step = claimer.on_value(v);
                }
                done => break black_box(done),
            }
        }
    });
}

fn bench_cbus_barrier(h: &mut Harness) {
    let mut barrier = CbusBarrier::new(8, Cycles(8));
    let mut t = 0u64;
    h.bench("cbus_barrier_eight_arrivals", || {
        let mut release = None;
        for i in 0..8 {
            t += 1;
            release = barrier.arrive(Cycles(t + i));
        }
        black_box(release)
    });
}

fn bench_cache(h: &mut Harness) {
    let mut cache = Cache::new(CacheConfig::cedar_cluster());
    let mut rng = SplitMix64::new(7);
    h.bench("cluster_cache_access", || {
        black_box(cache.access(GlobalAddr(rng.next_below(1 << 20))))
    });
}

fn main() {
    let mut h = Harness::new("components");
    bench_event_queue(&mut h);
    bench_network(&mut h);
    bench_memory_module(&mut h);
    bench_claim_protocol(&mut h);
    bench_cbus_barrier(&mut h);
    bench_cache(&mut h);
    h.finish().expect("write bench JSON");
}
