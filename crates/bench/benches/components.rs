//! Micro-benchmarks of the simulator's building blocks: the per-event
//! costs that determine how fast a full campaign runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cedar_hw::cache::{Cache, CacheConfig};
use cedar_hw::cbus::CbusBarrier;
use cedar_hw::module::MemoryModule;
use cedar_hw::net::DeltaNet;
use cedar_hw::{GlobalAddr, MemOp, NetConfig};
use cedar_rtl::{ClaimStep, IterClaimer, RtlWords};
use cedar_sim::{Cycles, EventQueue, SplitMix64};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_1k", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1000u64 {
                q.schedule(Cycles(rng.next_below(1 << 20)), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("delta_net_two_stage_transit", |b| {
        let mut net = DeltaNet::new(&NetConfig::cedar());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let mid = net.transit_stage1((t % 32) as u16, ((t * 7) % 32) as u16, Cycles(t));
            black_box(net.transit_stage2(((t * 7) % 32) as u16, mid))
        })
    });
}

fn bench_memory_module(c: &mut Criterion) {
    c.bench_function("memory_module_serve", |b| {
        let mut m = MemoryModule::new(Cycles(4), Cycles(8));
        let mut t = 0u64;
        b.iter(|| {
            t += 2;
            black_box(m.serve(t % 64, MemOp::Read, Cycles(t)))
        })
    });
    c.bench_function("memory_module_fetch_add", |b| {
        let mut m = MemoryModule::new(Cycles(4), Cycles(8));
        let mut t = 0u64;
        b.iter(|| {
            t += 2;
            black_box(m.serve(3, MemOp::FetchAdd(1), Cycles(t)))
        })
    });
}

fn bench_claim_protocol(c: &mut Criterion) {
    c.bench_function("iter_claimer_full_claim", |b| {
        b.iter(|| {
            let mut claimer = IterClaimer::new(RtlWords::cedar(), 1 << 30, Cycles(150));
            let mut index = 0u64;
            let mut lock = 0u64;
            let mut step = claimer.begin();
            loop {
                match step {
                    ClaimStep::Issue(wi) => {
                        let w = RtlWords::cedar();
                        let v = if wi.addr == w.lock {
                            match wi.op {
                                MemOp::TestAndSet => {
                                    let old = lock;
                                    lock = 1;
                                    old
                                }
                                MemOp::Unset => {
                                    lock = 0;
                                    0
                                }
                                _ => 0,
                            }
                        } else {
                            match wi.op {
                                MemOp::Read => index,
                                MemOp::FetchAdd(d) => {
                                    let old = index;
                                    index = index.wrapping_add_signed(d);
                                    old
                                }
                                _ => 0,
                            }
                        };
                        step = claimer.on_value(v);
                    }
                    done => break black_box(done),
                }
            }
        })
    });
}

fn bench_cbus_barrier(c: &mut Criterion) {
    c.bench_function("cbus_barrier_eight_arrivals", |b| {
        let mut barrier = CbusBarrier::new(8, Cycles(8));
        let mut t = 0u64;
        b.iter(|| {
            let mut release = None;
            for i in 0..8 {
                t += 1;
                release = barrier.arrive(Cycles(t + i));
            }
            black_box(release)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cluster_cache_access", |b| {
        let mut cache = Cache::new(CacheConfig::cedar_cluster());
        let mut rng = SplitMix64::new(7);
        b.iter(|| black_box(cache.access(GlobalAddr(rng.next_below(1 << 20)))))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_network,
    bench_memory_module,
    bench_claim_protocol,
    bench_cbus_barrier,
    bench_cache
);
criterion_main!(benches);
