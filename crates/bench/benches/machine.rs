//! Whole-machine benchmarks: how fast the simulator executes complete
//! runs, per configuration and per workload style.
//!
//! Runs on the in-repo harness (`cargo bench --offline`); JSON lands in
//! `results/BENCH_machine.json`. `BENCH_SMOKE=1` for a one-iteration
//! smoke pass.

use cedar_apps::synthetic;
use cedar_bench::harness::{black_box, Harness};
use cedar_core::{Experiment, SimConfig};
use cedar_hw::Configuration;

fn bench_full_runs(h: &mut Harness) {
    for conf in [Configuration::P1, Configuration::P8, Configuration::P32] {
        h.bench(&format!("machine_run/sdoall/{}", conf.total_ces()), || {
            let app = synthetic::uniform_sdoall(1, 2, 8, 16, 300, 8);
            black_box(Experiment::new(app, SimConfig::cedar(conf)).run().events)
        });
        h.bench(&format!("machine_run/xdoall/{}", conf.total_ces()), || {
            let app = synthetic::uniform_xdoall(1, 2, 64, 500, 8);
            black_box(Experiment::new(app, SimConfig::cedar(conf)).run().events)
        });
    }
}

fn bench_traffic_styles(h: &mut Harness) {
    h.bench("traffic_style/streaming", || {
        let app = synthetic::streaming(1, 4, 8, 32);
        black_box(
            Experiment::new(app, SimConfig::cedar(Configuration::P8))
                .run()
                .events,
        )
    });
    h.bench("traffic_style/hotspot", || {
        let app = synthetic::hotspot(1, 128);
        black_box(
            Experiment::new(app, SimConfig::cedar(Configuration::P32))
                .run()
                .events,
        )
    });
}

fn main() {
    let mut h = Harness::new("machine");
    bench_full_runs(&mut h);
    bench_traffic_styles(&mut h);
    h.finish().expect("write bench JSON");
}
