//! Whole-machine benchmarks: how fast the simulator executes complete
//! runs, per configuration and per workload style.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cedar_apps::synthetic;
use cedar_core::{Experiment, SimConfig};
use cedar_hw::Configuration;

fn bench_full_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_run");
    g.sample_size(10);
    for conf in [Configuration::P1, Configuration::P8, Configuration::P32] {
        g.bench_with_input(
            BenchmarkId::new("sdoall", conf.total_ces()),
            &conf,
            |b, &conf| {
                b.iter(|| {
                    let app = synthetic::uniform_sdoall(1, 2, 8, 16, 300, 8);
                    black_box(Experiment::new(app, SimConfig::cedar(conf)).run().events)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("xdoall", conf.total_ces()),
            &conf,
            |b, &conf| {
                b.iter(|| {
                    let app = synthetic::uniform_xdoall(1, 2, 64, 500, 8);
                    black_box(Experiment::new(app, SimConfig::cedar(conf)).run().events)
                })
            },
        );
    }
    g.finish();
}

fn bench_traffic_styles(c: &mut Criterion) {
    let mut g = c.benchmark_group("traffic_style");
    g.sample_size(10);
    g.bench_function("streaming", |b| {
        b.iter(|| {
            let app = synthetic::streaming(1, 4, 8, 32);
            black_box(
                Experiment::new(app, SimConfig::cedar(Configuration::P8))
                    .run()
                    .events,
            )
        })
    });
    g.bench_function("hotspot", |b| {
        b.iter(|| {
            let app = synthetic::hotspot(1, 128);
            black_box(
                Experiment::new(app, SimConfig::cedar(Configuration::P32))
                    .run()
                    .events,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_full_runs, bench_traffic_styles);
criterion_main!(benches);
