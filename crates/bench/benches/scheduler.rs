//! Scheduler microbenchmarks: heap vs calendar on the event patterns
//! that dominate a measurement campaign, plus a suite-level timing.
//!
//! Runs on the in-repo harness (`cargo bench --offline`); JSON lands in
//! `results/BENCH_scheduler.json`, which `scripts/bench_check.sh` gates
//! in CI: the calendar queue must stay ahead of the heap on the
//! event-dense network workload, and the suite timing must stay within
//! the regression budget of `results/bench_baseline.json`.
//!
//! Every paired benchmark also asserts that both schedulers produce the
//! exact same event stream (checksums match), so the benches double as
//! an A/B equivalence check at realistic scale.

use cedar_apps::perfect_suite;
use cedar_bench::harness::{black_box, Harness};
use cedar_core::prelude::FaultPlan;
use cedar_core::suite::SuiteResult;
use cedar_core::{Experiment, SimConfig};
use cedar_hw::{
    CeId, Configuration, GlobalAddr, GlobalMemorySystem, GmemEvent, GmemOutput, MemOp, NetConfig,
};
use cedar_sim::{Cycles, EventQueue, Outbox, SchedKind, SplitMix64};

/// The classic hold model: keep `pending` events in flight, pop one and
/// reschedule it a short, random distance ahead, `steps` times. This is
/// the steady state of a discrete-event kernel: the heap pays O(log n)
/// per hold, the calendar queue O(1).
fn hold_model(kind: SchedKind, pending: u64, steps: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::with_kind(kind);
    let mut rng = SplitMix64::new(0x601D);
    for i in 0..pending {
        q.schedule(Cycles(1 + rng.next_below(256)), i);
    }
    let mut checksum = 0u64;
    for _ in 0..steps {
        let (now, v) = q.pop().expect("hold model never drains");
        checksum = checksum.wrapping_mul(31).wrapping_add(now.0 ^ v);
        q.schedule(now + Cycles(1 + rng.next_below(256)), v);
    }
    checksum
}

/// Event-dense network workload: a closed-loop storm of single-word
/// requests through the full two-stage forward/reverse network with
/// `per_ce` outstanding requests per CE. Every delivery immediately
/// triggers a fresh injection, so the pending-event population stays at
/// `32 × per_ce` packets in flight — the packet-heavy regime the 32-CE
/// campaign codes produce.
fn net_dense(kind: SchedKind, per_ce: u64, events: u64) -> u64 {
    let mut sys = GlobalMemorySystem::new(NetConfig::cedar());
    let mut q: EventQueue<GmemEvent> = EventQueue::with_kind(kind);
    let mut out: Outbox<GmemEvent> = Outbox::new();
    let mut rng = SplitMix64::new(0xD15E);
    for ce in 0..32u16 {
        for _ in 0..per_ce {
            let addr = GlobalAddr(rng.next_below(1 << 16) * 8);
            sys.inject(CeId(ce), addr, MemOp::Read, Cycles(0), &mut out);
            out.flush_into(Cycles(0), &mut q);
        }
    }
    let mut checksum = 0u64;
    let mut handled = 0u64;
    while handled < events {
        let (now, ev) = q.pop().expect("closed loop never drains");
        if let Some(GmemOutput::Deliver(resp)) = sys.handle(ev, now, &mut out) {
            checksum = checksum
                .wrapping_mul(31)
                .wrapping_add(now.0 ^ resp.id.0 ^ resp.value);
            let addr = GlobalAddr(rng.next_below(1 << 16) * 8);
            sys.inject(resp.ce, addr, MemOp::Read, now, &mut out);
        }
        out.flush_into(now, &mut q);
        handled += 1;
    }
    checksum
}

fn bench_hold(h: &mut Harness) {
    let reference = hold_model(SchedKind::Heap, 4096, 1_000);
    assert_eq!(
        reference,
        hold_model(SchedKind::Calendar, 4096, 1_000),
        "schedulers diverged on the hold model"
    );
    for (name, pending) in [("4k", 4096u64), ("32k", 32_768)] {
        h.bench(&format!("sched/hold_{name}/heap"), || {
            black_box(hold_model(SchedKind::Heap, pending, 200_000))
        });
        h.bench(&format!("sched/hold_{name}/calendar"), || {
            black_box(hold_model(SchedKind::Calendar, pending, 200_000))
        });
    }
}

fn bench_net_dense(h: &mut Harness) {
    let reference = net_dense(SchedKind::Heap, 64, 50_000);
    assert_eq!(
        reference,
        net_dense(SchedKind::Calendar, 64, 50_000),
        "schedulers diverged on the network workload"
    );
    h.bench("sched/net_dense/heap", || {
        black_box(net_dense(SchedKind::Heap, 64, 400_000))
    });
    h.bench("sched/net_dense/calendar", || {
        black_box(net_dense(SchedKind::Calendar, 64, 400_000))
    });
}

/// Suite-level timing: the reduced-scale measurement campaign the other
/// bench targets share, timed as one unit. `scripts/bench_check.sh`
/// gates this number against `results/bench_baseline.json`.
fn bench_suite(h: &mut Harness) {
    let apps: Vec<_> = perfect_suite().into_iter().map(|a| a.shrunk(24)).collect();
    h.bench("suite/mini_campaign", || {
        black_box(SuiteResult::measure(
            &apps,
            &[Configuration::P1, Configuration::P8, Configuration::P32],
            // bench_options, not run_options: the gate must time real
            // simulation even when the environment enables the cache.
            cedar_bench::bench_options(),
        ))
    });
}

/// Fault-path timing: FLO52 at 8 processors under the canonical fault
/// campaign. Gated against `results/bench_baseline.json` so the
/// injection hot path (driver draws, extra events, scaled lock
/// acquires) cannot silently slow the simulator down. Doubles as an A/B
/// equivalence check: both schedulers must produce the identical
/// faulted run.
fn bench_faults(h: &mut Harness) {
    let app = perfect_suite()
        .into_iter()
        .find(|a| a.name == "FLO52")
        .expect("FLO52 in the perfect suite")
        .shrunk(24);
    let plan = FaultPlan::canonical();
    let run = |kind: SchedKind| {
        Experiment::new(
            app.clone(),
            SimConfig::cedar(Configuration::P8)
                .with_scheduler(kind)
                .with_faults(plan),
        )
        .run()
    };
    let heap = run(SchedKind::Heap);
    let calendar = run(SchedKind::Calendar);
    assert_eq!(
        heap.completion_time, calendar.completion_time,
        "schedulers diverged on the faulted run"
    );
    assert_eq!(
        heap.events, calendar.events,
        "faulted event counts diverged"
    );
    h.bench("faults/flo52_p8/calendar", || {
        black_box(run(SchedKind::Calendar))
    });
}

fn main() {
    let mut h = Harness::new("scheduler");
    bench_hold(&mut h);
    bench_net_dense(&mut h);
    bench_suite(&mut h);
    bench_faults(&mut h);
    h.finish().expect("write bench JSON");
}
