//! One criterion benchmark per paper table/figure: each measures the
//! end-to-end time to *regenerate* that artifact (campaign + analysis +
//! rendering) on a reduced-scale suite. The publication-scale artifacts
//! come from the `table1`..`fig9` binaries; these benches track the cost
//! of the pipeline itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cedar_apps::perfect_suite;
use cedar_core::suite::SuiteResult;
use cedar_hw::Configuration;

/// A heavily reduced campaign: all five apps, three configurations.
fn mini_campaign() -> SuiteResult {
    let apps: Vec<_> = perfect_suite().into_iter().map(|a| a.shrunk(24)).collect();
    SuiteResult::measure(
        &apps,
        &[Configuration::P1, Configuration::P8, Configuration::P32],
    )
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("regenerate");
    g.sample_size(10);
    g.bench_function("table1_speedups", |b| {
        b.iter(|| {
            let suite = mini_campaign();
            black_box(cedar_report::tables::table1(&suite))
        })
    });
    g.bench_function("table2_os_overheads", |b| {
        b.iter(|| {
            let suite = mini_campaign();
            black_box(cedar_report::tables::table2(&suite))
        })
    });
    g.bench_function("table3_parallel_concurrency", |b| {
        b.iter(|| {
            let suite = mini_campaign();
            black_box(cedar_report::tables::table3(&suite))
        })
    });
    g.bench_function("table4_contention", |b| {
        b.iter(|| {
            let suite = mini_campaign();
            black_box(cedar_report::tables::table4(&suite))
        })
    });
    g.bench_function("fig3_ct_breakdown", |b| {
        b.iter(|| {
            let suite = mini_campaign();
            black_box(cedar_report::figures::figure3(&suite))
        })
    });
    g.bench_function("fig5to9_user_breakdowns", |b| {
        b.iter(|| {
            let suite = mini_campaign();
            black_box(cedar_report::figures::figures5to9(&suite))
        })
    });
    g.finish();
}

fn bench_analysis_only(c: &mut Criterion) {
    // Separate the analysis/rendering cost from the simulation cost.
    let suite = mini_campaign();
    let mut g = c.benchmark_group("analysis_only");
    g.bench_function("all_tables_and_figures", |b| {
        b.iter(|| {
            black_box((
                cedar_report::tables::table1(&suite),
                cedar_report::tables::table2(&suite),
                cedar_report::tables::table3(&suite),
                cedar_report::tables::table4(&suite),
                cedar_report::figures::figure3(&suite),
                cedar_report::figures::figures5to9(&suite),
            ))
        })
    });
    g.bench_function("csv_exports", |b| {
        b.iter(|| {
            black_box((
                cedar_report::csv::summary_csv(&suite),
                cedar_report::csv::breakdown_csv(&suite),
                cedar_report::csv::concurrency_csv(&suite),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_analysis_only);
criterion_main!(benches);
