//! One benchmark per paper table/figure: each measures the end-to-end
//! time to *regenerate* that artifact (campaign + analysis + rendering)
//! on a reduced-scale suite. The publication-scale artifacts come from
//! the `table1`..`fig9` binaries; these benches track the cost of the
//! pipeline itself.
//!
//! Runs on the in-repo harness (`cargo bench --offline`); JSON lands in
//! `results/BENCH_tables.json`. `BENCH_SMOKE=1` for a one-iteration
//! smoke pass.

use cedar_apps::perfect_suite;
use cedar_bench::harness::{black_box, Harness};
use cedar_core::suite::SuiteResult;
use cedar_hw::Configuration;

/// A heavily reduced campaign: all five apps, three configurations.
fn mini_campaign() -> SuiteResult {
    let apps: Vec<_> = perfect_suite().into_iter().map(|a| a.shrunk(24)).collect();
    SuiteResult::measure(
        &apps,
        &[Configuration::P1, Configuration::P8, Configuration::P32],
        // bench_options, not run_options: regeneration timings must
        // reflect real simulation even when the cache is enabled.
        cedar_bench::bench_options(),
    )
}

fn bench_tables(h: &mut Harness) {
    h.bench("regenerate/table1_speedups", || {
        let suite = mini_campaign();
        black_box(cedar_report::tables::table1(&suite))
    });
    h.bench("regenerate/table2_os_overheads", || {
        let suite = mini_campaign();
        black_box(cedar_report::tables::table2(&suite))
    });
    h.bench("regenerate/table3_parallel_concurrency", || {
        let suite = mini_campaign();
        black_box(cedar_report::tables::table3(&suite))
    });
    h.bench("regenerate/table4_contention", || {
        let suite = mini_campaign();
        black_box(cedar_report::tables::table4(&suite))
    });
    h.bench("regenerate/fig3_ct_breakdown", || {
        let suite = mini_campaign();
        black_box(cedar_report::figures::figure3(&suite))
    });
    h.bench("regenerate/fig5to9_user_breakdowns", || {
        let suite = mini_campaign();
        black_box(cedar_report::figures::figures5to9(&suite))
    });
}

fn bench_analysis_only(h: &mut Harness) {
    // Separate the analysis/rendering cost from the simulation cost.
    let suite = mini_campaign();
    h.bench("analysis_only/all_tables_and_figures", || {
        black_box((
            cedar_report::tables::table1(&suite),
            cedar_report::tables::table2(&suite),
            cedar_report::tables::table3(&suite),
            cedar_report::tables::table4(&suite),
            cedar_report::figures::figure3(&suite),
            cedar_report::figures::figures5to9(&suite),
        ))
    });
    h.bench("analysis_only/csv_exports", || {
        black_box((
            cedar_report::csv::summary_csv(&suite),
            cedar_report::csv::breakdown_csv(&suite),
            cedar_report::csv::concurrency_csv(&suite),
        ))
    });
}

fn main() {
    let mut h = Harness::new("tables");
    bench_tables(&mut h);
    bench_analysis_only(&mut h);
    h.finish().expect("write bench JSON");
}
