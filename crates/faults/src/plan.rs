//! The typed fault plan: which disturbances to inject, how hard.

use cedar_sim::Cycles;

/// Extra cross-processor interrupt storms: every occurrence raises
/// `burst` back-to-back CPIs on the target cluster, each costing the
/// machine's configured per-CE CPI service time (§5.1's "Interrupt" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptStorm {
    /// Mean cycles between storms on each cluster (±25% jitter).
    pub mean_interval: Cycles,
    /// CPIs raised per storm.
    pub burst: u32,
}

/// Extra asynchronous-system-trap deliveries: every occurrence delivers
/// `burst` ASTs to the target cluster's lead CE, each charged `cost`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AstBurst {
    /// Mean cycles between bursts on each cluster (±25% jitter).
    pub mean_interval: Cycles,
    /// AST deliveries per burst.
    pub burst: u32,
    /// OS service time charged per delivery.
    pub cost: Cycles,
}

/// Synthetic page-fault waves: every occurrence injects
/// `faults_per_wave` faults on the target cluster, each drawn
/// concurrent with probability `concurrent_pct`%. Injected faults
/// charge the corresponding `PgFlt*` bucket and stall the lead CE, but
/// deliberately do **not** raise CPIs or touch real pages — the wave
/// isolates the page-fault buckets so attribution tests can bound the
/// cross-talk (organic concurrent faults do raise CPIs; see §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFaultWave {
    /// Mean cycles between waves on each cluster (±25% jitter).
    pub mean_interval: Cycles,
    /// Faults injected per wave.
    pub faults_per_wave: u32,
    /// Probability (0–100) that an injected fault is concurrent.
    pub concurrent_pct: u8,
    /// Service cost charged per sequential fault.
    pub seq_cost: Cycles,
    /// Service cost charged per concurrent fault.
    pub conc_cost: Cycles,
}

/// Kernel-lock hold-time inflation: every critical-section entry holds
/// its lock `hold_pct`% longer than the cost model says. The extra hold
/// is charged to the `CrSect*` buckets; any extra spin emerges from the
/// FCFS lock occupancy exactly as in the unperturbed model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockInflation {
    /// Extra hold time as a percentage of the nominal hold (100 = 2x).
    pub hold_pct: u32,
}

/// Statically degraded interconnect hardware: switch traversal and
/// memory-module service latencies are stretched by the given
/// percentages for the whole run. No OS bucket moves — the injected
/// cost surfaces as global-memory queueing and latency, the paper's
/// contention overhead (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedNetwork {
    /// Extra switch-stage latency, percent (100 = 2x).
    pub switch_pct: u32,
    /// Extra module service/access latency, percent (100 = 2x).
    pub module_pct: u32,
}

/// Helper-task stall injection: every occurrence freezes a helper
/// cluster's lead CE for `stall` cycles, modelling the OS descheduling
/// the helper. No OS bucket is charged — completion time stretches and
/// the loss shows up only as lost user-side progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelperStall {
    /// Mean cycles between stalls on each helper cluster (±25% jitter).
    pub mean_interval: Cycles,
    /// Stall length per occurrence.
    pub stall: Cycles,
}

/// A complete fault campaign for one run. The default plan is empty —
/// running with it is byte-identical to running without the faults
/// subsystem at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the driver's per-`(class, cluster)` occurrence streams;
    /// independent of the machine's master seed.
    pub seed: u64,
    /// Cross-processor interrupt storms.
    pub interrupt_storm: Option<InterruptStorm>,
    /// AST delivery bursts.
    pub ast_burst: Option<AstBurst>,
    /// Synthetic page-fault waves.
    pub page_fault_wave: Option<PageFaultWave>,
    /// Kernel-lock hold inflation.
    pub lock_inflation: Option<LockInflation>,
    /// Static network/memory degradation.
    pub degraded_network: Option<DegradedNetwork>,
    /// Helper-task stalls.
    pub helper_stall: Option<HelperStall>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA17_57ED,
            interrupt_storm: None,
            ast_burst: None,
            page_fault_wave: None,
            lock_inflation: None,
            degraded_network: None,
            helper_stall: None,
        }
    }
}

impl FaultPlan {
    /// `true` when no fault class is armed — the run must then be
    /// byte-identical to one with no plan at all.
    pub fn is_empty(&self) -> bool {
        self.interrupt_storm.is_none()
            && self.ast_burst.is_none()
            && self.page_fault_wave.is_none()
            && self.lock_inflation.is_none()
            && self.degraded_network.is_none()
            && self.helper_stall.is_none()
    }

    /// Overrides the driver seed (builder style).
    ///
    /// ```
    /// use cedar_faults::FaultPlan;
    ///
    /// assert_eq!(FaultPlan::default().with_seed(7).seed, 7);
    /// ```
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Arms interrupt storms (builder style).
    ///
    /// ```
    /// use cedar_faults::{FaultPlan, InterruptStorm};
    /// use cedar_sim::Cycles;
    ///
    /// let plan = FaultPlan::default().with_interrupt_storm(InterruptStorm {
    ///     mean_interval: Cycles(40_000),
    ///     burst: 2,
    /// });
    /// assert!(!plan.is_empty());
    /// ```
    pub fn with_interrupt_storm(mut self, spec: InterruptStorm) -> Self {
        self.interrupt_storm = Some(spec);
        self
    }

    /// Arms AST bursts (builder style).
    ///
    /// ```
    /// use cedar_faults::{AstBurst, FaultPlan};
    /// use cedar_sim::Cycles;
    ///
    /// let plan = FaultPlan::default().with_ast_burst(AstBurst {
    ///     mean_interval: Cycles(60_000),
    ///     burst: 3,
    ///     cost: Cycles(400),
    /// });
    /// assert_eq!(plan.ast_burst.unwrap().burst, 3);
    /// ```
    pub fn with_ast_burst(mut self, spec: AstBurst) -> Self {
        self.ast_burst = Some(spec);
        self
    }

    /// Arms page-fault waves (builder style).
    ///
    /// ```
    /// use cedar_faults::{FaultPlan, PageFaultWave};
    /// use cedar_sim::Cycles;
    ///
    /// let plan = FaultPlan::default().with_page_fault_wave(PageFaultWave {
    ///     mean_interval: Cycles(80_000),
    ///     faults_per_wave: 4,
    ///     concurrent_pct: 50,
    ///     seq_cost: Cycles(1_000),
    ///     conc_cost: Cycles(1_500),
    /// });
    /// assert_eq!(plan.page_fault_wave.unwrap().concurrent_pct, 50);
    /// ```
    pub fn with_page_fault_wave(mut self, spec: PageFaultWave) -> Self {
        self.page_fault_wave = Some(spec);
        self
    }

    /// Arms kernel-lock hold inflation (builder style).
    ///
    /// ```
    /// use cedar_faults::{FaultPlan, LockInflation};
    ///
    /// let plan = FaultPlan::default().with_lock_inflation(LockInflation { hold_pct: 100 });
    /// assert_eq!(plan.lock_inflation.unwrap().hold_pct, 100);
    /// ```
    pub fn with_lock_inflation(mut self, spec: LockInflation) -> Self {
        self.lock_inflation = Some(spec);
        self
    }

    /// Arms static network degradation (builder style).
    ///
    /// ```
    /// use cedar_faults::{DegradedNetwork, FaultPlan};
    ///
    /// let plan = FaultPlan::default().with_degraded_network(DegradedNetwork {
    ///     switch_pct: 50,
    ///     module_pct: 25,
    /// });
    /// assert_eq!(plan.degraded_network.unwrap().switch_pct, 50);
    /// ```
    pub fn with_degraded_network(mut self, spec: DegradedNetwork) -> Self {
        self.degraded_network = Some(spec);
        self
    }

    /// Arms helper-task stalls (builder style).
    ///
    /// ```
    /// use cedar_faults::{FaultPlan, HelperStall};
    /// use cedar_sim::Cycles;
    ///
    /// let plan = FaultPlan::default().with_helper_stall(HelperStall {
    ///     mean_interval: Cycles(100_000),
    ///     stall: Cycles(5_000),
    /// });
    /// assert_eq!(plan.helper_stall.unwrap().stall, Cycles(5_000));
    /// ```
    pub fn with_helper_stall(mut self, spec: HelperStall) -> Self {
        self.helper_stall = Some(spec);
        self
    }

    /// The canonical campaign plan the golden snapshot, the determinism
    /// suite and `faultsweep` share: every class armed at a moderate
    /// intensity, sized for the reduced-scale (shrink-16) workloads.
    pub fn canonical() -> Self {
        FaultPlan::default()
            .with_interrupt_storm(InterruptStorm {
                mean_interval: Cycles(40_000),
                burst: 3,
            })
            .with_ast_burst(AstBurst {
                mean_interval: Cycles(60_000),
                burst: 4,
                cost: Cycles(150),
            })
            .with_page_fault_wave(PageFaultWave {
                mean_interval: Cycles(50_000),
                faults_per_wave: 6,
                concurrent_pct: 50,
                seq_cost: Cycles(700),
                conc_cost: Cycles(1_100),
            })
            .with_lock_inflation(LockInflation { hold_pct: 150 })
            .with_degraded_network(DegradedNetwork {
                switch_pct: 50,
                module_pct: 50,
            })
            .with_helper_stall(HelperStall {
                mean_interval: Cycles(45_000),
                stall: Cycles(800),
            })
    }

    /// The canonical plan scaled to an integer intensity `level`: 0 is
    /// the empty plan, 1 is [`FaultPlan::canonical`], higher levels fire
    /// every timed class `level`× as often and stretch the static
    /// multipliers `level`×. `faultsweep` sweeps this axis.
    pub fn canonical_at(level: u32) -> Self {
        if level == 0 {
            return FaultPlan::default();
        }
        let base = FaultPlan::canonical();
        let div = |c: Cycles| Cycles((c.0 / level as u64).max(1));
        FaultPlan {
            seed: base.seed,
            interrupt_storm: base.interrupt_storm.map(|s| InterruptStorm {
                mean_interval: div(s.mean_interval),
                ..s
            }),
            ast_burst: base.ast_burst.map(|s| AstBurst {
                mean_interval: div(s.mean_interval),
                ..s
            }),
            page_fault_wave: base.page_fault_wave.map(|s| PageFaultWave {
                mean_interval: div(s.mean_interval),
                ..s
            }),
            lock_inflation: base.lock_inflation.map(|s| LockInflation {
                hold_pct: s.hold_pct * level,
            }),
            degraded_network: base.degraded_network.map(|s| DegradedNetwork {
                switch_pct: s.switch_pct * level,
                module_pct: s.module_pct * level,
            }),
            helper_stall: base.helper_stall.map(|s| HelperStall {
                mean_interval: div(s.mean_interval),
                ..s
            }),
        }
    }

    /// A stable, compact textual form of the plan for run fingerprints
    /// and manifests. The empty plan renders as `none`.
    pub fn fingerprint(&self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        let mut parts = vec![format!("seed={:#x}", self.seed)];
        if let Some(s) = self.interrupt_storm {
            parts.push(format!("storm(i={},b={})", s.mean_interval.0, s.burst));
        }
        if let Some(s) = self.ast_burst {
            parts.push(format!(
                "ast(i={},b={},c={})",
                s.mean_interval.0, s.burst, s.cost.0
            ));
        }
        if let Some(s) = self.page_fault_wave {
            parts.push(format!(
                "pgflt(i={},n={},cc={},s={},c={})",
                s.mean_interval.0, s.faults_per_wave, s.concurrent_pct, s.seq_cost.0, s.conc_cost.0
            ));
        }
        if let Some(s) = self.lock_inflation {
            parts.push(format!("lock(+{}%)", s.hold_pct));
        }
        if let Some(s) = self.degraded_network {
            parts.push(format!("net(sw+{}%,mod+{}%)", s.switch_pct, s.module_pct));
        }
        if let Some(s) = self.helper_stall {
            parts.push(format!("stall(i={},d={})", s.mean_interval.0, s.stall.0));
        }
        parts.join(";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_fingerprints_as_none() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert_eq!(p.fingerprint(), "none");
    }

    #[test]
    fn builders_arm_each_class() {
        let p = FaultPlan::canonical();
        assert!(!p.is_empty());
        assert!(p.interrupt_storm.is_some());
        assert!(p.ast_burst.is_some());
        assert!(p.page_fault_wave.is_some());
        assert!(p.lock_inflation.is_some());
        assert!(p.degraded_network.is_some());
        assert!(p.helper_stall.is_some());
    }

    #[test]
    fn fingerprint_distinguishes_plans() {
        let a = FaultPlan::canonical();
        let b = FaultPlan::canonical().with_seed(1);
        let c = FaultPlan::default().with_lock_inflation(LockInflation { hold_pct: 50 });
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(b.fingerprint(), c.fingerprint());
    }

    #[test]
    fn intensity_zero_is_empty_and_levels_scale_intervals() {
        assert!(FaultPlan::canonical_at(0).is_empty());
        let one = FaultPlan::canonical_at(1);
        assert_eq!(one, FaultPlan::canonical());
        let four = FaultPlan::canonical_at(4);
        assert_eq!(
            four.interrupt_storm.unwrap().mean_interval.0,
            one.interrupt_storm.unwrap().mean_interval.0 / 4
        );
        assert_eq!(
            four.lock_inflation.unwrap().hold_pct,
            one.lock_inflation.unwrap().hold_pct * 4
        );
        assert_eq!(four.degraded_network.unwrap().switch_pct, 200);
    }

    #[test]
    fn seed_override_keeps_plan_contents() {
        let p = FaultPlan::canonical().with_seed(99);
        assert_eq!(p.seed, 99);
        assert_eq!(p.interrupt_storm, FaultPlan::canonical().interrupt_storm);
    }
}
