//! # cedar-faults — deterministic fault injection
//!
//! The paper's whole contribution is *attributing* completion time to
//! OS, runtime and contention buckets (Table 2, Figures 3–9). The
//! strongest check of the reproduction's attribution logic is to
//! *inject* a known quantity of each overhead class and assert that it
//! surfaces in the right bucket and nowhere else. This crate provides
//! the injection side of that experiment: a typed [`FaultPlan`]
//! describing which paper-meaningful disturbances to inject, and a
//! [`FaultDriver`] that turns the plan into fully deterministic,
//! seed-reproducible occurrence streams.
//!
//! Six fault classes, each targeting one attribution surface:
//!
//! | class | knob | lands in (Table 2 / Fig. 3) |
//! |-------|------|------------------------------|
//! | [`InterruptStorm`] | extra cross-processor interrupts | `Cpi` / Interrupt |
//! | [`AstBurst`] | extra asynchronous-system-trap deliveries | `Ast` / System |
//! | [`PageFaultWave`] | synthetic faults, concurrent/sequential mix | `PgFlt*` / System |
//! | [`LockInflation`] | kernel-lock hold-time multiplier | `CrSect*` (+ emergent `KernelSpin`) |
//! | [`DegradedNetwork`] | switch/module latency multipliers | gmem queueing, no OS bucket |
//! | [`HelperStall`] | helper-task scheduling stalls | CT only, no OS bucket |
//!
//! Determinism discipline: the driver draws every interval and every
//! per-occurrence decision from its own per-`(class, cluster)`
//! `SplitMix64` streams derived from [`FaultPlan::seed`] — never from
//! the machine's master RNG — so an **empty plan is a no-op** (the
//! machine's event stream is byte-identical with and without the faults
//! subsystem wired in), and a non-empty plan reproduces exactly under
//! either event scheduler and any suite worker count.
//!
//! Zero dependencies beyond `cedar-sim`, and no `std::env` reads: the
//! plan travels on `SimConfig`/`RunOptions` as a typed value.

pub mod driver;
pub mod plan;

pub use driver::{FaultDriver, FaultKind, WaveShape};
pub use plan::{
    AstBurst, DegradedNetwork, FaultPlan, HelperStall, InterruptStorm, LockInflation, PageFaultWave,
};
