//! The deterministic occurrence engine behind a [`FaultPlan`].

use cedar_sim::{Cycles, SimTime, SplitMix64};

use crate::plan::FaultPlan;

/// The timed fault classes — the ones that ride the machine's event
/// queue as `Fault` events. The two static classes ([`crate::plan::LockInflation`],
/// [`crate::plan::DegradedNetwork`]) perturb the cost model directly and
/// need no occurrences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A burst of cross-processor interrupts.
    InterruptStorm,
    /// A burst of AST deliveries.
    AstBurst,
    /// A wave of synthetic page faults.
    PageFaultWave,
    /// A helper-task scheduling stall.
    HelperStall,
}

impl FaultKind {
    /// All timed classes, in stream order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::InterruptStorm,
        FaultKind::AstBurst,
        FaultKind::PageFaultWave,
        FaultKind::HelperStall,
    ];

    /// Dense index (the driver's stream row).
    pub fn index(self) -> usize {
        match self {
            FaultKind::InterruptStorm => 0,
            FaultKind::AstBurst => 1,
            FaultKind::PageFaultWave => 2,
            FaultKind::HelperStall => 3,
        }
    }

    /// Occurrence-counter name in the run's telemetry rollup.
    pub fn counter_name(self) -> &'static str {
        match self {
            FaultKind::InterruptStorm => "faults.occ.storm",
            FaultKind::AstBurst => "faults.occ.ast_burst",
            FaultKind::PageFaultWave => "faults.occ.pgflt_wave",
            FaultKind::HelperStall => "faults.occ.helper_stall",
        }
    }
}

/// The composition of one injected page-fault wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveShape {
    /// Faults charged as sequential.
    pub sequential: u32,
    /// Faults charged as concurrent.
    pub concurrent: u32,
}

/// Turns a [`FaultPlan`] into deterministic occurrence streams.
///
/// One `SplitMix64` per `(class, cluster)` pair, all derived from
/// [`FaultPlan::seed`]: a class's stream on one cluster never observes
/// how often other classes or clusters fire, so the streams are
/// independent of event interleaving — the property the cross-scheduler
/// determinism suite leans on.
///
/// # Example
///
/// ```
/// use cedar_faults::{FaultDriver, FaultKind, FaultPlan};
/// use cedar_sim::Cycles;
///
/// let mut a = FaultDriver::new(&FaultPlan::canonical(), 2);
/// let mut b = FaultDriver::new(&FaultPlan::canonical(), 2);
/// assert_eq!(a.first_events(), b.first_events());
/// assert_eq!(
///     a.next_after(FaultKind::InterruptStorm, 0, Cycles(500)),
///     b.next_after(FaultKind::InterruptStorm, 0, Cycles(500)),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct FaultDriver {
    plan: FaultPlan,
    n_clusters: usize,
    streams: Vec<SplitMix64>,
    occurrences: [u64; FaultKind::ALL.len()],
}

impl FaultDriver {
    /// Builds the driver for `n_clusters` clusters.
    pub fn new(plan: &FaultPlan, n_clusters: usize) -> Self {
        let mut root = SplitMix64::new(plan.seed);
        let streams = (0..FaultKind::ALL.len() * n_clusters)
            .map(|_| root.split())
            .collect();
        FaultDriver {
            plan: *plan,
            n_clusters,
            streams,
            occurrences: [0; FaultKind::ALL.len()],
        }
    }

    /// The plan this driver executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn stream(&mut self, kind: FaultKind, cluster: usize) -> &mut SplitMix64 {
        &mut self.streams[kind.index() * self.n_clusters + cluster]
    }

    /// Mean interval of a timed class, if armed. Helper stalls only
    /// apply to helper clusters (1..), never the main cluster.
    fn interval(&self, kind: FaultKind, cluster: usize) -> Option<Cycles> {
        match kind {
            FaultKind::InterruptStorm => self.plan.interrupt_storm.map(|s| s.mean_interval),
            FaultKind::AstBurst => self.plan.ast_burst.map(|s| s.mean_interval),
            FaultKind::PageFaultWave => self.plan.page_fault_wave.map(|s| s.mean_interval),
            FaultKind::HelperStall => self
                .plan
                .helper_stall
                .filter(|_| cluster >= 1)
                .map(|s| s.mean_interval),
        }
    }

    /// First occurrence of every armed timed class on every applicable
    /// cluster — what the machine schedules at startup.
    pub fn first_events(&mut self) -> Vec<(SimTime, FaultKind, usize)> {
        let mut out = Vec::new();
        for kind in FaultKind::ALL {
            for cluster in 0..self.n_clusters {
                if self.interval(kind, cluster).is_some() {
                    let t = self.draw_next(kind, cluster, Cycles::ZERO);
                    out.push((t, kind, cluster));
                }
            }
        }
        out
    }

    /// Time of the next occurrence of `kind` on `cluster` after `now`,
    /// counting the occurrence that just fired.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not armed for `cluster` — the machine only
    /// dispatches occurrences the driver itself scheduled.
    pub fn next_after(&mut self, kind: FaultKind, cluster: usize, now: SimTime) -> SimTime {
        self.occurrences[kind.index()] += 1;
        self.draw_next(kind, cluster, now)
    }

    /// Draws the jittered (±25%, like the OS daemon schedules) next
    /// occurrence time from the pair's own stream.
    fn draw_next(&mut self, kind: FaultKind, cluster: usize, now: SimTime) -> SimTime {
        let base = self
            .interval(kind, cluster)
            .expect("occurrence drawn for an unarmed fault class")
            .0;
        let jitter_span = base / 2;
        let jitter = self.stream(kind, cluster).next_below(jitter_span.max(1));
        let interval = base - jitter_span / 2 + jitter;
        now + Cycles(interval.max(1))
    }

    /// Draws one wave's sequential/concurrent split from the cluster's
    /// page-fault stream.
    ///
    /// # Panics
    ///
    /// Panics if no page-fault wave is armed.
    pub fn wave_shape(&mut self, cluster: usize) -> WaveShape {
        let spec = self
            .plan
            .page_fault_wave
            .expect("wave drawn with no page-fault wave armed");
        let mut concurrent = 0;
        for _ in 0..spec.faults_per_wave {
            let roll = self
                .stream(FaultKind::PageFaultWave, cluster)
                .next_below(100);
            if roll < spec.concurrent_pct as u64 {
                concurrent += 1;
            }
        }
        WaveShape {
            sequential: spec.faults_per_wave - concurrent,
            concurrent,
        }
    }

    /// Occurrences fired so far for `kind`, across all clusters.
    pub fn occurrences(&self, kind: FaultKind) -> u64 {
        self.occurrences[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{HelperStall, InterruptStorm};

    #[test]
    fn empty_plan_schedules_nothing() {
        let mut d = FaultDriver::new(&FaultPlan::default(), 4);
        assert!(d.first_events().is_empty());
    }

    #[test]
    fn canonical_plan_arms_every_cluster() {
        let mut d = FaultDriver::new(&FaultPlan::canonical(), 4);
        let first = d.first_events();
        // storms/asts/waves on all 4 clusters, stalls only on helpers.
        assert_eq!(first.len(), 4 + 4 + 4 + 3);
        assert!(first.iter().all(|&(t, _, _)| t > Cycles::ZERO));
    }

    #[test]
    fn helper_stalls_skip_the_main_cluster() {
        let plan = FaultPlan::default().with_helper_stall(HelperStall {
            mean_interval: Cycles(10_000),
            stall: Cycles(500),
        });
        let mut d = FaultDriver::new(&plan, 4);
        let first = d.first_events();
        assert_eq!(first.len(), 3);
        assert!(first.iter().all(|&(_, _, c)| c >= 1));
    }

    #[test]
    fn streams_are_deterministic_and_independent_of_draw_order() {
        let plan = FaultPlan::canonical();
        let mut a = FaultDriver::new(&plan, 2);
        let mut b = FaultDriver::new(&plan, 2);
        // Interleave draws differently; per-(class,cluster) sequences
        // must match regardless.
        let a0 = a.next_after(FaultKind::InterruptStorm, 0, Cycles(100));
        let a1 = a.next_after(FaultKind::InterruptStorm, 1, Cycles(100));
        let b1 = b.next_after(FaultKind::InterruptStorm, 1, Cycles(100));
        let b0 = b.next_after(FaultKind::InterruptStorm, 0, Cycles(100));
        assert_eq!(a0, b0);
        assert_eq!(a1, b1);
    }

    #[test]
    fn intervals_jitter_within_25_percent_of_mean() {
        let plan = FaultPlan::default().with_interrupt_storm(InterruptStorm {
            mean_interval: Cycles(10_000),
            burst: 1,
        });
        let mut d = FaultDriver::new(&plan, 1);
        let mut now = Cycles::ZERO;
        let mut sum = 0u64;
        for _ in 0..200 {
            let next = d.next_after(FaultKind::InterruptStorm, 0, now);
            let dt = (next - now).0;
            assert!((7_400..=12_600).contains(&dt), "interval {dt} out of band");
            sum += dt;
            now = next;
        }
        let mean = sum as f64 / 200.0;
        assert!((mean - 10_000.0).abs() < 1_000.0, "mean drifted: {mean}");
        assert_eq!(d.occurrences(FaultKind::InterruptStorm), 200);
    }

    #[test]
    fn wave_shape_respects_the_mix_bounds() {
        let mut d = FaultDriver::new(&FaultPlan::canonical(), 1);
        let spec = FaultPlan::canonical().page_fault_wave.unwrap();
        let mut conc_total = 0u32;
        for _ in 0..100 {
            let shape = d.wave_shape(0);
            assert_eq!(shape.sequential + shape.concurrent, spec.faults_per_wave);
            conc_total += shape.concurrent;
        }
        // 50% mix over 600 draws: comfortably within [35%, 65%].
        let frac = conc_total as f64 / (100 * spec.faults_per_wave) as f64;
        assert!((0.35..=0.65).contains(&frac), "mix drifted: {frac}");
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = FaultDriver::new(&FaultPlan::canonical(), 1);
        let mut b = FaultDriver::new(&FaultPlan::canonical().with_seed(7), 1);
        let same = (0..10)
            .filter(|_| {
                a.next_after(FaultKind::AstBurst, 0, Cycles::ZERO)
                    == b.next_after(FaultKind::AstBurst, 0, Cycles::ZERO)
            })
            .count();
        assert!(same < 10, "seed must change the occurrence stream");
    }
}
