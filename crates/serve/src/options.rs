//! Typed service configuration.
//!
//! The service follows the workspace's configuration rule: the
//! environment is consulted exactly once, by [`ServeOptions::from_env`]
//! at process startup, and everything downstream takes the typed value.
//! This module is the serve crate's only sanctioned `std::env::var`
//! reader (enforced by the `scripts/ci.sh` env-read guard).

use std::path::PathBuf;
use std::time::Duration;

/// The campaign service's host-process configuration: where to listen,
/// how much backlog to absorb before shedding load, how many worker
/// threads execute campaigns, where the run cache lives and how large
/// its in-memory hot tier is, and the keep-alive budget a persistent
/// connection gets.
///
/// # Example
///
/// ```
/// use cedar_serve::ServeOptions;
///
/// let opts = ServeOptions::default()
///     .with_addr("127.0.0.1:0")
///     .with_queue(8)
///     .with_workers(2);
/// assert_eq!(opts.addr, "127.0.0.1:0");
/// assert_eq!(opts.queue, 8);
/// assert_eq!(opts.workers, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Listen address, `host:port` (port 0 = ephemeral).
    pub addr: String,
    /// Bounded connection-queue capacity; an accept beyond this is
    /// answered `503` + `Retry-After` instead of queueing.
    pub queue: usize,
    /// Worker threads executing campaigns off the queue.
    pub workers: usize,
    /// Run-cache directory override (`None` = the workspace
    /// `results/cache/`). Typed-only — no environment variable sets it.
    pub cache_dir: Option<PathBuf>,
    /// In-memory hot-tier capacity of the process-wide run cache, in
    /// decoded runs (0 disables the tier; warm requests then pay the
    /// disk read + decode + checksum every time). Typed-only.
    pub hot_capacity: usize,
    /// Requests one keep-alive connection may serve before the server
    /// forces `Connection: close` — bounds how long a chatty client can
    /// monopolize a worker. Typed-only.
    pub keepalive_requests: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it. Typed-only.
    pub keepalive_idle: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".to_string(),
            queue: 64,
            workers: 2,
            cache_dir: None,
            hot_capacity: 256,
            keepalive_requests: 100,
            keepalive_idle: Duration::from_secs(5),
        }
    }
}

impl ServeOptions {
    /// Reads the service configuration from the environment — the serve
    /// crate's single sanctioned env read.
    ///
    /// | variable            | field     | accepted values       |
    /// |---------------------|-----------|-----------------------|
    /// | `CEDAR_SERVE_ADDR`  | `addr`    | `host:port`           |
    /// | `CEDAR_SERVE_QUEUE` | `queue`   | integer ≥ 1           |
    ///
    /// Unset or empty variables keep the defaults; a non-numeric queue
    /// is ignored rather than guessed at.
    pub fn from_env() -> ServeOptions {
        let var = |name: &str| std::env::var(name).ok().filter(|v| !v.is_empty());
        let defaults = ServeOptions::default();
        ServeOptions {
            addr: var("CEDAR_SERVE_ADDR").unwrap_or(defaults.addr),
            queue: var("CEDAR_SERVE_QUEUE")
                .and_then(|v| v.parse().ok())
                .filter(|&n: &usize| n >= 1)
                .unwrap_or(defaults.queue),
            ..defaults
        }
    }

    /// Overrides the listen address (builder style).
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Bounds the connection queue (builder style, clamped to ≥ 1).
    pub fn with_queue(mut self, queue: usize) -> Self {
        self.queue = queue.max(1);
        self
    }

    /// Sets the campaign worker-thread count (builder style, clamped to
    /// ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Redirects the run cache (builder style).
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sizes the in-memory hot tier (builder style, 0 disables it).
    pub fn with_hot_capacity(mut self, capacity: usize) -> Self {
        self.hot_capacity = capacity;
        self
    }

    /// Bounds requests per keep-alive connection (builder style,
    /// clamped to ≥ 1 — a connection always serves at least one).
    pub fn with_keepalive_requests(mut self, requests: usize) -> Self {
        self.keepalive_requests = requests.max(1);
        self
    }

    /// Sets the keep-alive idle budget (builder style).
    pub fn with_keepalive_idle(mut self, idle: Duration) -> Self {
        self.keepalive_idle = idle;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = ServeOptions::default();
        assert_eq!(o.addr, "127.0.0.1:7878");
        assert_eq!(o.queue, 64);
        assert_eq!(o.workers, 2);
        assert_eq!(o.cache_dir, None);
        assert_eq!(o.hot_capacity, 256);
        assert_eq!(o.keepalive_requests, 100);
        assert_eq!(o.keepalive_idle, Duration::from_secs(5));
    }

    #[test]
    fn builders_clamp_to_usable_values() {
        let o = ServeOptions::default()
            .with_addr("0.0.0.0:0")
            .with_queue(0)
            .with_workers(0)
            .with_cache_dir("/tmp/c")
            .with_hot_capacity(0)
            .with_keepalive_requests(0)
            .with_keepalive_idle(Duration::from_millis(80));
        assert_eq!(o.addr, "0.0.0.0:0");
        assert_eq!(o.queue, 1, "queue clamps to 1");
        assert_eq!(o.workers, 1, "workers clamp to 1");
        assert_eq!(o.cache_dir, Some(PathBuf::from("/tmp/c")));
        assert_eq!(o.hot_capacity, 0, "0 legitimately disables the tier");
        assert_eq!(o.keepalive_requests, 1, "keep-alive budget clamps to 1");
        assert_eq!(o.keepalive_idle, Duration::from_millis(80));
    }
}
