//! A minimal HTTP/1.1 layer over `std::io` streams.
//!
//! Implements exactly what the campaign service needs: parse a request
//! line, the handful of headers we honour (`Content-Length`), read the
//! body, and write a response with correct framing. Every connection is
//! `Connection: close` — campaign runs are seconds-scale, so keep-alive
//! buys nothing and closing keeps the state machine trivial.

use std::io::{BufRead, BufReader, Read, Write};

use cedar_obs::CedarError;

/// Request bodies above this are rejected before buffering (a campaign
/// spec is a few hundred bytes; a megabyte is already hostile).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One parsed request: method, path, and the (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … uppercased as received.
    pub method: String,
    /// The request target, query string included.
    pub path: String,
    /// The request body, sized by `Content-Length`.
    pub body: Vec<u8>,
}

/// Reads and parses one request from `stream`. Malformed framing
/// surfaces as [`CedarError::SpecParse`] so the server can answer `400`
/// with a typed body instead of dropping the connection.
pub fn read_request(stream: &mut impl Read) -> Result<Request, CedarError> {
    let bad = |msg: &str| CedarError::SpecParse(format!("http: {msg}"));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| bad(&format!("request line: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| bad("request line has no target"))?;
    let version = parts
        .next()
        .ok_or_else(|| bad("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(&format!("unsupported version `{version}`")));
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| bad(&format!("header: {e}")))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad(&format!("malformed header `{header}`")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| bad("unparseable Content-Length"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad(&format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| bad(&format!("body: {e}")))?;
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        body,
    })
}

/// The reason phrase for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one complete `Connection: close` response. `extra_headers`
/// lines are emitted verbatim (no trailing CRLF in the input).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[&str],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Renders a [`CedarError`] as the service's typed JSON error body:
/// `{"error":{"kind":...,"message":...}}`.
pub fn error_body(err: &CedarError) -> String {
    let mut inner = cedar_obs::json::Obj::new();
    inner
        .str("kind", err.kind())
        .str("message", &err.to_string());
    let mut outer = cedar_obs::json::Obj::new();
    outer.raw("error", inner.finish());
    outer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let raw = b"GET /metrics HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_framing_is_a_spec_parse_error() {
        for raw in [
            &b"POST\r\n\r\n"[..],
            &b"POST /run FTP/9\r\n\r\n"[..],
            &b"POST /run HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"[..],
        ] {
            let err = read_request(&mut &raw[..]).unwrap_err();
            assert_eq!(err.kind(), "spec_parse", "{raw:?}");
        }
    }

    #[test]
    fn oversized_bodies_are_rejected_before_buffering() {
        let raw = format!(
            "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = read_request(&mut raw.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn responses_are_framed_and_errors_typed() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "application/json",
            &["Retry-After: 1"],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let body = error_body(&CedarError::SpecParse("no such app".into()));
        let parsed = cedar_obs::json::parse(&body).unwrap();
        let error = parsed.get("error").unwrap();
        assert_eq!(error.get("kind").unwrap().as_str(), Some("spec_parse"));
    }
}
