//! A minimal HTTP/1.1 layer over `std::io` streams.
//!
//! Implements exactly what the campaign service needs: parse a request
//! line, the handful of headers we honour (`Content-Length`,
//! `Connection`), read the body, and write a response with correct
//! framing. Connections are **persistent by default** (HTTP/1.1
//! keep-alive): warm requests replay from the in-memory run cache in
//! well under a millisecond, so a per-request TCP handshake would
//! dominate the latency a client observes. The server honours
//! `Connection: close` (and the HTTP/1.0 default-close rule), bounds
//! requests-per-connection and idle time, and still forces
//! `Connection: close` on every error and shed path.
//!
//! Because a pipelined client may land bytes of request *N+1* in the
//! buffer while request *N* is being parsed, [`read_request`] takes the
//! caller's long-lived [`BufRead`] reader rather than wrapping the raw
//! stream itself — buffered over-read must survive across requests on
//! one connection.

use std::io::{BufRead, Read, Write};

use cedar_obs::CedarError;

/// Request bodies above this are rejected before buffering (a campaign
/// spec is a few hundred bytes; a megabyte is already hostile).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// The request line plus every header must fit in this many bytes. A
/// real campaign request's head is well under a kilobyte; an unbounded
/// header line is a memory-exhaustion probe, so the head is read
/// through a hard `Take` limit and overflow is a typed `400`.
pub const MAX_HEAD_BYTES: u64 = 8 * 1024;

/// One parsed request: method, path, the (possibly empty) body, and
/// the client's connection-persistence intent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … uppercased as received.
    pub method: String,
    /// The request target, query string included.
    pub path: String,
    /// The request body, sized by `Content-Length`.
    pub body: Vec<u8>,
    /// Whether the connection must close after this exchange:
    /// `Connection: close`, or HTTP/1.0 without an explicit
    /// `Connection: keep-alive`.
    pub close: bool,
}

/// Reads and parses one request from `reader` — the connection's
/// long-lived buffered reader, so bytes a pipelining client sent ahead
/// of time survive into the next call. Malformed framing surfaces as
/// [`CedarError::SpecParse`] so the server can answer `400` with a
/// typed body instead of dropping the connection.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, CedarError> {
    let bad = |msg: &str| CedarError::SpecParse(format!("http: {msg}"));
    // The head is read through a `Take` so a runaway header line can
    // buffer at most `MAX_HEAD_BYTES` before turning into a typed 400.
    let mut head = reader.take(MAX_HEAD_BYTES);
    let mut line = String::new();
    head_line(&mut head, &mut line, "request line")?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| bad("request line has no target"))?;
    let version = parts
        .next()
        .ok_or_else(|| bad("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(&format!("unsupported version `{version}`")));
    }
    // HTTP/1.0 defaults to close; 1.1 (and any later 1.x) to
    // keep-alive. The `Connection` header overrides either way.
    let mut close = version == "HTTP/1.0";

    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        head_line(&mut head, &mut header, "header")?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad(&format!("malformed header `{header}`")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            let parsed = value
                .trim()
                .parse()
                .map_err(|_| bad("unparseable Content-Length"))?;
            // Repeating the same value is harmless; *conflicting*
            // duplicates are the request-smuggling shape, so reject
            // rather than silently letting the last one win.
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(bad("conflicting duplicate Content-Length headers"));
            }
            content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("connection") {
            // Token list, case-insensitive: `close` forces closing,
            // `keep-alive` opts an HTTP/1.0 client in.
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(bad(&format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }

    let mut body = vec![0u8; content_length];
    head.into_inner()
        .read_exact(&mut body)
        .map_err(|e| bad(&format!("body: {e}")))?;
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        body,
        close,
    })
}

/// Reads one head line into `line`, mapping an exhausted head limit to
/// the typed oversized-head error (a line cut off with limit left is
/// plain EOF and falls through to the caller's own handling).
fn head_line<R: BufRead>(
    head: &mut std::io::Take<R>,
    line: &mut String,
    what: &str,
) -> Result<(), CedarError> {
    head.read_line(line)
        .map_err(|e| CedarError::SpecParse(format!("http: {what}: {e}")))?;
    if !line.ends_with('\n') && head.limit() == 0 {
        return Err(CedarError::SpecParse(format!(
            "http: request head exceeds the {MAX_HEAD_BYTES}-byte limit"
        )));
    }
    Ok(())
}

/// The reason phrase for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one complete response. `keep_alive` selects the
/// `Connection:` header — the caller decides persistence (error and
/// shed paths always pass `false`). `extra_headers` lines are emitted
/// verbatim (no trailing CRLF in the input).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[&str],
    keep_alive: bool,
    body: &[u8],
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        reason(status),
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Renders a [`CedarError`] as the service's typed JSON error body:
/// `{"error":{"kind":...,"message":...}}`.
pub fn error_body(err: &CedarError) -> String {
    let mut inner = cedar_obs::json::Obj::new();
    inner
        .str("kind", err.kind())
        .str("message", &err.to_string());
    let mut outer = cedar_obs::json::Obj::new();
    outer.raw("error", inner.finish());
    outer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, b"abcd");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_intent_follows_version_and_header() {
        let close = |raw: &[u8]| read_request(&mut &*raw).unwrap().close;
        assert!(close(b"GET / HTTP/1.0\r\n\r\n"), "1.0 defaults to close");
        assert!(
            !close(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"),
            "1.0 opts in via the header, case-insensitively"
        );
        assert!(close(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(
            close(b"GET / HTTP/1.1\r\nConnection: keep-alive, Close\r\n\r\n"),
            "`close` wins in a token list"
        );
    }

    #[test]
    fn parses_a_bodyless_get() {
        let raw = b"GET /metrics HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_framing_is_a_spec_parse_error() {
        for raw in [
            &b"POST\r\n\r\n"[..],
            &b"POST /run FTP/9\r\n\r\n"[..],
            &b"POST /run HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"[..],
        ] {
            let err = read_request(&mut &raw[..]).unwrap_err();
            assert_eq!(err.kind(), "spec_parse", "{raw:?}");
        }
    }

    #[test]
    fn oversized_heads_are_rejected_at_the_take_limit() {
        // A single header line longer than the whole head budget: the
        // parser must fail with the typed limit error, not buffer it.
        let raw = format!(
            "POST /run HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES as usize)
        );
        let err = read_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), "spec_parse");
        assert!(err.to_string().contains("request head exceeds"), "{err}");
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_rejected() {
        let raw = b"POST /run HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nabcd";
        let err = read_request(&mut &raw[..]).unwrap_err();
        assert!(err.to_string().contains("conflicting"), "{err}");

        // Repeating the *same* value is harmless and honoured once.
        let raw = b"POST /run HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn oversized_bodies_are_rejected_before_buffering() {
        let raw = format!(
            "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = read_request(&mut raw.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn responses_are_framed_and_errors_typed() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "application/json",
            &["Retry-After: 1"],
            false,
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", &[], true, b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));

        let body = error_body(&CedarError::SpecParse("no such app".into()));
        let parsed = cedar_obs::json::parse(&body).unwrap();
        let error = parsed.get("error").unwrap();
        assert_eq!(error.get("kind").unwrap().as_str(), Some("spec_parse"));
    }
}
