//! Service self-telemetry, exposed as Prometheus text on `/metrics`.
//!
//! All counters are atomics behind one shared [`Metrics`] value — the
//! accept loop, every worker and the scrape handler touch it
//! concurrently without locks. The exposition follows the Prometheus
//! text format, version 0.0.4: `# HELP` / `# TYPE` preamble, one sample
//! per line, histograms as cumulative `_bucket` series plus `_sum` and
//! `_count`.
//!
//! Cache traffic is the deterministic-reply design's visible face:
//! reply bodies are byte-identical cold vs. warm, so
//! `cedar_serve_cache_hits_total` is where a client (and the CI smoke
//! gate) observes that warm requests were served from the
//! content-addressed store.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Histogram bucket upper bounds, microseconds. Spans sub-millisecond
/// parse work up to multi-second full-scale campaigns.
pub const BUCKET_BOUNDS_US: [u64; 10] = [
    100,
    1_000,
    5_000,
    25_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    25_000_000,
    100_000_000,
];

/// One latency histogram: cumulative-on-render buckets plus sum/count.
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKET_BOUNDS_US.len()],
    overflow: AtomicU64,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe_us(&self, us: u64) {
        match BUCKET_BOUNDS_US.iter().position(|&b| us <= b) {
            Some(i) => self.counts[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self, out: &mut String, name: &str, phase: &str) {
        let mut cumulative = 0;
        for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "{name}_bucket{{phase=\"{phase}\",le=\"{}\"}} {cumulative}\n",
                bound as f64 / 1e6
            ));
        }
        cumulative += self.overflow.load(Ordering::Relaxed);
        out.push_str(&format!(
            "{name}_bucket{{phase=\"{phase}\",le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "{name}_sum{{phase=\"{phase}\"}} {}\n",
            self.sum_us.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!(
            "{name}_count{{phase=\"{phase}\"}} {}\n",
            self.count()
        ));
    }
}

/// The service's counter set.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Completed requests by status code, in emission order 200 / 400 /
    /// 404 / 405 / 503 / 500.
    ok: AtomicU64,
    bad_request: AtomicU64,
    not_found: AtomicU64,
    bad_method: AtomicU64,
    shed: AtomicU64,
    internal: AtomicU64,
    /// Run-cache traffic accumulated across campaign requests.
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Current connection-queue depth (gauge).
    queue_depth: AtomicI64,
    /// Request phases: HTTP read+spec parse, campaign execution, reply
    /// render+write.
    parse_latency: Histogram,
    execute_latency: Histogram,
    write_latency: Histogram,
}

impl Metrics {
    /// Counts one completed request by response status.
    pub fn count_status(&self, status: u16) {
        let c = match status {
            200 => &self.ok,
            400 => &self.bad_request,
            404 => &self.not_found,
            405 => &self.bad_method,
            503 => &self.shed,
            _ => &self.internal,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests answered `503` (load shed).
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Folds one campaign's cache traffic in.
    pub fn count_cache(&self, stats: &cedar_cache::CacheStats) {
        self.cache_hits.fetch_add(stats.hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(stats.misses, Ordering::Relaxed);
    }

    /// Cache hits observed so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Adjusts the queue-depth gauge by `delta`.
    pub fn queue_delta(&self, delta: i64) {
        self.queue_depth.fetch_add(delta, Ordering::Relaxed);
    }

    /// The parse-phase histogram.
    pub fn parse_latency(&self) -> &Histogram {
        &self.parse_latency
    }

    /// The execute-phase histogram.
    pub fn execute_latency(&self) -> &Histogram {
        &self.execute_latency
    }

    /// The write-phase histogram.
    pub fn write_latency(&self) -> &Histogram {
        &self.write_latency
    }

    /// Renders the whole family as Prometheus exposition text.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(
            "# HELP cedar_serve_requests_total Completed requests by response status.\n\
             # TYPE cedar_serve_requests_total counter\n",
        );
        for (code, c) in [
            ("200", &self.ok),
            ("400", &self.bad_request),
            ("404", &self.not_found),
            ("405", &self.bad_method),
            ("503", &self.shed),
            ("500", &self.internal),
        ] {
            out.push_str(&format!(
                "cedar_serve_requests_total{{code=\"{code}\"}} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP cedar_serve_cache_hits_total Campaign runs served from the run cache.\n\
             # TYPE cedar_serve_cache_hits_total counter\n",
        );
        out.push_str(&format!(
            "cedar_serve_cache_hits_total {}\n",
            self.cache_hits.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP cedar_serve_cache_misses_total Campaign runs that had to simulate.\n\
             # TYPE cedar_serve_cache_misses_total counter\n",
        );
        out.push_str(&format!(
            "cedar_serve_cache_misses_total {}\n",
            self.cache_misses.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP cedar_serve_queue_depth Connections waiting for a worker.\n\
             # TYPE cedar_serve_queue_depth gauge\n",
        );
        out.push_str(&format!(
            "cedar_serve_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed).max(0)
        ));
        out.push_str(
            "# HELP cedar_serve_request_phase_seconds Request latency by phase.\n\
             # TYPE cedar_serve_request_phase_seconds histogram\n",
        );
        for (phase, h) in [
            ("parse", &self.parse_latency),
            ("execute", &self.execute_latency),
            ("write", &self.write_latency),
        ] {
            h.render(&mut out, "cedar_serve_request_phase_seconds", phase);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded() {
        let h = Histogram::default();
        h.observe_us(50); // first bucket
        h.observe_us(600); // second bucket
        h.observe_us(200_000_000); // beyond the last bound
        let mut out = String::new();
        h.render(&mut out, "m", "p");
        assert!(
            out.contains("m_bucket{phase=\"p\",le=\"0.0001\"} 1\n"),
            "{out}"
        );
        assert!(
            out.contains("m_bucket{phase=\"p\",le=\"0.001\"} 2\n"),
            "{out}"
        );
        assert!(
            out.contains("m_bucket{phase=\"p\",le=\"+Inf\"} 3\n"),
            "{out}"
        );
        assert!(out.contains("m_count{phase=\"p\"} 3\n"), "{out}");
    }

    #[test]
    fn exposition_covers_every_family() {
        let m = Metrics::default();
        m.count_status(200);
        m.count_status(503);
        m.queue_delta(2);
        m.queue_delta(-1);
        let text = m.render_prometheus();
        assert!(text.contains("cedar_serve_requests_total{code=\"200\"} 1\n"));
        assert!(text.contains("cedar_serve_requests_total{code=\"503\"} 1\n"));
        assert!(text.contains("cedar_serve_cache_hits_total 0\n"));
        assert!(text.contains("cedar_serve_queue_depth 1\n"));
        assert!(text.contains("# TYPE cedar_serve_request_phase_seconds histogram\n"));
        assert_eq!(m.shed_total(), 1);
    }
}
