//! Service self-telemetry, exposed as Prometheus text on `/metrics`.
//!
//! All counters are atomics behind one shared [`Metrics`] value — the
//! accept loop, every worker and the scrape handler touch it
//! concurrently without locks. The exposition follows the Prometheus
//! text format, version 0.0.4: `# HELP` / `# TYPE` preamble, one sample
//! per line, histograms as cumulative `_bucket` series plus `_sum` and
//! `_count`.
//!
//! Cache traffic is the deterministic-reply design's visible face:
//! reply bodies are byte-identical cold vs. warm, so
//! `cedar_serve_cache_hits_total` is where a client (and the CI smoke
//! gate) observes that warm requests were served from the
//! content-addressed store.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Histogram bucket upper bounds, microseconds. Spans sub-millisecond
/// parse work up to multi-second full-scale campaigns.
pub const BUCKET_BOUNDS_US: [u64; 10] = [
    100,
    1_000,
    5_000,
    25_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    25_000_000,
    100_000_000,
];

/// One latency histogram: cumulative-on-render buckets plus sum/count.
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKET_BOUNDS_US.len()],
    overflow: AtomicU64,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe_us(&self, us: u64) {
        match BUCKET_BOUNDS_US.iter().position(|&b| us <= b) {
            Some(i) => self.counts[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self, out: &mut String, name: &str, phase: &str) {
        let mut cumulative = 0;
        for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "{name}_bucket{{phase=\"{phase}\",le=\"{}\"}} {cumulative}\n",
                bound as f64 / 1e6
            ));
        }
        cumulative += self.overflow.load(Ordering::Relaxed);
        out.push_str(&format!(
            "{name}_bucket{{phase=\"{phase}\",le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "{name}_sum{{phase=\"{phase}\"}} {}\n",
            self.sum_us.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!(
            "{name}_count{{phase=\"{phase}\"}} {}\n",
            self.count()
        ));
    }
}

/// A scrape-time sample of the hot tier's store-wide state, passed
/// into [`Metrics::render_with_hot`] by the handler that owns the
/// cache session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotTierView {
    /// Entries evicted since the store opened.
    pub evictions: u64,
    /// Decoded runs currently resident.
    pub entries: usize,
    /// Configured capacity.
    pub capacity: usize,
}

/// The service's counter set.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Completed requests by status code, in emission order 200 / 400 /
    /// 404 / 405 / 503 / 500.
    ok: AtomicU64,
    bad_request: AtomicU64,
    not_found: AtomicU64,
    bad_method: AtomicU64,
    shed: AtomicU64,
    internal: AtomicU64,
    /// Run-cache traffic accumulated across campaign requests.
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Hot-tier traffic within those hits: `cache_hot_hits` replies
    /// never touched the disk store at all.
    cache_hot_hits: AtomicU64,
    cache_hot_misses: AtomicU64,
    /// Connections handed to a worker, and requests served on an
    /// already-used (kept-alive) connection.
    connections: AtomicU64,
    keepalive_reuse: AtomicU64,
    /// Current connection-queue depth (gauge).
    queue_depth: AtomicI64,
    /// Request phases: HTTP read+spec parse, campaign execution, reply
    /// render+write.
    parse_latency: Histogram,
    execute_latency: Histogram,
    write_latency: Histogram,
}

impl Metrics {
    /// Counts one completed request by response status.
    pub fn count_status(&self, status: u16) {
        let c = match status {
            200 => &self.ok,
            400 => &self.bad_request,
            404 => &self.not_found,
            405 => &self.bad_method,
            503 => &self.shed,
            _ => &self.internal,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests answered `503` (load shed).
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Folds one campaign's cache traffic in.
    pub fn count_cache(&self, stats: &cedar_cache::CacheStats) {
        self.cache_hits.fetch_add(stats.hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(stats.misses, Ordering::Relaxed);
        self.cache_hot_hits
            .fetch_add(stats.hot_hits, Ordering::Relaxed);
        self.cache_hot_misses
            .fetch_add(stats.hot_misses, Ordering::Relaxed);
    }

    /// Cache hits observed so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Hot-tier hits observed so far.
    pub fn cache_hot_hits(&self) -> u64 {
        self.cache_hot_hits.load(Ordering::Relaxed)
    }

    /// Counts one connection handed to a worker.
    pub fn count_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request served on an already-used connection.
    pub fn count_keepalive_reuse(&self) {
        self.keepalive_reuse.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests served beyond the first on their connection.
    pub fn keepalive_reuse_total(&self) -> u64 {
        self.keepalive_reuse.load(Ordering::Relaxed)
    }

    /// Adjusts the queue-depth gauge by `delta`.
    pub fn queue_delta(&self, delta: i64) {
        self.queue_depth.fetch_add(delta, Ordering::Relaxed);
    }

    /// The parse-phase histogram.
    pub fn parse_latency(&self) -> &Histogram {
        &self.parse_latency
    }

    /// The execute-phase histogram.
    pub fn execute_latency(&self) -> &Histogram {
        &self.execute_latency
    }

    /// The write-phase histogram.
    pub fn write_latency(&self) -> &Histogram {
        &self.write_latency
    }

    /// Renders the whole family as Prometheus exposition text, without
    /// hot-tier state (the convenience form for tests and callers with
    /// no cache session at hand).
    pub fn render_prometheus(&self) -> String {
        self.render_with_hot(None)
    }

    /// [`render_prometheus`](Self::render_prometheus), plus the hot
    /// tier's store-wide state sampled at scrape time. Evictions and
    /// occupancy live on the shared store, not on any one campaign, so
    /// the scrape handler passes them in rather than this counter set
    /// accumulating them.
    pub fn render_with_hot(&self, hot: Option<HotTierView>) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(
            "# HELP cedar_serve_requests_total Completed requests by response status.\n\
             # TYPE cedar_serve_requests_total counter\n",
        );
        for (code, c) in [
            ("200", &self.ok),
            ("400", &self.bad_request),
            ("404", &self.not_found),
            ("405", &self.bad_method),
            ("503", &self.shed),
            ("500", &self.internal),
        ] {
            out.push_str(&format!(
                "cedar_serve_requests_total{{code=\"{code}\"}} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP cedar_serve_cache_hits_total Campaign runs served from the run cache.\n\
             # TYPE cedar_serve_cache_hits_total counter\n",
        );
        out.push_str(&format!(
            "cedar_serve_cache_hits_total {}\n",
            self.cache_hits.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP cedar_serve_cache_misses_total Campaign runs that had to simulate.\n\
             # TYPE cedar_serve_cache_misses_total counter\n",
        );
        out.push_str(&format!(
            "cedar_serve_cache_misses_total {}\n",
            self.cache_misses.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP cedar_serve_cache_hot_hits_total Campaign runs served from the in-memory hot tier.\n\
             # TYPE cedar_serve_cache_hot_hits_total counter\n",
        );
        out.push_str(&format!(
            "cedar_serve_cache_hot_hits_total {}\n",
            self.cache_hot_hits.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP cedar_serve_cache_hot_misses_total Hot-tier probes that fell through to disk or simulation.\n\
             # TYPE cedar_serve_cache_hot_misses_total counter\n",
        );
        out.push_str(&format!(
            "cedar_serve_cache_hot_misses_total {}\n",
            self.cache_hot_misses.load(Ordering::Relaxed)
        ));
        if let Some(hot) = hot {
            out.push_str(
                "# HELP cedar_serve_cache_hot_evictions_total Hot-tier entries evicted to stay within capacity.\n\
                 # TYPE cedar_serve_cache_hot_evictions_total counter\n",
            );
            out.push_str(&format!(
                "cedar_serve_cache_hot_evictions_total {}\n",
                hot.evictions
            ));
            out.push_str(
                "# HELP cedar_serve_cache_hot_entries Decoded runs resident in the hot tier.\n\
                 # TYPE cedar_serve_cache_hot_entries gauge\n",
            );
            out.push_str(&format!("cedar_serve_cache_hot_entries {}\n", hot.entries));
            out.push_str(
                "# HELP cedar_serve_cache_hot_capacity The hot tier's configured capacity.\n\
                 # TYPE cedar_serve_cache_hot_capacity gauge\n",
            );
            out.push_str(&format!(
                "cedar_serve_cache_hot_capacity {}\n",
                hot.capacity
            ));
        }
        out.push_str(
            "# HELP cedar_serve_connections_total Connections handed to a campaign worker.\n\
             # TYPE cedar_serve_connections_total counter\n",
        );
        out.push_str(&format!(
            "cedar_serve_connections_total {}\n",
            self.connections.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP cedar_serve_keepalive_reuse_total Requests served beyond the first on their connection.\n\
             # TYPE cedar_serve_keepalive_reuse_total counter\n",
        );
        out.push_str(&format!(
            "cedar_serve_keepalive_reuse_total {}\n",
            self.keepalive_reuse.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP cedar_serve_queue_depth Connections waiting for a worker.\n\
             # TYPE cedar_serve_queue_depth gauge\n",
        );
        out.push_str(&format!(
            "cedar_serve_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed).max(0)
        ));
        out.push_str(
            "# HELP cedar_serve_request_phase_seconds Request latency by phase.\n\
             # TYPE cedar_serve_request_phase_seconds histogram\n",
        );
        for (phase, h) in [
            ("parse", &self.parse_latency),
            ("execute", &self.execute_latency),
            ("write", &self.write_latency),
        ] {
            h.render(&mut out, "cedar_serve_request_phase_seconds", phase);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded() {
        let h = Histogram::default();
        h.observe_us(50); // first bucket
        h.observe_us(600); // second bucket
        h.observe_us(200_000_000); // beyond the last bound
        let mut out = String::new();
        h.render(&mut out, "m", "p");
        assert!(
            out.contains("m_bucket{phase=\"p\",le=\"0.0001\"} 1\n"),
            "{out}"
        );
        assert!(
            out.contains("m_bucket{phase=\"p\",le=\"0.001\"} 2\n"),
            "{out}"
        );
        assert!(
            out.contains("m_bucket{phase=\"p\",le=\"+Inf\"} 3\n"),
            "{out}"
        );
        assert!(out.contains("m_count{phase=\"p\"} 3\n"), "{out}");
    }

    #[test]
    fn exposition_covers_every_family() {
        let m = Metrics::default();
        m.count_status(200);
        m.count_status(503);
        m.queue_delta(2);
        m.queue_delta(-1);
        let text = m.render_prometheus();
        assert!(text.contains("cedar_serve_requests_total{code=\"200\"} 1\n"));
        assert!(text.contains("cedar_serve_requests_total{code=\"503\"} 1\n"));
        assert!(text.contains("cedar_serve_cache_hits_total 0\n"));
        assert!(text.contains("cedar_serve_cache_hot_hits_total 0\n"));
        assert!(text.contains("cedar_serve_connections_total 0\n"));
        assert!(text.contains("cedar_serve_keepalive_reuse_total 0\n"));
        assert!(text.contains("cedar_serve_queue_depth 1\n"));
        assert!(text.contains("# TYPE cedar_serve_request_phase_seconds histogram\n"));
        assert!(
            !text.contains("cedar_serve_cache_hot_entries"),
            "tier state is absent without a scrape-time view"
        );
        assert_eq!(m.shed_total(), 1);
    }

    #[test]
    fn hot_tier_view_and_keepalive_counters_render() {
        let m = Metrics::default();
        m.count_connection();
        m.count_keepalive_reuse();
        m.count_keepalive_reuse();
        m.count_cache(&cedar_cache::CacheStats {
            hits: 5,
            misses: 1,
            hot_hits: 4,
            hot_misses: 2,
            ..cedar_cache::CacheStats::default()
        });
        let text = m.render_with_hot(Some(HotTierView {
            evictions: 3,
            entries: 7,
            capacity: 256,
        }));
        assert!(text.contains("cedar_serve_cache_hits_total 5\n"));
        assert!(text.contains("cedar_serve_cache_hot_hits_total 4\n"));
        assert!(text.contains("cedar_serve_cache_hot_misses_total 2\n"));
        assert!(text.contains("cedar_serve_cache_hot_evictions_total 3\n"));
        assert!(text.contains("cedar_serve_cache_hot_entries 7\n"));
        assert!(text.contains("cedar_serve_cache_hot_capacity 256\n"));
        assert!(text.contains("cedar_serve_connections_total 1\n"));
        assert!(text.contains("cedar_serve_keepalive_reuse_total 2\n"));
        assert_eq!(m.cache_hot_hits(), 4);
        assert_eq!(m.keepalive_reuse_total(), 2);
    }
}
