//! The campaign spec: the service's request schema.
//!
//! A `POST /run` body is a flat JSON object naming one `(application,
//! configuration)` experiment plus the campaign knobs the workspace
//! already types:
//!
//! ```json
//! {
//!   "app": "FLO52",
//!   "processors": 32,
//!   "scheduler": "calendar",
//!   "faults": 0,
//!   "telemetry": "summary",
//!   "shrink": 16
//! }
//! ```
//!
//! Only `app` and `processors` are required. Parsing is strict — an
//! unknown field, a processor count that is not a Cedar configuration,
//! or an out-of-range fault level is a [`CedarError::SpecParse`], never
//! a silently-defaulted run of the wrong experiment. The parsed spec
//! lowers onto the existing typed surface ([`RunOptions`],
//! [`AppSpec::shrunk`], [`FaultPlan::canonical_at`]) so a service run
//! is the same computation as a library run, measurement for
//! measurement.

use cedar_apps::AppSpec;
use cedar_core::{CedarError, RunOptions, SimConfig, TelemetryLevel};
use cedar_faults::FaultPlan;
use cedar_hw::Configuration;
use cedar_obs::json::{self, JsonValue};
use cedar_sim::SchedKind;

/// The highest fault-plan intensity [`FaultPlan::canonical_at`] is
/// specified for (the `faultsweep` ladder).
pub const MAX_FAULT_LEVEL: u64 = 4;

/// One validated campaign request.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Workload, resolved via [`cedar_apps::app_by_name`].
    pub app: AppSpec,
    /// Machine size.
    pub configuration: Configuration,
    /// Event-scheduler backend.
    pub scheduler: SchedKind,
    /// Fault-plan intensity, `0..=MAX_FAULT_LEVEL` (0 = unperturbed).
    pub fault_level: u32,
    /// Reply verbosity: `Full` adds the deterministic counter rollup.
    pub telemetry: TelemetryLevel,
    /// Workload shrink divisor (1 = publication scale).
    pub shrink: u32,
}

impl CampaignSpec {
    /// Parses and validates a request body.
    pub fn from_json(body: &str) -> Result<CampaignSpec, CedarError> {
        let bad = |msg: String| CedarError::SpecParse(msg);
        let value = json::parse(body).map_err(bad)?;
        let JsonValue::Obj(fields) = &value else {
            return Err(bad("campaign spec must be a JSON object".to_string()));
        };
        for (name, _) in fields {
            if !matches!(
                name.as_str(),
                "app" | "processors" | "scheduler" | "faults" | "telemetry" | "shrink"
            ) {
                return Err(bad(format!("unknown spec field `{name}`")));
            }
        }

        let app_name = value
            .get("app")
            .and_then(|v| v.as_str())
            .ok_or_else(|| bad("spec needs an `app` string".to_string()))?;
        let app = cedar_apps::app_by_name(app_name).ok_or_else(|| {
            bad(format!(
                "unknown application `{app_name}` (expected one of FLO52, ARC2D, MDG, OCEAN, ADM)"
            ))
        })?;

        let processors = value
            .get("processors")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| bad("spec needs a `processors` count".to_string()))?;
        let configuration = Configuration::ALL
            .into_iter()
            .find(|c| u64::from(c.total_ces()) == processors)
            .ok_or_else(|| {
                bad(format!(
                    "`processors` must be 1, 4, 8, 16 or 32, got {processors}"
                ))
            })?;

        let scheduler = match value.get("scheduler") {
            None => SchedKind::default(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| bad("`scheduler` must be a string".to_string()))?
                .parse()
                .map_err(bad)?,
        };
        let telemetry = match value.get("telemetry") {
            None => TelemetryLevel::default(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| bad("`telemetry` must be a string".to_string()))?
                .parse()
                .map_err(bad)?,
        };
        let fault_level = match value.get("faults") {
            None => 0,
            Some(v) => {
                let level = v
                    .as_u64()
                    .ok_or_else(|| bad("`faults` must be an integer level".to_string()))?;
                if level > MAX_FAULT_LEVEL {
                    return Err(bad(format!(
                        "`faults` must be 0..={MAX_FAULT_LEVEL}, got {level}"
                    )));
                }
                level as u32
            }
        };
        let shrink = match value.get("shrink") {
            None => 1,
            Some(v) => {
                let s = v
                    .as_u64()
                    .ok_or_else(|| bad("`shrink` must be an integer ≥ 1".to_string()))?;
                if s == 0 || s > u64::from(u32::MAX) {
                    return Err(bad(format!("`shrink` must be ≥ 1, got {s}")));
                }
                s as u32
            }
        };

        Ok(CampaignSpec {
            app,
            configuration,
            scheduler,
            fault_level,
            telemetry,
            shrink,
        })
    }

    /// The campaign options this spec lowers to. The cache knobs stay
    /// with the server ([`crate::Server`]), not the request — a client
    /// cannot opt a run out of the shared cache.
    pub fn run_options(&self) -> RunOptions {
        RunOptions::default()
            .with_scheduler(self.scheduler)
            .with_shrink(self.shrink)
            .with_telemetry(self.telemetry)
            .with_faults(FaultPlan::canonical_at(self.fault_level))
    }

    /// The workload at this spec's scale.
    pub fn workload(&self) -> AppSpec {
        self.app.shrunk(self.shrink)
    }

    /// The simulated-machine configuration this spec's cell runs under —
    /// the same lowering the suite runners apply
    /// (`SimConfig::cedar(c)` plus the campaign's scheduler and fault
    /// plan), so content-address keys agree between service and library
    /// paths.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::cedar(self.configuration)
            .with_scheduler(self.scheduler)
            .with_faults(FaultPlan::canonical_at(self.fault_level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_fills_defaults() {
        let s = CampaignSpec::from_json(r#"{"app":"flo52","processors":8}"#).unwrap();
        assert_eq!(s.app.name, "FLO52");
        assert_eq!(s.configuration, Configuration::P8);
        assert_eq!(s.scheduler, SchedKind::Calendar);
        assert_eq!(s.fault_level, 0);
        assert_eq!(s.telemetry, TelemetryLevel::Summary);
        assert_eq!(s.shrink, 1);
    }

    #[test]
    fn full_spec_round_trips_every_knob() {
        let s = CampaignSpec::from_json(
            r#"{"app":"MDG","processors":32,"scheduler":"heap","faults":3,
                "telemetry":"full","shrink":16}"#,
        )
        .unwrap();
        assert_eq!(s.configuration, Configuration::P32);
        assert_eq!(s.scheduler, SchedKind::Heap);
        assert_eq!(s.fault_level, 3);
        assert_eq!(s.telemetry, TelemetryLevel::Full);
        let opts = s.run_options();
        assert_eq!(opts.shrink, 16);
        assert_eq!(opts.faults, FaultPlan::canonical_at(3));
        assert_eq!(s.workload().name, "MDG");
    }

    #[test]
    fn bad_specs_are_typed_parse_errors() {
        for (body, needle) in [
            ("[1,2]", "object"),
            ("not json", "invalid literal"),
            (r#"{"processors":8}"#, "`app`"),
            (r#"{"app":"FLO52"}"#, "`processors`"),
            (r#"{"app":"NOPE","processors":8}"#, "unknown application"),
            (r#"{"app":"FLO52","processors":7}"#, "1, 4, 8, 16 or 32"),
            (
                r#"{"app":"FLO52","processors":8,"scheduler":"lifo"}"#,
                "scheduler",
            ),
            (r#"{"app":"FLO52","processors":8,"faults":9}"#, "0..=4"),
            (r#"{"app":"FLO52","processors":8,"shrink":0}"#, "≥ 1"),
            (
                r#"{"app":"FLO52","processors":8,"turbo":true}"#,
                "unknown spec field",
            ),
        ] {
            let err = CampaignSpec::from_json(body).unwrap_err();
            assert_eq!(err.kind(), "spec_parse", "{body}");
            assert_eq!(err.http_status(), 400, "{body}");
            assert!(err.to_string().contains(needle), "{body} -> {err}");
        }
    }
}
