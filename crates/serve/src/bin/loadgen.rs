//! Open-loop load generator for the campaign service.
//!
//! Fires a seeded, reproducible request mix at a running `serve`
//! process on an open-loop arrival schedule (requests launch at their
//! scheduled instant whether or not earlier ones have finished — the
//! schedule does not slow down when the server does, which is what
//! makes the backpressure path observable). Collects per-request status
//! and latency and writes a percentile summary to
//! `results/SERVE_load.json`.
//!
//! Two connection disciplines:
//!
//! * **close** (default): one TCP connection per request, announced
//!   with `Connection: close` — the cold-handshake worst case.
//! * **keep-alive** (`--keepalive CONNS`): requests are dealt
//!   round-robin across `CONNS` persistent HTTP/1.1 connections, each
//!   request still launched at its open-loop due time. This is how a
//!   real client consumes the warm path: the reply arrives on an
//!   already-open connection, so the measured latency is the service
//!   time, not the handshake. A connection the server closes (request
//!   budget, drain) is transparently redialed.
//!
//! The target address comes from the typed environment surface
//! (`CEDAR_SERVE_ADDR` via `ServeOptions::from_env`); the burst shape
//! is CLI flags:
//!
//! ```sh
//! loadgen [--requests N] [--rate PER_S] [--seed S] [--shrink K]
//!         [--keepalive CONNS] [--out PATH]
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use cedar_obs::json::Obj;
use cedar_serve::ServeOptions;

/// SplitMix64: the workspace's standard small seeded generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

struct Args {
    requests: usize,
    rate: f64,
    seed: u64,
    shrink: u32,
    keepalive: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 40,
        rate: 20.0,
        seed: 0xCEDA,
        shrink: 32,
        keepalive: 0,
        out: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/SERVE_load.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests"),
            "--rate" => args.rate = value().parse().expect("--rate"),
            "--seed" => args.seed = value().parse().expect("--seed"),
            "--shrink" => args.shrink = value().parse().expect("--shrink"),
            "--keepalive" => args.keepalive = value().parse().expect("--keepalive"),
            "--out" => args.out = PathBuf::from(value()),
            other => panic!("unknown flag `{other}` (see the module docs)"),
        }
    }
    args
}

/// The seeded request mix: five apps × three machine sizes × both
/// schedulers, all at one shrink — a small enough key space that a
/// repeated burst with the same seed replays from the run cache.
fn spec_body(rng: &mut SplitMix64, shrink: u32) -> String {
    let app = rng.pick(&["FLO52", "ARC2D", "MDG", "OCEAN", "ADM"]);
    let processors = rng.pick(&[4u64, 8, 32]);
    let scheduler = rng.pick(&["calendar", "heap"]);
    format!(
        r#"{{"app":"{app}","processors":{processors},"scheduler":"{scheduler}","shrink":{shrink}}}"#
    )
}

/// Reads one `Content-Length`-framed response off a persistent
/// connection: `(status, server_wants_close)`. `None` = the connection
/// died mid-response.
fn read_response<R: BufRead>(reader: &mut R) -> Option<(u16, bool)> {
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let status: u16 = line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).ok()?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.trim().eq_ignore_ascii_case("close");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((status, close))
}

/// One connection-per-request exchange; returns (status, latency).
/// Status 0 = the connection itself failed. Announces
/// `Connection: close` so the keep-alive server hands the whole reply
/// back and closes immediately instead of waiting out its idle budget.
fn post_run(addr: &str, body: &str) -> (u16, Duration) {
    let start = Instant::now();
    let status = (|| {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream
            .write_all(
                format!(
                    "POST /run HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .ok()?;
        let mut response = String::new();
        stream.read_to_string(&mut response).ok()?;
        response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
    })()
    .unwrap_or(0);
    (status, start.elapsed())
}

/// One persistent connection plus its buffered read half, redialed on
/// demand when the server closes it (request budget, drain).
struct KeepAliveConn {
    addr: String,
    stream: Option<(TcpStream, BufReader<TcpStream>)>,
}

impl KeepAliveConn {
    fn new(addr: &str) -> KeepAliveConn {
        KeepAliveConn {
            addr: addr.to_string(),
            stream: None,
        }
    }

    fn ensure(&mut self) -> Option<&mut (TcpStream, BufReader<TcpStream>)> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr).ok()?;
            let reader = BufReader::new(stream.try_clone().ok()?);
            self.stream = Some((stream, reader));
        }
        self.stream.as_mut()
    }

    /// One exchange on the persistent connection. A dead connection is
    /// redialed and the request retried once — the failure mode is the
    /// server having closed between requests, which loses no state.
    fn post_run(&mut self, body: &str) -> (u16, Duration) {
        let start = Instant::now();
        let request = format!(
            "POST /run HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        for attempt in 0..2 {
            let Some((stream, reader)) = self.ensure() else {
                break;
            };
            let sent = stream.write_all(request.as_bytes()).is_ok();
            match sent.then(|| read_response(reader)).flatten() {
                Some((status, close)) => {
                    if close {
                        self.stream = None;
                    }
                    return (status, start.elapsed());
                }
                None => {
                    // Stale connection: drop it; the next attempt dials
                    // fresh. One retry only — a server that kills two
                    // fresh connections in a row is genuinely failing.
                    self.stream = None;
                    if attempt == 1 {
                        break;
                    }
                }
            }
        }
        (0, start.elapsed())
    }
}

/// Scrapes one counter from the server's `/metrics` exposition, so the
/// report (and the CI gate reading it) can see cache traffic without a
/// separate HTTP client.
fn scrape_counter(addr: &str, name: &str) -> u64 {
    let text = (|| {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream
            .write_all(
                format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                    .as_bytes(),
            )
            .ok()?;
        let mut response = String::new();
        stream.read_to_string(&mut response).ok()?;
        Some(response)
    })()
    .unwrap_or_default();
    text.lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Linear-interpolation percentile over an ascending sample. The
/// nearest-rank-by-rounding shortcut this replaces reported the
/// *maximum* as p99 for any burst under ~67 samples (rounding pushed
/// the rank to the last element), overstating tail latency exactly
/// where the CI smoke's small bursts live.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = p.clamp(0.0, 1.0) * (sorted_ms.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    sorted_ms[lo] + (sorted_ms[hi] - sorted_ms[lo]) * (rank - lo as f64)
}

fn main() {
    let args = parse_args();
    let addr = ServeOptions::from_env().addr;
    eprintln!(
        "loadgen: {} requests at {}/s against {addr} (seed {}, shrink {}, {})",
        args.requests,
        args.rate,
        args.seed,
        args.shrink,
        if args.keepalive > 0 {
            format!("{} keep-alive connections", args.keepalive)
        } else {
            "connection-per-request".to_string()
        }
    );

    let mut rng = SplitMix64(args.seed);
    let bodies: Vec<String> = (0..args.requests)
        .map(|_| spec_body(&mut rng, args.shrink))
        .collect();

    let start = Instant::now();
    let results: Vec<(u16, Duration)> = if args.keepalive > 0 {
        // Deal requests round-robin over the persistent connections;
        // request i keeps its open-loop due time i/rate, so the
        // arrival schedule matches the close-mode burst exactly.
        let conns = args.keepalive;
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let addr = addr.clone();
                let mine: Vec<(usize, String)> = bodies
                    .iter()
                    .enumerate()
                    .skip(c)
                    .step_by(conns)
                    .map(|(i, b)| (i, b.clone()))
                    .collect();
                let rate = args.rate;
                std::thread::spawn(move || {
                    let mut conn = KeepAliveConn::new(&addr);
                    mine.into_iter()
                        .map(|(i, body)| {
                            let due = Duration::from_secs_f64(i as f64 / rate);
                            if let Some(wait) = due.checked_sub(start.elapsed()) {
                                std::thread::sleep(wait);
                            }
                            (i, conn.post_run(&body))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut indexed: Vec<(usize, (u16, Duration))> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("connection thread"))
            .collect();
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    } else {
        let handles: Vec<_> = bodies
            .into_iter()
            .enumerate()
            .map(|(i, body)| {
                let addr = addr.clone();
                let due = Duration::from_secs_f64(i as f64 / args.rate);
                std::thread::spawn(move || {
                    if let Some(wait) = due.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    post_run(&addr, &body)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("request thread"))
            .collect()
    };

    let mut latencies_ms = Vec::with_capacity(args.requests);
    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut failed = 0u64;
    for (status, latency) in results {
        latencies_ms.push(latency.as_secs_f64() * 1e3);
        match status {
            200 => ok += 1,
            503 => shed += 1,
            _ => failed += 1,
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let cache_hits = scrape_counter(&addr, "cedar_serve_cache_hits_total");
    let cache_misses = scrape_counter(&addr, "cedar_serve_cache_misses_total");
    let hot_hits = scrape_counter(&addr, "cedar_serve_cache_hot_hits_total");
    let keepalive_reuse = scrape_counter(&addr, "cedar_serve_keepalive_reuse_total");

    let mut lat = Obj::new();
    lat.f64("p50", percentile(&latencies_ms, 0.50))
        .f64("p90", percentile(&latencies_ms, 0.90))
        .f64("p99", percentile(&latencies_ms, 0.99))
        .f64("max", latencies_ms.last().copied().unwrap_or(0.0));
    let mut o = Obj::new();
    o.u64("requests", args.requests as u64)
        .f64("rate_per_s", args.rate)
        .u64("seed", args.seed)
        .u64("shrink", u64::from(args.shrink))
        .u64("keepalive_connections", args.keepalive as u64)
        .u64("ok", ok)
        .u64("shed_503", shed)
        .u64("failed", failed)
        .u64("cache_hits_total", cache_hits)
        .u64("cache_misses_total", cache_misses)
        .u64("cache_hot_hits_total", hot_hits)
        .u64("keepalive_reuse_total", keepalive_reuse)
        .f64("wall_s", wall_s)
        .raw("latency_ms", lat.finish());
    let report = o.finish();

    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&args.out, &report).expect("write load report");
    println!("{report}");
    eprintln!("loadgen: wrote {}", args.out.display());
    if failed > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates_between_ranks() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 1.0), 40.0);
        // rank = 0.5 * 3 = 1.5 → halfway between 20 and 30.
        assert_eq!(percentile(&v, 0.5), 25.0);
        // rank = 0.99 * 3 = 2.97 → between 30 and 40, NOT clamped to
        // the max the way nearest-rank rounding reported it.
        let p99 = percentile(&v, 0.99);
        assert!(p99 > 30.0 && p99 < 40.0, "{p99}");
    }

    #[test]
    fn percentile_handles_degenerate_samples() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.5], 0.99), 7.5);
        assert_eq!(percentile(&[1.0, 2.0], 0.75), 1.75);
    }

    #[test]
    fn response_reader_frames_by_content_length() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{}";
        let (status, close) = read_response(&mut &raw[..]).unwrap();
        assert_eq!(status, 200);
        assert!(!close);

        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
        let (status, close) = read_response(&mut &raw[..]).unwrap();
        assert_eq!(status, 503);
        assert!(close);

        assert!(read_response(&mut &b"HTTP/1.1"[..]).is_none(), "truncated");
    }
}
