//! Open-loop load generator for the campaign service.
//!
//! Fires a seeded, reproducible request mix at a running `serve`
//! process on an open-loop arrival schedule (requests launch at their
//! scheduled instant whether or not earlier ones have finished — the
//! schedule does not slow down when the server does, which is what
//! makes the backpressure path observable). Collects per-request status
//! and latency and writes a percentile summary to
//! `results/SERVE_load.json`.
//!
//! The target address comes from the typed environment surface
//! (`CEDAR_SERVE_ADDR` via `ServeOptions::from_env`); the burst shape
//! is CLI flags:
//!
//! ```sh
//! loadgen [--requests N] [--rate PER_S] [--seed S] [--shrink K] [--out PATH]
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use cedar_obs::json::Obj;
use cedar_serve::ServeOptions;

/// SplitMix64: the workspace's standard small seeded generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

struct Args {
    requests: usize,
    rate: f64,
    seed: u64,
    shrink: u32,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 40,
        rate: 20.0,
        seed: 0xCEDA,
        shrink: 32,
        out: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/SERVE_load.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests"),
            "--rate" => args.rate = value().parse().expect("--rate"),
            "--seed" => args.seed = value().parse().expect("--seed"),
            "--shrink" => args.shrink = value().parse().expect("--shrink"),
            "--out" => args.out = PathBuf::from(value()),
            other => panic!("unknown flag `{other}` (see the module docs)"),
        }
    }
    args
}

/// The seeded request mix: five apps × three machine sizes × both
/// schedulers, all at one shrink — a small enough key space that a
/// repeated burst with the same seed replays from the run cache.
fn spec_body(rng: &mut SplitMix64, shrink: u32) -> String {
    let app = rng.pick(&["FLO52", "ARC2D", "MDG", "OCEAN", "ADM"]);
    let processors = rng.pick(&[4u64, 8, 32]);
    let scheduler = rng.pick(&["calendar", "heap"]);
    format!(
        r#"{{"app":"{app}","processors":{processors},"scheduler":"{scheduler}","shrink":{shrink}}}"#
    )
}

/// One blocking request; returns (status, latency). Status 0 = the
/// connection itself failed.
fn post_run(addr: &str, body: &str) -> (u16, Duration) {
    let start = Instant::now();
    let status = (|| {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream
            .write_all(
                format!(
                    "POST /run HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .ok()?;
        let mut response = String::new();
        stream.read_to_string(&mut response).ok()?;
        response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
    })()
    .unwrap_or(0);
    (status, start.elapsed())
}

/// Scrapes one counter from the server's `/metrics` exposition, so the
/// report (and the CI gate reading it) can see cache traffic without a
/// separate HTTP client.
fn scrape_counter(addr: &str, name: &str) -> u64 {
    let text = (|| {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream
            .write_all(format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
            .ok()?;
        let mut response = String::new();
        stream.read_to_string(&mut response).ok()?;
        Some(response)
    })()
    .unwrap_or_default();
    text.lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or(0)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank]
}

fn main() {
    let args = parse_args();
    let addr = ServeOptions::from_env().addr;
    eprintln!(
        "loadgen: {} requests at {}/s against {addr} (seed {}, shrink {})",
        args.requests, args.rate, args.seed, args.shrink
    );

    let mut rng = SplitMix64(args.seed);
    let bodies: Vec<String> = (0..args.requests)
        .map(|_| spec_body(&mut rng, args.shrink))
        .collect();

    let start = Instant::now();
    let handles: Vec<_> = bodies
        .into_iter()
        .enumerate()
        .map(|(i, body)| {
            let addr = addr.clone();
            let due = Duration::from_secs_f64(i as f64 / args.rate);
            std::thread::spawn(move || {
                if let Some(wait) = due.checked_sub(start.elapsed()) {
                    std::thread::sleep(wait);
                }
                post_run(&addr, &body)
            })
        })
        .collect();

    let mut latencies_ms = Vec::with_capacity(args.requests);
    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut failed = 0u64;
    for h in handles {
        let (status, latency) = h.join().expect("request thread");
        latencies_ms.push(latency.as_secs_f64() * 1e3);
        match status {
            200 => ok += 1,
            503 => shed += 1,
            _ => failed += 1,
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let cache_hits = scrape_counter(&addr, "cedar_serve_cache_hits_total");
    let cache_misses = scrape_counter(&addr, "cedar_serve_cache_misses_total");

    let mut lat = Obj::new();
    lat.f64("p50", percentile(&latencies_ms, 0.50))
        .f64("p90", percentile(&latencies_ms, 0.90))
        .f64("p99", percentile(&latencies_ms, 0.99))
        .f64("max", latencies_ms.last().copied().unwrap_or(0.0));
    let mut o = Obj::new();
    o.u64("requests", args.requests as u64)
        .f64("rate_per_s", args.rate)
        .u64("seed", args.seed)
        .u64("shrink", u64::from(args.shrink))
        .u64("ok", ok)
        .u64("shed_503", shed)
        .u64("failed", failed)
        .u64("cache_hits_total", cache_hits)
        .u64("cache_misses_total", cache_misses)
        .f64("wall_s", wall_s)
        .raw("latency_ms", lat.finish());
    let report = o.finish();

    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&args.out, &report).expect("write load report");
    println!("{report}");
    eprintln!("loadgen: wrote {}", args.out.display());
    if failed > 0 {
        std::process::exit(1);
    }
}
