//! The campaign-service binary.
//!
//! ```sh
//! cargo run --release --bin serve
//! # or, on an ephemeral port with a small queue:
//! CEDAR_SERVE_ADDR=127.0.0.1:0 CEDAR_SERVE_QUEUE=8 cargo run --release --bin serve
//! ```
//!
//! The first stdout line is `cedar-serve listening on <addr>` with the
//! resolved address, so scripts binding port 0 can discover the port.
//! `SIGINT`/`SIGTERM` drain in-flight and queued requests before exit.

use std::io::Write as _;
use std::time::Duration;

use cedar_serve::{signal, ServeOptions, Server};

fn main() {
    let opts = ServeOptions::from_env();
    let server = Server::start(&opts).unwrap_or_else(|e| {
        eprintln!("cedar-serve: {e}");
        std::process::exit(1);
    });
    println!("cedar-serve listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "cedar-serve: queue={} workers={} hot_capacity={} keepalive={}r/{}s \
         (POST /run, GET /metrics, GET /healthz)",
        opts.queue,
        opts.workers,
        opts.hot_capacity,
        opts.keepalive_requests,
        opts.keepalive_idle.as_secs()
    );

    signal::install();
    while !signal::triggered() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("cedar-serve: signal received, draining");
    server.shutdown();
    server.join();
    eprintln!("cedar-serve: drained, exiting");
}
