//! Process-signal wiring for graceful drain, with no external crates.
//!
//! `std` does not expose signal handlers, but it already links libc, so
//! the one symbol we need — `signal(2)` — is declared here directly.
//! The handler only flips a process-global atomic (the only thing that
//! is safe to do in async-signal context); the serve bin polls
//! [`triggered`] and turns it into a [`crate::Server::shutdown`] drain.
//!
//! On non-Unix targets the module compiles to a no-op installer so the
//! crate stays portable; the service then drains only via the explicit
//! shutdown API.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// True once `SIGINT` or `SIGTERM` has been delivered (after
/// [`install`]).
pub fn triggered() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Test/readiness hook: raise the flag as if a signal had arrived.
pub fn trigger() {
    SIGNALLED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use std::os::raw::c_int;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" fn on_signal(_sig: c_int) {
        // Only an atomic store: async-signal-safe.
        super::SIGNALLED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    /// Routes `SIGINT` and `SIGTERM` to the drain flag.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal support on this target; drains happen via the API.
    pub fn install() {}
}

pub use imp::install;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_raises_the_flag() {
        install();
        trigger();
        assert!(triggered());
    }
}
