//! Rendering a campaign result as the service's reply body.
//!
//! The body is deterministic by construction: every field derives from
//! the measured [`RunResult`] (itself deterministic for a fixed spec)
//! and fields are emitted in a fixed order by the workspace's ordered
//! JSON writer. No wall-clock, host, or cache-traffic value appears —
//! that is what makes a warm (cache-hit) reply byte-identical to the
//! cold reply for the same spec, which `tests/serve_api.rs` asserts.
//!
//! The `key` is the run's content address in the cache
//! ([`cedar_core::cache::run_key`]); the `fingerprint` hashes the full
//! cacheable measurement payload, so any change to any measured number
//! shows up even if a client only compares one field.

use cedar_core::cache::{run_key, to_cached};
use cedar_core::{RunResult, TelemetryLevel};
use cedar_obs::json::{self, Obj};
use cedar_xylem::accounting::Category;

use crate::spec::CampaignSpec;

/// The run's measurement fingerprint: FNV-1a over the cacheable payload
/// with the three `stats.*_ns` wall-clock lines dropped. Those are the
/// only nondeterministic bytes in [`CachedRun::encode`]
/// (`crates/cache/src/record.rs`) — everything else is measurement, so
/// the same spec fingerprints identically whether it ran here, in the
/// library, or replayed from the cache.
pub fn measurement_fingerprint(result: &RunResult) -> u64 {
    let deterministic: String = to_cached(result)
        .encode()
        .lines()
        .filter(|l| {
            let field = l.split_whitespace().next().unwrap_or("");
            !matches!(
                field,
                "stats.setup_ns" | "stats.run_ns" | "stats.breakdown_ns"
            )
        })
        .collect::<Vec<_>>()
        .join("\n");
    json::fnv1a(deterministic.as_bytes())
}

/// Renders the reply body for one executed campaign.
pub fn render(spec: &CampaignSpec, result: &RunResult) -> String {
    let key = run_key(&spec.workload(), &spec.sim_config());

    let mut breakdown = Obj::new();
    for (name, cat) in [
        ("user", Category::User),
        ("system", Category::System),
        ("interrupt", Category::Interrupt),
        ("spin", Category::Spin),
    ] {
        breakdown.f64(name, result.os_category_fraction(cat));
    }

    let mut overheads = Obj::new();
    overheads
        .f64("os_total", result.os_overhead_fraction())
        .f64(
            "parallelization_main",
            result.main_parallelization_fraction(),
        );

    // Hex, not a JSON number: a 64-bit hash exceeds f64's 53-bit
    // integer range, so a numeric field would not survive a parse
    // round-trip.
    let mut o = Obj::new();
    o.str("key", &key.hex())
        .str(
            "fingerprint",
            &format!("{:016x}", measurement_fingerprint(result)),
        )
        .str("app", result.app)
        .str("configuration", result.configuration.label())
        .u64("processors", u64::from(result.configuration.total_ces()))
        .str("scheduler", spec.scheduler.as_str())
        .u64("fault_level", u64::from(spec.fault_level))
        .u64("shrink", u64::from(spec.shrink))
        .u64("completion_time", result.completion_time.0)
        .f64("ct_seconds", result.ct_seconds())
        .raw("breakdown", breakdown.finish())
        .raw("overheads", overheads.finish())
        .u64("bodies", result.bodies)
        .u64("events", result.events);
    if spec.telemetry == TelemetryLevel::Full {
        // The counter rollup is deterministic (unlike the *_ns phase
        // wall-clocks, which are deliberately excluded).
        let mut counters = Obj::new();
        for (name, value) in result.stats.counters.iter() {
            counters.u64(name, value);
        }
        o.raw("counters", counters.finish());
    }
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_cache::CachedRun;
    use cedar_core::cache::from_cached;
    use cedar_core::Experiment;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::from_json(r#"{"app":"FLO52","processors":4,"shrink":64}"#).unwrap()
    }

    #[test]
    fn reply_is_ordered_parseable_and_wall_clock_free() {
        let spec = tiny_spec();
        let result = Experiment::new(spec.workload(), spec.sim_config()).run();
        let body = render(&spec, &result);
        let parsed = json::parse(&body).unwrap();
        assert_eq!(parsed.get("app").unwrap().as_str(), Some("FLO52"));
        assert_eq!(parsed.get("processors").unwrap().as_u64(), Some(4));
        assert_eq!(
            parsed.get("completion_time").unwrap().as_u64(),
            Some(result.completion_time.0)
        );
        assert!(parsed.get("breakdown").unwrap().get("user").is_some());
        assert!(!body.contains("_ns"), "no wall-clock leaks: {body}");
        assert!(parsed.get("counters").is_none(), "summary omits counters");
    }

    #[test]
    fn replay_from_the_cache_renders_byte_identically() {
        let spec = tiny_spec();
        let direct = Experiment::new(spec.workload(), spec.sim_config()).run();
        let replayed =
            from_cached(CachedRun::decode(&to_cached(&direct).encode()).expect("decode"));
        assert_eq!(render(&spec, &direct), render(&spec, &replayed));
    }

    #[test]
    fn fingerprint_ignores_wall_clock_but_not_measurements() {
        let spec = tiny_spec();
        // Two independent executions: identical measurements, different
        // host wall-clocks — the fingerprint must not see the latter.
        let a = Experiment::new(spec.workload(), spec.sim_config()).run();
        let b = Experiment::new(spec.workload(), spec.sim_config()).run();
        assert_eq!(measurement_fingerprint(&a), measurement_fingerprint(&b));

        let other =
            CampaignSpec::from_json(r#"{"app":"FLO52","processors":8,"shrink":64}"#).unwrap();
        let c = Experiment::new(other.workload(), other.sim_config()).run();
        assert_ne!(
            measurement_fingerprint(&a),
            measurement_fingerprint(&c),
            "a different configuration must re-fingerprint"
        );
    }

    #[test]
    fn full_telemetry_adds_the_counter_rollup() {
        let spec = CampaignSpec::from_json(
            r#"{"app":"FLO52","processors":4,"shrink":64,"telemetry":"full"}"#,
        )
        .unwrap();
        let result = Experiment::new(spec.workload(), spec.sim_config()).run();
        let body = render(&spec, &result);
        let parsed = json::parse(&body).unwrap();
        let counters = parsed.get("counters").expect("counters present");
        assert_eq!(
            counters.get("events.total").and_then(|v| v.as_u64()),
            Some(result.events)
        );
        assert!(!body.contains("_ns"), "counters stay wall-clock-free");
    }
}
