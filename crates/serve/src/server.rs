//! The service: accept loop, bounded queue, worker pool, graceful drain.
//!
//! The accept thread never executes a campaign — it only classifies:
//! queue has room → enqueue and wake a worker; queue full → answer
//! `503` + `Retry-After` on the spot and close. That keeps the
//! backpressure decision O(µs) no matter how long the workers are busy,
//! which is the whole point of bounding the queue explicitly instead of
//! letting the kernel's listen backlog absorb (and hide) the overload.
//!
//! The accept loop *blocks* in `accept(2)` — no poll quantum sits
//! between a client's SYN and the worker handoff. Shutdown wakes it
//! with a throwaway self-connection: [`Server::shutdown`] flips the
//! flag, then dials the listener once so the blocked accept returns,
//! re-checks the flag, and exits. Workers then drain every
//! already-queued connection before exiting, so an accepted request is
//! never dropped mid-run.
//!
//! Campaigns run against one process-wide [`CacheSession`]: the
//! content-addressed store (and its in-memory hot tier) is opened once
//! at startup and shared by every worker, so a warm request costs a
//! hot-tier lookup instead of a store open + directory walk + decode.
//! Connections are persistent (HTTP/1.1 keep-alive) within the typed
//! budget — see [`crate::http`] for the protocol rules and
//! [`ServeOptions`] for the knobs.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cedar_core::{CacheMode, CacheSession, CedarError, RunOptions, SuiteResult};
use cedar_obs::json;

use crate::http::{self, Request};
use crate::metrics::{HotTierView, Metrics};
use crate::options::ServeOptions;
use crate::reply;
use crate::spec::CampaignSpec;

/// The `Retry-After` the service advertises when shedding load,
/// seconds.
pub const RETRY_AFTER_S: u32 = 1;

/// Read budget for a connection's *first* request: a client that
/// connects owes us a request head promptly.
const FIRST_REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// Granularity of the keep-alive idle wait. The worker blocks in
/// `fill_buf` at most this long per slice so it notices a shutdown
/// within a quarter second even while a client sits idle; a request
/// that arrives mid-slice wakes the read immediately, so this costs
/// warm-path latency nothing.
const IDLE_SLICE: Duration = Duration::from_millis(250);

/// Shared mutable state: the bounded connection queue plus the drain
/// flag, under one mutex so workers can wait on both with one condvar.
/// The cache session lives here too — one store handle and hot tier
/// for the whole process, not one per request.
struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    metrics: Metrics,
    session: CacheSession,
    opts: ServeOptions,
}

/// A running campaign service. Dropping the handle without calling
/// [`Server::join`] detaches the threads (the test suite joins).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `opts.addr`, opens the process-wide run cache (read-write,
    /// with a hot tier of `opts.hot_capacity` decoded runs), spawns the
    /// accept loop and `opts.workers` campaign workers, and returns
    /// once the service is ready to answer. An unbindable address is
    /// [`CedarError::Internal`]; an unusable cache root surfaces here,
    /// at startup, as [`CedarError::CacheIo`] — not as a per-request
    /// `500`.
    pub fn start(opts: &ServeOptions) -> Result<Server, CedarError> {
        let listener = TcpListener::bind(&opts.addr)
            .map_err(|e| CedarError::Internal(format!("bind {}: {e}", opts.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| CedarError::Internal(format!("local_addr: {e}")))?;

        let mut run_opts = RunOptions::default()
            .with_cache(CacheMode::ReadWrite)
            .with_cache_hot(opts.hot_capacity);
        if let Some(dir) = &opts.cache_dir {
            run_opts = run_opts.with_output_dir(dir);
        }
        let session = CacheSession::new(&run_opts)?;

        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: Metrics::default(),
            session,
            opts: opts.clone(),
        });

        let mut threads = Vec::with_capacity(opts.workers + 1);
        let accept_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, &accept_shared))
                .map_err(|e| CedarError::Internal(format!("spawn accept: {e}")))?,
        );
        for i in 0..opts.workers {
            let worker_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&worker_shared))
                    .map_err(|e| CedarError::Internal(format!("spawn worker: {e}")))?,
            );
        }
        Ok(Server {
            shared,
            local_addr,
            threads,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service's metrics, for in-process inspection.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Requests a graceful drain: stop accepting, finish everything
    /// already queued, then let the threads exit. Idempotent. The
    /// accept thread blocks in `accept(2)`, so this dials the listener
    /// once to wake it; if that connect fails (e.g. the interface went
    /// away) the loop still exits on the next real connection attempt.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Blocks until every thread has exited (i.e. until a shutdown has
    /// been requested and the queue has drained). A worker that
    /// panicked outside the campaign `catch_unwind` is re-raised here
    /// via [`std::panic::resume_unwind`] — a crashed worker thread is a
    /// bug the host process must see, not something to swallow during
    /// teardown.
    pub fn join(mut self) {
        let mut panicked = None;
        for t in self.threads.drain(..) {
            if let Err(payload) = t.join() {
                panicked.get_or_insert(payload);
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Accept loop: blocking accept + self-connection shutdown wake +
/// backpressure.
fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // The wake connection from `shutdown` lands here; any
                // late real client is dropped unanswered, which a
                // draining service is allowed to do.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Normalize the accepted socket to blocking. On the
                // rare platform/fd-pressure failure the socket's mode
                // is unknown, and handing a maybe-nonblocking stream
                // to a worker turns into spurious `WouldBlock` parse
                // errors — reject it up front with a counted 500.
                if stream.set_nonblocking(false).is_err() {
                    reject_unconfigurable(stream, shared);
                    continue;
                }
                let mut q = shared.queue.lock().unwrap();
                if q.len() >= shared.opts.queue {
                    drop(q);
                    shed(stream, shared);
                } else {
                    q.push_back(stream);
                    drop(q);
                    shared.metrics.queue_delta(1);
                    shared.available.notify_one();
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure (EMFILE, ECONNABORTED…):
                // back off briefly instead of spinning on the error.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    // Wake the workers so they notice the flag and drain.
    shared.available.notify_all();
}

/// Drops a connection whose socket could not be configured, answering
/// a typed `500` so the client sees an error rather than a silent
/// close, and counting it so the operator sees it in `/metrics`.
fn reject_unconfigurable(mut stream: TcpStream, shared: &Shared) {
    let err = CedarError::Internal("accepted socket could not be set to blocking".to_string());
    let _ = http::write_response(
        &mut stream,
        err.http_status(),
        "application/json",
        &[],
        false,
        http::error_body(&err).as_bytes(),
    );
    shared.metrics.count_status(err.http_status());
}

/// Sheds one connection with `503` + `Retry-After`. `stream` was moved
/// out of the queue path, so the worker pool never sees it. Shed
/// replies always close: a client being turned away must not hold a
/// connection open.
fn shed(stream: TcpStream, shared: &Shared) {
    let mut stream = stream;
    let err = CedarError::Overloaded {
        retry_after_s: RETRY_AFTER_S,
    };
    let retry = format!("Retry-After: {RETRY_AFTER_S}");
    let _ = http::write_response(
        &mut stream,
        err.http_status(),
        "application/json",
        &[&retry],
        false,
        http::error_body(&err).as_bytes(),
    );
    shared.metrics.count_status(err.http_status());
}

/// Worker loop: pop, handle, repeat; exit once shutdown is flagged and
/// the queue is empty (the drain guarantee).
fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap();
                q = guard;
            }
        };
        let Some(mut stream) = stream else { return };
        shared.metrics.queue_delta(-1);
        handle_connection(&mut stream, shared);
    }
}

/// Serves one connection: up to `keepalive_requests` request/response
/// exchanges, each parsed/routed/timed like before, with the reader's
/// buffer surviving across requests so pipelined bytes are never lost.
/// The connection closes when the client asks (`Connection: close`,
/// HTTP/1.0 default), on any non-200, at the request budget, on idle
/// timeout, or when a drain begins.
fn handle_connection(stream: &mut TcpStream, shared: &Shared) {
    shared.metrics.count_connection();
    // The reader owns a dup'd handle (same underlying socket, so read
    // timeouts set on `stream` govern it too); `stream` keeps the
    // write side. The BufReader must outlive each request so bytes a
    // pipelining client sent early stay available to the next parse.
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            let err =
                CedarError::Internal("connection handle could not be duplicated".to_string());
            let _ = http::write_response(
                stream,
                err.http_status(),
                "application/json",
                &[],
                false,
                http::error_body(&err).as_bytes(),
            );
            shared.metrics.count_status(err.http_status());
            return;
        }
    };
    let mut reader = BufReader::new(read_half);
    let max_requests = shared.opts.keepalive_requests.max(1);

    for served in 0..max_requests {
        if served > 0 {
            if !await_next_request(&mut reader, stream, shared) {
                return;
            }
            shared.metrics.count_keepalive_reuse();
        }

        let _ = stream.set_read_timeout(Some(FIRST_REQUEST_TIMEOUT));
        let parse_start = Instant::now();
        let request = http::read_request(&mut reader);
        shared
            .metrics
            .parse_latency()
            .observe_us(parse_start.elapsed().as_micros() as u64);

        let (status, content_type, body) = match &request {
            Err(err) => (err.http_status(), "application/json", http::error_body(err)),
            Ok(req) => route(req, shared),
        };
        let client_close = request.map(|r| r.close).unwrap_or(true);
        let keep = status == 200
            && !client_close
            && served + 1 < max_requests
            && !shared.shutdown.load(Ordering::SeqCst);

        let write_start = Instant::now();
        let _ = http::write_response(stream, status, content_type, &[], keep, body.as_bytes());
        shared
            .metrics
            .write_latency()
            .observe_us(write_start.elapsed().as_micros() as u64);
        shared.metrics.count_status(status);
        if status != 200 {
            lingering_close(stream);
            return;
        }
        if !keep {
            return;
        }
    }
}

/// Waits for the next request's first bytes on a kept-alive
/// connection, in shutdown-aware slices of at most [`IDLE_SLICE`].
/// Returns `false` when the connection should close instead: the
/// client closed (clean EOF), the idle budget ran out, a drain began,
/// or the socket errored. Pipelined bytes already buffered return
/// `true` immediately without touching the socket.
fn await_next_request(
    reader: &mut BufReader<TcpStream>,
    stream: &TcpStream,
    shared: &Shared,
) -> bool {
    let deadline = Instant::now() + shared.opts.keepalive_idle;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        let slice = IDLE_SLICE.min(deadline - now).max(Duration::from_millis(1));
        let _ = stream.set_read_timeout(Some(slice));
        match reader.fill_buf() {
            Ok([]) => return false,
            Ok(_) => return true,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return false,
        }
    }
}

/// Bounded lingering close for rejected requests. An error reply is
/// written before the request was fully consumed (oversized head,
/// truncated body); closing with unread bytes in the socket makes the
/// kernel send `RST`, which can clobber the typed error body before
/// the client reads it. Half-close the write side, then discard up to
/// 64 KiB of late input under a short timeout so the reply is reliably
/// delivered, and only then drop the connection.
fn lingering_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    for _ in 0..16 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Dispatches one parsed request to its endpoint.
fn route(req: &Request, shared: &Shared) -> (u16, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let mut o = json::Obj::new();
            o.str("status", "ok");
            (200, "application/json", o.finish())
        }
        ("GET", "/metrics") => {
            // Evictions and occupancy are store-wide state, sampled at
            // scrape time from the shared session rather than summed
            // per campaign.
            let hot = shared.session.hot_occupancy().map(|(entries, capacity)| {
                let evictions = shared
                    .session
                    .stats()
                    .map(|s| s.hot_evictions)
                    .unwrap_or(0);
                HotTierView {
                    evictions,
                    entries,
                    capacity,
                }
            });
            (
                200,
                "text/plain; version=0.0.4",
                shared.metrics.render_with_hot(hot),
            )
        }
        ("POST", "/run") => match run_campaign(&req.body, shared) {
            Ok(body) => (200, "application/json", body),
            Err(err) => (
                err.http_status(),
                "application/json",
                http::error_body(&err),
            ),
        },
        (_, "/healthz" | "/metrics" | "/run") => {
            let err =
                CedarError::SpecParse(format!("method {} not allowed on {}", req.method, req.path));
            (405, "application/json", http::error_body(&err))
        }
        _ => {
            let err = CedarError::SpecParse(format!("no such endpoint `{}`", req.path));
            (404, "application/json", http::error_body(&err))
        }
    }
}

/// Executes one `POST /run` body: spec → typed options → the same
/// `SuiteResult` path the library exposes, against the process-wide
/// cache session — a warm spec replays from the hot tier (or disk)
/// without reopening the store, and the campaign's own cache traffic
/// (folded from per-experiment outcomes, so concurrent requests never
/// contaminate each other's counters) feeds `/metrics`.
fn run_campaign(body: &[u8], shared: &Shared) -> Result<String, CedarError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| CedarError::SpecParse("body is not UTF-8".to_string()))?;
    let spec = CampaignSpec::from_json(text)?;
    let opts = spec.run_options();

    let execute_start = Instant::now();
    // AssertUnwindSafe: the session is designed to survive a panicking
    // campaign — its counters are atomic and the hot tier's locks
    // recover from poisoning.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // The workload is pre-shrunk; the suite runner applies only the
        // scheduler and fault plan, mirroring CampaignSpec::sim_config.
        SuiteResult::run_sequential_shared(
            &[spec.workload()],
            &[spec.configuration],
            &opts,
            &shared.session,
        )
    }));
    shared
        .metrics
        .execute_latency()
        .observe_us(execute_start.elapsed().as_micros() as u64);
    let suite = match outcome {
        Ok(r) => r,
        Err(_) => {
            return Err(CedarError::Internal(
                "campaign panicked; see server log".to_string(),
            ))
        }
    };
    if let Some(cache) = &suite.telemetry.cache {
        shared.metrics.count_cache(cache);
    }
    Ok(reply::render(&spec, &suite.apps[0].runs[0]))
}
