//! The service: accept loop, bounded queue, worker pool, graceful drain.
//!
//! The accept thread never executes a campaign — it only classifies:
//! queue has room → enqueue and wake a worker; queue full → answer
//! `503` + `Retry-After` on the spot and close. That keeps the
//! backpressure decision O(µs) no matter how long the workers are busy,
//! which is the whole point of bounding the queue explicitly instead of
//! letting the kernel's listen backlog absorb (and hide) the overload.
//!
//! Shutdown is cooperative: [`Server::shutdown`] (or a signal, via
//! [`crate::signal`]) flips a flag the nonblocking accept loop polls;
//! workers then drain every already-queued connection before exiting,
//! so an accepted request is never dropped mid-run.

use std::collections::VecDeque;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cedar_core::{CacheMode, CedarError, SuiteResult};
use cedar_obs::json;

use crate::http::{self, Request};
use crate::metrics::Metrics;
use crate::options::ServeOptions;
use crate::reply;
use crate::spec::CampaignSpec;

/// The `Retry-After` the service advertises when shedding load,
/// seconds.
pub const RETRY_AFTER_S: u32 = 1;

/// How often the accept loop re-checks the shutdown flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Shared mutable state: the bounded connection queue plus the drain
/// flag, under one mutex so workers can wait on both with one condvar.
struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    metrics: Metrics,
    opts: ServeOptions,
}

/// A running campaign service. Dropping the handle without calling
/// [`Server::join`] detaches the threads (the test suite joins).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `opts.addr`, spawns the accept loop and `opts.workers`
    /// campaign workers, and returns once the service is ready to
    /// answer. An unbindable address is [`CedarError::Internal`].
    pub fn start(opts: &ServeOptions) -> Result<Server, CedarError> {
        let listener = TcpListener::bind(&opts.addr)
            .map_err(|e| CedarError::Internal(format!("bind {}: {e}", opts.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| CedarError::Internal(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| CedarError::Internal(format!("set_nonblocking: {e}")))?;

        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: Metrics::default(),
            opts: opts.clone(),
        });

        let mut threads = Vec::with_capacity(opts.workers + 1);
        let accept_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, &accept_shared))
                .map_err(|e| CedarError::Internal(format!("spawn accept: {e}")))?,
        );
        for i in 0..opts.workers {
            let worker_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&worker_shared))
                    .map_err(|e| CedarError::Internal(format!("spawn worker: {e}")))?,
            );
        }
        Ok(Server {
            shared,
            local_addr,
            threads,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service's metrics, for in-process inspection.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Requests a graceful drain: stop accepting, finish everything
    /// already queued, then let the threads exit. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
    }

    /// Blocks until every thread has exited (i.e. until a shutdown has
    /// been requested and the queue has drained).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Accept loop: nonblocking accept + shutdown polling + backpressure.
fn accept_loop(listener: TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let mut q = shared.queue.lock().unwrap();
                if q.len() >= shared.opts.queue {
                    drop(q);
                    shed(stream, shared);
                } else {
                    q.push_back(stream);
                    drop(q);
                    shared.metrics.queue_delta(1);
                    shared.available.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Wake the workers so they notice the flag and drain.
    shared.available.notify_all();
}

/// Sheds one connection with `503` + `Retry-After`. `stream` was moved
/// out of the queue path, so the worker pool never sees it.
fn shed(stream: TcpStream, shared: &Shared) {
    let mut stream = stream;
    let err = CedarError::Overloaded {
        retry_after_s: RETRY_AFTER_S,
    };
    let retry = format!("Retry-After: {RETRY_AFTER_S}");
    let _ = http::write_response(
        &mut stream,
        err.http_status(),
        "application/json",
        &[&retry],
        http::error_body(&err).as_bytes(),
    );
    shared.metrics.count_status(err.http_status());
}

/// Worker loop: pop, handle, repeat; exit once shutdown is flagged and
/// the queue is empty (the drain guarantee).
fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap();
                q = guard;
            }
        };
        let Some(mut stream) = stream else { return };
        shared.metrics.queue_delta(-1);
        handle_connection(&mut stream, shared);
    }
}

/// Parses, routes and answers one connection, timing each phase.
fn handle_connection(stream: &mut TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let parse_start = Instant::now();
    let request = http::read_request(stream);
    shared
        .metrics
        .parse_latency()
        .observe_us(parse_start.elapsed().as_micros() as u64);

    let (status, content_type, body) = match request {
        Err(err) => (
            err.http_status(),
            "application/json",
            http::error_body(&err),
        ),
        Ok(req) => route(&req, shared),
    };

    let write_start = Instant::now();
    let _ = http::write_response(stream, status, content_type, &[], body.as_bytes());
    shared
        .metrics
        .write_latency()
        .observe_us(write_start.elapsed().as_micros() as u64);
    shared.metrics.count_status(status);
    if status != 200 {
        lingering_close(stream);
    }
}

/// Bounded lingering close for rejected requests. An error reply is
/// written before the request was fully consumed (oversized head,
/// truncated body); closing with unread bytes in the socket makes the
/// kernel send `RST`, which can clobber the typed error body before
/// the client reads it. Half-close the write side, then discard up to
/// 64 KiB of late input under a short timeout so the reply is reliably
/// delivered, and only then drop the connection.
fn lingering_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    for _ in 0..16 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Dispatches one parsed request to its endpoint.
fn route(req: &Request, shared: &Shared) -> (u16, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let mut o = json::Obj::new();
            o.str("status", "ok");
            (200, "application/json", o.finish())
        }
        ("GET", "/metrics") => (
            200,
            "text/plain; version=0.0.4",
            shared.metrics.render_prometheus(),
        ),
        ("POST", "/run") => match run_campaign(&req.body, shared) {
            Ok(body) => (200, "application/json", body),
            Err(err) => (
                err.http_status(),
                "application/json",
                http::error_body(&err),
            ),
        },
        (_, "/healthz" | "/metrics" | "/run") => {
            let err =
                CedarError::SpecParse(format!("method {} not allowed on {}", req.method, req.path));
            (405, "application/json", http::error_body(&err))
        }
        _ => {
            let err = CedarError::SpecParse(format!("no such endpoint `{}`", req.path));
            (404, "application/json", http::error_body(&err))
        }
    }
}

/// Executes one `POST /run` body: spec → typed options → the same
/// `SuiteResult` path the library exposes, with the run cache in
/// read-write mode so repeated specs replay from disk.
fn run_campaign(body: &[u8], shared: &Shared) -> Result<String, CedarError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| CedarError::SpecParse("body is not UTF-8".to_string()))?;
    let spec = CampaignSpec::from_json(text)?;
    let mut opts = spec.run_options().with_cache(CacheMode::ReadWrite);
    if let Some(dir) = &shared.opts.cache_dir {
        opts = opts.with_output_dir(dir);
    }

    let execute_start = Instant::now();
    let outcome = std::panic::catch_unwind(|| {
        // The workload is pre-shrunk; the suite runner applies only the
        // scheduler and fault plan, mirroring CampaignSpec::sim_config.
        SuiteResult::run_sequential(&[spec.workload()], &[spec.configuration], &opts)
    });
    shared
        .metrics
        .execute_latency()
        .observe_us(execute_start.elapsed().as_micros() as u64);
    let suite = match outcome {
        Ok(r) => r?,
        Err(_) => {
            return Err(CedarError::Internal(
                "campaign panicked; see server log".to_string(),
            ))
        }
    };
    if let Some(cache) = &suite.telemetry.cache {
        shared.metrics.count_cache(cache);
    }
    Ok(reply::render(&spec, &suite.apps[0].runs[0]))
}
