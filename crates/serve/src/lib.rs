//! # cedar-serve — the campaign service
//!
//! Exposes the workspace's measurement campaigns over HTTP/1.1 on a
//! plain [`std::net::TcpListener`] — no external dependencies, like the
//! rest of the workspace. A request POSTs a JSON campaign spec
//! ([`CampaignSpec`]) naming an application, a processor configuration,
//! a scheduler, a fault-plan intensity and a telemetry level; the
//! service parses it into the same typed [`cedar_core::RunOptions`] /
//! `SimConfig` surface the library and bench harness use, executes it
//! through [`cedar_core::SuiteResult`] with the content-addressed run
//! cache in read-write mode, and answers with the run's content address,
//! fingerprint and the paper-style overhead decomposition as ordered
//! JSON ([`reply`]).
//!
//! The run cache is opened once, process-wide, and shared by every
//! worker; an in-memory hot tier of decoded runs
//! ([`ServeOptions::hot_capacity`]) sits over the disk store, so a warm
//! spec costs a lock and a clone instead of a read + checksum + decode.
//! Connections are persistent (HTTP/1.1 keep-alive, bounded by
//! [`ServeOptions::keepalive_requests`] and
//! [`ServeOptions::keepalive_idle`]), so a warm client also skips the
//! per-request TCP handshake. Because simulation is deterministic and
//! replies never embed wall-clock values, a warm (cache-hit) reply is
//! byte-identical to the cold reply for the same spec — from either
//! tier; hit/miss evidence is visible on `GET /metrics` (Prometheus
//! text, [`metrics`]) instead.
//!
//! Load shedding is explicit: the accept loop feeds a bounded
//! connection queue ([`ServeOptions::queue`]) and overflow is answered
//! immediately with `503 Service Unavailable` + `Retry-After` — the
//! service never blocks the accept loop on simulation and never panics
//! on malformed input (those get a `400` with a typed
//! [`cedar_core::CedarError`] body). `SIGINT`/`SIGTERM` drain in-flight
//! runs before the process exits ([`signal`]).
//!
//! ## Quickstart
//!
//! ```no_run
//! use cedar_serve::{ServeOptions, Server};
//!
//! let opts = ServeOptions::default().with_addr("127.0.0.1:0");
//! let server = Server::start(&opts).expect("bind");
//! println!("listening on {}", server.local_addr());
//! server.join(); // runs until shutdown() (or a signal in the bin)
//! ```

pub mod http;
pub mod metrics;
pub mod options;
pub mod reply;
pub mod server;
pub mod signal;
pub mod spec;

pub use metrics::Metrics;
pub use options::ServeOptions;
pub use server::Server;
pub use spec::CampaignSpec;
