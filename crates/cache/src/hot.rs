//! The in-memory hot tier: decoded runs, sharded locks, bounded size.
//!
//! The disk store makes a warm lookup an open + read + checksum +
//! decode; for a serving process answering the same handful of specs
//! thousands of times, that whole pipeline is overhead. The hot tier
//! keeps already-*decoded* [`CachedRun`] values in memory, keyed by
//! [`RunKey`], so a repeated lookup is a shard lock plus a clone.
//!
//! Design constraints, in order:
//!
//! * **Invisible to measurements.** A hot hit returns a clone of the
//!   exact value the disk tier would have decoded, so replies stay
//!   byte-identical cold vs warm vs hot. The tier surfaces only in
//!   traffic counters ([`HotStats`], rolled into
//!   `CacheStats`/`SuiteTelemetry`/`/metrics`).
//! * **Bounded.** Fixed total capacity, split evenly across shards;
//!   inserting into a full shard evicts that shard's least-recently
//!   used entry (tracked by a per-shard logical clock — "LRU-ish"
//!   because recency is per shard, not global).
//! * **Shared.** All methods take `&self`; a shard is one small mutex
//!   held only for a map probe, so worker threads serving different
//!   keys rarely contend. Poisoned shards are recovered rather than
//!   propagated — every critical section leaves the map valid.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::key::RunKey;
use crate::record::CachedRun;

/// How many independently locked shards the tier uses. A power of two
/// so the shard index is a mask of the key's low bits.
const SHARDS: usize = 8;

/// Snapshot of one hot tier's traffic and occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that fell through to the disk tier.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Total capacity across shards.
    pub capacity: u64,
}

/// One shard: the map plus its logical recency clock.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<RunKey, (u64, CachedRun)>,
    tick: u64,
}

/// The sharded, fixed-capacity in-memory tier.
#[derive(Debug)]
pub struct HotTier {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl HotTier {
    /// A tier holding at most `capacity` decoded runs (clamped to ≥ 1),
    /// split evenly across the shards.
    pub fn new(capacity: usize) -> HotTier {
        let capacity = capacity.max(1);
        HotTier {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard: capacity.div_ceil(SHARDS),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &RunKey) -> &Mutex<Shard> {
        // The key is already a uniform 128-bit hash; its low bits pick
        // the shard directly.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::hash::Hash::hash(key, &mut h);
        &self.shards[(std::hash::Hasher::finish(&h) as usize) & (SHARDS - 1)]
    }

    /// Looks `key` up, refreshing its recency on a hit. Counted.
    pub fn get(&self, key: &RunKey) -> Option<CachedRun> {
        let mut shard = lock(self.shard(key));
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some((last_used, run)) => {
                *last_used = tick;
                let run = run.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(run)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least-recently
    /// used entry if the shard is at capacity.
    pub fn insert(&self, key: &RunKey, run: &CachedRun) {
        let mut shard = lock(self.shard(key));
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(slot) = shard.map.get_mut(key) {
            *slot = (tick, run.clone());
            return;
        }
        let mut evicted = false;
        if shard.map.len() >= self.per_shard {
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&victim);
                evicted = true;
            }
        }
        shard.map.insert(*key, (tick, run.clone()));
        drop(shard);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).map.len()).sum()
    }

    /// Whether the tier holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across shards (≥ the requested capacity, because
    /// it is rounded up to a multiple of the shard count).
    pub fn capacity(&self) -> usize {
        self.per_shard * SHARDS
    }

    /// The capacity the tier was requested with.
    pub fn requested_capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the tier's counters and occupancy.
    pub fn stats(&self) -> HotStats {
        HotStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
            capacity: self.capacity() as u64,
        }
    }
}

/// Locks a shard, recovering from poisoning: every critical section
/// leaves the map structurally valid, so a panic elsewhere (the serve
/// worker catches campaign panics) must not wedge the tier.
fn lock(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    shard.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_hw::Configuration;
    use cedar_obs::RunStats;
    use cedar_sim::stats::LatencyHistogram;
    use cedar_sim::Cycles;
    use cedar_xylem::OsAccounting;

    fn run(tag: u64) -> CachedRun {
        CachedRun {
            app: format!("T{tag}"),
            configuration: Configuration::P1,
            completion_time: Cycles(tag),
            breakdowns: vec![],
            utilization: vec![],
            os: OsAccounting::new(1),
            concurrency: vec![1.0],
            gmem: cedar_hw::gmem::GmemStats {
                packets: 0,
                cluster_path_queued: Cycles(0),
                fwd_queued: Cycles(0),
                rev_queued: Cycles(0),
                module_queued: Cycles(0),
                module_requests: vec![],
                module_sync_requests: vec![],
                latency: LatencyHistogram::new(2),
                min_round_trip: Cycles(0),
            },
            background_stolen: Cycles(0),
            bodies: 1,
            faults: (0, 0),
            events: tag,
            stats: RunStats::default(),
        }
    }

    #[test]
    fn hit_returns_the_inserted_value() {
        let tier = HotTier::new(16);
        let key = RunKey::new("case=hot-1");
        assert!(tier.get(&key).is_none());
        tier.insert(&key, &run(7));
        let back = tier.get(&key).expect("hit after insert");
        assert_eq!(back.encode(), run(7).encode());
        let s = tier.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let tier = HotTier::new(16);
        let key = RunKey::new("case=hot-2");
        tier.insert(&key, &run(1));
        tier.insert(&key, &run(2));
        assert_eq!(tier.len(), 1);
        assert_eq!(tier.get(&key).unwrap().completion_time, Cycles(2));
        assert_eq!(tier.stats().evictions, 0);
    }

    #[test]
    fn full_shards_evict_their_least_recently_used_entry() {
        // Capacity 8 over 8 shards = one slot per shard: any two keys
        // landing in one shard must evict, and the evicted one is the
        // older (never-reused) key.
        let tier = HotTier::new(8);
        let keys: Vec<RunKey> = (0..64).map(|i| RunKey::new(&format!("k{i}"))).collect();
        for (i, k) in keys.iter().enumerate() {
            tier.insert(k, &run(i as u64));
        }
        let s = tier.stats();
        assert!(s.evictions > 0, "64 keys into 8 slots must evict");
        assert!(
            tier.len() <= tier.capacity(),
            "occupancy {} exceeds capacity {}",
            tier.len(),
            tier.capacity()
        );
        // The most recently inserted key is always resident.
        assert!(tier.get(keys.last().unwrap()).is_some());
    }

    #[test]
    fn recency_protects_reused_entries() {
        // Two keys in the same shard, one slot: touching the first
        // before inserting the second... we cannot force same-shard
        // placement deterministically from outside, so instead verify
        // the global property over a churn workload: an entry re-read
        // every insert survives far longer than cold ones.
        let tier = HotTier::new(8);
        let hot_key = RunKey::new("pinned");
        tier.insert(&hot_key, &run(99));
        for i in 0..200 {
            tier.insert(&RunKey::new(&format!("churn{i}")), &run(i));
            // Refresh the pinned entry's recency every round.
            if tier.get(&hot_key).is_none() {
                // It shared a single-slot shard with the fresh insert;
                // reinstate and continue — the property under test is
                // that refreshing recency keeps it alive *between*
                // inserts, which the final assertion covers.
                tier.insert(&hot_key, &run(99));
            }
        }
        assert!(
            tier.get(&hot_key).is_some(),
            "a constantly re-read entry must stay resident"
        );
    }

    #[test]
    fn capacity_is_bounded_and_reported() {
        let tier = HotTier::new(0); // clamps to 1
        assert_eq!(tier.requested_capacity(), 1);
        assert!(tier.capacity() >= 1);
        let s = tier.stats();
        assert_eq!(s.capacity, tier.capacity() as u64);
        assert!(tier.is_empty());
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        let tier = std::sync::Arc::new(HotTier::new(64));
        let keys: Vec<RunKey> = (0..16).map(|i| RunKey::new(&format!("c{i}"))).collect();
        for k in &keys {
            tier.insert(k, &run(1));
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tier = std::sync::Arc::clone(&tier);
                let keys = keys.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let k = &keys[(t * 31 + i) % keys.len()];
                        assert!(tier.get(k).is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tier.stats().hits, 400);
    }
}
