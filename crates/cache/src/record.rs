//! The cached mirror of one run's measurements, and its stable
//! line-record serialization.
//!
//! `cedar_core::RunResult` is built entirely from leaf-crate types
//! (`cedar-sim`, `cedar-hw`, `cedar-trace`, `cedar-xylem`,
//! `cedar-obs`), so this crate can mirror it without depending on the
//! core crate: [`CachedRun`] carries the same fields, and `cedar-core`
//! converts between the two at the cache boundary. The cedarhpm trace
//! is deliberately absent — trace-keeping runs bypass the cache (they
//! are debugging runs, and the trace dwarfs the measurements).
//!
//! ## Format
//!
//! One field per line, `name value…`, fixed order, `\n` separators:
//! integers in decimal, floats as 16-hex-digit IEEE-754 bit patterns
//! (bit-exact round trip), counter names as their literal text (they
//! never contain whitespace). Arrays carry an explicit leading count so
//! truncation is always detectable. The encoding is deterministic —
//! identical measurements always produce identical bytes — which is
//! what lets the store checksum entries and the CI soundness gate diff
//! warm-vs-cold artifacts byte for byte.

use std::fmt::Write as _;

use cedar_hw::gmem::GmemStats;
use cedar_hw::{ClusterId, Configuration};
use cedar_obs::{Counters, RunStats};
use cedar_sim::stats::{DurationAccum, LatencyHistogram};
use cedar_sim::Cycles;
use cedar_trace::qmon::ClusterUtilization;
use cedar_trace::{TaskBreakdown, UserBucket};
use cedar_xylem::{OsAccounting, OsActivity};

/// A completed run's measurements, ready to serialize or just
/// deserialized. Field-for-field mirror of `cedar_core::RunResult`
/// minus the optional cedarhpm trace.
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// Application name.
    pub app: String,
    /// Processor configuration.
    pub configuration: Configuration,
    /// Completion time.
    pub completion_time: Cycles,
    /// Per-task user-time breakdowns.
    pub breakdowns: Vec<TaskBreakdown>,
    /// Per-cluster Q-facility utilization.
    pub utilization: Vec<ClusterUtilization>,
    /// Per-activity OS accounting.
    pub os: OsAccounting,
    /// statfx average concurrency per cluster.
    pub concurrency: Vec<f64>,
    /// Global-memory system statistics.
    pub gmem: GmemStats,
    /// Cluster time stolen by a competing job.
    pub background_stolen: Cycles,
    /// Loop bodies executed.
    pub bodies: u64,
    /// (sequential, concurrent) page-fault counts.
    pub faults: (u64, u64),
    /// Events processed by the simulator.
    pub events: u64,
    /// The run's self-telemetry (phase wall-clock + counter rollup).
    pub stats: RunStats,
}

/// Why a payload failed to decode. The store maps every variant to a
/// cache miss; the variant only exists so tests can assert *which*
/// defense caught a corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A required line was absent or named the wrong field.
    MissingField(&'static str),
    /// A value failed to parse as its declared type.
    BadValue(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::MissingField(name) => write!(f, "missing field `{name}`"),
            DecodeError::BadValue(name) => write!(f, "unparseable value for `{name}`"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn config_name(c: Configuration) -> &'static str {
    match c {
        Configuration::P1 => "P1",
        Configuration::P4 => "P4",
        Configuration::P8 => "P8",
        Configuration::P16 => "P16",
        Configuration::P32 => "P32",
    }
}

fn config_from_name(s: &str) -> Option<Configuration> {
    Some(match s {
        "P1" => Configuration::P1,
        "P4" => Configuration::P4,
        "P8" => Configuration::P8,
        "P16" => Configuration::P16,
        "P32" => Configuration::P32,
        _ => return None,
    })
}

/// Field-at-a-time reader over the line records.
struct Reader<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> Reader<'a> {
    fn new(payload: &'a str) -> Self {
        Reader {
            lines: payload.lines(),
        }
    }

    /// The rest-of-line value of the next line, which must be field
    /// `name`.
    fn field(&mut self, name: &'static str) -> Result<&'a str, DecodeError> {
        let line = self.lines.next().ok_or(DecodeError::MissingField(name))?;
        let rest = line
            .strip_prefix(name)
            .ok_or(DecodeError::MissingField(name))?;
        rest.strip_prefix(' ').ok_or(DecodeError::BadValue(name))
    }

    fn u64(&mut self, name: &'static str) -> Result<u64, DecodeError> {
        self.field(name)?
            .parse()
            .map_err(|_| DecodeError::BadValue(name))
    }

    /// A whitespace-separated list of u64s with a leading count.
    fn u64_list(&mut self, name: &'static str) -> Result<Vec<u64>, DecodeError> {
        let raw = self.field(name)?;
        let mut it = raw.split_ascii_whitespace();
        let n: usize = it
            .next()
            .ok_or(DecodeError::BadValue(name))?
            .parse()
            .map_err(|_| DecodeError::BadValue(name))?;
        let vals: Vec<u64> = it
            .map(|v| v.parse().map_err(|_| DecodeError::BadValue(name)))
            .collect::<Result<_, _>>()?;
        if vals.len() != n {
            return Err(DecodeError::BadValue(name));
        }
        Ok(vals)
    }
}

fn push_u64_list(out: &mut String, name: &str, vals: impl ExactSizeIterator<Item = u64>) {
    let _ = write!(out, "{name} {}", vals.len());
    for v in vals {
        let _ = write!(out, " {v}");
    }
    out.push('\n');
}

impl CachedRun {
    /// Serializes to the stable line-record form.
    pub fn encode(&self) -> String {
        let mut s = String::with_capacity(4096);
        let _ = writeln!(s, "app {}", self.app);
        let _ = writeln!(s, "configuration {}", config_name(self.configuration));
        let _ = writeln!(s, "completion_time {}", self.completion_time.0);
        let _ = writeln!(s, "background_stolen {}", self.background_stolen.0);
        let _ = writeln!(s, "bodies {}", self.bodies);
        let _ = writeln!(s, "faults {} {}", self.faults.0, self.faults.1);
        let _ = writeln!(s, "events {}", self.events);
        let _ = writeln!(s, "breakdowns {}", self.breakdowns.len());
        for b in &self.breakdowns {
            push_u64_list(
                &mut s,
                "breakdown",
                UserBucket::ALL.iter().map(|&u| b.get(u).0),
            );
        }
        let _ = writeln!(s, "utilization {}", self.utilization.len());
        for u in &self.utilization {
            let _ = writeln!(s, "util {} {} {}", u.system.0, u.interrupt.0, u.spin.0);
        }
        let _ = writeln!(s, "os_clusters {}", self.os.n_clusters());
        for k in 0..self.os.n_clusters() {
            let cluster = self.os.cluster(ClusterId(k));
            push_u64_list(
                &mut s,
                "os",
                OsActivity::ALL
                    .iter()
                    .flat_map(|&a| {
                        let acc = cluster.get(a);
                        [acc.total().0, acc.samples(), acc.max().0]
                    })
                    .collect::<Vec<_>>()
                    .into_iter(),
            );
        }
        push_u64_list(
            &mut s,
            "concurrency",
            self.concurrency.iter().map(|v| v.to_bits()),
        );
        let g = &self.gmem;
        let _ = writeln!(s, "gmem.packets {}", g.packets);
        let _ = writeln!(s, "gmem.cluster_path_queued {}", g.cluster_path_queued.0);
        let _ = writeln!(s, "gmem.fwd_queued {}", g.fwd_queued.0);
        let _ = writeln!(s, "gmem.rev_queued {}", g.rev_queued.0);
        let _ = writeln!(s, "gmem.module_queued {}", g.module_queued.0);
        push_u64_list(
            &mut s,
            "gmem.module_requests",
            g.module_requests.iter().copied(),
        );
        push_u64_list(
            &mut s,
            "gmem.module_sync_requests",
            g.module_sync_requests.iter().copied(),
        );
        push_u64_list(
            &mut s,
            "gmem.latency",
            (0..g.latency.num_buckets()).map(|i| g.latency.bucket(i)),
        );
        let _ = writeln!(s, "gmem.latency.overflow {}", g.latency.overflow());
        let _ = writeln!(s, "gmem.min_round_trip {}", g.min_round_trip.0);
        let _ = writeln!(s, "stats.setup_ns {}", self.stats.setup_ns);
        let _ = writeln!(s, "stats.run_ns {}", self.stats.run_ns);
        let _ = writeln!(s, "stats.breakdown_ns {}", self.stats.breakdown_ns);
        let _ = writeln!(s, "counters {}", self.stats.counters.len());
        for (name, value) in self.stats.counters.iter() {
            let _ = writeln!(s, "counter {name} {value}");
        }
        s
    }

    /// Parses a payload produced by [`encode`](Self::encode). Every
    /// structural or numeric anomaly is an error, never a panic — the
    /// store turns errors into cache misses.
    pub fn decode(payload: &str) -> Result<CachedRun, DecodeError> {
        // Every record line is newline-terminated; a payload cut mid-line
        // (even by one byte) must not decode.
        if !payload.ends_with('\n') {
            return Err(DecodeError::MissingField("terminator"));
        }
        let mut r = Reader::new(payload);
        let app = r.field("app")?.to_string();
        let configuration = config_from_name(r.field("configuration")?)
            .ok_or(DecodeError::BadValue("configuration"))?;
        let completion_time = Cycles(r.u64("completion_time")?);
        let background_stolen = Cycles(r.u64("background_stolen")?);
        let bodies = r.u64("bodies")?;
        let faults_raw = r.u64_pair("faults")?;
        let events = r.u64("events")?;

        let n_breakdowns = r.u64("breakdowns")? as usize;
        let mut breakdowns = Vec::with_capacity(n_breakdowns);
        for _ in 0..n_breakdowns {
            let vals = r.u64_list("breakdown")?;
            if vals.len() != UserBucket::ALL.len() {
                return Err(DecodeError::BadValue("breakdown"));
            }
            let mut b = TaskBreakdown::new();
            for (&bucket, &v) in UserBucket::ALL.iter().zip(&vals) {
                b.charge(bucket, Cycles(v));
            }
            breakdowns.push(b);
        }

        let n_util = r.u64("utilization")? as usize;
        let mut utilization = Vec::with_capacity(n_util);
        for _ in 0..n_util {
            let raw = r.field("util")?;
            let vals: Vec<u64> = raw
                .split_ascii_whitespace()
                .map(|v| v.parse().map_err(|_| DecodeError::BadValue("util")))
                .collect::<Result<_, _>>()?;
            if vals.len() != 3 {
                return Err(DecodeError::BadValue("util"));
            }
            utilization.push(ClusterUtilization {
                system: Cycles(vals[0]),
                interrupt: Cycles(vals[1]),
                spin: Cycles(vals[2]),
            });
        }

        let n_clusters = r.u64("os_clusters")?;
        if n_clusters > u8::MAX as u64 {
            return Err(DecodeError::BadValue("os_clusters"));
        }
        let mut os = OsAccounting::new(n_clusters as u8);
        for k in 0..n_clusters as u8 {
            let vals = r.u64_list("os")?;
            if vals.len() != OsActivity::ALL.len() * 3 {
                return Err(DecodeError::BadValue("os"));
            }
            for (i, &a) in OsActivity::ALL.iter().enumerate() {
                let accum = DurationAccum::from_parts(
                    Cycles(vals[3 * i]),
                    vals[3 * i + 1],
                    Cycles(vals[3 * i + 2]),
                );
                os.restore(ClusterId(k), a, accum);
            }
        }

        let concurrency = r
            .u64_list("concurrency")?
            .into_iter()
            .map(f64::from_bits)
            .collect();

        let packets = r.u64("gmem.packets")?;
        let cluster_path_queued = Cycles(r.u64("gmem.cluster_path_queued")?);
        let fwd_queued = Cycles(r.u64("gmem.fwd_queued")?);
        let rev_queued = Cycles(r.u64("gmem.rev_queued")?);
        let module_queued = Cycles(r.u64("gmem.module_queued")?);
        let module_requests = r.u64_list("gmem.module_requests")?;
        let module_sync_requests = r.u64_list("gmem.module_sync_requests")?;
        let latency_buckets = r.u64_list("gmem.latency")?;
        let latency_overflow = r.u64("gmem.latency.overflow")?;
        let min_round_trip = Cycles(r.u64("gmem.min_round_trip")?);
        let gmem = GmemStats {
            packets,
            cluster_path_queued,
            fwd_queued,
            rev_queued,
            module_queued,
            module_requests,
            module_sync_requests,
            latency: LatencyHistogram::from_parts(latency_buckets, latency_overflow),
            min_round_trip,
        };

        let setup_ns = r.u64("stats.setup_ns")?;
        let run_ns = r.u64("stats.run_ns")?;
        let breakdown_ns = r.u64("stats.breakdown_ns")?;
        let n_counters = r.u64("counters")? as usize;
        let mut counters = Counters::new();
        for _ in 0..n_counters {
            let raw = r.field("counter")?;
            let (name, value) = raw
                .rsplit_once(' ')
                .ok_or(DecodeError::BadValue("counter"))?;
            let value: u64 = value
                .parse()
                .map_err(|_| DecodeError::BadValue("counter"))?;
            counters.add(crate::intern(name), value);
        }
        if counters.len() != n_counters {
            return Err(DecodeError::BadValue("counters"));
        }
        // A well-formed payload is consumed exactly; leftovers mean a
        // count lied somewhere above.
        if r.lines.next().is_some() {
            return Err(DecodeError::BadValue("trailing data"));
        }

        Ok(CachedRun {
            app,
            configuration,
            completion_time,
            breakdowns,
            utilization,
            os,
            concurrency,
            gmem,
            background_stolen,
            bodies,
            faults: faults_raw,
            events,
            stats: RunStats {
                setup_ns,
                run_ns,
                breakdown_ns,
                counters,
            },
        })
    }
}

impl Reader<'_> {
    fn u64_pair(&mut self, name: &'static str) -> Result<(u64, u64), DecodeError> {
        let raw = self.field(name)?;
        let (a, b) = raw.split_once(' ').ok_or(DecodeError::BadValue(name))?;
        Ok((
            a.parse().map_err(|_| DecodeError::BadValue(name))?,
            b.parse().map_err(|_| DecodeError::BadValue(name))?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built record exercising every field shape.
    fn sample() -> CachedRun {
        let mut b = TaskBreakdown::new();
        b.charge(UserBucket::IterExec, Cycles(700));
        b.charge(UserBucket::BarrierWait, Cycles(200));
        let mut os = OsAccounting::new(2);
        os.charge(ClusterId(0), OsActivity::Cpi, Cycles(100));
        os.charge(ClusterId(0), OsActivity::Cpi, Cycles(40));
        os.charge(ClusterId(1), OsActivity::KernelSpin, Cycles(7));
        let mut latency = LatencyHistogram::new(4);
        latency.record(Cycles(3));
        latency.record(Cycles(1_000_000));
        let mut counters = Counters::new();
        counters.add("events.total", 42);
        counters.record_max("queue.pending.peak", 9);
        CachedRun {
            app: "FLO52".to_string(),
            configuration: Configuration::P16,
            completion_time: Cycles(123_456),
            breakdowns: vec![b, TaskBreakdown::new()],
            utilization: vec![
                ClusterUtilization {
                    system: Cycles(10),
                    interrupt: Cycles(20),
                    spin: Cycles(30),
                },
                ClusterUtilization::default(),
            ],
            os,
            concurrency: vec![3.25, 0.1],
            gmem: GmemStats {
                packets: 5,
                cluster_path_queued: Cycles(1),
                fwd_queued: Cycles(2),
                rev_queued: Cycles(3),
                module_queued: Cycles(4),
                module_requests: vec![1, 2, 3],
                module_sync_requests: vec![0, 0, 9],
                latency,
                min_round_trip: Cycles(44),
            },
            background_stolen: Cycles(0),
            bodies: 64,
            faults: (3, 8),
            events: 9_000,
            stats: RunStats {
                setup_ns: 111,
                run_ns: 222,
                breakdown_ns: 333,
                counters,
            },
        }
    }

    fn assert_same(a: &CachedRun, b: &CachedRun) {
        // Byte-equality of the canonical encoding is the strongest
        // equality the mirror types support (several lack PartialEq).
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn round_trip_is_exact() {
        let run = sample();
        let decoded = CachedRun::decode(&run.encode()).expect("decode");
        assert_same(&run, &decoded);
        assert_eq!(decoded.concurrency, vec![3.25, 0.1], "floats are bit-exact");
        assert_eq!(decoded.os.total(OsActivity::Cpi), Cycles(140));
        assert_eq!(
            decoded
                .os
                .cluster(ClusterId(0))
                .get(OsActivity::Cpi)
                .samples(),
            2,
            "sample counts survive the round trip"
        );
        assert_eq!(decoded.gmem.latency.overflow(), 1);
        assert_eq!(decoded.stats.counters.get("queue.pending.peak"), 9);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let full = sample().encode();
        for cut in [0, 1, full.len() / 3, full.len() / 2, full.len() - 1] {
            assert!(
                CachedRun::decode(&full[..cut]).is_err(),
                "cut at {cut} must fail to decode"
            );
        }
    }

    #[test]
    fn wrong_counts_are_errors() {
        let full = sample().encode();
        let lied = full.replace("breakdowns 2", "breakdowns 3");
        assert!(CachedRun::decode(&lied).is_err());
        let lied = full.replace("counters 2", "counters 1");
        // One counter line too many: the reader sees a stray line where
        // the next field should be; also an error.
        assert!(CachedRun::decode(&lied).is_err());
    }

    #[test]
    fn garbage_values_are_errors() {
        let full = sample().encode();
        let bad = full.replace("completion_time 123456", "completion_time zebra");
        assert_eq!(
            CachedRun::decode(&bad).unwrap_err(),
            DecodeError::BadValue("completion_time")
        );
        let bad = full.replace("configuration P16", "configuration P64");
        assert_eq!(
            CachedRun::decode(&bad).unwrap_err(),
            DecodeError::BadValue("configuration")
        );
    }
}
