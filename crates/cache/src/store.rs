//! The disk-backed store: `results/cache/` layout, atomic writes,
//! defensive reads.
//!
//! Entry layout on disk (`<root>/<shard>/<key>.run`):
//!
//! ```text
//! cedar-run-cache format=1 model=1
//! key 0123456789abcdef0123456789abcdef
//! payload_bytes 1234
//! payload_fnv1a 0123456789abcdef
//! ---
//! <payload: CachedRun line records>
//! ```
//!
//! Every read validates the magic, format version, model version, key
//! echo, payload length and checksum before the payload is even parsed;
//! any mismatch — a truncated write, a flipped bit, an entry from an
//! older format or simulator — is a **miss**, counted but otherwise
//! silent. Writes go to a `.tmp` sibling and are renamed into place, so
//! readers never observe a half-written entry even under a concurrent
//! campaign.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use cedar_obs::json::fnv1a;
use cedar_obs::{CacheMode, CedarError};

use crate::hot::HotTier;
use crate::key::RunKey;
use crate::record::CachedRun;
use crate::{FORMAT_VERSION, MODEL_VERSION};

/// Which tier answered one lookup (or neither).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Served from the in-memory hot tier: a lock and a clone.
    HotHit,
    /// Served from disk: read + checksum + decode (and promoted into
    /// the hot tier when one is attached).
    DiskHit,
    /// Absent (or corrupt/stale) in every tier; the caller simulates.
    Miss,
}

/// Snapshot of one cache session's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// The mode the session ran under.
    pub mode: CacheMode,
    /// Lookups answered from the cache — either tier.
    pub hits: u64,
    /// Lookups that fell through to simulation (including corrupt or
    /// stale entries, and every run under `Refresh`).
    pub misses: u64,
    /// Entries written (or overwritten).
    pub writes: u64,
    /// Experiments that skipped the cache entirely (trace-keeping
    /// runs).
    pub bypasses: u64,
    /// The subset of `hits` served from the in-memory hot tier
    /// (always 0 when no tier is attached).
    pub hot_hits: u64,
    /// Lookups the hot tier could not answer (disk hits and full
    /// misses both probe it first; 0 when no tier is attached).
    pub hot_misses: u64,
    /// Hot-tier entries displaced by capacity pressure.
    pub hot_evictions: u64,
}

impl CacheStats {
    /// Total lookups that went through cache policy.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction of the looked-up experiments (1.0 when nothing was
    /// looked up).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Hot-tier hit fraction of the looked-up experiments (0.0 when
    /// nothing was looked up).
    pub fn hot_hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hot_hits as f64 / self.lookups() as f64
        }
    }

    /// The traffic this snapshot accumulated since `earlier` (a prior
    /// snapshot of the *same* session). Saturating, so a mismatched
    /// pair degrades to zeros instead of wrapping.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            mode: self.mode,
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            writes: self.writes.saturating_sub(earlier.writes),
            bypasses: self.bypasses.saturating_sub(earlier.bypasses),
            hot_hits: self.hot_hits.saturating_sub(earlier.hot_hits),
            hot_misses: self.hot_misses.saturating_sub(earlier.hot_misses),
            hot_evictions: self.hot_evictions.saturating_sub(earlier.hot_evictions),
        }
    }
}

/// The content-addressed run store. Cheap to open (no I/O until the
/// first lookup), safe to share across the worker pool (`&self`
/// methods, atomic counters, atomic-rename writes).
#[derive(Debug)]
pub struct RunCache {
    root: PathBuf,
    mode: CacheMode,
    hot: Option<HotTier>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    bypasses: AtomicU64,
}

impl RunCache {
    /// Opens the store rooted at `root` for a session in `mode`.
    ///
    /// Opening stays lazy — shard directories are created on first
    /// write, so a read-only session over a missing directory just
    /// misses — but a root that can *never* work is rejected up front
    /// with [`CedarError::CacheIo`]: a path that exists and is not a
    /// directory would silently turn every operation of a writing
    /// session into a no-op, which is exactly the class of quiet
    /// misconfiguration the typed error API exists to surface.
    pub fn open(root: impl Into<PathBuf>, mode: CacheMode) -> Result<RunCache, CedarError> {
        let root = root.into();
        if root.exists() && !root.is_dir() {
            return Err(CedarError::CacheIo(format!(
                "cache root {} exists and is not a directory",
                root.display()
            )));
        }
        Ok(RunCache {
            root,
            mode,
            hot: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        })
    }

    /// Layers an in-memory hot tier of `capacity` decoded runs over the
    /// disk store (builder style; 0 removes the tier). Hot hits are a
    /// shard lock plus a clone instead of a read + checksum + decode,
    /// and stay byte-identical to disk hits by construction — the tier
    /// is populated only with values that came through [`RunCache::get`]
    /// or [`RunCache::put`].
    pub fn with_hot_capacity(mut self, capacity: usize) -> RunCache {
        self.hot = (capacity > 0).then(|| HotTier::new(capacity));
        self
    }

    /// Whether a hot tier is attached.
    pub fn has_hot_tier(&self) -> bool {
        self.hot.is_some()
    }

    /// The hot tier's occupancy and capacity, `(entries, capacity)`,
    /// or `None` when no tier is attached.
    pub fn hot_occupancy(&self) -> Option<(usize, usize)> {
        self.hot.as_ref().map(|h| (h.len(), h.capacity()))
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The session's cache mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// The on-disk path of `key`'s entry.
    pub fn entry_path(&self, key: &RunKey) -> PathBuf {
        self.root
            .join(key.shard())
            .join(format!("{}.run", key.hex()))
    }

    /// Looks up `key`, validating the entry end to end. Any defect —
    /// absent file, bad header, version skew, length or checksum
    /// mismatch, undecodable payload — is counted and returned as a
    /// miss; this method never panics and never propagates I/O errors.
    pub fn get(&self, key: &RunKey) -> Option<CachedRun> {
        self.get_traced(key).0
    }

    /// [`RunCache::get`], also reporting which tier answered. The hot
    /// tier (when attached) is probed first; a disk hit is promoted
    /// into it so the next lookup of the same key stays in memory.
    pub fn get_traced(&self, key: &RunKey) -> (Option<CachedRun>, Lookup) {
        if let Some(hot) = &self.hot {
            if let Some(run) = hot.get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (Some(run), Lookup::HotHit);
            }
        }
        match self.read_validated(key) {
            Some(run) => {
                if let Some(hot) = &self.hot {
                    hot.insert(key, &run);
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                (Some(run), Lookup::DiskHit)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                (None, Lookup::Miss)
            }
        }
    }

    fn read_validated(&self, key: &RunKey) -> Option<CachedRun> {
        let bytes = std::fs::read(self.entry_path(key)).ok()?;
        let text = String::from_utf8(bytes).ok()?;
        let (header, payload) = text.split_once("---\n")?;
        let mut lines = header.lines();
        let magic = lines.next()?;
        if magic != format!("cedar-run-cache format={FORMAT_VERSION} model={MODEL_VERSION}") {
            return None;
        }
        if lines.next()? != format!("key {}", key.hex()) {
            return None;
        }
        let declared_len: usize = lines.next()?.strip_prefix("payload_bytes ")?.parse().ok()?;
        let declared_sum = lines.next()?.strip_prefix("payload_fnv1a ")?;
        if payload.len() != declared_len {
            return None;
        }
        if format!("{:016x}", fnv1a(payload.as_bytes())) != declared_sum {
            return None;
        }
        CachedRun::decode(payload).ok()
    }

    /// Stores `run` under `key` via an atomic rename. Best-effort: an
    /// I/O failure (read-only filesystem, disk full) leaves the cache
    /// cold but the campaign unharmed, so errors are swallowed after
    /// counting nothing.
    pub fn put(&self, key: &RunKey, run: &CachedRun) {
        // The freshly computed run goes hot immediately — the common
        // serving pattern is a repeat of the same spec right after the
        // cold request, and that repeat should never touch disk. The
        // in-memory insert happens even if the disk write fails.
        if let Some(hot) = &self.hot {
            hot.insert(key, run);
        }
        if self.write_entry(key, run).is_ok() {
            self.writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn write_entry(&self, key: &RunKey, run: &CachedRun) -> std::io::Result<()> {
        let payload = run.encode();
        let mut entry = String::with_capacity(payload.len() + 128);
        entry.push_str(&format!(
            "cedar-run-cache format={FORMAT_VERSION} model={MODEL_VERSION}\n"
        ));
        entry.push_str(&format!("key {}\n", key.hex()));
        entry.push_str(&format!("payload_bytes {}\n", payload.len()));
        entry.push_str(&format!(
            "payload_fnv1a {:016x}\n",
            fnv1a(payload.as_bytes())
        ));
        entry.push_str("---\n");
        entry.push_str(&payload);

        let path = self.entry_path(key);
        let dir = path.parent().expect("entry path has a shard directory");
        std::fs::create_dir_all(dir)?;
        // Unique tmp name per process+thread so concurrent writers of
        // the same key never clobber each other's half-written file;
        // the final rename is atomic within the directory.
        let tmp = dir.join(format!(
            ".{}.{}.{:?}.tmp",
            key.hex(),
            std::process::id(),
            std::thread::current().id(),
        ));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(entry.as_bytes())?;
            f.sync_all()?;
        }
        let renamed = std::fs::rename(&tmp, &path);
        if renamed.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        renamed
    }

    /// Counts one experiment that skipped cache policy entirely.
    pub fn note_bypass(&self) {
        self.bypasses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one forced recomputation (the `Refresh` path, which never
    /// reads).
    pub fn note_refresh_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the session counters.
    pub fn stats(&self) -> CacheStats {
        let hot = self.hot.as_ref().map(|h| h.stats()).unwrap_or_default();
        CacheStats {
            mode: self.mode,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            hot_hits: hot.hits,
            hot_misses: hot.misses,
            hot_evictions: hot.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_hw::Configuration;
    use cedar_obs::RunStats;
    use cedar_sim::stats::LatencyHistogram;
    use cedar_sim::Cycles;
    use cedar_xylem::OsAccounting;

    fn tmp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cedar-cache-store-{}-{tag}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_run() -> CachedRun {
        CachedRun {
            app: "T".to_string(),
            configuration: Configuration::P1,
            completion_time: Cycles(10),
            breakdowns: vec![],
            utilization: vec![],
            os: OsAccounting::new(1),
            concurrency: vec![1.0],
            gmem: cedar_hw::gmem::GmemStats {
                packets: 0,
                cluster_path_queued: Cycles(0),
                fwd_queued: Cycles(0),
                rev_queued: Cycles(0),
                module_queued: Cycles(0),
                module_requests: vec![],
                module_sync_requests: vec![],
                latency: LatencyHistogram::new(2),
                min_round_trip: Cycles(0),
            },
            background_stolen: Cycles(0),
            bodies: 1,
            faults: (0, 0),
            events: 2,
            stats: RunStats::default(),
        }
    }

    #[test]
    fn put_then_get_round_trips() {
        let cache = RunCache::open(tmp_root("rt"), CacheMode::ReadWrite).unwrap();
        let key = RunKey::new("case=1");
        assert!(cache.get(&key).is_none(), "cold cache misses");
        cache.put(&key, &tiny_run());
        let back = cache.get(&key).expect("hit after put");
        assert_eq!(back.encode(), tiny_run().encode());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.writes), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn missing_directory_is_a_silent_miss() {
        let cache = RunCache::open(tmp_root("missing"), CacheMode::ReadOnly).unwrap();
        assert!(cache.get(&RunKey::new("anything")).is_none());
        assert!(!cache.root().exists(), "read must not create the store");
    }

    #[test]
    fn header_validation_rejects_tampering() {
        let cache = RunCache::open(tmp_root("tamper"), CacheMode::ReadWrite).unwrap();
        let key = RunKey::new("case=2");
        cache.put(&key, &tiny_run());
        let path = cache.entry_path(&key);
        let pristine = std::fs::read_to_string(&path).unwrap();

        // Truncation: checksum/length catch it.
        std::fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
        assert!(cache.get(&key).is_none());

        // Bit flip in the payload: checksum catches it.
        let mut flipped = pristine.clone().into_bytes();
        let last = flipped.len() - 2;
        flipped[last] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        assert!(cache.get(&key).is_none());

        // Wrong format version.
        std::fs::write(
            &path,
            pristine.replacen(&format!("format={FORMAT_VERSION}"), "format=999", 1),
        )
        .unwrap();
        assert!(cache.get(&key).is_none());

        // Wrong model version.
        std::fs::write(
            &path,
            pristine.replacen(&format!("model={MODEL_VERSION}"), "model=999", 1),
        )
        .unwrap();
        assert!(cache.get(&key).is_none());

        // Wrong key echo (an entry renamed to another address).
        std::fs::write(
            &path,
            pristine.replacen(&key.hex(), &RunKey::new("other").hex(), 1),
        )
        .unwrap();
        assert!(cache.get(&key).is_none());

        // Restored pristine bytes hit again.
        std::fs::write(&path, &pristine).unwrap();
        assert!(cache.get(&key).is_some());
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn entries_shard_by_key_prefix() {
        let cache = RunCache::open(tmp_root("shard"), CacheMode::ReadWrite).unwrap();
        let key = RunKey::new("case=3");
        let path = cache.entry_path(&key);
        assert!(path.starts_with(cache.root().join(key.shard())));
        assert!(path
            .to_string_lossy()
            .ends_with(&format!("{}.run", key.hex())));
    }

    #[test]
    fn hot_tier_serves_after_disk_promotion_and_after_put() {
        let cache = RunCache::open(tmp_root("hot"), CacheMode::ReadWrite)
            .unwrap()
            .with_hot_capacity(32);
        assert!(cache.has_hot_tier());
        let key = RunKey::new("case=hot");

        // put() populates both tiers.
        cache.put(&key, &tiny_run());
        let (hit, tier) = cache.get_traced(&key);
        assert_eq!(tier, Lookup::HotHit, "a just-written entry is hot");
        assert_eq!(hit.unwrap().encode(), tiny_run().encode());

        // Even with the disk entry destroyed, the hot tier answers —
        // and byte-identically.
        std::fs::remove_file(cache.entry_path(&key)).unwrap();
        let (hit, tier) = cache.get_traced(&key);
        assert_eq!(tier, Lookup::HotHit);
        assert_eq!(hit.unwrap().encode(), tiny_run().encode());

        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 0), "hot hits count as hits");
        assert_eq!(s.hot_hits, 2);
        assert!((s.hot_hit_rate() - 1.0).abs() < 1e-12);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn disk_hits_promote_into_the_hot_tier() {
        let root = tmp_root("promote");
        // Populate through a tier-less session (as a prior process
        // would have), then reopen with a hot tier: the first lookup is
        // a disk hit, the second is hot.
        let writer = RunCache::open(&root, CacheMode::ReadWrite).unwrap();
        let key = RunKey::new("case=promote");
        writer.put(&key, &tiny_run());

        let cache = RunCache::open(&root, CacheMode::ReadWrite)
            .unwrap()
            .with_hot_capacity(8);
        let (first, t1) = cache.get_traced(&key);
        let (second, t2) = cache.get_traced(&key);
        assert_eq!((t1, t2), (Lookup::DiskHit, Lookup::HotHit));
        assert_eq!(first.unwrap().encode(), second.unwrap().encode());
        let s = cache.stats();
        assert_eq!((s.hits, s.hot_hits, s.hot_misses), (2, 1, 1));
        assert_eq!(cache.hot_occupancy().unwrap().0, 1);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn stats_deltas_subtract_cleanly() {
        let cache = RunCache::open(tmp_root("delta"), CacheMode::ReadWrite)
            .unwrap()
            .with_hot_capacity(8);
        let key = RunKey::new("case=delta");
        cache.put(&key, &tiny_run());
        let before = cache.stats();
        assert!(cache.get(&key).is_some());
        let delta = cache.stats().delta_since(&before);
        assert_eq!((delta.hits, delta.hot_hits, delta.writes), (1, 1, 0));
        assert_eq!(delta.mode, CacheMode::ReadWrite);
        // A mismatched pair saturates instead of wrapping.
        let zero = before.delta_since(&cache.stats());
        assert_eq!(zero.hits, 0);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn no_tmp_files_left_behind() {
        let cache = RunCache::open(tmp_root("tmp"), CacheMode::ReadWrite).unwrap();
        let key = RunKey::new("case=4");
        cache.put(&key, &tiny_run());
        let shard = cache.root().join(key.shard());
        let leftovers: Vec<_> = std::fs::read_dir(&shard)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files must be renamed away");
        let _ = std::fs::remove_dir_all(cache.root());
    }
}
