//! The content address of one experiment.

use cedar_obs::json::fnv1a;

/// FNV-1a with a different offset basis, giving a second independent
/// 64-bit view of the same bytes for the 128-bit key.
fn fnv1a_alt(bytes: &[u8]) -> u64 {
    // The standard FNV prime with an arbitrary fixed alternate basis.
    let mut h: u64 = 0x6c62_272e_07bb_0142;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical semantic fingerprint of one `(application, machine
/// configuration)` experiment: 128 bits of FNV-1a over the canonical
/// text, with [`crate::MODEL_VERSION`] mixed in so behavior bumps
/// re-key everything.
///
/// The canonical text is produced by the caller (`cedar-core` renders
/// the `AppSpec` and `SimConfig` through their `Debug` forms, which
/// cover every field that shapes the simulation). Anything that changes
/// the text changes the key; anything that changes simulator behavior
/// without changing the text must bump `MODEL_VERSION`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    hi: u64,
    lo: u64,
}

impl RunKey {
    /// Keys `canonical`, mixing in the model version.
    pub fn new(canonical: &str) -> RunKey {
        let salted = format!("model={};{canonical}", crate::MODEL_VERSION);
        RunKey {
            hi: fnv1a(salted.as_bytes()),
            lo: fnv1a_alt(salted.as_bytes()),
        }
    }

    /// The 32-hex-digit content address (filename stem).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// The two-level fan-out: first byte of the address.
    pub fn shard(&self) -> String {
        format!("{:02x}", self.hi >> 56)
    }
}

impl std::fmt::Display for RunKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_discriminating() {
        let a = RunKey::new("app=FLO52;config=P32");
        let b = RunKey::new("app=FLO52;config=P32");
        let c = RunKey::new("app=FLO52;config=P16");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.hex(), b.hex());
        assert_eq!(a.hex().len(), 32);
    }

    #[test]
    fn shard_is_a_prefix_byte() {
        let k = RunKey::new("x");
        assert_eq!(k.shard(), k.hex()[..2].to_string());
    }

    #[test]
    fn single_bit_of_input_changes_both_halves() {
        let a = RunKey::new("seed=0");
        let b = RunKey::new("seed=1");
        assert_ne!(a.hex()[..16], b.hex()[..16]);
        assert_ne!(a.hex()[16..], b.hex()[16..]);
    }
}
