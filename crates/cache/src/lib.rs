//! # cedar-cache — a content-addressed store for completed runs
//!
//! The simulator is fully deterministic: identical `(application,
//! SimConfig, FaultPlan)` inputs always yield a byte-identical
//! `RunResult` (proven continuously by `tests/config_fuzz.rs`
//! fingerprint equality). The measurement campaign, on the other hand,
//! re-simulates the same 5 × 5 grid from scratch on every invocation of
//! every bench binary. This crate memoizes completed runs on disk so
//! repeated campaigns replay from the cache instead of recomputing —
//! the serving-scale move of amortizing repeated queries.
//!
//! Three pieces:
//!
//! * [`RunKey`] — the canonical semantic fingerprint of one experiment:
//!   a 128-bit content address derived from the application spec, the
//!   simulated-machine configuration, the fault plan, and the
//!   [`MODEL_VERSION`].
//! * [`CachedRun`] — a mirror of `cedar_core::RunResult` built from
//!   leaf-crate types only, with a stable line-record serialization
//!   ([`CachedRun::encode`] / [`CachedRun::decode`]) that round-trips
//!   without serde. Floats travel as IEEE-754 bit patterns, so the
//!   round trip is exact.
//! * [`RunCache`] — the disk store (`results/cache/` by default):
//!   `open`/`get`/`put`/`stats`, two-level fan-out directories, atomic
//!   rename writes, and a self-describing entry header (format version,
//!   model version, key echo, payload length, FNV-1a checksum). A
//!   truncated, bit-flipped, stale-versioned or otherwise unreadable
//!   entry is **silently a miss** — the run is recomputed and the entry
//!   rewritten; corruption can cost time, never correctness.
//! * [`HotTier`] — an optional in-memory tier layered over the disk
//!   store ([`RunCache::with_hot_capacity`]): a bounded, sharded map of
//!   already-decoded [`CachedRun`] values, so a process serving the
//!   same specs repeatedly answers from a lock + clone instead of a
//!   read + checksum + decode. Hot hits are byte-identical to disk
//!   hits by construction and surface only in traffic counters.
//!
//! ## Versioning policy
//!
//! * [`FORMAT_VERSION`] — bump when the on-disk entry layout changes.
//! * [`MODEL_VERSION`] — bump on **any behavior-affecting simulator
//!   change** (cost models, scheduling of simulated work, counter
//!   semantics, …). The version participates in every [`RunKey`], so a
//!   bump orphans all previous entries at once: they simply stop being
//!   addressable and are overwritten or ignored. When in doubt, bump —
//!   a stale hit is a correctness bug, a spurious miss is one redundant
//!   simulation.

pub mod hot;
pub mod key;
pub mod record;
pub mod store;

pub use hot::{HotStats, HotTier};
pub use key::RunKey;
pub use record::{CachedRun, DecodeError};
pub use store::{CacheStats, Lookup, RunCache};

/// On-disk entry format version. Bump when the serialization layout
/// changes; entries with any other format version are misses.
pub const FORMAT_VERSION: u32 = 1;

/// Simulator behavior version. Bump on any change that can alter a
/// `RunResult` for a fixed configuration — the bump re-keys the whole
/// cache so no stale result is ever served. See the crate docs for the
/// policy.
pub const MODEL_VERSION: u32 = 1;

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// Interns `s`, returning a `&'static str` with the same contents.
///
/// Deserialized records carry owned strings, but the in-memory result
/// types (`RunResult::app`, `cedar_obs::Counters` names) use
/// `&'static str`. The intern table leaks each *distinct* string once;
/// the universe is the app names and counter names the simulator emits,
/// so the leak is bounded and tiny.
pub fn intern(s: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = table.lock().expect("intern table lock");
    match set.get(s) {
        Some(&interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_is_stable() {
        let a = intern("events.total");
        let b = intern(&String::from("events.total"));
        assert_eq!(a, "events.total");
        assert!(
            std::ptr::eq(a, b),
            "same contents must intern to one allocation"
        );
        assert_ne!(intern("x"), intern("y"));
    }
}
