//! One checkable campaign case, the seeded corpus, and the replay
//! token format.
//!
//! A [`CheckCase`] is the tuple the shrinker minimizes: application,
//! machine configuration, fault-plan intensity, workload scale, and
//! the perturbation seed driving the shuffle tie-break. The whole
//! tuple round-trips through a one-line `key=value;…` token so a
//! violation report can say exactly how to re-run itself
//! (`CEDAR_CHECK_REPLAY='app=FLO52;procs=32;faults=2;shrink=16;seed=0x5eed'`).

use cedar_apps::AppSpec;
use cedar_core::SimConfig;
use cedar_faults::FaultPlan;
use cedar_hw::Configuration;
use cedar_sim::{SchedKind, SplitMix64, TieBreak};

/// One `(application, configuration, fault level, scale, seed)` case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckCase {
    /// Application name, resolved via [`cedar_apps::app_by_name`].
    pub app: &'static str,
    /// Machine size.
    pub configuration: Configuration,
    /// Fault-plan intensity ([`FaultPlan::canonical_at`]; 0 = none).
    pub fault_level: u32,
    /// Workload shrink divisor ([`AppSpec::shrunk`]; larger = smaller).
    pub shrink: u32,
    /// Seed of the [`TieBreak::Shuffle`] perturbation this case
    /// explores alongside FIFO and LIFO.
    pub shuffle_seed: u64,
}

impl CheckCase {
    /// The case's workload at its scale. Panics on an unknown
    /// application name — corpus and token parsing only produce known
    /// names.
    pub fn workload(&self) -> AppSpec {
        cedar_apps::app_by_name(self.app)
            .unwrap_or_else(|| panic!("unknown application `{}`", self.app))
            .shrunk(self.shrink)
    }

    /// The case's fault plan.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::canonical_at(self.fault_level)
    }

    /// The machine this case runs on, under a given scheduler backend
    /// and tie-break policy — the two execution-path axes the harness
    /// permutes.
    pub fn config(&self, sched: SchedKind, tiebreak: TieBreak) -> SimConfig {
        SimConfig::cedar(self.configuration)
            .with_scheduler(sched)
            .with_tiebreak(tiebreak)
            .with_faults(self.plan())
    }

    /// Short human-readable identity for logs and assertion messages.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/f{}/s{}/seed{:#x}",
            self.app,
            self.configuration.label(),
            self.fault_level,
            self.shrink,
            self.shuffle_seed
        )
    }

    /// The replay token: the whole tuple as `key=value;…`, parseable
    /// by [`CheckCase::parse`] and accepted by `CEDAR_CHECK_REPLAY`.
    pub fn replay_token(&self) -> String {
        format!(
            "app={};procs={};faults={};shrink={};seed={:#x}",
            self.app,
            self.configuration.total_ces(),
            self.fault_level,
            self.shrink,
            self.shuffle_seed
        )
    }

    /// Parses a replay token back into a case. Strict: unknown keys,
    /// unknown applications, non-Cedar processor counts, and malformed
    /// numbers are all errors, so a mistyped replay never silently
    /// checks the wrong experiment.
    pub fn parse(token: &str) -> Result<CheckCase, String> {
        let mut app = None;
        let mut configuration = None;
        let mut fault_level = 0u32;
        let mut shrink = 1u32;
        let mut shuffle_seed = 0u64;
        for part in token.split(';').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("replay token part `{part}` is not key=value"))?;
            match key {
                "app" => {
                    let spec = cedar_apps::app_by_name(value)
                        .ok_or_else(|| format!("unknown application `{value}`"))?;
                    app = Some(spec.name);
                }
                "procs" => {
                    let n: u64 = value
                        .parse()
                        .map_err(|_| format!("bad processor count `{value}`"))?;
                    configuration = Some(
                        Configuration::ALL
                            .into_iter()
                            .find(|c| u64::from(c.total_ces()) == n)
                            .ok_or_else(|| format!("`procs` must name a Cedar size, got {n}"))?,
                    );
                }
                "faults" => {
                    fault_level = value
                        .parse()
                        .map_err(|_| format!("bad fault level `{value}`"))?;
                }
                "shrink" => {
                    shrink = value.parse().map_err(|_| format!("bad shrink `{value}`"))?;
                    if shrink == 0 {
                        return Err("shrink must be ≥ 1".to_string());
                    }
                }
                "seed" => {
                    shuffle_seed = match value.strip_prefix("0x") {
                        Some(hex) => u64::from_str_radix(hex, 16),
                        None => value.parse(),
                    }
                    .map_err(|_| format!("bad seed `{value}`"))?;
                }
                other => return Err(format!("unknown replay key `{other}`")),
            }
        }
        Ok(CheckCase {
            app: app.ok_or("replay token needs app=…")?,
            configuration: configuration.ok_or("replay token needs procs=…")?,
            fault_level,
            shrink,
            shuffle_seed,
        })
    }
}

/// The configurations the corpus sweeps: the paper's single-cluster
/// baseline, one mid-size parallel machine, and the full machine.
pub const CORPUS_CONFIGS: [Configuration; 3] =
    [Configuration::P1, Configuration::P8, Configuration::P32];

/// The fault intensities the corpus sweeps: unperturbed and the
/// mid-ladder canonical mix.
pub const CORPUS_FAULT_LEVELS: [u32; 2] = [0, 2];

/// The seeded corpus: all five Perfect applications ×
/// [`CORPUS_CONFIGS`] × [`CORPUS_FAULT_LEVELS`], each with its own
/// shuffle seed drawn from a fixed `SplitMix64` stream (so the
/// explored permutations differ per case but are identical across
/// invocations).
pub fn corpus(shrink: u32) -> Vec<CheckCase> {
    let mut seeds = SplitMix64::new(CORPUS_SEED_SALT);
    let mut cases = Vec::new();
    for app in cedar_apps::perfect_suite() {
        for configuration in CORPUS_CONFIGS {
            for fault_level in CORPUS_FAULT_LEVELS {
                cases.push(CheckCase {
                    app: app.name,
                    configuration,
                    fault_level,
                    shrink,
                    shuffle_seed: seeds.next_u64(),
                });
            }
        }
    }
    cases
}

/// Salt for the corpus seed stream (spelled out so the corpus is
/// reproducible from the source alone).
const CORPUS_SEED_SALT: u64 = 0xC0ED_CAEC_5A17;

/// The CI smoke corpus: a four-case diagonal through the full grid —
/// each application family, machine size, and fault level appears at
/// least once — small enough for every CI run.
pub fn smoke_corpus(shrink: u32) -> Vec<CheckCase> {
    let full = corpus(shrink);
    let pick = |app: &str, c: Configuration, f: u32| {
        full.iter()
            .copied()
            .find(|k| k.app == app && k.configuration == c && k.fault_level == f)
            .expect("smoke case exists in the full corpus")
    };
    vec![
        pick("FLO52", Configuration::P1, 0),
        pick("MDG", Configuration::P8, 2),
        pick("OCEAN", Configuration::P32, 0),
        pick("ADM", Configuration::P8, 0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_the_grid() {
        let c = corpus(16);
        assert_eq!(c.len(), 5 * 3 * 2);
        assert!(c.iter().all(|k| k.shrink == 16));
        // Seeds are per-case and reproducible.
        let again = corpus(16);
        assert_eq!(c, again);
        let seeds: std::collections::HashSet<u64> = c.iter().map(|k| k.shuffle_seed).collect();
        assert_eq!(seeds.len(), c.len(), "every case gets its own seed");
    }

    #[test]
    fn smoke_is_a_small_subset() {
        let smoke = smoke_corpus(64);
        assert_eq!(smoke.len(), 4);
        let full = corpus(64);
        assert!(smoke.iter().all(|k| full.contains(k)));
    }

    #[test]
    fn replay_token_round_trips() {
        for case in corpus(16) {
            let token = case.replay_token();
            assert_eq!(CheckCase::parse(&token).unwrap(), case, "{token}");
        }
        // Decimal seeds, missing optional keys, case-insensitive apps.
        let c = CheckCase::parse("app=flo52;procs=8;seed=42").unwrap();
        assert_eq!(c.app, "FLO52");
        assert_eq!(c.configuration, Configuration::P8);
        assert_eq!((c.fault_level, c.shrink, c.shuffle_seed), (0, 1, 42));
    }

    #[test]
    fn bad_tokens_are_rejected() {
        for (token, needle) in [
            ("procs=8", "needs app"),
            ("app=FLO52", "needs procs"),
            ("app=NOPE;procs=8", "unknown application"),
            ("app=FLO52;procs=7", "Cedar size"),
            ("app=FLO52;procs=8;shrink=0", "≥ 1"),
            ("app=FLO52;procs=8;turbo=1", "unknown replay key"),
            ("app=FLO52;procs=8;seed=zz", "bad seed"),
            ("garbage", "not key=value"),
        ] {
            let err = CheckCase::parse(token).unwrap_err();
            assert!(err.contains(needle), "{token}: {err}");
        }
    }

    #[test]
    fn case_lowers_to_the_typed_surface() {
        let case = CheckCase {
            app: "FLO52",
            configuration: Configuration::P8,
            fault_level: 2,
            shrink: 64,
            shuffle_seed: 7,
        };
        assert_eq!(case.workload().name, "FLO52");
        assert!(!case.plan().is_empty());
        let cfg = case.config(SchedKind::Heap, TieBreak::Lifo);
        assert_eq!(cfg.configuration(), Configuration::P8);
        assert_eq!(cfg.sched, SchedKind::Heap);
        assert_eq!(cfg.tiebreak, TieBreak::Lifo);
        assert!(case.label().contains("FLO52"));
    }
}
