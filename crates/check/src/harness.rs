//! The check harness: runs one case across every execution path the
//! workspace offers and evaluates the oracle registry.
//!
//! Per case the harness executes the experiment under three tie-break
//! policies (FIFO, LIFO, the case's seeded shuffle) on the calendar
//! backend, twice more on the heap backend, once through each campaign
//! runner (sequential and pooled), twice through a throwaway run cache
//! (cold then warm), and — for faulted cases — once unperturbed as the
//! attribution reference. Roughly ten simulations per case; every one
//! is deterministic, so a violation found here reproduces from the
//! case's replay token alone.

use cedar_core::suite::SuiteResult;
use cedar_core::{CacheSession, Experiment, RunResult};
use cedar_faults::FaultPlan;
use cedar_obs::{Counters, RunOptions};
use cedar_serve::reply;
use cedar_serve::CampaignSpec;
use cedar_sim::{SchedKind, TieBreak};
use cedar_xylem::OsActivity;

use crate::case::CheckCase;
use crate::fingerprint::{fingerprint, fingerprint_text, stable_core};
use crate::oracle::{OracleKind, Violation};

/// OS-time buckets as the attribution oracle's untargeted checks see
/// them. The sequential/concurrent page-fault split and the
/// cluster/global critical-section split are timing-dependent
/// classifications: injected load legitimately shifts organic
/// occurrences across each split while preserving the pair's sum, so
/// untargeted budgets are asserted on group totals.
const BUCKET_GROUPS: [&[OsActivity]; 8] = [
    &[OsActivity::Cpi],
    &[OsActivity::Ctx],
    &[OsActivity::PgFltConcurrent, OsActivity::PgFltSequential],
    &[OsActivity::CrSectCluster, OsActivity::CrSectGlobal],
    &[OsActivity::SyscallCluster],
    &[OsActivity::SyscallGlobal],
    &[OsActivity::Ast],
    &[OsActivity::KernelSpin],
];

/// How far an *untargeted* bucket group may grow under injection:
/// organic content scaled by twice the completion-time stretch (taken
/// absolute — probes can shorten a run by re-phasing its critical
/// sections, which re-times organic occurrences just as much as a
/// lengthening does) plus 5%, a tenth of the injected cycles, and a
/// 200-cycle floor. Matches the contract in `tests/invariants.rs`.
///
/// On top of that, every group gets a *quantization* allowance of half
/// its organic content: OS occurrences come in whole service events
/// whose count is timing-coupled — a racing CE faults or finds the
/// page already mapped depending on whether it lands inside the page's
/// in-flight window, a stretched run crosses one more periodic-daemon
/// boundary (one more whole Ctx/CPI charge). Measured jitter across
/// the corpus stays within ±2 quanta, always under half the organic
/// content, while real attribution leaks (the planted sabotage is a
/// 1000× factor) land orders of magnitude past this budget.
fn untargeted_budget(organic: u64, stretch: f64, injected: u64) -> u64 {
    (organic as f64 * (stretch.abs() * 2.0 + 0.05)) as u64 + organic / 2 + injected / 10 + 200
}

/// A deliberately planted oracle-breaking defect, for validating that
/// the checker actually catches bugs (`tests/check_selftest.rs`). The
/// sabotage lives in the harness configuration — never in product code
/// — and models its bug by perturbing the oracle's expectation, which
/// is observationally identical to the corresponding instrumentation
/// bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// Models a fault-injection accounting bug in which the recorder
    /// undercounts delivered cycles by `factor` on machines with at
    /// least `min_procs` processors: the attribution oracle then
    /// expects `factor ×` the injected cost to reach the target
    /// bucket, which real runs cannot satisfy.
    InflateAttribution {
        /// Expectation multiplier (≥ 2 breaks every faulted case).
        factor: u64,
        /// Only machines at least this large are "affected".
        min_procs: u32,
    },
}

/// Harness knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckConfig {
    /// Tie-stability completion-time band, as a fraction of the FIFO
    /// completion time. Simultaneous-event order is physically
    /// meaningful on parallel machines (port FCFS arbitration, lock
    /// grant order); measured drift across policies is within ±5% at
    /// 32 processors, so the default band is double that.
    pub ct_tolerance: f64,
    /// Evaluation budget for the delta-debugging shrinker.
    pub max_shrink_evals: u32,
    /// Planted defect for checker self-validation.
    pub sabotage: Option<Sabotage>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            ct_tolerance: 0.10,
            max_shrink_evals: 64,
            sabotage: None,
        }
    }
}

/// The oracle-evaluating harness. Counters accumulate across cases and
/// surface in `CHECK_violations.json` and the run manifest.
pub struct Harness {
    /// Knobs (tolerance band, shrinker budget, planted sabotage).
    pub config: CheckConfig,
    /// `check.*` rollup: cases, simulations, per-oracle pass/violation.
    pub counters: Counters,
    cache_dirs: u64,
}

impl Harness {
    /// A harness with the given knobs.
    pub fn new(config: CheckConfig) -> Harness {
        Harness {
            config,
            counters: Counters::default(),
            cache_dirs: 0,
        }
    }

    /// One simulation of `case` on a chosen execution path.
    fn run(
        &mut self,
        case: &CheckCase,
        sched: SchedKind,
        tiebreak: TieBreak,
        plan: FaultPlan,
    ) -> RunResult {
        self.counters.add("check.runs", 1);
        let cfg = case.config(sched, tiebreak).with_faults(plan);
        let result = Experiment::new(case.workload(), cfg).run();
        // Fold the run's own telemetry into the rollup so the check
        // manifest records what was simulated alongside what was
        // checked.
        self.counters.merge(&result.stats.counters);
        result
    }

    /// Evaluates every applicable oracle against `case`, returning all
    /// violations (empty = the case upholds every law).
    pub fn check_case(&mut self, case: &CheckCase) -> Vec<Violation> {
        self.counters.add("check.cases", 1);
        let plan = case.plan();
        let shuffle = TieBreak::Shuffle(case.shuffle_seed);

        let base = self.run(case, SchedKind::Calendar, TieBreak::Fifo, plan);
        let dup = self.run(case, SchedKind::Calendar, TieBreak::Fifo, plan);
        let lifo = self.run(case, SchedKind::Calendar, TieBreak::Lifo, plan);
        let shuf = self.run(case, SchedKind::Calendar, shuffle, plan);
        let heap_fifo = self.run(case, SchedKind::Heap, TieBreak::Fifo, plan);
        let heap_shuf = self.run(case, SchedKind::Heap, shuffle, plan);

        let mut all = Vec::new();
        for oracle in OracleKind::ALL {
            let found = match oracle {
                OracleKind::Conservation => self.conservation(case, &base, oracle),
                OracleKind::Determinism => self.determinism(case, &base, &dup),
                OracleKind::TieStability => self.tie_stability(case, &base, &lifo, &shuf),
                OracleKind::SchedParity => {
                    self.sched_parity(case, &base, &heap_fifo, &shuf, &heap_shuf)
                }
                OracleKind::WorkerParity => self.worker_parity(case, &base),
                OracleKind::CacheParity => self.cache_parity(case, &base),
                OracleKind::FaultAttribution => self.fault_attribution(case, &base),
                OracleKind::ServeParity => self.serve_parity(case, &base),
            };
            if found.is_empty() {
                self.counters.add(oracle.pass_counter(), 1);
                self.counters.add("check.oracles.pass", 1);
            } else {
                self.counters
                    .add(oracle.violation_counter(), found.len() as u64);
                self.counters
                    .add("check.oracles.violation", found.len() as u64);
            }
            all.extend(found);
        }
        all
    }

    /// Evaluates exactly one oracle against `case`, executing only the
    /// simulations that oracle needs — the shrinker's predicate (a
    /// delta-debugging candidate only ever re-tests the law it broke).
    /// Does not bump the per-oracle pass/violation counters; those
    /// count corpus verdicts, not shrink probes.
    pub fn check_oracle(&mut self, case: &CheckCase, oracle: OracleKind) -> Vec<Violation> {
        let plan = case.plan();
        let shuffle = TieBreak::Shuffle(case.shuffle_seed);
        let base = self.run(case, SchedKind::Calendar, TieBreak::Fifo, plan);
        match oracle {
            OracleKind::Conservation => self.conservation(case, &base, oracle),
            OracleKind::Determinism => {
                let dup = self.run(case, SchedKind::Calendar, TieBreak::Fifo, plan);
                self.determinism(case, &base, &dup)
            }
            OracleKind::TieStability => {
                let lifo = self.run(case, SchedKind::Calendar, TieBreak::Lifo, plan);
                let shuf = self.run(case, SchedKind::Calendar, shuffle, plan);
                self.tie_stability(case, &base, &lifo, &shuf)
            }
            OracleKind::SchedParity => {
                let shuf = self.run(case, SchedKind::Calendar, shuffle, plan);
                let heap_fifo = self.run(case, SchedKind::Heap, TieBreak::Fifo, plan);
                let heap_shuf = self.run(case, SchedKind::Heap, shuffle, plan);
                self.sched_parity(case, &base, &heap_fifo, &shuf, &heap_shuf)
            }
            OracleKind::WorkerParity => self.worker_parity(case, &base),
            OracleKind::CacheParity => self.cache_parity(case, &base),
            OracleKind::FaultAttribution => self.fault_attribution(case, &base),
            OracleKind::ServeParity => self.serve_parity(case, &base),
        }
    }

    /// Conservation laws on one run, reported under `kind` (the same
    /// checks back both the base-run oracle and the perturbed-run legs
    /// of tie stability).
    fn conservation(&self, case: &CheckCase, run: &RunResult, kind: OracleKind) -> Vec<Violation> {
        let mut v = Vec::new();
        let expected = case.workload().total_bodies();
        if run.bodies != expected {
            v.push(Violation {
                oracle: kind,
                case: *case,
                detail: format!(
                    "coverage broken: {} bodies ran, expected {expected}",
                    run.bodies
                ),
            });
        }
        for (i, b) in run.breakdowns.iter().enumerate() {
            if b.total() > run.completion_time {
                v.push(Violation {
                    oracle: kind,
                    case: *case,
                    detail: format!(
                        "task {i} breakdown {} exceeds completion time {}",
                        b.total(),
                        run.completion_time
                    ),
                });
            }
        }
        for (k, u) in run.utilization.iter().enumerate() {
            if u.os_total() <= run.completion_time
                && u.user(run.completion_time) + u.os_total() != run.completion_time
            {
                v.push(Violation {
                    oracle: kind,
                    case: *case,
                    detail: format!(
                        "cluster {k}: user {} + OS {} does not partition CT {}",
                        u.user(run.completion_time),
                        u.os_total(),
                        run.completion_time
                    ),
                });
            }
        }
        v
    }

    fn determinism(&self, case: &CheckCase, base: &RunResult, dup: &RunResult) -> Vec<Violation> {
        if fingerprint_text(base) == fingerprint_text(dup) {
            return Vec::new();
        }
        vec![Violation {
            oracle: OracleKind::Determinism,
            case: *case,
            detail: format!(
                "identical reruns fingerprint {:016x} vs {:016x}",
                fingerprint(base),
                fingerprint(dup)
            ),
        }]
    }

    fn tie_stability(
        &self,
        case: &CheckCase,
        base: &RunResult,
        lifo: &RunResult,
        shuf: &RunResult,
    ) -> Vec<Violation> {
        let mut v = Vec::new();
        let shuffle_label = format!("shuffle:{:#x}", case.shuffle_seed);
        for (policy, run) in [("lifo", lifo), (shuffle_label.as_str(), shuf)] {
            if stable_core(run) != stable_core(base) {
                v.push(Violation {
                    oracle: OracleKind::TieStability,
                    case: *case,
                    detail: format!(
                        "{policy}: stable core changed: `{}` vs `{}`",
                        stable_core(run),
                        stable_core(base)
                    ),
                });
            }
            v.extend(
                self.conservation(case, run, OracleKind::TieStability)
                    .into_iter()
                    .map(|mut c| {
                        c.detail = format!("{policy}: {}", c.detail);
                        c
                    }),
            );
            // Fault occurrence times couple to event pop order, so an
            // armed plan roughly doubles how far reordering can move
            // the completion time (measured: +11.2% at 32p/level 2
            // against a clean-run worst case near 5%).
            let tolerance = if case.fault_level > 0 {
                self.config.ct_tolerance * 2.0
            } else {
                self.config.ct_tolerance
            };
            let (ct, base_ct) = (run.completion_time.0 as f64, base.completion_time.0 as f64);
            if (ct - base_ct).abs() > tolerance * base_ct {
                v.push(Violation {
                    oracle: OracleKind::TieStability,
                    case: *case,
                    detail: format!(
                        "{policy}: completion time {ct} outside ±{:.0}% of FIFO {base_ct}",
                        tolerance * 100.0
                    ),
                });
            }
            // One cluster: simultaneous events have no physically
            // meaningful order, so any reordering is byte-invisible —
            // unless faults are armed, in which case the reordered pop
            // sequence changes which events the plan's occurrences
            // perturb even on a single cluster.
            if case.fault_level == 0
                && case.configuration.total_ces() == 1
                && fingerprint_text(run) != fingerprint_text(base)
            {
                v.push(Violation {
                    oracle: OracleKind::TieStability,
                    case: *case,
                    detail: format!("{policy}: single-cluster run not byte-identical to FIFO"),
                });
            }
        }
        v
    }

    fn sched_parity(
        &self,
        case: &CheckCase,
        base: &RunResult,
        heap_fifo: &RunResult,
        shuf: &RunResult,
        heap_shuf: &RunResult,
    ) -> Vec<Violation> {
        let mut v = Vec::new();
        for (policy, cal, heap) in [("fifo", base, heap_fifo), ("shuffle", shuf, heap_shuf)] {
            if fingerprint_text(cal) != fingerprint_text(heap) {
                v.push(Violation {
                    oracle: OracleKind::SchedParity,
                    case: *case,
                    detail: format!(
                        "{policy}: calendar {:016x} vs heap {:016x}",
                        fingerprint(cal),
                        fingerprint(heap)
                    ),
                });
            }
        }
        v
    }

    fn worker_parity(&mut self, case: &CheckCase, base: &RunResult) -> Vec<Violation> {
        let opts = RunOptions::default()
            .with_faults(case.plan())
            .with_workers(2);
        let apps = [case.workload()];
        let configurations = [case.configuration];
        self.counters.add("check.runs", 2);
        let seq = match SuiteResult::run_sequential(&apps, &configurations, &opts) {
            Ok(s) => s,
            Err(e) => {
                return vec![Violation {
                    oracle: OracleKind::WorkerParity,
                    case: *case,
                    detail: format!("sequential runner failed: {e}"),
                }]
            }
        };
        let par = match SuiteResult::run_parallel(&apps, &configurations, &opts) {
            Ok(s) => s,
            Err(e) => {
                return vec![Violation {
                    oracle: OracleKind::WorkerParity,
                    case: *case,
                    detail: format!("parallel runner failed: {e}"),
                }]
            }
        };
        let (s, p) = (&seq.apps[0].runs[0], &par.apps[0].runs[0]);
        let mut v = Vec::new();
        if fingerprint_text(s) != fingerprint_text(p) {
            v.push(Violation {
                oracle: OracleKind::WorkerParity,
                case: *case,
                detail: format!(
                    "sequential {:016x} vs pooled {:016x}",
                    fingerprint(s),
                    fingerprint(p)
                ),
            });
        }
        // Both runners must also agree with the direct library path.
        if fingerprint_text(s) != fingerprint_text(base) {
            v.push(Violation {
                oracle: OracleKind::WorkerParity,
                case: *case,
                detail: format!(
                    "suite runner {:016x} vs direct experiment {:016x}",
                    fingerprint(s),
                    fingerprint(base)
                ),
            });
        }
        v
    }

    fn cache_parity(&mut self, case: &CheckCase, base: &RunResult) -> Vec<Violation> {
        self.cache_dirs += 1;
        let dir = std::env::temp_dir().join(format!(
            "cedar-check-{}-{}",
            std::process::id(),
            self.cache_dirs
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunOptions::default()
            .with_cache(cedar_obs::CacheMode::ReadWrite)
            .with_output_dir(&dir);
        let verdict = (|| {
            let session = CacheSession::new(&opts)
                .map_err(|e| format!("cache session failed to open: {e}"))?;
            let cfg = case.config(SchedKind::Calendar, TieBreak::Fifo);
            self.counters.add("check.runs", 1);
            let cold = session.execute(&case.workload(), cfg.clone());
            let warm = session.execute(&case.workload(), cfg);
            let stats = session.stats().ok_or("cache session reports no stats")?;
            if stats.hits != 1 || stats.misses != 1 {
                return Err(format!(
                    "expected 1 miss + 1 hit, saw {} misses / {} hits",
                    stats.misses, stats.hits
                ));
            }
            if fingerprint_text(&cold) != fingerprint_text(&warm) {
                return Err(format!(
                    "warm replay {:016x} differs from cold run {:016x}",
                    fingerprint(&warm),
                    fingerprint(&cold)
                ));
            }
            if fingerprint_text(&cold) != fingerprint_text(base) {
                return Err(format!(
                    "cached path {:016x} differs from direct path {:016x}",
                    fingerprint(&cold),
                    fingerprint(base)
                ));
            }
            Ok(())
        })();
        let _ = std::fs::remove_dir_all(&dir);
        match verdict {
            Ok(()) => Vec::new(),
            Err(detail) => vec![Violation {
                oracle: OracleKind::CacheParity,
                case: *case,
                detail,
            }],
        }
    }

    /// The expectation multiplier sabotage applies to this case.
    fn attribution_factor(&self, case: &CheckCase) -> u64 {
        match self.config.sabotage {
            Some(Sabotage::InflateAttribution { factor, min_procs })
                if u32::from(case.configuration.total_ces()) >= min_procs =>
            {
                factor
            }
            _ => 1,
        }
    }

    fn fault_attribution(&mut self, case: &CheckCase, faulted: &RunResult) -> Vec<Violation> {
        if case.fault_level == 0 {
            return Vec::new(); // nothing injected, nothing to attribute
        }
        let reference = self.run(
            case,
            SchedKind::Calendar,
            TieBreak::Fifo,
            FaultPlan::default(),
        );
        let plan = case.plan();
        let factor = self.attribution_factor(case);

        // Each bucket-targeting class: its name, a single-class plan
        // derived from the case's plan (same seed, one class armed),
        // and the class's (injected-cycles counter, bucket) pairs. A
        // wave's seq/conc split is timing-dependent — injected faults
        // shift which side organic occurrences land on — so
        // monotonicity is asserted on the class's bucket *group*.
        type ClassTargets = (&'static str, FaultPlan, Vec<(&'static str, OsActivity)>);
        let mut classes: Vec<ClassTargets> = Vec::new();
        if plan.interrupt_storm.is_some() {
            classes.push((
                "storm",
                FaultPlan {
                    seed: plan.seed,
                    interrupt_storm: plan.interrupt_storm,
                    ..FaultPlan::default()
                },
                vec![("faults.injected.cpi", OsActivity::Cpi)],
            ));
        }
        if plan.ast_burst.is_some() {
            classes.push((
                "ast",
                FaultPlan {
                    seed: plan.seed,
                    ast_burst: plan.ast_burst,
                    ..FaultPlan::default()
                },
                vec![("faults.injected.ast", OsActivity::Ast)],
            ));
        }
        if plan.page_fault_wave.is_some() {
            classes.push((
                "wave",
                FaultPlan {
                    seed: plan.seed,
                    page_fault_wave: plan.page_fault_wave,
                    ..FaultPlan::default()
                },
                vec![
                    ("faults.injected.pgflt_seq", OsActivity::PgFltSequential),
                    ("faults.injected.pgflt_conc", OsActivity::PgFltConcurrent),
                ],
            ));
        }
        if plan.lock_inflation.is_some() {
            classes.push((
                "lock",
                FaultPlan {
                    seed: plan.seed,
                    lock_inflation: plan.lock_inflation,
                    ..FaultPlan::default()
                },
                vec![
                    ("faults.injected.lock_cluster", OsActivity::CrSectCluster),
                    ("faults.injected.lock_global", OsActivity::CrSectGlobal),
                ],
            ));
        }
        let targeted: Vec<OsActivity> = classes
            .iter()
            .flat_map(|(_, _, buckets)| buckets.iter().map(|&(_, a)| a))
            .collect();

        let mut v = Vec::new();
        let mut injected_total_mixed = 0u64;

        // Monotonicity, per class, on a single-class probe run — the
        // contract `tests/invariants.rs` validates. The injected cost
        // must reach the class's own buckets, up to a displacement
        // allowance: injected occurrences perturb timing enough to
        // suppress a small share of *organic* occurrences in the same
        // buckets (measured ≤ 2% of injected across the corpus, always
        // within a quarter of the reference's organic content).
        for (class, probe_plan, buckets) in &classes {
            let probe = self.run(case, SchedKind::Calendar, TieBreak::Fifo, *probe_plan);
            let injected: u64 = buckets
                .iter()
                .map(|(counter, _)| probe.stats.counters.get(counter))
                .sum();
            injected_total_mixed += buckets
                .iter()
                .map(|(counter, _)| faulted.stats.counters.get(counter))
                .sum::<u64>();
            if injected == 0 {
                continue; // class armed but never fired at this scale
            }
            let organic: u64 = buckets.iter().map(|&(_, a)| reference.os.total(a).0).sum();
            let moved: u64 = buckets
                .iter()
                .map(|&(_, a)| probe.os.total(a).0.saturating_sub(reference.os.total(a).0))
                .sum();
            let allowance = organic / 4 + 200;
            let required = injected.saturating_mul(factor).saturating_sub(allowance);
            if moved < required {
                v.push(Violation {
                    oracle: OracleKind::FaultAttribution,
                    case: *case,
                    detail: format!(
                        "class `{class}` buckets moved {moved} < required {required} \
                         (injected {injected} × factor {factor}, allowance {allowance})"
                    ),
                });
            }

            // And only its buckets: on the single-class probe, every
            // other bucket group stays within the organic-growth budget
            // established by `tests/invariants.rs`.
            let stretch = probe.completion_time.0 as f64 / reference.completion_time.0 as f64 - 1.0;
            for group in BUCKET_GROUPS {
                if group.iter().any(|a| buckets.iter().any(|&(_, b)| b == *a))
                    || group.contains(&OsActivity::KernelSpin)
                {
                    continue; // spin legitimately emerges from hotter locks
                }
                let organic: u64 = group.iter().map(|&a| reference.os.total(a).0).sum();
                let budget = untargeted_budget(organic, stretch, injected);
                let probed: u64 = group.iter().map(|&a| probe.os.total(a).0).sum();
                let moved = probed.saturating_sub(organic);
                if moved > budget {
                    v.push(Violation {
                        oracle: OracleKind::FaultAttribution,
                        case: *case,
                        detail: format!(
                            "probe `{class}`: untargeted {group:?} moved {moved} > \
                             budget {budget} (organic {organic}, stretch {stretch:.4})"
                        ),
                    });
                }
            }
        }

        // On the mixed plan, classes interfere (injected load displaces
        // organic occurrences across buckets), so only two checks stay
        // sound: the faulted run's targeted buckets must still *hold*
        // each class's injected cycles, and untargeted buckets must
        // stay within the organic-growth budget.
        for (class, _, buckets) in &classes {
            let injected: u64 = buckets
                .iter()
                .map(|(counter, _)| faulted.stats.counters.get(counter))
                .sum();
            if injected == 0 {
                continue;
            }
            let organic: u64 = buckets.iter().map(|&(_, a)| reference.os.total(a).0).sum();
            let held: u64 = buckets.iter().map(|&(_, a)| faulted.os.total(a).0).sum();
            let required = injected
                .saturating_mul(factor)
                .saturating_sub(organic / 4 + 200);
            if held < required {
                v.push(Violation {
                    oracle: OracleKind::FaultAttribution,
                    case: *case,
                    detail: format!(
                        "mixed plan: class `{class}` buckets hold {held} < required {required} \
                         (injected {injected} × factor {factor})"
                    ),
                });
            }
        }
        let stretch = faulted.completion_time.0 as f64 / reference.completion_time.0 as f64 - 1.0;
        for group in BUCKET_GROUPS {
            if group.iter().any(|a| targeted.contains(a)) || group.contains(&OsActivity::KernelSpin)
            {
                continue;
            }
            let organic: u64 = group.iter().map(|&a| reference.os.total(a).0).sum();
            let budget = untargeted_budget(organic, stretch, injected_total_mixed);
            let held: u64 = group.iter().map(|&a| faulted.os.total(a).0).sum();
            let moved = held.saturating_sub(organic);
            if moved > budget {
                v.push(Violation {
                    oracle: OracleKind::FaultAttribution,
                    case: *case,
                    detail: format!(
                        "mixed plan: untargeted {group:?} moved {moved} > budget {budget} \
                         (organic {organic}, stretch {stretch:.4})"
                    ),
                });
            }
        }
        v
    }

    fn serve_parity(&self, case: &CheckCase, base: &RunResult) -> Vec<Violation> {
        let body = format!(
            r#"{{"app":"{}","processors":{},"faults":{},"shrink":{}}}"#,
            case.app,
            case.configuration.total_ces(),
            case.fault_level,
            case.shrink
        );
        let spec = match CampaignSpec::from_json(&body) {
            Ok(s) => s,
            Err(e) => {
                return vec![Violation {
                    oracle: OracleKind::ServeParity,
                    case: *case,
                    detail: format!("service rejected the case's own spec {body}: {e}"),
                }]
            }
        };
        let mut v = Vec::new();
        if spec.workload() != case.workload() {
            v.push(Violation {
                oracle: OracleKind::ServeParity,
                case: *case,
                detail: "service lowering produced a different workload".to_string(),
            });
        }
        let lib_cfg = case.config(SchedKind::Calendar, TieBreak::Fifo);
        if format!("{:?}", spec.sim_config()) != format!("{lib_cfg:?}") {
            v.push(Violation {
                oracle: OracleKind::ServeParity,
                case: *case,
                detail: "service lowering produced a different machine configuration".to_string(),
            });
        }
        let reply = reply::render(&spec, base);
        let expected = format!("{:016x}", reply::measurement_fingerprint(base));
        match cedar_obs::json::parse(&reply) {
            Ok(parsed) => {
                let embedded = parsed
                    .get("fingerprint")
                    .and_then(|f| f.as_str())
                    .unwrap_or("")
                    .to_string();
                if embedded != expected {
                    v.push(Violation {
                        oracle: OracleKind::ServeParity,
                        case: *case,
                        detail: format!(
                            "reply embeds fingerprint {embedded}, measurement is {expected}"
                        ),
                    });
                }
                if parsed.get("completion_time").and_then(|c| c.as_u64())
                    != Some(base.completion_time.0)
                {
                    v.push(Violation {
                        oracle: OracleKind::ServeParity,
                        case: *case,
                        detail: "reply completion_time differs from the library run".to_string(),
                    });
                }
            }
            Err(e) => v.push(Violation {
                oracle: OracleKind::ServeParity,
                case: *case,
                detail: format!("reply body is not parseable JSON: {e}"),
            }),
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_hw::Configuration;

    fn tiny_case() -> CheckCase {
        CheckCase {
            app: "FLO52",
            configuration: Configuration::P1,
            fault_level: 0,
            shrink: 64,
            shuffle_seed: 0x5EED,
        }
    }

    #[test]
    fn clean_case_passes_every_oracle() {
        let mut h = Harness::new(CheckConfig::default());
        let violations = h.check_case(&tiny_case());
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(h.counters.get("check.cases"), 1);
        assert_eq!(h.counters.get("check.oracles.violation"), 0);
        // 6 direct runs + 2 suite runs + 1 cold cache run; faultless
        // cases skip the attribution reference.
        assert_eq!(h.counters.get("check.runs"), 9);
        // All oracles but fault attribution checked something real;
        // attribution counts as a (vacuous) pass.
        assert_eq!(h.counters.get("check.oracles.pass"), 8);
    }

    #[test]
    fn faulted_parallel_case_passes_with_attribution() {
        let mut h = Harness::new(CheckConfig::default());
        let case = CheckCase {
            app: "FLO52",
            configuration: Configuration::P8,
            fault_level: 2,
            shrink: 64,
            shuffle_seed: 0xFEED_FACE,
        };
        let violations = h.check_case(&case);
        assert!(violations.is_empty(), "{violations:#?}");
        // 9 path runs + 1 unfaulted reference + 4 single-class probes.
        assert_eq!(h.counters.get("check.runs"), 14, "attribution probes ran");
        assert_eq!(h.counters.get("check.oracle.fault_attribution.pass"), 1);
    }

    #[test]
    fn sabotage_breaks_only_the_attribution_oracle() {
        let mut h = Harness::new(CheckConfig {
            sabotage: Some(Sabotage::InflateAttribution {
                factor: 1_000,
                min_procs: 8,
            }),
            ..CheckConfig::default()
        });
        let case = CheckCase {
            app: "FLO52",
            configuration: Configuration::P8,
            fault_level: 2,
            shrink: 64,
            shuffle_seed: 1,
        };
        let violations = h.check_case(&case);
        assert!(!violations.is_empty(), "sabotage must be caught");
        assert!(
            violations
                .iter()
                .all(|v| v.oracle == OracleKind::FaultAttribution),
            "{violations:#?}"
        );
        // The same sabotage spares machines below its min_procs.
        let mut small = Harness::new(h.config);
        let p1 = CheckCase {
            configuration: Configuration::P1,
            ..case
        };
        assert!(small.check_case(&p1).is_empty());
    }
}
