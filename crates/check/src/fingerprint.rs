//! The measurement fingerprint the parity oracles compare.
//!
//! The cacheable payload ([`CachedRun::encode`],
//! `crates/cache/src/record.rs`) is the complete measurement record of
//! a run, but three of its line families are *not* measurements:
//!
//! * `stats.*_ns` — host wall-clock phase timings;
//! * `counter queue.*` — pending-event-set telemetry, which differs
//!   between the heap and calendar backends by design;
//! * `counter outbox.*` — event-pool telemetry, likewise
//!   implementation-shaped.
//!
//! [`fingerprint_text`] drops exactly those lines; what remains is the
//! paper-facing measurement surface (completion time, breakdowns,
//!  utilization, OS clusters, gmem, fault and event totals, and every
//! measurement counter), which the scheduler/worker/cache parity
//! oracles require to be byte-identical. This is deliberately stricter
//! than the serving layer's reply fingerprint
//! ([`cedar_serve::reply::measurement_fingerprint`]), which keeps the
//! queue counters because a service replays against one fixed backend.

use cedar_core::cache::to_cached;
use cedar_core::RunResult;
use cedar_obs::json;

/// True for payload lines that are measurements (not host wall-clock or
/// scheduler-implementation telemetry).
fn is_measurement_line(line: &str) -> bool {
    let field = line.split_ascii_whitespace().next().unwrap_or("");
    if field.starts_with("stats.") {
        return false;
    }
    if let Some(rest) = line.strip_prefix("counter ") {
        let name = rest.split(' ').next().unwrap_or("");
        if name.starts_with("queue.") || name.starts_with("outbox.") {
            return false;
        }
    }
    true
}

/// The run's deterministic measurement payload as text — the cacheable
/// encoding with wall-clock and backend-telemetry lines removed. Two
/// runs of the same experiment must produce identical text no matter
/// which scheduler backend, worker pool, or cache path executed them.
pub fn fingerprint_text(result: &RunResult) -> String {
    to_cached(result)
        .encode()
        .lines()
        .filter(|l| is_measurement_line(l))
        .collect::<Vec<_>>()
        .join("\n")
}

/// FNV-1a hash of [`fingerprint_text`] — the compact form recorded in
/// violation reports and counters.
pub fn fingerprint(result: &RunResult) -> u64 {
    json::fnv1a(fingerprint_text(result).as_bytes())
}

/// The *tie-stable core* of a run: the facts that must survive any
/// simultaneous-event reordering. Coverage (every iteration ran), the
/// experiment's identity, and the totals conservation re-derives.
/// Completion time is deliberately absent — on parallel configurations
/// it legitimately shifts a few percent with the tie-break policy (the
/// tie-stability oracle bounds that shift separately).
pub fn stable_core(result: &RunResult) -> String {
    format!(
        "app={};configuration={:?};bodies={};clusters={}",
        result.app,
        result.configuration,
        result.bodies,
        result.utilization.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_core::{Experiment, SimConfig};
    use cedar_hw::Configuration;
    use cedar_sim::{SchedKind, TieBreak};

    fn tiny(sched: SchedKind, tie: TieBreak) -> RunResult {
        let app = cedar_apps::synthetic::uniform_xdoall(1, 2, 8, 150, 4);
        Experiment::new(
            app,
            SimConfig::cedar(Configuration::P4)
                .with_scheduler(sched)
                .with_tiebreak(tie),
        )
        .run()
    }

    #[test]
    fn fingerprint_is_backend_independent() {
        let heap = tiny(SchedKind::Heap, TieBreak::Fifo);
        let cal = tiny(SchedKind::Calendar, TieBreak::Fifo);
        assert_eq!(fingerprint_text(&heap), fingerprint_text(&cal));
        assert_eq!(fingerprint(&heap), fingerprint(&cal));
    }

    #[test]
    fn fingerprint_drops_wall_clock_and_backend_lines() {
        let r = tiny(SchedKind::Calendar, TieBreak::Fifo);
        let text = fingerprint_text(&r);
        assert!(!text.contains("stats."), "wall-clock leaked: {text}");
        assert!(!text.contains("counter queue."), "queue telemetry leaked");
        assert!(text.contains("completion_time"), "measurements kept");
        assert!(text.contains("counter events.total"), "counters kept");
    }

    #[test]
    fn stable_core_survives_tie_reordering() {
        let fifo = tiny(SchedKind::Calendar, TieBreak::Fifo);
        let lifo = tiny(SchedKind::Calendar, TieBreak::Lifo);
        assert_eq!(stable_core(&fifo), stable_core(&lifo));
        assert!(stable_core(&fifo).contains("bodies=16"));
    }
}
