//! Delta-debugging minimization of a violating case.
//!
//! Given a case that violates some oracle, [`shrink`] greedily walks
//! the case tuple toward the simplest point that *still* violates the
//! same oracle: a simpler application (by iteration count), a smaller
//! machine, a lower fault level, a smaller workload, a zero
//! perturbation seed. Each candidate is re-evaluated with the full
//! harness; the walk repeats until a whole pass makes no progress or
//! the evaluation budget runs out. Everything is deterministic, so the
//! minimal reproducer — emitted as a replay token — reproduces the
//! violation on any machine.

use cedar_hw::Configuration;

use crate::case::CheckCase;
use crate::harness::Harness;
use crate::oracle::OracleKind;

/// The shrink ladder for workload scale: larger divisor = smaller run.
const SHRINK_LADDER: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Result of a shrink session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkOutcome {
    /// The smallest case found that still violates the oracle.
    pub minimal: CheckCase,
    /// Harness evaluations spent (each evaluation re-runs every
    /// oracle-relevant simulation for one candidate).
    pub evals: u32,
    /// Whether the *original* case reproduced its violation when
    /// re-evaluated (false means the report should flag flakiness —
    /// which determinism makes impossible short of a harness bug).
    pub reproduced: bool,
}

/// Applications ordered simplest-first (by total iteration count at
/// the case's scale) — the order the shrinker tries substitutions in.
fn apps_by_simplicity(shrink: u32) -> Vec<&'static str> {
    let mut apps: Vec<_> = cedar_apps::perfect_suite()
        .into_iter()
        .map(|a| (a.shrunk(shrink).total_bodies(), a.name))
        .collect();
    apps.sort();
    apps.into_iter().map(|(_, name)| name).collect()
}

/// The machine one step smaller than `c`, if any.
fn smaller(c: Configuration) -> Option<Configuration> {
    let all = Configuration::ALL;
    let idx = all.iter().position(|&x| x == c)?;
    idx.checked_sub(1).map(|i| all[i])
}

/// Minimizes `case` with respect to `oracle` under `harness`,
/// spending at most `harness.config.max_shrink_evals` evaluations.
pub fn shrink(case: &CheckCase, oracle: OracleKind, harness: &mut Harness) -> ShrinkOutcome {
    let budget = harness.config.max_shrink_evals;
    let mut evals = 0u32;
    let violates = |h: &mut Harness, candidate: &CheckCase, evals: &mut u32| -> bool {
        if *evals >= budget {
            return false; // out of budget: treat as non-reproducing
        }
        *evals += 1;
        h.counters.add("check.shrink.evals", 1);
        !h.check_oracle(candidate, oracle).is_empty()
    };

    let reproduced = violates(harness, case, &mut evals);
    if !reproduced {
        return ShrinkOutcome {
            minimal: *case,
            evals,
            reproduced: false,
        };
    }

    let mut current = *case;
    loop {
        let mut progressed = false;

        // Simpler application (strictly simpler than the current one).
        let order = apps_by_simplicity(current.shrink);
        let pos = order.iter().position(|&a| a == current.app).unwrap_or(0);
        for &app in &order[..pos] {
            let candidate = CheckCase { app, ..current };
            if violates(harness, &candidate, &mut evals) {
                current = candidate;
                progressed = true;
                break;
            }
        }

        // Smaller machine, one ladder step at a time.
        while let Some(c) = smaller(current.configuration) {
            let candidate = CheckCase {
                configuration: c,
                ..current
            };
            if !violates(harness, &candidate, &mut evals) {
                break;
            }
            current = candidate;
            progressed = true;
        }

        // Lower fault intensity.
        while current.fault_level > 0 {
            let candidate = CheckCase {
                fault_level: current.fault_level - 1,
                ..current
            };
            if !violates(harness, &candidate, &mut evals) {
                break;
            }
            current = candidate;
            progressed = true;
        }

        // Smaller workload, up the shrink ladder.
        while let Some(&next) = SHRINK_LADDER.iter().find(|&&s| s > current.shrink) {
            let candidate = CheckCase {
                shrink: next,
                ..current
            };
            if !violates(harness, &candidate, &mut evals) {
                break;
            }
            current = candidate;
            progressed = true;
        }

        // Canonical perturbation seed.
        if current.shuffle_seed != 0 {
            let candidate = CheckCase {
                shuffle_seed: 0,
                ..current
            };
            if violates(harness, &candidate, &mut evals) {
                current = candidate;
                progressed = true;
            }
        }

        if !progressed || evals >= budget {
            break;
        }
    }

    ShrinkOutcome {
        minimal: current,
        evals,
        reproduced: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::CheckConfig;

    #[test]
    fn apps_order_is_simplest_first() {
        let order = apps_by_simplicity(16);
        assert_eq!(order.len(), 5);
        let bodies: Vec<u64> = order
            .iter()
            .map(|name| {
                cedar_apps::app_by_name(name)
                    .unwrap()
                    .shrunk(16)
                    .total_bodies()
            })
            .collect();
        let mut sorted = bodies.clone();
        sorted.sort();
        assert_eq!(bodies, sorted);
    }

    #[test]
    fn configuration_ladder_descends_to_p1() {
        let mut c = Configuration::P32;
        let mut seen = vec![c];
        while let Some(next) = smaller(c) {
            seen.push(next);
            c = next;
        }
        assert_eq!(c, Configuration::P1);
        assert_eq!(seen.len(), Configuration::ALL.len());
    }

    #[test]
    fn non_reproducing_case_returns_unshrunk() {
        // A clean case violates nothing, so the shrinker reports
        // reproduced = false after exactly one evaluation.
        let mut h = Harness::new(CheckConfig::default());
        let case = CheckCase {
            app: "FLO52",
            configuration: Configuration::P1,
            fault_level: 0,
            shrink: 64,
            shuffle_seed: 3,
        };
        let out = shrink(&case, OracleKind::Conservation, &mut h);
        assert!(!out.reproduced);
        assert_eq!(out.evals, 1);
        assert_eq!(out.minimal, case);
    }
}
